//! Brute-force soundness oracle for the interference inference — the
//! small-scope analogue of `visibility_prop.rs` / `tree_prop.rs`.
//!
//! For randomly generated mini-workloads (2–3 transactions, ≤3 steps each,
//! ≤3 assertion templates, a small key domain) we:
//!
//! 1. build each step's write footprint *mechanically* from its concrete
//!    ops, so footprints are honest by construction (a delta op really is a
//!    commutative delta, an own-region op really touches only the
//!    transaction's own key, …);
//! 2. run [`Inference`] to derive the interference matrix;
//! 3. enumerate **every** interleaving of the transactions' step sequences
//!    (compensation steps of aborting transactions included), admitting an
//!    interleaving only if each step is compatible — per the inferred
//!    matrix — with every assertion template (and guard) active in another
//!    live transaction at that point;
//! 4. for each admitted interleaving, check the two soundness properties
//!    the matrix claims: *assertion preservation* (any active template
//!    instance of another transaction that held before a step still holds
//!    after it) and *serial equivalence* (the final state equals some serial
//!    order of the committed transactions, with compensated transactions a
//!    net no-op).
//!
//! ≥500 seeded workloads, zero violations — plus non-vacuity counters so a
//! degenerate generator (everything blocked, or nothing ever checked) fails
//! loudly instead of passing silently.

use acc_common::{SeededRng, StepTypeId, TableId};
use acc_core::{AssertionRegistry, Inference, KeySpace, StepFootprint, TableFootprint, DIRTY};
use acc_lockmgr::InterferenceOracle;
use std::collections::BTreeMap;

/// Delta modulus: every `Add` amount is a multiple of `M`, which is what
/// makes `ColMod`'s delta tolerance honest.
const M: i64 = 4;
const NCOLS: usize = 3;
const SHARED_KEYS: i64 = 3;

/// The concrete database: `(table, key) → row`.
type State = BTreeMap<(u32, i64), [i64; NCOLS]>;

fn own_key(token: i64) -> i64 {
    100 + token
}
fn fresh_key(token: i64, seq: i64) -> i64 {
    1000 + 10 * token + seq
}
fn ks(table: u32) -> KeySpace {
    KeySpace(table)
}
fn tid(table: u32) -> TableId {
    TableId(table)
}

/// One concrete write operation. Its footprint is derived, not declared.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Shared-key delta; `amount` is a nonzero multiple of [`M`].
    Add {
        table: u32,
        key: i64,
        col: usize,
        amount: i64,
    },
    /// Shared-key assignment, confined to its key's range `[key, key+1)`.
    Set {
        table: u32,
        key: i64,
        col: usize,
        val: i64,
    },
    /// Shared-key assignment with a deliberately sloppy (unconfined)
    /// footprint — the worst honest declaration.
    SetAll {
        table: u32,
        key: i64,
        col: usize,
        val: i64,
    },
    /// Insert a freshly allocated key.
    InsertFresh { table: u32, seq: i64 },
    /// Assign a column of the transaction's own row.
    SetOwn { table: u32, col: usize, val: i64 },
    /// Delete the transaction's own row.
    DeleteOwn { table: u32 },
}

impl Op {
    /// Forward write footprint, derived from what the op concretely does.
    fn footprint(&self) -> TableFootprint {
        match *self {
            Op::Add {
                table, key, col, ..
            } => TableFootprint::columns(tid(table), [col])
                .delta()
                .within(key, key + 1),
            Op::Set {
                table, key, col, ..
            } => TableFootprint::columns(tid(table), [col]).within(key, key + 1),
            Op::SetAll { table, col, .. } => TableFootprint::columns(tid(table), [col]),
            Op::InsertFresh { table, .. } => {
                TableFootprint::rows(tid(table), 0..NCOLS).fresh(ks(table))
            }
            Op::SetOwn { table, col, .. } => {
                TableFootprint::columns(tid(table), [col]).own(ks(table))
            }
            Op::DeleteOwn { table } => TableFootprint::rows(tid(table), []).own(ks(table)),
        }
    }

    /// Compensation write footprint: the mechanically derived inverse. A
    /// delta's inverse is a delta; an assignment's inverse restores the
    /// saved pre-image of the same cell; inserts are undone by deleting the
    /// instance's own (freshly allocated) keys; deletes by re-inserting the
    /// saved own row.
    fn comp_footprint(&self) -> TableFootprint {
        match *self {
            Op::Add { .. } | Op::Set { .. } | Op::SetAll { .. } | Op::SetOwn { .. } => {
                self.footprint()
            }
            Op::InsertFresh { table, .. } => TableFootprint::rows(tid(table), []).own(ks(table)),
            Op::DeleteOwn { table } => TableFootprint::rows(tid(table), 0..NCOLS).own(ks(table)),
        }
    }
}

/// Undo record captured at execution time (what compensation replays,
/// newest first).
#[derive(Debug, Clone, Copy)]
enum Undo {
    AddInv {
        table: u32,
        key: i64,
        col: usize,
        amount: i64,
    },
    RestoreCol {
        table: u32,
        key: i64,
        col: usize,
        prev: i64,
    },
    DeleteKey {
        table: u32,
        key: i64,
    },
    InsertRow {
        table: u32,
        key: i64,
        row: [i64; NCOLS],
    },
}

fn exec_op(op: &Op, token: i64, state: &mut State) -> Undo {
    match *op {
        Op::Add {
            table,
            key,
            col,
            amount,
        } => {
            let row = state.get_mut(&(table, key)).expect("shared row exists");
            row[col] += amount;
            Undo::AddInv {
                table,
                key,
                col,
                amount,
            }
        }
        Op::Set {
            table,
            key,
            col,
            val,
        }
        | Op::SetAll {
            table,
            key,
            col,
            val,
        } => {
            let row = state.get_mut(&(table, key)).expect("shared row exists");
            let prev = row[col];
            row[col] = val;
            Undo::RestoreCol {
                table,
                key,
                col,
                prev,
            }
        }
        Op::InsertFresh { table, seq } => {
            let key = fresh_key(token, seq);
            let inserted = state.insert((table, key), [seq, M, 2 * M]).is_none();
            assert!(inserted, "fresh keys are fresh");
            Undo::DeleteKey { table, key }
        }
        Op::SetOwn { table, col, val } => {
            let key = own_key(token);
            let row = state.get_mut(&(table, key)).expect("own row exists");
            let prev = row[col];
            row[col] = val;
            Undo::RestoreCol {
                table,
                key,
                col,
                prev,
            }
        }
        Op::DeleteOwn { table } => {
            let key = own_key(token);
            let row = state.remove(&(table, key)).expect("own row exists");
            Undo::InsertRow { table, key, row }
        }
    }
}

fn exec_undo(undo: &Undo, state: &mut State) {
    match *undo {
        Undo::AddInv {
            table,
            key,
            col,
            amount,
        } => {
            state.get_mut(&(table, key)).expect("row exists")[col] -= amount;
        }
        Undo::RestoreCol {
            table,
            key,
            col,
            prev,
        } => {
            state.get_mut(&(table, key)).expect("row exists")[col] = prev;
        }
        Undo::DeleteKey { table, key } => {
            state.remove(&(table, key));
        }
        Undo::InsertRow { table, key, row } => {
            state.insert((table, key), row);
        }
    }
}

/// A concrete assertion predicate; its read footprint is derived.
#[derive(Debug, Clone, Copy)]
enum Pred {
    /// `state[table, key][col] == expected` — a fixed-row equality, *not*
    /// delta-tolerant.
    ColEq {
        table: u32,
        key: i64,
        col: usize,
        expected: i64,
    },
    /// `state[table, key][col] ≡ residue (mod M)` — honest delta tolerance,
    /// since every `Add` amount is a multiple of `M`.
    ColMod {
        table: u32,
        key: i64,
        col: usize,
        residue: i64,
    },
    /// The table holds exactly `n` rows — a cardinality predicate.
    CountAll { table: u32, n: usize },
    /// The *owner* transaction's own row exists.
    OwnExists { table: u32 },
}

impl Pred {
    fn footprint(&self) -> Vec<TableFootprint> {
        match *self {
            Pred::ColEq {
                table, key, col, ..
            } => {
                vec![TableFootprint::columns(tid(table), [col]).within(key, key + 1)]
            }
            Pred::ColMod {
                table, key, col, ..
            } => vec![TableFootprint::columns(tid(table), [col])
                .within(key, key + 1)
                .tolerates_deltas()],
            Pred::CountAll { table, .. } => vec![TableFootprint::rows(tid(table), [])],
            Pred::OwnExists { table } => {
                vec![TableFootprint::rows(tid(table), []).own(ks(table))]
            }
        }
    }

    fn eval(&self, state: &State, owner_token: i64) -> bool {
        match *self {
            Pred::ColEq {
                table,
                key,
                col,
                expected,
            } => state.get(&(table, key)).map(|r| r[col]) == Some(expected),
            Pred::ColMod {
                table,
                key,
                col,
                residue,
            } => state
                .get(&(table, key))
                .map(|r| r[col].rem_euclid(M) == residue)
                .unwrap_or(false),
            Pred::CountAll { table, n } => state.keys().filter(|(t, _)| *t == table).count() == n,
            Pred::OwnExists { table } => state.contains_key(&(table, own_key(owner_token))),
        }
    }
}

#[derive(Debug, Clone)]
struct MiniStep {
    step_type: StepTypeId,
    ops: Vec<Op>,
}

#[derive(Debug, Clone)]
struct MiniTxn {
    token: i64,
    steps: Vec<MiniStep>,
    /// Compensation step type, scheduled after the forward steps when the
    /// transaction aborts.
    comp: Option<StepTypeId>,
    /// Indices into the workload's template list, active while this
    /// transaction is live.
    active: Vec<usize>,
}

#[derive(Debug, Clone)]
struct Workload {
    txns: Vec<MiniTxn>,
    /// `(pred, owner_txn_index)`; template ids are `1 + index` (DIRTY is 0).
    templates: Vec<(Pred, usize)>,
}

fn initial_state(n_txns: usize) -> State {
    let mut state = State::new();
    for table in 0..2 {
        for key in 0..SHARED_KEYS {
            // Multiples of M, so every ColMod residue starts at 0.
            state.insert((table, key), [2 * M, 4 * M, 6 * M]);
        }
        for token in 0..n_txns as i64 {
            state.insert((table, own_key(token)), [M, M, M]);
        }
    }
    state
}

fn gen_workload(rng: &mut SeededRng) -> Workload {
    let n_txns = if rng.chance(0.125) { 3 } else { 2 };
    let max_steps = if n_txns == 3 { 2 } else { 3 };
    let init = initial_state(n_txns);

    let mut txns = Vec::new();
    for t in 0..n_txns {
        let token = t as i64;
        let n_steps = 1 + rng.index(max_steps);
        let mut fresh_seq = 0i64;
        // At most one own-row op per transaction, so own-row execution is
        // always well-defined (no SetOwn after DeleteOwn).
        let mut own_used = false;
        let mut steps = Vec::new();
        for s in 0..n_steps {
            let n_ops = 1 + rng.index(2);
            let mut ops = Vec::new();
            for _ in 0..n_ops {
                let table = rng.index(2) as u32;
                let key = rng.int_range(0, SHARED_KEYS - 1);
                let col = rng.index(NCOLS);
                let op = match rng.index(12) {
                    0..=4 => Op::Add {
                        table,
                        key,
                        col,
                        amount: M * [-2i64, -1, 1, 2][rng.index(4)],
                    },
                    5 => Op::Set {
                        table,
                        key,
                        col,
                        val: M * rng.int_range(0, 9),
                    },
                    6 => Op::SetAll {
                        table,
                        key,
                        col,
                        val: M * rng.int_range(0, 9),
                    },
                    7 | 8 => {
                        fresh_seq += 1;
                        Op::InsertFresh {
                            table,
                            seq: fresh_seq,
                        }
                    }
                    9 if !own_used => {
                        own_used = true;
                        Op::SetOwn {
                            table,
                            col,
                            val: M * rng.int_range(0, 9),
                        }
                    }
                    10 if !own_used => {
                        own_used = true;
                        Op::DeleteOwn { table }
                    }
                    _ => Op::Add {
                        table,
                        key,
                        col,
                        amount: M,
                    },
                };
                ops.push(op);
            }
            steps.push(MiniStep {
                step_type: StepTypeId(1 + (t as u32) * 10 + s as u32),
                ops,
            });
        }
        let comp = rng.chance(0.4).then_some(StepTypeId(9 + (t as u32) * 10));
        txns.push(MiniTxn {
            token,
            steps,
            comp,
            active: Vec::new(),
        });
    }

    let mut templates = Vec::new();
    for _ in 0..rng.index(3) {
        let table = rng.index(2) as u32;
        let key = rng.int_range(0, SHARED_KEYS - 1);
        let col = rng.index(NCOLS);
        let pred = match rng.index(4) {
            0 => Pred::ColEq {
                table,
                key,
                col,
                expected: init[&(table, key)][col],
            },
            1 => Pred::ColMod {
                table,
                key,
                col,
                residue: 0,
            },
            2 => Pred::CountAll {
                table,
                n: init.keys().filter(|(t, _)| *t == table).count(),
            },
            _ => Pred::OwnExists { table },
        };
        let owner = rng.index(n_txns);
        let idx = templates.len();
        templates.push((pred, owner));
        txns[owner].active.push(idx);
    }

    Workload { txns, templates }
}

/// Run the inference over the workload's derived footprints.
fn infer(w: &Workload) -> (AssertionRegistry, acc_core::InterferenceTables) {
    let mut reg = AssertionRegistry::new();
    for (pred, _) in &w.templates {
        reg.define(format!("{pred:?}"), pred.footprint(), None);
    }
    let mut inf = Inference::new(&reg);
    for txn in &w.txns {
        for step in &txn.steps {
            inf = inf.step(StepFootprint::new(
                step.step_type,
                format!("{:?}", step.step_type),
                step.ops.iter().map(Op::footprint).collect(),
            ));
        }
        if let Some(comp) = txn.comp {
            inf = inf.step(StepFootprint::new(
                comp,
                format!("{comp:?} (comp)"),
                txn.steps
                    .iter()
                    .flat_map(|s| s.ops.iter())
                    .map(Op::comp_footprint)
                    .collect(),
            ));
        }
    }
    let (tables, _) = inf.build();
    (reg, tables)
}

/// One scheduled slot: `(txn index, step index)`; step index == steps.len()
/// means the compensation step.
type Schedule = Vec<(usize, usize)>;

fn enumerate_schedules(lens: &[usize]) -> Vec<Schedule> {
    let mut out = Vec::new();
    let mut progress = vec![0usize; lens.len()];
    let mut cur = Vec::new();
    fn rec(lens: &[usize], progress: &mut Vec<usize>, cur: &mut Schedule, out: &mut Vec<Schedule>) {
        if lens.iter().enumerate().all(|(i, &l)| progress[i] == l) {
            out.push(cur.clone());
            return;
        }
        for i in 0..lens.len() {
            if progress[i] < lens[i] {
                cur.push((i, progress[i]));
                progress[i] += 1;
                rec(lens, progress, cur, out);
                progress[i] -= 1;
                cur.pop();
            }
        }
    }
    rec(lens, &mut progress, &mut cur, &mut out);
    out
}

#[derive(Default)]
struct Tally {
    admitted: u64,
    blocked: u64,
    nonvacuous_checks: u64,
    violations: Vec<String>,
}

/// Simulate one schedule under the inferred tables.
fn run_schedule(
    w: &Workload,
    tables: &acc_core::InterferenceTables,
    schedule: &Schedule,
    init: &State,
    serial_finals: &[State],
    tally: &mut Tally,
) {
    let n = w.txns.len();
    let total_slots: Vec<usize> = w
        .txns
        .iter()
        .map(|t| t.steps.len() + usize::from(t.comp.is_some()))
        .collect();
    let mut state = init.clone();
    let mut started = vec![false; n];
    let mut done = vec![0usize; n];
    let mut undo: Vec<Vec<Undo>> = vec![Vec::new(); n];

    for &(ti, si) in schedule {
        let txn = &w.txns[ti];
        let is_comp = si == txn.steps.len();
        let step_type = if is_comp {
            txn.comp.expect("comp slot implies comp step")
        } else {
            txn.steps[si].step_type
        };

        // Admission: the step must be compatible with every guard and
        // template active in another live transaction.
        for (bi, other) in w.txns.iter().enumerate() {
            if bi == ti || !started[bi] || done[bi] == total_slots[bi] {
                continue;
            }
            if tables.write_interferes(step_type, DIRTY) {
                tally.blocked += 1;
                return;
            }
            for &tmpl in &other.active {
                let id = acc_common::AssertionTemplateId(1 + tmpl as u32);
                if tables.write_interferes(step_type, id) {
                    tally.blocked += 1;
                    return;
                }
            }
        }

        // Assertion preservation: templates of other live transactions that
        // hold before the step must hold after it.
        let mut held: Vec<(usize, usize)> = Vec::new();
        for (bi, other) in w.txns.iter().enumerate() {
            if bi == ti || !started[bi] || done[bi] == total_slots[bi] {
                continue;
            }
            for &tmpl in &other.active {
                let (pred, owner) = &w.templates[tmpl];
                if pred.eval(&state, w.txns[*owner].token) {
                    held.push((tmpl, *owner));
                }
            }
        }

        started[ti] = true;
        if is_comp {
            for u in undo[ti].iter().rev() {
                exec_undo(u, &mut state);
            }
        } else {
            for op in &txn.steps[si].ops {
                let u = exec_op(op, txn.token, &mut state);
                undo[ti].push(u);
            }
        }
        done[ti] += 1;

        for (tmpl, owner) in held {
            tally.nonvacuous_checks += 1;
            let (pred, _) = &w.templates[tmpl];
            if !pred.eval(&state, w.txns[owner].token) {
                tally.violations.push(format!(
                    "step {step_type:?} of txn {ti} falsified active template \
                     {pred:?} (owner txn {owner}) despite an all-clear matrix cell"
                ));
                return;
            }
        }
    }

    tally.admitted += 1;
    if !serial_finals.contains(&state) {
        tally.violations.push(format!(
            "admitted interleaving {schedule:?} produced a state matching no \
             serial order of the committed transactions"
        ));
    }
}

/// Final states of every serial permutation of the transactions
/// (compensated transactions are a net no-op serially).
fn serial_finals(w: &Workload, init: &State) -> Vec<State> {
    fn perms(n: usize) -> Vec<Vec<usize>> {
        if n == 1 {
            return vec![vec![0]];
        }
        let mut out = Vec::new();
        for p in perms(n - 1) {
            for i in 0..=p.len() {
                let mut q = p.clone();
                q.insert(i, n - 1);
                out.push(q);
            }
        }
        out
    }
    perms(w.txns.len())
        .into_iter()
        .map(|order| {
            let mut state = init.clone();
            for ti in order {
                let txn = &w.txns[ti];
                if txn.comp.is_some() {
                    continue; // compensated: net no-op
                }
                for step in &txn.steps {
                    for op in &step.ops {
                        exec_op(op, txn.token, &mut state);
                    }
                }
            }
            state
        })
        .collect()
}

fn check_workload(seed: u64, tally: &mut Tally) {
    let mut rng = SeededRng::new(seed ^ 0x1f3a_c0de);
    let w = gen_workload(&mut rng);
    let (_reg, tables) = infer(&w);
    let init = initial_state(w.txns.len());
    let finals = serial_finals(&w, &init);
    let lens: Vec<usize> = w
        .txns
        .iter()
        .map(|t| t.steps.len() + usize::from(t.comp.is_some()))
        .collect();
    for schedule in enumerate_schedules(&lens) {
        run_schedule(&w, &tables, &schedule, &init, &finals, tally);
        if !tally.violations.is_empty() {
            return;
        }
    }
}

#[test]
fn five_hundred_random_workloads_admit_only_sound_interleavings() {
    let mut tally = Tally::default();
    for seed in 0..520u64 {
        check_workload(seed, &mut tally);
        assert!(
            tally.violations.is_empty(),
            "soundness violation at seed {seed}: {}",
            tally.violations.join("\n")
        );
    }
    // Non-vacuity: the generator must produce real concurrency, real
    // blocking, and real assertion checks — otherwise the pass is hollow.
    println!(
        "admitted {} / blocked {} / nonvacuous preservation checks {}",
        tally.admitted, tally.blocked, tally.nonvacuous_checks
    );
    assert!(tally.admitted > 3_000, "admitted {}", tally.admitted);
    assert!(tally.blocked > 5_000, "blocked {}", tally.blocked);
    assert!(
        tally.nonvacuous_checks > 3_000,
        "nonvacuous checks {}",
        tally.nonvacuous_checks
    );
}

#[test]
fn delta_over_uncommitted_assignment_is_blocked_end_to_end() {
    // The scenario the whole-system delta rule exists for: B assigns x
    // (uncommitted), A's delta lands on top, B aborts and compensation
    // restores the pre-image — wiping A's delta. The inference must block
    // the interleaving; the oracle proves that blocking it is what keeps
    // every admitted schedule serializable.
    let w = Workload {
        txns: vec![
            MiniTxn {
                token: 0,
                steps: vec![MiniStep {
                    step_type: StepTypeId(1),
                    ops: vec![Op::Add {
                        table: 0,
                        key: 0,
                        col: 0,
                        amount: M,
                    }],
                }],
                comp: None,
                active: Vec::new(),
            },
            MiniTxn {
                token: 1,
                steps: vec![
                    MiniStep {
                        step_type: StepTypeId(11),
                        ops: vec![Op::Set {
                            table: 0,
                            key: 0,
                            col: 0,
                            val: 5 * M,
                        }],
                    },
                    MiniStep {
                        step_type: StepTypeId(12),
                        ops: vec![Op::Add {
                            table: 0,
                            key: 1,
                            col: 1,
                            amount: M,
                        }],
                    },
                ],
                comp: Some(StepTypeId(19)),
                active: Vec::new(),
            },
        ],
        templates: Vec::new(),
    };
    let (_reg, tables) = infer(&w);
    // A's delta is poisoned by B's assignment on the same column…
    assert!(tables.write_interferes(StepTypeId(1), DIRTY));
    // …and B's assignment is not guard-safe either.
    assert!(tables.write_interferes(StepTypeId(11), DIRTY));
    let init = initial_state(2);
    let finals = serial_finals(&w, &init);
    let mut tally = Tally::default();
    for schedule in enumerate_schedules(&[1, 3]) {
        run_schedule(&w, &tables, &schedule, &init, &finals, &mut tally);
    }
    assert!(tally.violations.is_empty(), "{:?}", tally.violations);
    // Only the two fully serial schedules survive admission.
    assert_eq!(tally.admitted, 2);
    assert_eq!(tally.blocked, 2);
}
