//! Edge cases of the table-backed interference oracle — pinned so nobody
//! "optimises" the conservative defaults away.
//!
//! Three situations the §4 analysis never exercises on the happy path:
//!
//! * a **step type the analysis never saw** (and the explicit `LEGACY_STEP`
//!   sentinel) — both must stay maximally conservative on writes, while
//!   reads only block against guard templates (reads cannot falsify a
//!   non-guard predicate, §3.3),
//! * an **empty template set** — a registry holding only the built-in
//!   `DIRTY` guard, including lookups for template ids past the end of the
//!   row (a template defined in a later epoch, or simply garbage),
//! * a **template whose footprint references no table** — it overlaps
//!   nothing, so every analyzed writer is safe against it by footprint;
//!   that only goes through if it is not declared a guard.

use acc_common::ids::LEGACY_STEP;
use acc_common::{AssertionTemplateId, StepTypeId, TableId};
use acc_core::{Analysis, AssertionRegistry, StepFootprint, TableFootprint, DIRTY};
use acc_lockmgr::{InterferenceOracle, NoInterference, TotalInterference};

const T_ORDERS: TableId = TableId(0);
const T_STOCK: TableId = TableId(1);

/// One analyzed writer over `orders(0,1)`, one template reading `orders(1)`.
fn small_system() -> (AssertionRegistry, StepTypeId, AssertionTemplateId) {
    let mut reg = AssertionRegistry::new();
    let tmpl = reg.define(
        "orders column 1 is consistent",
        vec![TableFootprint::columns(T_ORDERS, [1])],
        None,
    );
    let writer = StepTypeId(7);
    (reg, writer, tmpl)
}

#[test]
fn unknown_step_type_is_conservative_on_writes_and_guards_on_reads() {
    let (reg, writer, tmpl) = small_system();
    let (tables, _) = Analysis::new(&reg)
        .step(StepFootprint::new(
            writer,
            "writer",
            vec![TableFootprint::columns(T_ORDERS, [0, 1])],
        ))
        .declare_safe(writer, DIRTY, "test: single-row blind write")
        .build();

    // A step type the analysis never registered: every write lookup is
    // interference, no matter the template — even ones the analyzed writer
    // was declared safe against.
    let unknown = StepTypeId(99);
    assert!(!tables.is_analyzed(unknown));
    assert!(tables.write_interferes(unknown, DIRTY));
    assert!(tables.write_interferes(unknown, tmpl));
    // The explicit legacy sentinel behaves identically.
    assert!(tables.write_interferes(LEGACY_STEP, DIRTY));
    assert!(tables.write_interferes(LEGACY_STEP, tmpl));

    // Reads: unanalyzed steps block on guards (they might expose uncommitted
    // data to themselves), but a non-guard template can never be falsified
    // by a read — not even a legacy transaction's.
    assert!(tables.read_interferes(unknown, DIRTY));
    assert!(tables.read_interferes(LEGACY_STEP, DIRTY));
    assert!(!tables.read_interferes(unknown, tmpl));
    assert!(!tables.read_interferes(LEGACY_STEP, tmpl));

    // Sanity: the analyzed writer is exactly as declared.
    assert!(tables.is_analyzed(writer));
    assert!(!tables.write_interferes(writer, DIRTY));
    assert!(tables.write_interferes(writer, tmpl));
    assert!(!tables.read_interferes(writer, DIRTY));
}

#[test]
fn empty_template_set_still_guards_dirty_and_rejects_out_of_range_ids() {
    // Registry with nothing but the built-in DIRTY guard.
    let reg = AssertionRegistry::new();
    assert_eq!(reg.len(), 1);
    let step = StepTypeId(3);
    let (tables, decisions) = Analysis::new(&reg)
        .step(StepFootprint::new(
            step,
            "lonely writer",
            vec![TableFootprint::rows(T_STOCK, [0])],
        ))
        .build();

    // Exactly one decision: the writer against DIRTY, conservatively true —
    // footprints cannot prove an overwrite of uncommitted data safe.
    assert_eq!(decisions.len(), 1);
    assert!(decisions[0].interferes);
    assert_eq!(tables.n_templates(), 1);
    assert!(tables.write_interferes(step, DIRTY));
    assert!(!tables.read_interferes(step, DIRTY)); // analyzed, not a committed-reader

    // Template ids beyond the analyzed row (defined after this epoch's
    // analysis ran, or corrupt): write lookups fall back to interference,
    // read lookups stay false because the id is in no guard set.
    let departed = AssertionTemplateId(7);
    assert!(tables.write_interferes(step, departed));
    assert!(!tables.read_interferes(step, departed));
    // Same for an unanalyzed step against the out-of-range id.
    assert!(tables.write_interferes(StepTypeId(50), departed));
    assert!(!tables.read_interferes(StepTypeId(50), departed));
}

#[test]
fn declared_safe_against_dirty_survives_an_empty_template_set() {
    let reg = AssertionRegistry::new();
    let step = StepTypeId(4);
    let (tables, decisions) = Analysis::new(&reg)
        .step(StepFootprint::new(
            step,
            "blind insert",
            vec![TableFootprint::rows(T_STOCK, [])],
        ))
        .declare_safe(step, DIRTY, "test: inserts never touch claimed rows")
        .build();
    assert_eq!(decisions.len(), 1);
    assert!(!decisions[0].interferes);
    assert!(decisions[0].why.contains("declared safe"));
    assert!(!tables.write_interferes(step, DIRTY));
}

#[test]
fn template_with_no_footprint_conflicts_with_nothing_analyzed() {
    let mut reg = AssertionRegistry::new();
    // A template that reads no table at all: a tautology, or an assertion
    // over state outside the database. No write footprint can overlap it.
    let vacuous = reg.define("vacuous: no table referenced", vec![], None);
    let writer = StepTypeId(11);
    let (tables, decisions) = Analysis::new(&reg)
        .step(StepFootprint::new(
            writer,
            "writer",
            vec![
                TableFootprint::rows(T_ORDERS, [0, 1, 2]),
                TableFootprint::rows(T_STOCK, [0]),
            ],
        ))
        .build();

    // 2 templates (DIRTY + vacuous) × 1 step.
    assert_eq!(decisions.len(), 2);
    // Every analyzed write is safe against the footprint-less template...
    assert!(!tables.write_interferes(writer, vacuous));
    let d = decisions
        .iter()
        .find(|d| d.template == vacuous)
        .expect("decision for the vacuous template");
    assert!(!d.interferes);
    assert!(d.why.contains("disjoint"));
    // ...while DIRTY stays conservatively blocked.
    assert!(tables.write_interferes(writer, DIRTY));
    // Reads never conflict with a non-guard template, and unanalyzed writes
    // stay conservative even against the vacuous template.
    assert!(!tables.read_interferes(writer, vacuous));
    assert!(!tables.read_interferes(LEGACY_STEP, vacuous));
    assert!(tables.write_interferes(LEGACY_STEP, vacuous));
}

#[test]
fn committed_reader_blocks_on_guards_but_not_plain_templates() {
    let (reg, writer, tmpl) = small_system();
    let reader = StepTypeId(8);
    let (tables, _) = Analysis::new(&reg)
        .step(StepFootprint::new(
            writer,
            "writer",
            vec![TableFootprint::columns(T_ORDERS, [0])],
        ))
        .step(StepFootprint::new(reader, "reader", vec![]))
        .require_committed_reads(reader)
        .build();
    // The committed-reader blocks on the guard like an unanalyzed step...
    assert!(tables.read_interferes(reader, DIRTY));
    // ...but still never on a non-guard template.
    assert!(!tables.read_interferes(reader, tmpl));
    // Its peer without the requirement reads freely.
    assert!(!tables.read_interferes(writer, DIRTY));
}

#[test]
fn canned_oracles_are_total_on_arbitrary_ids() {
    // The canned endpoints of the oracle lattice must hold for ids far
    // outside any real analysis — they are used as harness stand-ins.
    for step in [StepTypeId(0), StepTypeId(12345), LEGACY_STEP] {
        for tmpl in [
            DIRTY,
            AssertionTemplateId(9999),
            AssertionTemplateId(u32::MAX),
        ] {
            assert!(!NoInterference.write_interferes(step, tmpl));
            assert!(!NoInterference.read_interferes(step, tmpl));
            assert!(TotalInterference.write_interferes(step, tmpl));
            assert!(TotalInterference.read_interferes(step, tmpl));
        }
    }
}
