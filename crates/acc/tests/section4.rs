//! End-to-end reproduction of the paper's §4 order-processing example under
//! the real one-level ACC.
//!
//! Schema (§4, with TPC-C-style numbered order lines so `bill` can use point
//! reads): orders, stock, prices, orderlines, plus the
//! `current_order_number` counter.
//!
//! What the tests demonstrate, mapped to the paper:
//!
//! * instances of `new_order` interleave arbitrarily (§4: "the steps of
//!   instances of new_order can be allowed to interleave arbitrarily");
//! * `bill` cannot be interleaved within a `new_order` on the same order but
//!   runs freely against other orders (§4: "bill need be delayed only when
//!   the corresponding new_order is executing") — enforced here by
//!   compensation protection at item granularity;
//! * unanalyzed (legacy 2PL) transactions never observe uncommitted state
//!   (§3.3);
//! * compensation returns stock and removes the order (§4), and the
//!   consistency constraint holds at quiescence.

use acc_common::{Decimal, Error, Result, StepTypeId, TableId, TxnTypeId, Value};
use acc_core::{
    Acc, Analysis, AssertionInstance, AssertionRegistry, StepFootprint, StepSpec, TableFootprint,
    TxnSpec, DIRTY,
};
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::{
    run, AbortReason, RunOutcome, SharedDb, StepCtx, StepOutcome, TwoPhase, TxnProgram, WaitMode,
};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const COUNTERS: TableId = TableId(0);
const ORDERS: TableId = TableId(1);
const STOCK: TableId = TableId(2);
const PRICES: TableId = TableId(3);
const LINES: TableId = TableId(4);

const NO_S1: StepTypeId = StepTypeId(1);
const NO_S2: StepTypeId = StepTypeId(2);
const BILL_S: StepTypeId = StepTypeId(3);
const NO_CS: StepTypeId = StepTypeId(4);

const TY_NEW_ORDER: TxnTypeId = TxnTypeId(1);
const TY_BILL: TxnTypeId = TxnTypeId(2);

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("counters")
            .column("id", ColumnType::Int)
            .column("value", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    c.add_table(
        TableSchema::builder("orders")
            .column("order_id", ColumnType::Int)
            .column("customer_id", ColumnType::Int)
            .column("num_items", ColumnType::Int)
            .column("price", ColumnType::Decimal)
            .key(&["order_id"])
            .rows_per_page(1)
            .build(),
    );
    c.add_table(
        TableSchema::builder("stock")
            .column("item_id", ColumnType::Int)
            .column("s_level", ColumnType::Int)
            .key(&["item_id"])
            .rows_per_page(1)
            .build(),
    );
    c.add_table(
        TableSchema::builder("prices")
            .column("item_id", ColumnType::Int)
            .column("price", ColumnType::Decimal)
            .key(&["item_id"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("orderlines")
            .column("order_id", ColumnType::Int)
            .column("line_no", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .column("ordered", ColumnType::Int)
            .column("filled", ColumnType::Int)
            .key(&["order_id", "line_no"])
            .rows_per_page(1)
            .build(),
    );
    c
}

struct System {
    shared: Arc<SharedDb>,
    acc: Arc<Acc>,
    registry: Arc<AssertionRegistry>,
    i1: acc_common::AssertionTemplateId,
}

/// Build registry, analysis, policy and a populated database.
fn system(n_items: i64, stock_each: i64) -> System {
    let mut reg = AssertionRegistry::new();
    // I1(o): orders[o].num_items equals the number of orderlines of o.
    let i1 = reg.define(
        "I1-order-line-count",
        vec![
            TableFootprint::columns(ORDERS, [2]),
            TableFootprint::rows(LINES, []),
        ],
        Some(Arc::new(|db: &Database, params: &[Value]| {
            let o = params[0].as_int().expect("order id param");
            let Some((_, order)) = db.table(ORDERS).unwrap().get(&Key::ints(&[o])) else {
                return false;
            };
            let n = db
                .table(LINES)
                .unwrap()
                .scan_prefix(&Key::ints(&[o]))
                .count() as i64;
            order.int(2) == n
        })),
    );
    // New-order's loop invariant over its own order (not evaluated here;
    // exercised via the TPC-C harness later).
    let no_loop = reg.define(
        "new-order-loop",
        vec![
            TableFootprint::columns(ORDERS, [2]),
            TableFootprint::rows(LINES, []),
        ],
        None,
    );

    let (tables, _decisions) = Analysis::new(&reg)
        .step(StepFootprint::new(
            NO_S1,
            "new-order: counter + header",
            vec![
                TableFootprint::columns(COUNTERS, [1]),
                TableFootprint::rows(ORDERS, [0, 1, 2, 3]),
            ],
        ))
        .step(StepFootprint::new(
            NO_S2,
            "new-order: one orderline",
            vec![
                TableFootprint::rows(LINES, [0, 1, 2, 3, 4]),
                TableFootprint::columns(STOCK, [1]),
            ],
        ))
        .step(StepFootprint::new(
            BILL_S,
            "bill",
            vec![TableFootprint::columns(ORDERS, [3])],
        ))
        .step(StepFootprint::new(
            NO_CS,
            "new-order compensation",
            vec![
                TableFootprint::rows(ORDERS, []),
                TableFootprint::rows(LINES, []),
                TableFootprint::columns(STOCK, [1]),
            ],
        ))
        // §4's semantic declarations: new-order instances interleave freely.
        .declare_safe(
            NO_S1,
            no_loop,
            "order ids are unique; a new header does not affect another order's lines",
        )
        .declare_safe(
            NO_S2,
            no_loop,
            "each instance inserts lines for its own order; stock decrements commute",
        )
        .declare_safe(
            NO_CS,
            no_loop,
            "compensation removes only its own order's rows; restock commutes",
        )
        .declare_safe(
            NO_S1,
            DIRTY,
            "counter increments commute and are never compensated",
        )
        .declare_safe(
            NO_S2,
            DIRTY,
            "stock decrements commute; line inserts create fresh keys",
        )
        .declare_safe(
            NO_CS,
            DIRTY,
            "restock increments commute; deletes touch own keys only",
        )
        .build();

    let registry = Arc::new(reg);
    let acc = Arc::new(Acc::new(
        Arc::clone(&registry),
        vec![
            TxnSpec {
                txn_type: TY_NEW_ORDER,
                name: "new-order".into(),
                steps: vec![
                    StepSpec {
                        step_type: NO_S1,
                        active: vec![no_loop],
                    },
                    StepSpec {
                        step_type: NO_S2,
                        active: vec![no_loop],
                    },
                ],
                overflow: Some(1),
                comp_step: Some(NO_CS),
                guard: DIRTY,
                version_safe: false,
            },
            TxnSpec {
                txn_type: TY_BILL,
                name: "bill".into(),
                steps: vec![StepSpec {
                    step_type: BILL_S,
                    active: vec![i1],
                }],
                overflow: None,
                comp_step: None,
                guard: DIRTY,
                version_safe: false,
            },
        ],
    ));

    let cat = catalog();
    let mut db = Database::new(&cat);
    db.table_mut(COUNTERS)
        .unwrap()
        .insert(Row::from(vec![Value::Int(0), Value::Int(1)]))
        .unwrap();
    for i in 0..n_items {
        db.table_mut(STOCK)
            .unwrap()
            .insert(Row::from(vec![Value::Int(i), Value::Int(stock_each)]))
            .unwrap();
        db.table_mut(PRICES)
            .unwrap()
            .insert(Row::from(vec![
                Value::Int(i),
                Value::from(Decimal::from_int(i + 1)),
            ]))
            .unwrap();
    }
    let shared =
        Arc::new(SharedDb::new(db, Arc::new(tables)).with_wait_cap(Duration::from_secs(10)));
    System {
        shared,
        acc,
        registry,
        i1,
    }
}

struct NewOrder {
    cust: i64,
    items: Vec<(i64, i64)>, // (item_id, qty)
    o_num: Option<i64>,
    filled: Vec<i64>,
    abort_at_last: bool,
    pause: Option<Arc<Barrier>>, // fires twice between step 0 and step 1
}

impl NewOrder {
    fn new(cust: i64, items: Vec<(i64, i64)>) -> Self {
        let n = items.len();
        NewOrder {
            cust,
            items,
            o_num: None,
            filled: vec![0; n],
            abort_at_last: false,
            pause: None,
        }
    }
}

impl TxnProgram for NewOrder {
    fn txn_type(&self) -> TxnTypeId {
        TY_NEW_ORDER
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        if i == 0 {
            // Read the counter value and bump it in one locked update.
            let counter = ctx
                .read_for_update(COUNTERS, &Key::ints(&[0]))?
                .ok_or_else(|| Error::NotFound("counter".into()))?;
            let o_num = counter.int(1);
            ctx.update_key(COUNTERS, &Key::ints(&[0]), |r| {
                r.set(1, Value::Int(o_num + 1));
            })?;
            self.o_num = Some(o_num);
            ctx.insert(
                ORDERS,
                Row::from(vec![
                    Value::Int(o_num),
                    Value::Int(self.cust),
                    Value::Int(self.items.len() as i64),
                    Value::Null,
                ]),
            )?;
            return Ok(StepOutcome::Continue);
        }

        let idx = (i - 1) as usize;
        if let Some(b) = &self.pause {
            if idx == 0 {
                b.wait();
                b.wait();
            }
        }
        let last = idx + 1 == self.items.len();
        if last && self.abort_at_last {
            return Ok(StepOutcome::Abort);
        }
        let (item, qty) = self.items[idx];
        let o_num = self.o_num.expect("step 0 ran");
        let stock_row = ctx
            .read_for_update(STOCK, &Key::ints(&[item]))?
            .ok_or_else(|| Error::NotFound(format!("stock item {item}")))?;
        let fill = qty.min(stock_row.int(1));
        ctx.update_key(STOCK, &Key::ints(&[item]), |r| {
            let level = r.int(1);
            r.set(1, Value::Int(level - fill));
        })?;
        self.filled[idx] = fill;
        ctx.insert(
            LINES,
            Row::from(vec![
                Value::Int(o_num),
                Value::Int(i as i64), // line_no = step index
                Value::Int(item),
                Value::Int(qty),
                Value::Int(fill),
            ]),
        )?;
        Ok(if last {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        let o_num = self.o_num.expect("at least step 0 completed");
        // Lines inserted by completed steps 1..steps_completed carry line
        // numbers 1..steps_completed.
        for line_no in (1..steps_completed as i64).rev() {
            if let Some(line) = ctx.read_for_update(LINES, &Key::ints(&[o_num, line_no]))? {
                let item = line.int(2);
                let fill = line.int(4);
                ctx.update_key(STOCK, &Key::ints(&[item]), |r| {
                    let level = r.int(1);
                    r.set(1, Value::Int(level + fill));
                })?;
                ctx.delete_key(LINES, &Key::ints(&[o_num, line_no]))?;
            }
        }
        ctx.delete_key(ORDERS, &Key::ints(&[o_num]))?;
        Ok(())
    }

    fn work_area(&self) -> Vec<u8> {
        self.o_num.unwrap_or(-1).to_le_bytes().to_vec()
    }
}

struct Bill {
    o_num: i64,
    total: Option<Decimal>,
}

impl TxnProgram for Bill {
    fn txn_type(&self) -> TxnTypeId {
        TY_BILL
    }

    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let order = ctx
            .read_for_update(ORDERS, &Key::ints(&[self.o_num]))?
            .ok_or_else(|| Error::NotFound(format!("order {}", self.o_num)))?;
        let n = order.int(2);
        let mut total = Decimal::ZERO;
        for line_no in 1..=n {
            let line = ctx.read_existing(LINES, &Key::ints(&[self.o_num, line_no]))?;
            let price = ctx
                .read_existing(PRICES, &Key::ints(&[line.int(2)]))?
                .decimal(1);
            total += price.mul_int(line.int(4));
        }
        ctx.update_key(ORDERS, &Key::ints(&[self.o_num]), |r| {
            r.set(3, Value::from(total));
        })?;
        self.total = Some(total);
        Ok(StepOutcome::Done)
    }
}

/// Quiescence check: every order satisfies I1 and total stock+fills balance.
fn check_consistency(sys: &System, n_items: i64, stock_each: i64) {
    let db = sys.shared.snapshot_db();
    let orders: Vec<i64> = db
        .table(ORDERS)
        .unwrap()
        .iter()
        .map(|(_, r)| r.int(0))
        .collect();
    for o in orders {
        let inst = AssertionInstance {
            template: sys.i1,
            params: vec![Value::Int(o)],
        };
        assert!(sys.registry.check(&db, &inst), "I1 violated for order {o}");
    }
    // Stock conservation: initial = remaining + sum(filled).
    let filled: i64 = db.table(LINES).unwrap().iter().map(|(_, r)| r.int(4)).sum();
    let remaining: i64 = db.table(STOCK).unwrap().iter().map(|(_, r)| r.int(1)).sum();
    assert_eq!(remaining + filled, n_items * stock_each);
    assert_eq!(sys.shared.total_grants(), 0, "all locks drained");
}

#[test]
fn concurrent_new_orders_satisfy_invariants() {
    let sys = system(6, 100);
    let mut handles = Vec::new();
    for t in 0..6i64 {
        let shared = Arc::clone(&sys.shared);
        let acc = Arc::clone(&sys.acc);
        handles.push(std::thread::spawn(move || {
            let items: Vec<(i64, i64)> = (0..4).map(|k| ((t + k) % 6, 5)).collect();
            let mut p = NewOrder::new(t, items);
            run(&shared, &*acc, &mut p, WaitMode::Block).unwrap()
        }));
    }
    for h in handles {
        assert!(matches!(h.join().unwrap(), RunOutcome::Committed { .. }));
    }
    check_consistency(&sys, 6, 100);
    let db = sys.shared.snapshot_db();
    assert_eq!(db.table(ORDERS).unwrap().len(), 6);
    assert_eq!(db.table(LINES).unwrap().len(), 24);
}

#[test]
fn aborting_new_order_compensates() {
    let sys = system(3, 50);
    let mut p = NewOrder::new(9, vec![(0, 10), (1, 10), (2, 10)]);
    p.abort_at_last = true;
    let out = run(&sys.shared, &*sys.acc, &mut p, WaitMode::Block).unwrap();
    assert_eq!(out, RunOutcome::RolledBack(AbortReason::UserAbort));
    check_consistency(&sys, 3, 50);
    let db = sys.shared.snapshot_db();
    assert_eq!(db.table(ORDERS).unwrap().len(), 0);
    assert_eq!(db.table(LINES).unwrap().len(), 0);
    for (_, r) in db.table(STOCK).unwrap().iter() {
        assert_eq!(r.int(1), 50, "stock fully restored");
    }
    // The order number was consumed (compensation does not undo the
    // counter — its increments commute).
    let counter = db
        .table(COUNTERS)
        .unwrap()
        .get(&Key::ints(&[0]))
        .unwrap()
        .1
        .int(1);
    assert_eq!(counter, 2);
}

#[test]
fn bill_waits_for_inflight_order_but_not_others() {
    let sys = system(4, 100);

    // Order 1: completed.
    let mut done = NewOrder::new(1, vec![(0, 2), (1, 3)]);
    run(&sys.shared, &*sys.acc, &mut done, WaitMode::Block).unwrap();

    // Order 2: in flight, paused between its header step and its first line.
    let barrier = Arc::new(Barrier::new(2));
    let shared = Arc::clone(&sys.shared);
    let acc = Arc::clone(&sys.acc);
    let b = Arc::clone(&barrier);
    let h = std::thread::spawn(move || {
        let mut p = NewOrder::new(2, vec![(2, 1), (3, 1)]);
        p.pause = Some(b);
        run(&shared, &*acc, &mut p, WaitMode::Block).unwrap()
    });
    barrier.wait(); // order 2's header is in, uncommitted

    // bill(in-flight order 2) must be delayed: its assertional lock on the
    // order's row is refused while a compensatable writer pins it.
    let mut bill_inflight = Bill {
        o_num: 2,
        total: None,
    };
    let err = run(&sys.shared, &*sys.acc, &mut bill_inflight, WaitMode::Fail).unwrap_err();
    assert!(
        matches!(err, Error::WouldBlock { .. }),
        "expected a block, got {err:?}"
    );

    // bill(completed order 1) runs freely in the gap.
    let mut bill_done = Bill {
        o_num: 1,
        total: None,
    };
    let out = run(&sys.shared, &*sys.acc, &mut bill_done, WaitMode::Fail).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    // price(0)=1, price(1)=2 → 2*1 + 3*2 = 8.
    assert_eq!(bill_done.total, Some(Decimal::from_int(8)));

    barrier.wait(); // let order 2 finish
    assert!(matches!(h.join().unwrap(), RunOutcome::Committed { .. }));

    // Now billing order 2 succeeds.
    let mut bill2 = Bill {
        o_num: 2,
        total: None,
    };
    let out = run(&sys.shared, &*sys.acc, &mut bill2, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    check_consistency(&sys, 4, 100);
}

#[test]
fn legacy_transaction_is_isolated_from_inflight_steps() {
    let sys = system(2, 10);

    let barrier = Arc::new(Barrier::new(2));
    let shared = Arc::clone(&sys.shared);
    let acc = Arc::clone(&sys.acc);
    let b = Arc::clone(&barrier);
    let h = std::thread::spawn(move || {
        let mut p = NewOrder::new(5, vec![(0, 4), (1, 4)]);
        p.pause = Some(b);
        run(&shared, &*acc, &mut p, WaitMode::Block).unwrap()
    });
    barrier.wait(); // header inserted, uncommitted

    // An unanalyzed 2PL reader of the orders table must not see the
    // uncommitted header: its read blocks on the DIRTY pin.
    struct LegacyScan {
        seen: usize,
    }
    impl TxnProgram for LegacyScan {
        fn txn_type(&self) -> TxnTypeId {
            TxnTypeId(99)
        }
        fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
            // Point read of the in-flight order's row.
            self.seen = usize::from(ctx.read(ORDERS, &Key::ints(&[1]))?.is_some());
            Ok(StepOutcome::Done)
        }
    }
    let mut legacy = LegacyScan { seen: 0 };
    let err = run(&sys.shared, &TwoPhase, &mut legacy, WaitMode::Fail).unwrap_err();
    assert!(matches!(err, Error::WouldBlock { .. }));

    barrier.wait();
    assert!(matches!(h.join().unwrap(), RunOutcome::Committed { .. }));

    // After commit the legacy reader sees the order.
    let mut legacy = LegacyScan { seen: 0 };
    let out = run(&sys.shared, &TwoPhase, &mut legacy, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    assert_eq!(legacy.seen, 1);
}

#[test]
fn partial_fills_interleave_non_serializably_but_correctly() {
    // §3.1's stock-trading flavour: two orders compete for limited stock;
    // interleaved fills can produce allocations no serial schedule would,
    // yet every postcondition ("filled = min(requested, available) at
    // purchase time") and the global constraint hold.
    let sys = system(2, 10);
    let mut handles = Vec::new();
    for t in 0..2i64 {
        let shared = Arc::clone(&sys.shared);
        let acc = Arc::clone(&sys.acc);
        handles.push(std::thread::spawn(move || {
            let mut p = NewOrder::new(t, vec![(0, 7), (1, 7)]);
            run(&shared, &*acc, &mut p, WaitMode::Block).unwrap()
        }));
    }
    for h in handles {
        assert!(matches!(h.join().unwrap(), RunOutcome::Committed { .. }));
    }
    check_consistency(&sys, 2, 10);
    let db = sys.shared.snapshot_db();
    // Total filled per item never exceeds available stock.
    for item in 0..2i64 {
        let filled: i64 = db
            .table(LINES)
            .unwrap()
            .iter()
            .filter(|(_, r)| r.int(2) == item)
            .map(|(_, r)| r.int(4))
            .sum();
        assert!(filled <= 10);
    }
}
