//! Automatic interference inference (§3.2, mechanized).
//!
//! [`Analysis`](crate::analysis::Analysis) reproduces the paper's *output* —
//! the designer reads the maximally reduced proof and declares safe pairs by
//! hand. This module reproduces the paper's *method*: given step footprints
//! and assertion templates enriched with the semantic refinements of
//! [`crate::footprint`] ([`Effect`], [`Region`], delta tolerance), it derives
//! the step×template interference matrix for an arbitrary workload, with no
//! escape hatch to declare a pair safe.
//!
//! # Proof obligations
//!
//! For a non-guard template, a write footprint `w` and read footprint `r` of
//! the same table raise an obligation whenever they overlap flatly (shared
//! columns, or both cardinality-changing/-dependent). The obligation is
//! discharged only by one of:
//!
//! 1. **Region disjointness** — the two footprints are confined to provably
//!    disjoint row sets: same-space `Own`×`Own` (distinct instances hold
//!    distinct tokens), `Fresh`×`Own` (fresh keys are unknown to every live
//!    instance), `Fresh`×`Fresh`, or non-intersecting key `Range`s.
//! 2. **Freshness vs. fixed rows** — a `Fresh`-region write against a
//!    non-cardinality read: a column-only predicate depends on fixed,
//!    already-referenced rows, which freshly allocated keys can never be.
//! 3. **Delta tolerance** — a `Delta`-effect write against a read declared
//!    delta-tolerant on the shared columns: commutative deltas preserve the
//!    predicate by declaration (and their compensation is the inverse delta,
//!    so the tolerance survives aborts).
//!
//! Any undischarged obligation makes the pair interfere — the conservative
//! default the paper prescribes when the analysis cannot prove safety.
//!
//! # Guard templates, uniformly
//!
//! Guard templates ([`DIRTY`](crate::assertion::DIRTY) and type-specific
//! guards) have no read footprint; their meaning is "this item carries
//! uncommitted data". A step is safe against *every* guard template exactly
//! when each of its write footprints individually cannot conflict with
//! another transaction's uncommitted state:
//!
//! * `Delta` effect — commutes with the uncommitted write and with its
//!   compensation, **provided** the uncommitted data cannot stem from an
//!   assignment: an assigner's compensation restores the saved pre-image,
//!   which would wipe a delta that landed in between. This is a
//!   whole-system side condition ([`delta_poison`]): every registered step
//!   assigning an overlapping column must be fresh-region or provably
//!   region-disjoint from the delta;
//! * `Fresh` region — the rows did not exist, so no other transaction's
//!   uncommitted data can live there;
//! * `Own` region — rows this instance exclusively owns; no other
//!   transaction writes them at all.
//!
//! A step with an *empty* write footprint is trivially guard-safe: this is
//! the uniform derivation of the guard default that the live path already
//! scopes to writing steps (the PR 6 asymmetry) — read-only steps get an
//! all-clear row, which also makes them eligible for coordination-free
//! version reads.
//!
//! Inference is deliberately *incomplete*: hand declarations resting on
//! temporal or item-identity arguments the refinement vocabulary cannot
//! express (TPC-C's "applies only to orders it atomically claimed, which are
//! committed") come out conservatively interfering. [`diff`] makes exactly
//! that gap visible.

use crate::analysis::Decision;
use crate::assertion::AssertionRegistry;
use crate::footprint::{Effect, Region, StepFootprint, TableFootprint};
use crate::tables::InterferenceTables;
use acc_common::{AssertionTemplateId, StepTypeId};
use acc_lockmgr::InterferenceOracle;
use std::collections::{HashMap, HashSet};

/// Row-disjointness proof between two confined footprints, if one exists.
fn region_disjoint(w: &Region, r: &Region) -> Option<String> {
    match (w, r) {
        (Region::Own(a), Region::Own(b)) if a == b => Some(format!(
            "distinct instances hold distinct tokens in key space {}",
            a.0
        )),
        (Region::Fresh(a), Region::Own(b)) | (Region::Own(b), Region::Fresh(a)) if a == b => {
            Some(format!(
                "fresh keys in space {} are unknown to any live instance",
                a.0
            ))
        }
        (Region::Fresh(a), Region::Fresh(b)) if a == b => Some(format!(
            "fresh keys in space {} are allocated once, to one instance",
            a.0
        )),
        (Region::Range(a, b), Region::Range(c, d)) if b <= c || d <= a => Some(format!(
            "key ranges [{a},{b}) and [{c},{d}) do not intersect"
        )),
        _ => None,
    }
}

/// The whole-system side condition on a delta's guard-safety: a commutative
/// delta may land on *uncommitted* data. If that data was left by another
/// step's **assignment**, the assigner's compensation restores the saved
/// pre-image — wiping the delta and breaking serializability. So a delta is
/// only guard-safe when every registered step that *assigns* an overlapping
/// column either writes freshly allocated rows (a delta targets fixed rows
/// it references, which fresh rows cannot be) or is provably region-disjoint
/// from the delta. Deltas over deltas are always fine: inverse-delta
/// compensation commutes.
fn delta_poison(w: &TableFootprint, all: &[StepFootprint]) -> Option<String> {
    for s in all {
        for w2 in &s.writes {
            if w2.effect == Effect::Assign
                && w2.table == w.table
                && w2.columns.intersection(&w.columns).next().is_some()
                && !matches!(w2.region, Region::Fresh(_))
                && region_disjoint(&w.region, &w2.region).is_none()
            {
                return Some(format!(
                    "table {}: delta may land on columns step {:?} leaves assigned-uncommitted, \
                     and an assignment's compensation would wipe the delta",
                    w.table.raw(),
                    s.step_type
                ));
            }
        }
    }
    None
}

/// One write/read footprint obligation: proved (`Ok`) with the discharging
/// argument, or unproved (`Err`) with what blocked it.
fn obligation(w: &TableFootprint, r: &TableFootprint) -> Result<Option<String>, String> {
    if w.table != r.table {
        return Ok(None);
    }
    let card_overlap = w.cardinality && r.cardinality;
    let col_overlap = w.columns.intersection(&r.columns).next().is_some();
    if !card_overlap && !col_overlap {
        return Ok(None);
    }
    if let Some(proof) = region_disjoint(&w.region, &r.region) {
        return Ok(Some(proof));
    }
    if matches!(w.region, Region::Fresh(_)) && !r.cardinality {
        return Ok(Some(format!(
            "table {}: fresh keys cannot be the fixed rows the predicate reads",
            w.table.raw()
        )));
    }
    // Delta writes never change cardinality (validated in `step`), so a
    // delta against a tolerant read leaves only the column channel — which
    // tolerance discharges.
    if w.effect == Effect::Delta && r.delta_tolerant && !card_overlap {
        return Ok(Some(format!(
            "table {}: delta-tolerant predicate is preserved by commutative deltas",
            w.table.raw()
        )));
    }
    Err(format!(
        "table {}: {} overlap not provably disjoint",
        w.table.raw(),
        if card_overlap {
            "cardinality"
        } else {
            "column"
        }
    ))
}

/// The inference builder. Mirrors [`Analysis`](crate::analysis::Analysis)
/// minus `declare_safe`/`declare_interferes`: everything not proved from the
/// footprints is conservative.
pub struct Inference<'a> {
    registry: &'a AssertionRegistry,
    steps: Vec<StepFootprint>,
    committed_readers: Vec<StepTypeId>,
}

impl<'a> Inference<'a> {
    /// Start an inference over the given templates.
    pub fn new(registry: &'a AssertionRegistry) -> Self {
        Inference {
            registry,
            steps: Vec::new(),
            committed_readers: Vec::new(),
        }
    }

    /// Register a step type's write footprint. Panics on a duplicate step
    /// type or on a self-contradictory refinement (a cardinality-changing
    /// `Delta`): these are design-time declaration bugs.
    pub fn step(mut self, fp: StepFootprint) -> Self {
        assert!(
            self.steps.iter().all(|s| s.step_type != fp.step_type),
            "duplicate footprint for {:?}",
            fp.step_type
        );
        for w in &fp.writes {
            assert!(
                !(w.effect == Effect::Delta && w.cardinality),
                "step {:?}, table {:?}: a commutative delta cannot insert or delete rows",
                fp.step_type,
                w.table
            );
        }
        self.steps.push(fp);
        self
    }

    /// Declare that an (analyzed) step type must only read committed data —
    /// a requirement of the step's *specification* (§3.3), not something
    /// footprints could ever derive.
    pub fn require_committed_reads(mut self, step: StepTypeId) -> Self {
        self.committed_readers.push(step);
        self
    }

    /// Run the inference. Panics if a template's read footprint claims a
    /// `Fresh` region (freshness is a write-side notion).
    pub fn build(self) -> (InterferenceTables, Vec<Decision>) {
        let n = self.registry.len();
        for t in self.registry.iter() {
            for r in &t.reads {
                assert!(
                    !matches!(r.region, Region::Fresh(_)),
                    "template {:?}: Fresh is a write-side region",
                    t.id
                );
            }
        }
        let mut write: HashMap<StepTypeId, Vec<bool>> = HashMap::new();
        let mut decisions = Vec::new();
        for step in &self.steps {
            for template in self.registry.iter() {
                let (interferes, why) = if template.read_guard {
                    Self::guard_verdict(step, &self.steps)
                } else {
                    Self::template_verdict(step, &template.reads)
                };
                decisions.push(Decision {
                    step: step.step_type,
                    template: template.id,
                    interferes,
                    why,
                });
            }
        }
        for d in &decisions {
            write.entry(d.step).or_insert_with(|| vec![false; n])[d.template.raw() as usize] =
                d.interferes;
        }
        let read_guards: HashSet<AssertionTemplateId> = self
            .registry
            .iter()
            .filter(|t| t.read_guard)
            .map(|t| t.id)
            .collect();
        let mut tables = InterferenceTables::from_parts(write, read_guards, n);
        for s in &self.committed_readers {
            tables.set_committed_reader(*s);
        }
        (tables, decisions)
    }

    fn guard_verdict(step: &StepFootprint, all: &[StepFootprint]) -> (bool, String) {
        if step.writes.is_empty() {
            return (false, "writes nothing: trivially guard-safe".to_owned());
        }
        let mut proofs = Vec::new();
        for w in &step.writes {
            let proof = match (w.effect, w.region) {
                (Effect::Delta, _) => match delta_poison(w, all) {
                    Some(poison) => {
                        return (
                            true,
                            format!(
                                "conservative default: may overwrite uncommitted data ({poison})"
                            ),
                        )
                    }
                    None => format!(
                        "table {}: commutative delta over delta-only columns \
                         (compensation is the inverse delta)",
                        w.table.raw()
                    ),
                },
                (Effect::Assign, Region::Fresh(ks)) => format!(
                    "table {}: fresh keys in space {} hold no other transaction's uncommitted data",
                    w.table.raw(),
                    ks.0
                ),
                (Effect::Assign, Region::Own(ks)) => format!(
                    "table {}: instance-owned rows in space {} are written by no other transaction",
                    w.table.raw(),
                    ks.0
                ),
                (Effect::Assign, _) => {
                    return (
                        true,
                        format!(
                            "conservative default: may overwrite uncommitted data \
                             (table {}: assignment to unconfined rows)",
                            w.table.raw()
                        ),
                    )
                }
            };
            proofs.push(proof);
        }
        (false, format!("proved guard-safe: {}", proofs.join("; ")))
    }

    fn template_verdict(step: &StepFootprint, reads: &[TableFootprint]) -> (bool, String) {
        let mut proofs = Vec::new();
        for w in &step.writes {
            for r in reads {
                match obligation(w, r) {
                    Ok(None) => {}
                    Ok(Some(p)) => proofs.push(p),
                    Err(blocked) => {
                        return (true, format!("conservative default: {blocked}"));
                    }
                }
            }
        }
        if proofs.is_empty() {
            (false, "disjoint footprints".to_owned())
        } else {
            proofs.dedup();
            (false, format!("proved: {}", proofs.join("; ")))
        }
    }
}

/// Where two interference tables disagree, per matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DiffKind {
    /// The write matrix (`write_interferes`).
    Write,
    /// The read matrix (`read_interferes`).
    Read,
}

/// Cell-for-cell comparison of two oracles over the same step/template grid.
#[derive(Debug, Default)]
pub struct TableDiff {
    /// Cells where `probe` admits what `reference` blocks — for a soundness
    /// differential this set must be empty.
    pub more_permissive: Vec<(StepTypeId, AssertionTemplateId, DiffKind)>,
    /// Cells where `probe` blocks what `reference` admits — the visible cost
    /// of mechanical inference vs. hand proofs.
    pub less_permissive: Vec<(StepTypeId, AssertionTemplateId, DiffKind)>,
}

impl TableDiff {
    /// True when the two tables agree on every probed cell.
    pub fn is_empty(&self) -> bool {
        self.more_permissive.is_empty() && self.less_permissive.is_empty()
    }
}

/// Compare `probe` (e.g. an inferred table) against `reference` (e.g. the
/// hand table) over every (step, template) cell of both matrices.
pub fn diff(
    probe: &dyn InterferenceOracle,
    reference: &dyn InterferenceOracle,
    steps: &[StepTypeId],
    n_templates: usize,
) -> TableDiff {
    let mut out = TableDiff::default();
    for &s in steps {
        for t in 0..n_templates {
            let t = AssertionTemplateId(t as u32);
            for (kind, p, r) in [
                (
                    DiffKind::Write,
                    probe.write_interferes(s, t),
                    reference.write_interferes(s, t),
                ),
                (
                    DiffKind::Read,
                    probe.read_interferes(s, t),
                    reference.read_interferes(s, t),
                ),
            ] {
                match (p, r) {
                    (false, true) => out.more_permissive.push((s, t, kind)),
                    (true, false) => out.less_permissive.push((s, t, kind)),
                    _ => {}
                }
            }
        }
    }
    out
}

/// Render a table as deterministic JSON: steps sorted by id, templates in id
/// order, stable key order, no floating point. Byte-identical across runs of
/// the same analysis — `figures -- infer` is double-run-compared on this.
pub fn matrix_json(
    tables: &InterferenceTables,
    registry: &AssertionRegistry,
    step_names: &[(StepTypeId, &str)],
) -> String {
    fn esc(s: &str) -> String {
        s.replace('\\', "\\\\").replace('"', "\\\"")
    }
    let mut steps: Vec<_> = step_names.to_vec();
    steps.sort_by_key(|(s, _)| *s);
    let mut out = String::from("{\n  \"templates\": [\n");
    let n = registry.len();
    for (i, t) in registry.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"name\": \"{}\", \"guard\": {}}}{}\n",
            t.id.raw(),
            esc(&t.name),
            t.read_guard,
            if i + 1 < n { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"steps\": [\n");
    let m = steps.len();
    for (i, (s, name)) in steps.iter().enumerate() {
        let row: Vec<String> = (0..n)
            .map(|t| {
                tables
                    .write_interferes(*s, AssertionTemplateId(t as u32))
                    .to_string()
            })
            .collect();
        out.push_str(&format!(
            "    {{\"id\": {}, \"name\": \"{}\", \"write\": [{}], \
             \"committed_reader\": {}, \"version_read_safe\": {}}}{}\n",
            s.raw(),
            esc(name),
            row.join(", "),
            tables.is_committed_reader(*s),
            tables.version_read_safe(*s),
            if i + 1 < m { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::DIRTY;
    use crate::footprint::KeySpace;
    use acc_common::TableId;

    const T: TableId = TableId(0);
    const U: TableId = TableId(1);
    const KS: KeySpace = KeySpace(0);

    #[test]
    fn delta_discharges_tolerant_reads_but_not_assignments() {
        let mut reg = AssertionRegistry::new();
        let tol = reg.define(
            "tolerant-sum",
            vec![TableFootprint::columns(T, [1]).tolerates_deltas()],
            None,
        );
        let strict = reg.define("strict-eq", vec![TableFootprint::columns(T, [1])], None);
        let add = StepTypeId(1);
        let set = StepTypeId(2);
        let add_u = StepTypeId(3);
        let (tables, decisions) = Inference::new(&reg)
            .step(StepFootprint::new(
                add,
                "add",
                vec![TableFootprint::columns(T, [1]).delta()],
            ))
            .step(StepFootprint::new(
                set,
                "set",
                vec![TableFootprint::columns(T, [1])],
            ))
            .step(StepFootprint::new(
                add_u,
                "add-other-table",
                vec![TableFootprint::columns(U, [1]).delta()],
            ))
            .build();
        assert!(!tables.write_interferes(add, tol));
        assert!(tables.write_interferes(add, strict));
        assert!(tables.write_interferes(set, tol));
        assert!(tables.write_interferes(set, strict));
        // Assignments are never guard-safe on unconfined rows…
        assert!(tables.write_interferes(set, DIRTY));
        // …and the mere *existence* of `set` poisons `add`'s guard-safety:
        // add could land on set's uncommitted value, and set's compensation
        // (restore the pre-image) would wipe the delta.
        assert!(tables.write_interferes(add, DIRTY));
        // A delta on a column no step assigns is guard-safe.
        assert!(!tables.write_interferes(add_u, DIRTY));
        assert_eq!(decisions.len(), 3 * reg.len());
        assert!(decisions
            .iter()
            .any(|d| d.why.contains("delta-tolerant predicate")));
        assert!(decisions.iter().any(|d| d.why.contains("wipe the delta")));
    }

    #[test]
    fn region_disjoint_assignments_do_not_poison_deltas() {
        let mut reg = AssertionRegistry::new();
        let _ = reg.define("unused", vec![], None);
        let add = StepTypeId(1);
        let set_own = StepTypeId(2);
        let ins_fresh = StepTypeId(3);
        let (tables, _) = Inference::new(&reg)
            // The delta is itself confined to the instance's own rows…
            .step(StepFootprint::new(
                add,
                "add-own",
                vec![TableFootprint::columns(T, [1]).delta().own(KS)],
            ))
            // …so a same-space own-row assignment is provably disjoint, and
            // fresh-row inserts can never hold the fixed rows a delta targets.
            .step(StepFootprint::new(
                set_own,
                "set-own",
                vec![TableFootprint::columns(T, [1]).own(KS)],
            ))
            .step(StepFootprint::new(
                ins_fresh,
                "insert-fresh",
                vec![TableFootprint::rows(T, [1]).fresh(KS)],
            ))
            .build();
        assert!(!tables.write_interferes(add, DIRTY));
        assert!(!tables.write_interferes(set_own, DIRTY));
        assert!(!tables.write_interferes(ins_fresh, DIRTY));
    }

    #[test]
    fn region_proofs() {
        let mut reg = AssertionRegistry::new();
        let own_pred = reg.define("own-row", vec![TableFootprint::rows(T, [1]).own(KS)], None);
        let count_all = reg.define("count-all", vec![TableFootprint::rows(T, [])], None);
        let low = reg.define(
            "low-range",
            vec![TableFootprint::columns(T, [1]).within(0, 10)],
            None,
        );
        let s_own = StepTypeId(1);
        let s_fresh = StepTypeId(2);
        let s_high = StepTypeId(3);
        let (tables, _) = Inference::new(&reg)
            .step(StepFootprint::new(
                s_own,
                "own-writer",
                vec![TableFootprint::rows(T, [1]).own(KS)],
            ))
            .step(StepFootprint::new(
                s_fresh,
                "fresh-inserter",
                vec![TableFootprint::rows(T, [1]).fresh(KS)],
            ))
            .step(StepFootprint::new(
                s_high,
                "high-range-writer",
                vec![TableFootprint::columns(T, [1]).within(10, 20)],
            ))
            .build();
        // Own×Own and Fresh×Own are provably row-disjoint.
        assert!(!tables.write_interferes(s_own, own_pred));
        assert!(!tables.write_interferes(s_fresh, own_pred));
        // Fresh inserts still disturb an unconfined count.
        assert!(tables.write_interferes(s_fresh, count_all));
        // …and Own deletes do too (the count ranges over everything).
        assert!(tables.write_interferes(s_own, count_all));
        // Disjoint ranges are disjoint rows.
        assert!(!tables.write_interferes(s_high, low));
        // Region confinement also makes the writers guard-safe.
        assert!(!tables.write_interferes(s_own, DIRTY));
        assert!(!tables.write_interferes(s_fresh, DIRTY));
        assert!(tables.write_interferes(s_high, DIRTY));
    }

    #[test]
    fn fresh_writes_cannot_touch_fixed_rows() {
        let mut reg = AssertionRegistry::new();
        let fixed = reg.define("fixed-row-col", vec![TableFootprint::columns(T, [2])], None);
        let s = StepTypeId(1);
        let (tables, _) = Inference::new(&reg)
            .step(StepFootprint::new(
                s,
                "fresh",
                vec![TableFootprint::rows(T, [0, 1, 2]).fresh(KS)],
            ))
            .build();
        assert!(!tables.write_interferes(s, fixed));
    }

    #[test]
    fn read_only_step_is_uniformly_guard_safe_and_version_readable() {
        // The PR 6 asymmetry, derived uniformly: a guarded read-only step
        // needs no declaration to get an all-clear row.
        let mut reg = AssertionRegistry::new();
        let extra_guard = reg.define_guard("type-guard");
        let pred = reg.define("pred", vec![TableFootprint::columns(U, [1])], None);
        let ro = StepTypeId(7);
        let (tables, _) = Inference::new(&reg)
            .step(StepFootprint::new(ro, "read-only", vec![]))
            .require_committed_reads(ro)
            .build();
        assert!(!tables.write_interferes(ro, DIRTY));
        assert!(!tables.write_interferes(ro, extra_guard));
        assert!(!tables.write_interferes(ro, pred));
        assert!(tables.version_read_safe(ro));
        // The committed-reads requirement is orthogonal and preserved.
        assert!(tables.read_interferes(ro, DIRTY));
    }

    #[test]
    fn unprovable_overlap_defaults_conservative() {
        let mut reg = AssertionRegistry::new();
        let pred = reg.define("pred", vec![TableFootprint::rows(T, [1])], None);
        let s = StepTypeId(1);
        let (tables, decisions) = Inference::new(&reg)
            .step(StepFootprint::new(
                s,
                "unconfined",
                vec![TableFootprint::rows(T, [1])],
            ))
            .build();
        assert!(tables.write_interferes(s, pred));
        assert!(decisions
            .iter()
            .any(|d| d.interferes && d.why.contains("conservative default")));
    }

    #[test]
    #[should_panic(expected = "commutative delta cannot insert or delete")]
    fn cardinality_delta_is_rejected() {
        let reg = AssertionRegistry::new();
        let _ = Inference::new(&reg).step(StepFootprint::new(
            StepTypeId(1),
            "bad",
            vec![TableFootprint::rows(T, [1]).delta()],
        ));
    }

    #[test]
    fn diff_flags_both_directions() {
        let mut reg = AssertionRegistry::new();
        let pred = reg.define("pred", vec![TableFootprint::columns(T, [1])], None);
        let s = StepTypeId(1);
        // Probe: conservative on (s, pred); admits (s, DIRTY).
        let (probe, _) = Inference::new(&reg)
            .step(StepFootprint::new(
                s,
                "s",
                vec![TableFootprint::columns(T, [1]).delta()],
            ))
            .build();
        // Reference: the hand table declares the opposite pattern.
        let (reference, _) = crate::analysis::Analysis::new(&reg)
            .step(StepFootprint::new(
                s,
                "s",
                vec![TableFootprint::columns(T, [1])],
            ))
            .declare_safe(s, pred, "hand argument")
            .build();
        let d = diff(&probe, &reference, &[s], reg.len());
        assert_eq!(d.less_permissive, vec![(s, pred, DiffKind::Write)]);
        assert_eq!(d.more_permissive, vec![(s, DIRTY, DiffKind::Write)]);
        assert!(!d.is_empty());
    }

    #[test]
    fn matrix_json_is_deterministic_and_ordered() {
        let mut reg = AssertionRegistry::new();
        let _ = reg.define("a \"quoted\" name", vec![], None);
        let (tables, _) = Inference::new(&reg)
            .step(StepFootprint::new(StepTypeId(2), "later", vec![]))
            .step(StepFootprint::new(
                StepTypeId(1),
                "earlier",
                vec![TableFootprint::columns(T, [0])],
            ))
            .build();
        let a = matrix_json(
            &tables,
            &reg,
            &[(StepTypeId(2), "later"), (StepTypeId(1), "earlier")],
        );
        let b = matrix_json(
            &tables,
            &reg,
            &[(StepTypeId(1), "earlier"), (StepTypeId(2), "later")],
        );
        assert_eq!(a, b);
        // Steps come out id-sorted regardless of declaration order.
        let i1 = a.find("\"earlier\"").unwrap();
        let i2 = a.find("\"later\"").unwrap();
        assert!(i1 < i2, "{a}");
        assert!(a.contains("\\\"quoted\\\""));
        assert!(a.contains("\"version_read_safe\": true"));
    }
}
