//! Interstep assertion templates.
//!
//! A template is the design-time form of an interstep assertion: a name, the
//! read footprint the interference analysis consumes, and (optionally) an
//! evaluable predicate. The run-time system *never* evaluates the predicate —
//! conflicts are interference-table lookups (§3.2) — but the test harness
//! does, to verify semantic correctness end to end.

use crate::footprint::TableFootprint;
use acc_common::{AssertionTemplateId, Value};
use acc_storage::Database;
use std::fmt;
use std::sync::Arc;

/// The built-in pseudo-template pinned by every decomposed transaction on
/// every item it writes, held until commit. It plays two roles (§3.3–3.4):
///
/// * *legacy isolation* — unanalyzed step types read- and write-interfere
///   with it, so they wait for the writer to finish;
/// * *compensation protection* — its grants carry the writer's compensating
///   step type, letting the lock manager refuse assertional locks that the
///   compensating step would have to invalidate.
pub const DIRTY: AssertionTemplateId = AssertionTemplateId(0);

/// Evaluable form of a template: `params` are the instance parameters (e.g.
/// an order id).
pub type EvalFn = Arc<dyn Fn(&Database, &[Value]) -> bool + Send + Sync>;

/// A parameterized interstep assertion, analyzed at design time.
#[derive(Clone)]
pub struct AssertionTemplate {
    /// Dense id; index into the interference tables.
    pub id: AssertionTemplateId,
    /// Human-readable name.
    pub name: String,
    /// Per-table read footprint: which columns the predicate references and
    /// whether it depends on row existence. Doubles as the *attachment*
    /// footprint: assertional locks are taken on items of these tables.
    pub reads: Vec<TableFootprint>,
    /// True for guard templates whose mere presence must also block
    /// unanalyzed *readers* (only [`DIRTY`] by default).
    pub read_guard: bool,
    /// Optional evaluable predicate (test oracles only).
    pub eval: Option<EvalFn>,
}

impl fmt::Debug for AssertionTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AssertionTemplate")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("reads", &self.reads)
            .field("read_guard", &self.read_guard)
            .field("eval", &self.eval.is_some())
            .finish()
    }
}

/// A template applied to concrete parameters — what the test oracle
/// evaluates at step boundaries.
#[derive(Debug, Clone)]
pub struct AssertionInstance {
    /// The template.
    pub template: AssertionTemplateId,
    /// Instance parameters (meaning defined by the template's `eval`).
    pub params: Vec<Value>,
}

/// All templates of a system, densely numbered. [`DIRTY`] is always id 0.
pub struct AssertionRegistry {
    templates: Vec<AssertionTemplate>,
}

impl fmt::Debug for AssertionRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AssertionRegistry")
            .field("templates", &self.templates)
            .finish()
    }
}

impl Default for AssertionRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl AssertionRegistry {
    /// A registry containing only the built-in [`DIRTY`] template.
    pub fn new() -> Self {
        AssertionRegistry {
            templates: vec![AssertionTemplate {
                id: DIRTY,
                name: "DIRTY".to_owned(),
                reads: Vec::new(),
                read_guard: true,
                eval: None,
            }],
        }
    }

    /// Define an additional *guard* template: a DIRTY-like uncommitted-data
    /// pin for one class of transactions. Distinct guards let the analysis
    /// distinguish "may overwrite data left uncommitted by transaction type
    /// X" per type (e.g. deliveries safely interleave with each other's
    /// claimed pages while still being barred from half-entered orders).
    pub fn define_guard(&mut self, name: impl Into<String>) -> AssertionTemplateId {
        let id = AssertionTemplateId(self.templates.len() as u32);
        self.templates.push(AssertionTemplate {
            id,
            name: name.into(),
            reads: Vec::new(),
            read_guard: true,
            eval: None,
        });
        id
    }

    /// Define a template; returns its id.
    pub fn define(
        &mut self,
        name: impl Into<String>,
        reads: Vec<TableFootprint>,
        eval: Option<EvalFn>,
    ) -> AssertionTemplateId {
        let id = AssertionTemplateId(self.templates.len() as u32);
        self.templates.push(AssertionTemplate {
            id,
            name: name.into(),
            reads,
            read_guard: false,
            eval,
        });
        id
    }

    /// The template with the given id.
    pub fn get(&self, id: AssertionTemplateId) -> &AssertionTemplate {
        &self.templates[id.raw() as usize]
    }

    /// All templates in id order.
    pub fn iter(&self) -> impl Iterator<Item = &AssertionTemplate> {
        self.templates.iter()
    }

    /// Number of templates (including `DIRTY`).
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Always false: `DIRTY` is built in.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Evaluate an instance against a database image. `true` when the
    /// template has no evaluable form (we cannot falsify it).
    pub fn check(&self, db: &Database, inst: &AssertionInstance) -> bool {
        match &self.get(inst.template).eval {
            Some(f) => f(db, &inst.params),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::TableId;
    use acc_storage::{Catalog, ColumnType, Row, TableSchema};

    #[test]
    fn dirty_is_builtin() {
        let reg = AssertionRegistry::new();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(DIRTY).name, "DIRTY");
        assert!(reg.get(DIRTY).read_guard);
    }

    #[test]
    fn define_assigns_dense_ids() {
        let mut reg = AssertionRegistry::new();
        let a = reg.define("a", vec![], None);
        let b = reg.define("b", vec![TableFootprint::columns(TableId(0), [1])], None);
        assert_eq!(a, AssertionTemplateId(1));
        assert_eq!(b, AssertionTemplateId(2));
        assert_eq!(reg.iter().count(), 3);
        assert!(!reg.get(b).read_guard);
    }

    #[test]
    fn evaluable_template_checks() {
        let mut cat = Catalog::new();
        let t = cat.add_table(
            TableSchema::builder("x")
                .column("id", ColumnType::Int)
                .column("v", ColumnType::Int)
                .key(&["id"])
                .build(),
        );
        let mut db = Database::new(&cat);
        db.table_mut(t)
            .unwrap()
            .insert(Row::from(vec![Value::Int(1), Value::Int(10)]))
            .unwrap();

        let mut reg = AssertionRegistry::new();
        // "row `params[0]` has v >= 0"
        let tpl = reg.define(
            "non-negative",
            vec![TableFootprint::columns(t, [1])],
            Some(Arc::new(move |db: &Database, params: &[Value]| {
                let key = acc_storage::Key(vec![params[0].clone()]);
                db.table(t)
                    .unwrap()
                    .get(&key)
                    .map(|(_, r)| r.int(1) >= 0)
                    .unwrap_or(false)
            })),
        );
        let inst = AssertionInstance {
            template: tpl,
            params: vec![Value::Int(1)],
        };
        assert!(reg.check(&db, &inst));
        db.table_mut(t)
            .unwrap()
            .update_with(0, |r| {
                r.set(1, Value::Int(-5));
            })
            .unwrap();
        assert!(!reg.check(&db, &inst));
        // Templates without eval always pass.
        let inst2 = AssertionInstance {
            template: DIRTY,
            params: vec![],
        };
        assert!(reg.check(&db, &inst2));
    }
}
