//! Interference tables: the run-time product of the design-time analysis.
//!
//! These tables implement the lock manager's `InterferenceOracle`, so the
//! conflict decision for an assertional lock is a dense-array lookup — the
//! paper's key contrast with predicate locks (§3.2).

use acc_common::ids::LEGACY_STEP;
use acc_common::{AssertionTemplateId, StepTypeId};
use acc_lockmgr::InterferenceOracle;
use std::collections::{HashMap, HashSet};

/// The step-type × assertion-template interference matrix plus the metadata
/// needed for legacy isolation.
#[derive(Debug, Clone, Default)]
pub struct InterferenceTables {
    /// `write[step] [template.raw] == true` ⇒ the step may invalidate the
    /// template by writing.
    write: HashMap<StepTypeId, Vec<bool>>,
    /// Templates that also guard against unanalyzed readers (`DIRTY`).
    read_guards: HashSet<AssertionTemplateId>,
    /// Step types the design-time analysis covered. Anything else (legacy /
    /// ad-hoc) is treated maximally conservatively.
    analyzed: HashSet<StepTypeId>,
    /// Analyzed step types that are nonetheless declared to require
    /// committed reads (§3.3's "some transactions might require that they
    /// read only committed data"): they read-interfere with guard templates
    /// just like legacy transactions.
    committed_readers: HashSet<StepTypeId>,
    /// Number of templates (row width).
    n_templates: usize,
}

impl InterferenceTables {
    /// Build from raw parts (use [`crate::analysis::Analysis`] normally).
    pub fn from_parts(
        write: HashMap<StepTypeId, Vec<bool>>,
        read_guards: HashSet<AssertionTemplateId>,
        n_templates: usize,
    ) -> Self {
        let analyzed = write.keys().copied().collect();
        InterferenceTables {
            write,
            read_guards,
            analyzed,
            committed_readers: HashSet::new(),
            n_templates,
        }
    }

    /// Mark an analyzed step type as requiring committed reads.
    pub fn set_committed_reader(&mut self, step: StepTypeId) {
        self.committed_readers.insert(step);
    }

    /// True if `step` was covered by the analysis.
    pub fn is_analyzed(&self, step: StepTypeId) -> bool {
        self.analyzed.contains(&step)
    }

    /// True if `step` was declared to require committed reads.
    pub fn is_committed_reader(&self, step: StepTypeId) -> bool {
        self.committed_readers.contains(&step)
    }

    /// The analyzed step types, sorted by id.
    pub fn steps(&self) -> Vec<StepTypeId> {
        let mut steps: Vec<_> = self.write.keys().copied().collect();
        steps.sort_unstable();
        steps
    }

    /// Number of templates in the matrix.
    pub fn n_templates(&self) -> usize {
        self.n_templates
    }

    /// Render the matrix for documentation/debugging.
    pub fn dump(&self) -> String {
        let mut steps: Vec<_> = self.write.keys().copied().collect();
        steps.sort_unstable();
        let mut out = String::new();
        for s in steps {
            let row = &self.write[&s];
            out.push_str(&format!(
                "step {:>3}: {}\n",
                s.raw(),
                row.iter()
                    .map(|&b| if b { 'X' } else { '.' })
                    .collect::<String>()
            ));
        }
        out
    }
}

impl InterferenceOracle for InterferenceTables {
    fn write_interferes(&self, step: StepTypeId, assertion: AssertionTemplateId) -> bool {
        if step == LEGACY_STEP || !self.analyzed.contains(&step) {
            // Unanalyzed writers conservatively invalidate everything.
            return true;
        }
        self.write[&step]
            .get(assertion.raw() as usize)
            .copied()
            // Templates defined after the analysis ran: conservative.
            .unwrap_or(true)
    }

    fn read_interferes(&self, step: StepTypeId, assertion: AssertionTemplateId) -> bool {
        // Reads can never falsify a predicate; the only read conflicts are
        // guard templates (DIRTY) versus unanalyzed readers and analyzed
        // steps declared to require committed data.
        self.read_guards.contains(&assertion)
            && (step == LEGACY_STEP
                || !self.analyzed.contains(&step)
                || self.committed_readers.contains(&step))
    }

    fn version_read_safe(&self, step: StepTypeId) -> bool {
        // A dense-row lookup, like everything else here: the step must be
        // analyzed and its write row all-clear. (Committed-reader steps
        // qualify too — the version chains serve only committed images, so
        // the §3.3 requirement is met without blocking on DIRTY pins.)
        step != LEGACY_STEP
            && self
                .write
                .get(&step)
                .is_some_and(|row| row.iter().all(|&b| !b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::DIRTY;

    fn tables() -> InterferenceTables {
        let mut write = HashMap::new();
        // step 1: interferes with template 1 only (plus DIRTY by policy).
        write.insert(StepTypeId(1), vec![true, true, false]);
        // step 2: interferes with nothing, not even DIRTY.
        write.insert(StepTypeId(2), vec![false, false, false]);
        InterferenceTables::from_parts(write, [DIRTY].into(), 3)
    }

    #[test]
    fn lookups() {
        let t = tables();
        assert!(t.write_interferes(StepTypeId(1), AssertionTemplateId(1)));
        assert!(!t.write_interferes(StepTypeId(1), AssertionTemplateId(2)));
        assert!(!t.write_interferes(StepTypeId(2), DIRTY));
    }

    #[test]
    fn legacy_is_conservative() {
        let t = tables();
        for a in 0..3 {
            assert!(t.write_interferes(LEGACY_STEP, AssertionTemplateId(a)));
        }
        assert!(t.read_interferes(LEGACY_STEP, DIRTY));
        assert!(!t.read_interferes(LEGACY_STEP, AssertionTemplateId(1)));
        // Unknown (unanalyzed) steps behave like legacy.
        assert!(t.write_interferes(StepTypeId(99), AssertionTemplateId(2)));
        assert!(t.read_interferes(StepTypeId(99), DIRTY));
    }

    #[test]
    fn analyzed_readers_pass_guards() {
        let t = tables();
        assert!(!t.read_interferes(StepTypeId(1), DIRTY));
        assert!(!t.read_interferes(StepTypeId(2), AssertionTemplateId(1)));
    }

    #[test]
    fn out_of_range_template_is_conservative() {
        let t = tables();
        assert!(t.write_interferes(StepTypeId(2), AssertionTemplateId(50)));
    }

    #[test]
    fn version_read_safety_requires_clear_write_row() {
        let t = tables();
        // Step 2 writes nothing: version reads are interference-safe.
        assert!(t.version_read_safe(StepTypeId(2)));
        // Step 1 writes; legacy/unknown steps are conservative.
        assert!(!t.version_read_safe(StepTypeId(1)));
        assert!(!t.version_read_safe(LEGACY_STEP));
        assert!(!t.version_read_safe(StepTypeId(99)));
    }

    #[test]
    fn dump_is_readable() {
        let d = tables().dump();
        assert!(d.contains("step   1: XX."));
        assert!(d.contains("step   2: ..."));
    }
}
