//! The assertional concurrency control (ACC) — the paper's contribution.
//!
//! # How the pieces map to the paper
//!
//! | Paper concept (§) | Here |
//! |---|---|
//! | Interstep assertion templates (§3.1) | [`assertion::AssertionTemplate`] — a named, parameterized predicate with a declared read footprint and an optional evaluable form used by test oracles |
//! | Step semantics (§3.1) | [`footprint::StepFootprint`] — the tables/columns a step type may write, including row insertion/deletion |
//! | Design-time interference analysis (§3.1–3.2) | [`analysis::Analysis`] — computes, once, whether each step type can invalidate each template: footprint overlap minus *declared-safe* pairs (the semantic knowledge, each with a recorded justification) |
//! | Interference tables (§3.2) | [`tables::InterferenceTables`] — the run-time lookup structure; implements the lock manager's `InterferenceOracle`, so the hot-path decision is exactly the table lookup the paper promises |
//! | One-level ACC (§3.2–3.3) | [`policy::Acc`] — a `ConcurrencyControl` that attaches assertional locks to the items each step touches (the *implemented*, dynamically-acquiring variant), releases conventional locks at step boundaries, and keeps `DIRTY` pins until commit |
//! | Legacy isolation (§3.3) | the built-in [`assertion::DIRTY`] template: decomposed transactions pin it on everything they write; unanalyzed step types read- and write-interfere with it, so legacy transactions never observe uncommitted decomposed state |
//! | Compensation safety (§3.4) | `DIRTY` grants carry the compensating step type; the lock manager refuses assertional locks the compensating step would invalidate, and inverts deadlock victims for compensating steps |

pub mod analysis;
pub mod assertion;
pub mod footprint;
pub mod infer;
pub mod policy;
pub mod tables;

pub use analysis::Analysis;
pub use assertion::{AssertionInstance, AssertionRegistry, AssertionTemplate, DIRTY};
pub use footprint::{Effect, KeySpace, Region, StepFootprint, TableFootprint};
pub use infer::{diff, matrix_json, DiffKind, Inference, TableDiff};
pub use policy::{Acc, StepSpec, TxnSpec};
pub use tables::InterferenceTables;
