//! The one-level ACC as a [`ConcurrencyControl`] policy (§3.2–3.3,
//! implemented variant).
//!
//! Differences from the simplified §3.3 algorithm, matching the paper's
//! implemented system: assertional locks are acquired *dynamically*, at the
//! moment conventional locks are acquired — each data access attaches the
//! transaction's currently active assertion templates to the item it locks.
//! This avoids extra excursions through the locking code and shortens
//! assertional lock hold times.

use crate::assertion::AssertionRegistry;
use acc_common::{AssertionTemplateId, StepTypeId, TableId, TxnTypeId};
use acc_lockmgr::{LockKind, LockMode};
use acc_txn::{ConcurrencyControl, TxnMeta};
use std::collections::HashMap;
use std::sync::Arc;

/// One position in a decomposed transaction type.
#[derive(Debug, Clone)]
pub struct StepSpec {
    /// The design-time step type executed at this position.
    pub step_type: StepTypeId,
    /// Assertion templates active while this step runs — its own
    /// precondition plus the next step's (granted before the step initiates,
    /// §3.3). Accesses to items in a template's footprint tables attach an
    /// assertional lock for it.
    pub active: Vec<AssertionTemplateId>,
}

/// The decomposition of one transaction type.
#[derive(Debug, Clone)]
pub struct TxnSpec {
    /// The transaction type.
    pub txn_type: TxnTypeId,
    /// Name for reports.
    pub name: String,
    /// Per-position specs. Programs with input-dependent step counts set
    /// `overflow`: positions beyond the end cycle through
    /// `steps[overflow..]` (e.g. new-order's per-orderline loop reuses its
    /// line step; delivery cycles its find/apply pair across districts).
    pub steps: Vec<StepSpec>,
    /// Start of the cycled tail for positions ≥ `steps.len()`.
    pub overflow: Option<usize>,
    /// The compensating step type, if the type is compensatable. Mandatory
    /// when `steps.len() > 1` or `overflow` is set (multi-step transactions
    /// must be compensatable, §3.4).
    pub comp_step: Option<StepTypeId>,
    /// The uncommitted-data guard this type pins on everything it writes
    /// (held to commit). [`crate::assertion::DIRTY`] by default; types whose uncommitted pages
    /// may be safely written by their peers (per declared analysis) use a
    /// type-specific guard defined with
    /// [`AssertionRegistry::define_guard`].
    pub guard: AssertionTemplateId,
    /// Declare the whole type read-only: its steps' results feed no writes,
    /// so their reads may be served from committed row versions without
    /// locking ([`ConcurrencyControl::version_read_safe`]). The declaration
    /// is only half the gate — the interference oracle must also clear the
    /// step's write row — but it is the load-bearing half: an all-clear
    /// write row alone also admits *writers* whose writes are declared
    /// interference-free (e.g. TPC-C's payment steps), and those must never
    /// read stale versions of rows they are about to overwrite.
    pub version_safe: bool,
}

impl TxnSpec {
    /// The spec governing a position.
    pub fn at(&self, step_index: u32) -> &StepSpec {
        let i = step_index as usize;
        if i < self.steps.len() {
            &self.steps[i]
        } else {
            let o = self.overflow.unwrap_or_else(|| {
                panic!("{}: position {i} beyond spec with no overflow", self.name)
            });
            let cycle = self.steps.len() - o;
            &self.steps[o + (i - o) % cycle]
        }
    }
}

/// The ACC policy: drives a [`acc_txn::SharedDb`] whose oracle is the
/// [`crate::tables::InterferenceTables`] produced by the same analysis that
/// produced these specs.
pub struct Acc {
    registry: Arc<AssertionRegistry>,
    specs: HashMap<TxnTypeId, TxnSpec>,
}

impl Acc {
    /// Build from the template registry and per-type decompositions.
    pub fn new(registry: Arc<AssertionRegistry>, specs: Vec<TxnSpec>) -> Self {
        for s in &specs {
            if s.steps.len() > 1 || s.overflow.is_some() {
                assert!(
                    s.comp_step.is_some(),
                    "multi-step transaction type `{}` must declare compensation",
                    s.name
                );
            }
        }
        Acc {
            registry,
            specs: specs.into_iter().map(|s| (s.txn_type, s)).collect(),
        }
    }

    /// The registry backing this policy.
    pub fn registry(&self) -> &AssertionRegistry {
        &self.registry
    }

    /// The same policy with every type's `version_safe` declaration
    /// withdrawn: all reads take the conventional lock-manager path. Used by
    /// comparison experiments (and tests) that need the pre-MVCC behavior of
    /// an otherwise identical system.
    pub fn without_version_reads(&self) -> Acc {
        Acc {
            registry: Arc::clone(&self.registry),
            specs: self
                .specs
                .iter()
                .map(|(&ty, s)| {
                    (
                        ty,
                        TxnSpec {
                            version_safe: false,
                            ..s.clone()
                        },
                    )
                })
                .collect(),
        }
    }

    fn spec(&self, ty: TxnTypeId) -> &TxnSpec {
        self.specs
            .get(&ty)
            .unwrap_or_else(|| panic!("no decomposition registered for {ty}"))
    }

    /// Templates active at a position whose footprints include `table`.
    fn attached(
        &self,
        meta: &TxnMeta,
        table: TableId,
    ) -> impl Iterator<Item = AssertionTemplateId> + '_ {
        let spec = self.spec(meta.txn_type);
        let active: &[AssertionTemplateId] = if meta.compensating {
            // A compensating step runs under no interstep assertions of its
            // own; it relies on compensation-protection locks taken by the
            // forward steps.
            &[]
        } else {
            &spec.at(meta.step_index).active
        };
        let registry = &self.registry;
        active
            .iter()
            .copied()
            .filter(move |&t| registry.get(t).reads.iter().any(|fp| fp.table == table))
    }
}

impl ConcurrencyControl for Acc {
    fn name(&self) -> &'static str {
        "acc"
    }

    fn decomposed(&self) -> bool {
        true
    }

    fn step_type(&self, meta: &TxnMeta) -> StepTypeId {
        let spec = self.spec(meta.txn_type);
        if meta.compensating {
            spec.comp_step
                .unwrap_or_else(|| panic!("{}: compensating without comp_step", spec.name))
        } else {
            spec.at(meta.step_index).step_type
        }
    }

    fn comp_step_type(&self, txn_type: TxnTypeId) -> Option<StepTypeId> {
        self.spec(txn_type).comp_step
    }

    fn item_locks(&self, meta: &TxnMeta, table: TableId, write: bool) -> Vec<LockKind> {
        let mut kinds = vec![LockKind::Conventional(if write {
            LockMode::X
        } else {
            LockMode::S
        })];
        if write {
            // Pin uncommitted data until commit: legacy isolation +
            // compensation protection (§3.3–3.4).
            kinds.push(LockKind::Assertional(self.spec(meta.txn_type).guard));
        }
        kinds.extend(self.attached(meta, table).map(LockKind::Assertional));
        kinds
    }

    fn table_locks(&self, meta: &TxnMeta, _table: TableId, write: bool) -> Vec<LockKind> {
        let mut kinds = vec![LockKind::Conventional(if write {
            LockMode::IX
        } else {
            LockMode::IS
        })];
        if write {
            // The conventional intention lock is dropped at the step
            // boundary, so the guard must *also* pin the table: scans take
            // only a table-granularity `S`, and without this pin they would
            // read uncommitted pages without ever consulting the
            // interference table (intention modes pass assertional grants,
            // so key accesses by other transactions are unaffected).
            kinds.push(LockKind::Assertional(self.spec(meta.txn_type).guard));
        }
        kinds
    }

    fn scan_locks(&self, meta: &TxnMeta, table: TableId) -> Vec<LockKind> {
        let mut kinds = vec![LockKind::Conventional(LockMode::S)];
        kinds.extend(self.attached(meta, table).map(LockKind::Assertional));
        kinds
    }

    fn version_read_safe(&self, meta: &TxnMeta) -> bool {
        // Compensating steps write by definition; a read-only type never
        // compensates, but stay defensive.
        !meta.compensating && self.spec(meta.txn_type).version_safe
    }

    fn release_at_step_end(&self, meta: &TxnMeta, kind: LockKind) -> bool {
        match kind {
            // Step atomicity: conventional locks are strictly two-phase
            // *within* the step and dropped at its end.
            LockKind::Conventional(_) => true,
            // Uncommitted-data pins (DIRTY or a type guard) survive until
            // commit.
            LockKind::Assertional(t) if self.registry.get(t).read_guard => false,
            // An assertional lock survives while its template stays active
            // at the new position.
            LockKind::Assertional(t) => {
                let spec = self.spec(meta.txn_type);
                !spec.at(meta.step_index).active.contains(&t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::DIRTY;
    use crate::footprint::TableFootprint;
    use acc_common::TxnId;

    const ORDERS: TableId = TableId(0);
    const LINES: TableId = TableId(1);
    const STOCK: TableId = TableId(2);

    fn policy() -> (Acc, AssertionTemplateId) {
        let (acc, no_loop, _) = policy_with_extra();
        (acc, no_loop)
    }

    fn policy_with_extra() -> (Acc, AssertionTemplateId, AssertionTemplateId) {
        let mut reg = AssertionRegistry::new();
        let no_loop = reg.define(
            "new-order-loop",
            vec![
                TableFootprint::columns(ORDERS, [2]),
                TableFootprint::rows(LINES, []),
            ],
            None,
        );
        let extra = reg.define("unrelated", vec![], None);
        let acc = Acc::new(
            Arc::new(reg),
            vec![TxnSpec {
                txn_type: TxnTypeId(1),
                name: "new-order".into(),
                steps: vec![
                    StepSpec {
                        step_type: StepTypeId(1),
                        active: vec![no_loop],
                    },
                    StepSpec {
                        step_type: StepTypeId(2),
                        active: vec![no_loop],
                    },
                ],
                overflow: Some(1),
                comp_step: Some(StepTypeId(4)),
                guard: DIRTY,
                version_safe: false,
            }],
        );
        (acc, no_loop, extra)
    }

    fn meta(step: u32, compensating: bool) -> TxnMeta {
        TxnMeta {
            id: TxnId(1),
            txn_type: TxnTypeId(1),
            step_index: step,
            compensating,
        }
    }

    #[test]
    fn step_types_follow_spec_with_overflow() {
        let (acc, _) = policy();
        assert_eq!(acc.step_type(&meta(0, false)), StepTypeId(1));
        assert_eq!(acc.step_type(&meta(1, false)), StepTypeId(2));
        assert_eq!(
            acc.step_type(&meta(7, false)),
            StepTypeId(2),
            "overflow loops"
        );
        assert_eq!(acc.step_type(&meta(7, true)), StepTypeId(4), "compensating");
        assert_eq!(acc.comp_step_type(TxnTypeId(1)), Some(StepTypeId(4)));
    }

    #[test]
    fn write_locks_include_dirty_and_active_templates() {
        let (acc, no_loop) = policy();
        let kinds = acc.item_locks(&meta(1, false), LINES, true);
        assert!(kinds.contains(&LockKind::Conventional(LockMode::X)));
        assert!(kinds.contains(&LockKind::Assertional(DIRTY)));
        assert!(kinds.contains(&LockKind::Assertional(no_loop)));
        // Stock is not in the template's footprint: no template lock there.
        let kinds = acc.item_locks(&meta(1, false), STOCK, true);
        assert!(kinds.contains(&LockKind::Assertional(DIRTY)));
        assert!(!kinds.contains(&LockKind::Assertional(no_loop)));
    }

    #[test]
    fn read_locks_attach_templates_but_not_dirty() {
        let (acc, no_loop) = policy();
        let kinds = acc.item_locks(&meta(0, false), ORDERS, false);
        assert_eq!(kinds[0], LockKind::Conventional(LockMode::S));
        assert!(!kinds.contains(&LockKind::Assertional(DIRTY)));
        assert!(kinds.contains(&LockKind::Assertional(no_loop)));
        let scan = acc.scan_locks(&meta(0, false), LINES);
        assert!(scan.contains(&LockKind::Conventional(LockMode::S)));
        assert!(scan.contains(&LockKind::Assertional(no_loop)));
    }

    #[test]
    fn compensating_steps_attach_no_templates() {
        let (acc, no_loop) = policy();
        let kinds = acc.item_locks(&meta(3, true), LINES, true);
        assert!(kinds.contains(&LockKind::Assertional(DIRTY)));
        assert!(!kinds.contains(&LockKind::Assertional(no_loop)));
    }

    #[test]
    fn step_end_release_policy() {
        let (acc, no_loop, extra) = policy_with_extra();
        let m = meta(1, false); // position after the boundary
        assert!(acc.release_at_step_end(&m, LockKind::X));
        assert!(acc.release_at_step_end(&m, LockKind::S));
        assert!(!acc.release_at_step_end(&m, LockKind::Assertional(DIRTY)));
        // no_loop stays active at position 1: keep it.
        assert!(!acc.release_at_step_end(&m, LockKind::Assertional(no_loop)));
        // A template not active at the new position is dropped.
        assert!(acc.release_at_step_end(&m, LockKind::Assertional(extra)));
    }

    #[test]
    #[should_panic(expected = "must declare compensation")]
    fn multi_step_without_compensation_panics() {
        let reg = Arc::new(AssertionRegistry::new());
        let _ = Acc::new(
            reg,
            vec![TxnSpec {
                txn_type: TxnTypeId(1),
                name: "bad".into(),
                steps: vec![
                    StepSpec {
                        step_type: StepTypeId(1),
                        active: vec![],
                    },
                    StepSpec {
                        step_type: StepTypeId(2),
                        active: vec![],
                    },
                ],
                overflow: None,
                comp_step: None,
                guard: DIRTY,
                version_safe: false,
            }],
        );
    }

    #[test]
    fn version_safety_is_declared_per_type_and_never_compensating() {
        let mut reg = AssertionRegistry::new();
        let t = reg.define("t", vec![], None);
        let acc = Acc::new(
            Arc::new(reg),
            vec![
                TxnSpec {
                    txn_type: TxnTypeId(1),
                    name: "reader".into(),
                    steps: vec![StepSpec {
                        step_type: StepTypeId(1),
                        active: vec![t],
                    }],
                    overflow: None,
                    comp_step: None,
                    guard: DIRTY,
                    version_safe: true,
                },
                TxnSpec {
                    txn_type: TxnTypeId(2),
                    name: "writer".into(),
                    steps: vec![StepSpec {
                        step_type: StepTypeId(2),
                        active: vec![],
                    }],
                    overflow: None,
                    comp_step: Some(StepTypeId(3)),
                    guard: DIRTY,
                    version_safe: false,
                },
            ],
        );
        let reader = TxnMeta {
            id: TxnId(1),
            txn_type: TxnTypeId(1),
            step_index: 0,
            compensating: false,
        };
        assert!(acc.version_read_safe(&reader));
        assert!(!acc.version_read_safe(&TxnMeta {
            compensating: true,
            ..reader
        }));
        assert!(!acc.version_read_safe(&TxnMeta {
            txn_type: TxnTypeId(2),
            ..reader
        }));
    }
}
