//! Step write footprints: what a step type may change, declared at design
//! time.
//!
//! Beyond the table/column/cardinality shape the hand analysis consumes,
//! footprints carry three machine-checkable *semantic refinements* that the
//! automatic inference pass ([`crate::infer`]) turns into proof obligations:
//! the write [`Effect`] (assignment vs. commutative delta), the key
//! [`Region`] the footprint is confined to, and — on assertion read
//! footprints — delta tolerance. Each refinement is a designer declaration,
//! exactly like the footprint itself: the inference trusts it and mechanizes
//! the §3.2 case analysis on top.

use acc_common::TableId;
use std::collections::BTreeSet;

/// A named key space: a family of key values with the *uniqueness contract*
/// that distinct live transaction instances hold distinct tokens in it (an
/// order id allocated from a counter, a per-transaction history key, …).
/// Two footprints confined to the same key space by different instances are
/// provably row-disjoint; nothing relates tokens of *different* key spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KeySpace(pub u32);

/// How a write changes the columns it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Effect {
    /// Arbitrary assignment: the new value may depend on the old state and
    /// overwrites whatever is there. No commutativity can be assumed.
    #[default]
    Assign,
    /// A commutative delta (increment/decrement by an amount fixed at
    /// execution time), whose compensation — if any — is the inverse delta.
    /// Deltas commute with each other and preserve delta-tolerant
    /// predicates. Declaring `Delta` is a contract over *both* the forward
    /// write and its compensation.
    Delta,
}

/// Which rows of the table a footprint is confined to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Region {
    /// Any row — no confinement claim.
    #[default]
    All,
    /// Only rows keyed by this instance's own token in the key space: rows
    /// the transaction instance exclusively owns for its lifetime (its own
    /// order's lines, its own history row). Distinct instances own distinct
    /// tokens, so same-space `Own` footprints of different transactions are
    /// row-disjoint.
    Own(KeySpace),
    /// Writes only: rows whose key in the space is *freshly allocated* by
    /// this instance — no live transaction or assertion instance can already
    /// reference them. Fresh keys are disjoint from every `Own` region of
    /// the same space and can never be the fixed rows a column-only
    /// predicate depends on.
    Fresh(KeySpace),
    /// Rows whose leading integer key component lies in `[lo, hi)` — a
    /// static key-range resource. Two ranges that do not intersect are
    /// row-disjoint.
    Range(i64, i64),
}

/// What one step type (or one assertion template) touches in one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableFootprint {
    /// The table.
    pub table: TableId,
    /// Column positions written (step) or referenced (assertion).
    pub columns: BTreeSet<usize>,
    /// For steps: rows may be inserted or deleted. For assertions: the
    /// predicate depends on *which rows exist* (counts, existence,
    /// aggregates) — not just on column values of fixed rows.
    pub cardinality: bool,
    /// Write-side refinement: how the touched columns change. Ignored by
    /// the hand analysis; consumed by [`crate::infer`].
    pub effect: Effect,
    /// Which rows the footprint is confined to. Ignored by the hand
    /// analysis; consumed by [`crate::infer`].
    pub region: Region,
    /// Read-side refinement: the predicate is invariant under other
    /// transactions' commutative deltas to these columns ("includes my
    /// contribution"-style assertions). Meaningless on write footprints.
    pub delta_tolerant: bool,
}

impl TableFootprint {
    /// Footprint over named columns only.
    pub fn columns(table: TableId, columns: impl IntoIterator<Item = usize>) -> Self {
        TableFootprint {
            table,
            columns: columns.into_iter().collect(),
            cardinality: false,
            effect: Effect::Assign,
            region: Region::All,
            delta_tolerant: false,
        }
    }

    /// Footprint that inserts/deletes rows (or, for an assertion, depends on
    /// row existence), additionally touching the given columns.
    pub fn rows(table: TableId, columns: impl IntoIterator<Item = usize>) -> Self {
        TableFootprint {
            table,
            columns: columns.into_iter().collect(),
            cardinality: true,
            effect: Effect::Assign,
            region: Region::All,
            delta_tolerant: false,
        }
    }

    /// Declare the write a commutative delta (compensated, if ever, by the
    /// inverse delta). Deltas touch fixed rows; a footprint cannot be both
    /// `Delta` and cardinality-changing (the inference rejects that).
    pub fn delta(mut self) -> Self {
        self.effect = Effect::Delta;
        self
    }

    /// Confine the footprint to rows keyed by the instance's own token in
    /// `space`.
    pub fn own(mut self, space: KeySpace) -> Self {
        self.region = Region::Own(space);
        self
    }

    /// Confine the (write) footprint to freshly allocated keys in `space`.
    pub fn fresh(mut self, space: KeySpace) -> Self {
        self.region = Region::Fresh(space);
        self
    }

    /// Confine the footprint to rows whose leading integer key lies in
    /// `[lo, hi)`.
    pub fn within(mut self, lo: i64, hi: i64) -> Self {
        self.region = Region::Range(lo, hi);
        self
    }

    /// Declare the (read) footprint's predicate invariant under other
    /// transactions' commutative deltas to these columns.
    pub fn tolerates_deltas(mut self) -> Self {
        self.delta_tolerant = true;
        self
    }

    /// Does a write with footprint `self` overlap a read with footprint
    /// `other` (same-table check included)?
    pub fn overlaps(&self, other: &TableFootprint) -> bool {
        self.table == other.table
            && ((self.cardinality && other.cardinality)
                || self.columns.intersection(&other.columns).next().is_some())
    }
}

/// The declared write behaviour of one step type.
#[derive(Debug, Clone)]
pub struct StepFootprint {
    /// The step type this footprint describes.
    pub step_type: acc_common::StepTypeId,
    /// Human-readable name for the analysis report.
    pub name: String,
    /// Per-table write sets.
    pub writes: Vec<TableFootprint>,
}

impl StepFootprint {
    /// A step footprint.
    pub fn new(
        step_type: acc_common::StepTypeId,
        name: impl Into<String>,
        writes: Vec<TableFootprint>,
    ) -> Self {
        StepFootprint {
            step_type,
            name: name.into(),
            writes,
        }
    }

    /// True if any write overlaps any of the given read footprints.
    pub fn interferes_with(&self, reads: &[TableFootprint]) -> bool {
        self.writes
            .iter()
            .any(|w| reads.iter().any(|r| w.overlaps(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::StepTypeId;

    const T: TableId = TableId(0);
    const U: TableId = TableId(1);

    #[test]
    fn column_overlap() {
        let w = TableFootprint::columns(T, [1, 2]);
        assert!(w.overlaps(&TableFootprint::columns(T, [2, 3])));
        assert!(!w.overlaps(&TableFootprint::columns(T, [3, 4])));
        assert!(!w.overlaps(&TableFootprint::columns(U, [1, 2])));
    }

    #[test]
    fn cardinality_overlap() {
        // Inserting rows disturbs a count predicate even with disjoint
        // columns.
        let w = TableFootprint::rows(T, [0]);
        let count_pred = TableFootprint::rows(T, []);
        assert!(w.overlaps(&count_pred));
        // …but not a fixed-row column predicate on other columns.
        assert!(!w.overlaps(&TableFootprint::columns(T, [5])));
        // A pure column write never disturbs a pure count predicate.
        let w2 = TableFootprint::columns(T, [5]);
        assert!(!w2.overlaps(&count_pred));
    }

    #[test]
    fn refinement_builders_do_not_change_flat_overlap() {
        // The hand analysis sees exactly the same overlap geometry whether
        // or not a footprint carries refinements.
        let plain = TableFootprint::columns(T, [1]);
        let refined = TableFootprint::columns(T, [1]).delta().own(KeySpace(0));
        let read = TableFootprint::columns(T, [1]).tolerates_deltas();
        assert!(plain.overlaps(&read));
        assert!(refined.overlaps(&read));
        assert_eq!(plain.effect, Effect::Assign);
        assert_eq!(refined.effect, Effect::Delta);
        assert_eq!(refined.region, Region::Own(KeySpace(0)));
        assert_eq!(
            TableFootprint::rows(T, []).fresh(KeySpace(3)).region,
            Region::Fresh(KeySpace(3))
        );
        assert_eq!(
            TableFootprint::columns(T, [0]).within(5, 9).region,
            Region::Range(5, 9)
        );
    }

    #[test]
    fn step_footprint_interference() {
        // The paper's §5.1 example: new-order increments the district
        // counter (col 2), payment updates the district YTD (col 3). Their
        // footprints do not overlap, so the analysis lets them interleave.
        let district = TableId(7);
        let new_order = StepFootprint::new(
            StepTypeId(1),
            "new-order-s1",
            vec![TableFootprint::columns(district, [2])],
        );
        let counter_assertion = [TableFootprint::columns(district, [2])];
        let ytd_assertion = [TableFootprint::columns(district, [3])];
        assert!(new_order.interferes_with(&counter_assertion));
        assert!(!new_order.interferes_with(&ytd_assertion));
    }
}
