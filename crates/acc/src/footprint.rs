//! Step write footprints: what a step type may change, declared at design
//! time.

use acc_common::TableId;
use std::collections::BTreeSet;

/// What one step type (or one assertion template) touches in one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableFootprint {
    /// The table.
    pub table: TableId,
    /// Column positions written (step) or referenced (assertion).
    pub columns: BTreeSet<usize>,
    /// For steps: rows may be inserted or deleted. For assertions: the
    /// predicate depends on *which rows exist* (counts, existence,
    /// aggregates) — not just on column values of fixed rows.
    pub cardinality: bool,
}

impl TableFootprint {
    /// Footprint over named columns only.
    pub fn columns(table: TableId, columns: impl IntoIterator<Item = usize>) -> Self {
        TableFootprint {
            table,
            columns: columns.into_iter().collect(),
            cardinality: false,
        }
    }

    /// Footprint that inserts/deletes rows (or, for an assertion, depends on
    /// row existence), additionally touching the given columns.
    pub fn rows(table: TableId, columns: impl IntoIterator<Item = usize>) -> Self {
        TableFootprint {
            table,
            columns: columns.into_iter().collect(),
            cardinality: true,
        }
    }

    /// Does a write with footprint `self` overlap a read with footprint
    /// `other` (same-table check included)?
    pub fn overlaps(&self, other: &TableFootprint) -> bool {
        self.table == other.table
            && ((self.cardinality && other.cardinality)
                || self.columns.intersection(&other.columns).next().is_some())
    }
}

/// The declared write behaviour of one step type.
#[derive(Debug, Clone)]
pub struct StepFootprint {
    /// The step type this footprint describes.
    pub step_type: acc_common::StepTypeId,
    /// Human-readable name for the analysis report.
    pub name: String,
    /// Per-table write sets.
    pub writes: Vec<TableFootprint>,
}

impl StepFootprint {
    /// A step footprint.
    pub fn new(
        step_type: acc_common::StepTypeId,
        name: impl Into<String>,
        writes: Vec<TableFootprint>,
    ) -> Self {
        StepFootprint {
            step_type,
            name: name.into(),
            writes,
        }
    }

    /// True if any write overlaps any of the given read footprints.
    pub fn interferes_with(&self, reads: &[TableFootprint]) -> bool {
        self.writes
            .iter()
            .any(|w| reads.iter().any(|r| w.overlaps(r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::StepTypeId;

    const T: TableId = TableId(0);
    const U: TableId = TableId(1);

    #[test]
    fn column_overlap() {
        let w = TableFootprint::columns(T, [1, 2]);
        assert!(w.overlaps(&TableFootprint::columns(T, [2, 3])));
        assert!(!w.overlaps(&TableFootprint::columns(T, [3, 4])));
        assert!(!w.overlaps(&TableFootprint::columns(U, [1, 2])));
    }

    #[test]
    fn cardinality_overlap() {
        // Inserting rows disturbs a count predicate even with disjoint
        // columns.
        let w = TableFootprint::rows(T, [0]);
        let count_pred = TableFootprint::rows(T, []);
        assert!(w.overlaps(&count_pred));
        // …but not a fixed-row column predicate on other columns.
        assert!(!w.overlaps(&TableFootprint::columns(T, [5])));
        // A pure column write never disturbs a pure count predicate.
        let w2 = TableFootprint::columns(T, [5]);
        assert!(!w2.overlaps(&count_pred));
    }

    #[test]
    fn step_footprint_interference() {
        // The paper's §5.1 example: new-order increments the district
        // counter (col 2), payment updates the district YTD (col 3). Their
        // footprints do not overlap, so the analysis lets them interleave.
        let district = TableId(7);
        let new_order = StepFootprint::new(
            StepTypeId(1),
            "new-order-s1",
            vec![TableFootprint::columns(district, [2])],
        );
        let counter_assertion = [TableFootprint::columns(district, [2])];
        let ytd_assertion = [TableFootprint::columns(district, [3])];
        assert!(new_order.interferes_with(&counter_assertion));
        assert!(!new_order.interferes_with(&ytd_assertion));
    }
}
