//! The design-time interference analysis (§3.1–3.2).
//!
//! Inputs: the assertion templates (read footprints), the step footprints
//! (write sets), and the designer's *semantic declarations*:
//!
//! * `declare_safe(step, template, why)` — the footprints overlap, but the
//!   designer has proved (in the paper: from the maximally reduced proof)
//!   that the step cannot actually falsify the template. Example: stock
//!   decrements commute with the new-order loop invariant.
//! * `declare_interferes(step, template, why)` — force a conservative entry
//!   that footprints alone would miss.
//!
//! [`DIRTY`](crate::assertion::DIRTY) is special: footprints cannot decide
//! whether overwriting *uncommitted* data is safe, so every analyzed step
//! conservatively interferes with `DIRTY` unless declared safe.
//!
//! The output is [`InterferenceTables`]; the analysis also produces a human-
//! readable report of every decision, which is how the per-benchmark
//! decomposition is documented.

use crate::assertion::AssertionRegistry;
use crate::footprint::StepFootprint;
use crate::tables::InterferenceTables;
use acc_common::{AssertionTemplateId, StepTypeId};
use std::collections::{HashMap, HashSet};

/// One recorded analysis decision.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Step type.
    pub step: StepTypeId,
    /// Assertion template.
    pub template: AssertionTemplateId,
    /// Final verdict.
    pub interferes: bool,
    /// How the verdict was reached.
    pub why: String,
}

/// The analysis builder.
pub struct Analysis<'a> {
    registry: &'a AssertionRegistry,
    steps: Vec<StepFootprint>,
    safe: HashMap<(StepTypeId, AssertionTemplateId), String>,
    forced: HashMap<(StepTypeId, AssertionTemplateId), String>,
    committed_readers: Vec<StepTypeId>,
}

impl<'a> Analysis<'a> {
    /// Start an analysis over the given templates.
    pub fn new(registry: &'a AssertionRegistry) -> Self {
        Analysis {
            registry,
            steps: Vec::new(),
            safe: HashMap::new(),
            forced: HashMap::new(),
            committed_readers: Vec::new(),
        }
    }

    /// Declare that an (analyzed) step type must only read committed data —
    /// its reads block on guard templates like an unanalyzed transaction's
    /// would (§3.3; e.g. TPC-C order-status reports to the customer and must
    /// not show a half-entered order).
    pub fn require_committed_reads(mut self, step: StepTypeId) -> Self {
        self.committed_readers.push(step);
        self
    }

    /// Register a step type's write footprint.
    pub fn step(mut self, fp: StepFootprint) -> Self {
        assert!(
            self.steps.iter().all(|s| s.step_type != fp.step_type),
            "duplicate footprint for {:?}",
            fp.step_type
        );
        self.steps.push(fp);
        self
    }

    /// Record that `step` provably does not invalidate `template` despite a
    /// footprint overlap (or despite the conservative `DIRTY` default).
    pub fn declare_safe(
        mut self,
        step: StepTypeId,
        template: AssertionTemplateId,
        why: impl Into<String>,
    ) -> Self {
        self.safe.insert((step, template), why.into());
        self
    }

    /// Force an interference entry footprints alone would miss.
    pub fn declare_interferes(
        mut self,
        step: StepTypeId,
        template: AssertionTemplateId,
        why: impl Into<String>,
    ) -> Self {
        self.forced.insert((step, template), why.into());
        self
    }

    /// Run the analysis.
    pub fn build(self) -> (InterferenceTables, Vec<Decision>) {
        let n = self.registry.len();
        let mut write: HashMap<StepTypeId, Vec<bool>> = HashMap::new();
        let mut decisions = Vec::new();
        for step in &self.steps {
            let mut row = vec![false; n];
            for template in self.registry.iter() {
                let key = (step.step_type, template.id);
                let (interferes, why) = if let Some(why) = self.forced.get(&key) {
                    (true, format!("declared: {why}"))
                } else if let Some(why) = self.safe.get(&key) {
                    (false, format!("declared safe: {why}"))
                } else if template.read_guard && !step.writes.is_empty() {
                    // DIRTY and type-specific guards: footprints cannot
                    // decide whether overwriting *uncommitted* data is safe.
                    // A step with an empty write footprint writes nothing at
                    // all, so the conservative default does not apply to it
                    // (and its all-clear write row makes it eligible for
                    // coordination-free version reads).
                    (
                        true,
                        "conservative default: may overwrite uncommitted data".to_owned(),
                    )
                } else if step.interferes_with(&template.reads) {
                    (true, "write footprint overlaps read footprint".to_owned())
                } else {
                    (false, "disjoint footprints".to_owned())
                };
                row[template.id.raw() as usize] = interferes;
                decisions.push(Decision {
                    step: step.step_type,
                    template: template.id,
                    interferes,
                    why,
                });
            }
            write.insert(step.step_type, row);
        }
        let read_guards: HashSet<AssertionTemplateId> = self
            .registry
            .iter()
            .filter(|t| t.read_guard)
            .map(|t| t.id)
            .collect();
        let mut tables = InterferenceTables::from_parts(write, read_guards, n);
        for s in &self.committed_readers {
            tables.set_committed_reader(*s);
        }
        (tables, decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assertion::DIRTY;
    use crate::footprint::TableFootprint;
    use acc_common::TableId;
    use acc_lockmgr::InterferenceOracle;

    // The paper's §4 order-processing example, reduced: new-order's loop
    // breaks the order/orderline count invariant I1; bill requires I1.
    #[test]
    fn section4_example_analysis() {
        let orders = TableId(0);
        let orderlines = TableId(1);
        let stock = TableId(2);

        let mut reg = AssertionRegistry::new();
        // I1(o): num_distinct_items of order o equals its orderline count.
        let i1 = reg.define(
            "I1-order-count",
            vec![
                TableFootprint::columns(orders, [2]),
                TableFootprint::rows(orderlines, []),
            ],
            None,
        );
        // New-order's loop invariant references the same items.
        let no_loop = reg.define(
            "new-order-loop",
            vec![
                TableFootprint::columns(orders, [2]),
                TableFootprint::rows(orderlines, []),
            ],
            None,
        );

        let no_s1 = StepTypeId(1); // insert into orders
        let no_s2 = StepTypeId(2); // insert one orderline, update stock
        let bill = StepTypeId(3); // totals prices, writes orders.price
        let no_cs = StepTypeId(4); // compensation: delete order + lines, restock

        let (tables, decisions) = Analysis::new(&reg)
            .step(StepFootprint::new(
                no_s1,
                "new-order-s1",
                vec![TableFootprint::rows(orders, [0, 1, 2, 3])],
            ))
            .step(StepFootprint::new(
                no_s2,
                "new-order-s2",
                vec![
                    TableFootprint::rows(orderlines, [0, 1, 2, 3]),
                    TableFootprint::columns(stock, [1]),
                ],
            ))
            .step(StepFootprint::new(
                bill,
                "bill",
                vec![TableFootprint::columns(orders, [3])],
            ))
            .step(StepFootprint::new(
                no_cs,
                "new-order-comp",
                vec![
                    TableFootprint::rows(orders, []),
                    TableFootprint::rows(orderlines, []),
                    TableFootprint::columns(stock, [1]),
                ],
            ))
            // §4: instances of new-order can interleave arbitrarily — each
            // works on its own order id, and stock decrements commute with
            // the loop invariant.
            .declare_safe(
                no_s2,
                no_loop,
                "each instance touches its own order's lines; stock decrements commute",
            )
            .declare_safe(
                no_s1,
                no_loop,
                "order ids are unique; inserting another order does not affect this order's lines",
            )
            .declare_safe(
                no_s2,
                DIRTY,
                "stock decrements commute; compensation restores by increment",
            )
            .build();

        // bill's required I1 is invalidated by both new-order steps…
        assert!(tables.write_interferes(no_s1, i1));
        assert!(tables.write_interferes(no_s2, i1));
        // …and by new-order's compensation (it removes orderlines).
        assert!(tables.write_interferes(no_cs, i1));
        // bill itself only touches orders.price: no interference with I1.
        assert!(!tables.write_interferes(bill, i1));
        // Declared-safe pairs for arbitrary new-order interleaving.
        assert!(!tables.write_interferes(no_s2, no_loop));
        assert!(!tables.write_interferes(no_s1, no_loop));
        assert!(!tables.write_interferes(no_s2, DIRTY));
        // DIRTY stays conservative where not declared.
        assert!(tables.write_interferes(no_s1, DIRTY));
        assert!(tables.write_interferes(bill, DIRTY));

        // Every (step, template) pair got a recorded decision.
        assert_eq!(decisions.len(), 4 * reg.len());
        assert!(decisions.iter().any(|d| d.why.contains("declared safe")));
    }

    #[test]
    #[should_panic(expected = "duplicate footprint")]
    fn duplicate_step_panics() {
        let reg = AssertionRegistry::new();
        let fp = || StepFootprint::new(StepTypeId(1), "s", vec![]);
        let _ = Analysis::new(&reg).step(fp()).step(fp());
    }

    #[test]
    fn forced_interference_wins() {
        let reg = AssertionRegistry::new();
        let s = StepTypeId(1);
        let (tables, _) = Analysis::new(&reg)
            .step(StepFootprint::new(s, "s", vec![]))
            .declare_interferes(s, DIRTY, "timing channel")
            .build();
        assert!(tables.write_interferes(s, DIRTY));
        assert!(tables.is_analyzed(s));
        assert!(!tables.is_analyzed(StepTypeId(9)));
    }
}
