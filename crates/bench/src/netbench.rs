//! Network front-end experiments: the `torture --net` sweep and the
//! `saturate` open-loop latency sweep.
//!
//! **`net_torture`** drives seeded smallbank traffic *through the wire
//! protocol* — framed requests into a real [`acc_server::Frontend`] over the
//! deterministic in-memory transport — and tortures every protocol boundary:
//!
//! 1. a clean baseline (every request answered, engine quiescent and
//!    auditable afterwards, WAL captured);
//! 2. seeded [`ConnPlan`] connection-fault sweeps (churn storms, requests
//!    dropped mid-frame, torn response writes, slow-loris delivery, torn
//!    request frames) with a **no-silent-loss audit**: every request ends in
//!    exactly one bucket, and the commits on the durable log equal exactly
//!    the commit responses the server produced — acknowledged or torn in
//!    transit, never silent;
//! 3. a crash sweep over the baseline's WAL: the image is cut at record
//!    boundaries, salvaged, recovered, compensation resumed — the same §3.4
//!    pipeline the engine-level tortures prove, here over a log written
//!    entirely by network-submitted transactions;
//! 4. a determinism check: the baseline re-run produces a byte-identical
//!    WAL and outcome log.
//!
//! **`saturate`** measures what admission control buys past saturation: an
//! open-loop Poisson arrival schedule sweeps multiples of the measured
//! saturation rate; the table reports accepted-request latency percentiles
//! and the typed-shed rate. The graceful-degradation criterion — p99 at 2×
//! overdrive within 5× of p99 at saturation, excess shed typed, zero lock
//! leakage — is checked in-process and reported as PASS/FAIL.

use acc_common::events::EventSink;
use acc_common::faults::ConnPlan;
use acc_common::{Error, Result, SeededRng};
use acc_engine::threaded::RetryPolicy;
use acc_server::{
    run_open_loop, ArrivalSchedule, CallOutcome, Frontend, LoadgenConfig, MemConn, Mix, Response,
    ServerConfig,
};
use acc_storage::Database;
use acc_txn::runner::rollback;
use acc_txn::{SharedDb, Transaction, TxnState};
use acc_wal::{recover, Wal};
use acc_workloads::smallbank::SmallbankKit;
use acc_workloads::torture::WorkloadKit;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::time::Duration;

const ACCOUNTS: i64 = 120;
const MASTER_SEED: u64 = 0x6e65_745f_7472_7431;

fn frontend(queue_cap: usize) -> Frontend {
    Frontend::smallbank(
        ACCOUNTS,
        &ServerConfig {
            workers: 1,
            queue_cap,
            engine_retry: RetryPolicy::standard(),
        },
    )
}

/// Outcome tally of one scripted run; the fields are the no-silent-loss
/// vocabulary.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Tally {
    offered: u64,
    committed_acked: u64,
    committed_unacked: u64,
    rolled_back: u64,
    lost_before_admission: u64,
    torn_down: u64,
    reconnects: u64,
}

impl Tally {
    fn line(&self) -> String {
        format!(
            "offered {} = committed {} (+{} unacked) + rolled-back {} + lost {} + torn {}; \
             {} reconnects",
            self.offered,
            self.committed_acked,
            self.committed_unacked,
            self.rolled_back,
            self.lost_before_admission,
            self.torn_down,
            self.reconnects
        )
    }
}

/// Drive `requests` seeded transactions through one scripted connection
/// (reconnecting whenever a fault kills it), tallying every fate.
fn drive(frontend: &Frontend, plan: ConnPlan, requests: u64, seed_base: u64) -> Result<Tally> {
    let mut tally = Tally::default();
    let mut conn = MemConn::open(frontend, plan);
    for i in 0..requests {
        if conn.dead() {
            conn = MemConn::open(frontend, plan);
            tally.reconnects += 1;
        }
        tally.offered += 1;
        match conn.call(frontend, seed_base + i, 0)? {
            CallOutcome::Delivered(Response::Committed { .. }) => tally.committed_acked += 1,
            CallOutcome::Delivered(Response::RolledBack { .. }) => tally.rolled_back += 1,
            CallOutcome::Delivered(other) => {
                return Err(Error::Internal(format!("unexpected response {other:?}")))
            }
            CallOutcome::ResponseTorn(Response::Committed { .. }) => tally.committed_unacked += 1,
            CallOutcome::ResponseTorn(_) => tally.rolled_back += 1,
            CallOutcome::LostBeforeAdmission(_) => tally.lost_before_admission += 1,
            CallOutcome::TornDown(_) => tally.torn_down += 1,
        }
    }
    Ok(tally)
}

/// The audit every scripted run must pass: each request in exactly one
/// bucket, commits on the log exactly the commit responses produced, the
/// recovered and live images consistent, and the engine quiescent.
fn audit_run(kit: &SmallbankKit, frontend: &Frontend, tally: &Tally) -> Result<()> {
    let accounted = tally.committed_acked
        + tally.committed_unacked
        + tally.rolled_back
        + tally.lost_before_admission
        + tally.torn_down;
    if accounted != tally.offered {
        return Err(Error::Internal(format!(
            "silent loss: {} offered, {accounted} accounted",
            tally.offered
        )));
    }
    // Commits on the durable log == commit responses (acked + torn-in-
    // transit). A lost *request* must have no commit; a torn *response*
    // must still be a commit the audit can see.
    let image = frontend.shared().wal_bytes();
    let mut db = kit.base();
    let report = recover(&mut db, &Wal::from_bytes(&image))?;
    if !report.needs_compensation.is_empty() {
        return Err(Error::Internal(format!(
            "{} in-flight transactions on a quiesced server's log",
            report.needs_compensation.len()
        )));
    }
    let commits_on_log = report.committed.len() as u64;
    let commit_responses = tally.committed_acked + tally.committed_unacked;
    if commits_on_log != commit_responses {
        return Err(Error::Internal(format!(
            "commit accounting hole: {commits_on_log} on log, {commit_responses} responded"
        )));
    }
    if let Some(violation) = kit.audit(&db).first() {
        return Err(Error::Internal(format!(
            "recovered image fails audit: {violation}"
        )));
    }
    if let Some(violation) = kit.audit(&frontend.shared().snapshot_db()).first() {
        return Err(Error::Internal(format!(
            "live image fails audit: {violation}"
        )));
    }
    if frontend.shared().total_grants() != 0 {
        return Err(Error::Internal("lock grants leaked".into()));
    }
    if frontend.shared().active_txns() != 0 {
        return Err(Error::Internal("active transactions leaked".into()));
    }
    if frontend.shared().registry().mixed_epoch_lookups() != 0 {
        return Err(Error::Internal("mixed-epoch lookups observed".into()));
    }
    Ok(())
}

/// Byte offsets just after each whole record frame in a WAL image.
fn record_offsets(image: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while image.len() - pos >= 12 {
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if image.len() - pos - 12 < len {
            break;
        }
        pos += 12 + len;
        out.push(pos);
    }
    out
}

/// One crash point over a network-written log: salvage, recover, resume
/// compensation, audit, account.
fn crash_point(kit: &SmallbankKit, base: &Database, bytes: &[u8]) -> Result<(usize, usize, usize)> {
    let salvaged = Wal::from_bytes(bytes);
    let txns_on_log: HashSet<_> = salvaged.records().iter().map(|r| r.txn()).collect();
    let mut db = base.clone();
    let report = recover(&mut db, &salvaged)?;
    let shared = SharedDb::new(db, kit.tables() as _);
    let acc = kit.acc();
    let mut compensated = 0usize;
    for inf in &report.needs_compensation {
        let mut program = kit.program_for_inflight(inf)?;
        let mut txn = Transaction::new(inf.txn, inf.txn_type);
        txn.steps_completed = inf.steps_completed;
        txn.step_index = inf.steps_completed;
        txn.state = TxnState::Active;
        rollback(&shared, &*acc, program.as_mut(), &mut txn)?;
        compensated += 1;
    }
    let replayed = report.committed.len() + report.aborted.len();
    let discarded = report.discarded.len();
    if replayed + compensated + discarded != txns_on_log.len() {
        return Err(Error::Internal(format!(
            "crash accounting hole: {} on log, {replayed}+{compensated}+{discarded} accounted",
            txns_on_log.len()
        )));
    }
    if let Some(violation) = kit.audit(&shared.snapshot_db()).first() {
        return Err(Error::Internal(format!(
            "crash point fails audit: {violation}"
        )));
    }
    if shared.total_grants() != 0 {
        return Err(Error::Internal(
            "crash-point compensation leaked lock grants".into(),
        ));
    }
    Ok((replayed, compensated, discarded))
}

/// The `figures -- torture --net` sweep. Panics (figure-harness convention)
/// if any audit fails.
pub fn net_torture(quick: bool) {
    let (requests, fault_plans, max_points) = if quick { (50, 4, 6) } else { (160, 10, 24) };
    let report = run_net_torture(requests, fault_plans, max_points).expect("net torture");
    print!("{report}");
}

fn run_net_torture(requests: u64, fault_plans: usize, max_points: usize) -> Result<String> {
    let mut log = String::new();
    let kit = SmallbankKit::build(ACCOUNTS);

    // Phase 1: clean baseline through the wire.
    let fe = frontend(8);
    let sink = EventSink::enabled(128);
    fe.shared().set_event_sink(sink);
    let clean = drive(&fe, ConnPlan::default(), requests, MASTER_SEED)?;
    audit_run(&kit, &fe, &clean)?;
    if clean.lost_before_admission + clean.torn_down != 0 || clean.reconnects != 0 {
        return Err(Error::Internal("clean plan lost requests".into()));
    }
    let baseline_image = fe.shared().wal_bytes();
    let _ = writeln!(
        log,
        "[net] baseline: {}; wal {} bytes",
        clean.line(),
        baseline_image.len()
    );
    fe.shutdown();

    // Phase 2: seeded connection-fault sweeps.
    let mut rng = SeededRng::new(MASTER_SEED ^ 0x636f_6e6e);
    for p in 0..fault_plans {
        let plan = ConnPlan::seeded(&mut rng);
        let fe = frontend(8);
        let sink = EventSink::enabled(128);
        fe.shared().set_event_sink(sink.clone());
        let tally = drive(
            &fe,
            plan,
            requests,
            MASTER_SEED + 1_000_000 * (p as u64 + 1),
        )?;
        audit_run(&kit, &fe, &tally)?;
        let churn = sink.counters().conn_churn;
        let _ = writeln!(
            log,
            "[net] plan {p}: {}; churn events {churn}",
            tally.line()
        );
        fe.shutdown();
    }

    // Phase 3: crash sweep over the network-written baseline log.
    let base = kit.base();
    let offsets = record_offsets(&baseline_image);
    let stride = offsets.len().div_ceil(max_points).max(1);
    let (mut points, mut replayed, mut compensated, mut discarded) = (0, 0, 0, 0);
    for (idx, &off) in offsets.iter().enumerate() {
        let last = idx == offsets.len() - 1;
        if idx % stride != 0 && !last {
            continue;
        }
        let (r, c, d) = crash_point(&kit, &base, &baseline_image[..off])?;
        points += 1;
        replayed += r;
        compensated += c;
        discarded += d;
    }
    let _ = writeln!(
        log,
        "[net] crash sweep: {points} points, {replayed} replayed, {compensated} compensated, \
         {discarded} discarded, 0 violations"
    );

    // Phase 4: determinism — same seeds, byte-identical WAL, identical tally.
    let fe = frontend(8);
    let rerun = drive(&fe, ConnPlan::default(), requests, MASTER_SEED)?;
    if fe.shared().wal_bytes() != baseline_image {
        return Err(Error::Internal(
            "re-run WAL differs from baseline: the served mix is not deterministic".into(),
        ));
    }
    if rerun != clean {
        return Err(Error::Internal("re-run tally differs from baseline".into()));
    }
    fe.shutdown();
    let _ = writeln!(log, "[net] determinism: re-run wal byte-identical");
    Ok(log)
}

/// Print the seeded arrival schedule and exit — a pure function of its
/// parameters, double-run byte-compared by `scripts/check.sh`.
pub fn saturate_schedule_dump(quick: bool) {
    let requests = if quick { 200 } else { 2000 };
    let schedule = ArrivalSchedule::generate(Mix::Smallbank, MASTER_SEED, 10_000.0, requests);
    print!("{}", schedule.dump());
}

/// The `figures -- saturate` sweep (wall-clock; the schedule is seeded but
/// service times are real).
pub fn saturate(quick: bool) {
    let requests = if quick { 400 } else { 3000 };
    let workers = 2usize;
    let queue_cap = 32usize;

    // Measure the saturation rate: overdrive an unbounded-queue front-end so
    // nothing sheds, and take the committed throughput as capacity.
    let fe = Frontend::smallbank(
        ACCOUNTS,
        &ServerConfig {
            workers,
            queue_cap: requests,
            engine_retry: RetryPolicy::standard(),
        },
    );
    let probe = ArrivalSchedule::generate(Mix::Smallbank, MASTER_SEED, 1e9, requests);
    let cal = run_open_loop(
        &fe,
        &probe,
        &LoadgenConfig {
            deadline: None,
            retry: RetryPolicy::disabled(),
        },
    );
    fe.shutdown();
    let saturation_tps = cal.committed_tps.max(1.0);
    println!(
        "saturation probe: {} committed in {:.1} ms -> {:.0} tps ({} workers, 1-core caveat: \
         workers and loadgen share the host)",
        cal.committed,
        cal.elapsed.as_secs_f64() * 1e3,
        saturation_tps,
        workers
    );
    println!(
        "{:>5} {:>10} {:>9} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "x",
        "rate",
        "committed",
        "shed",
        "deadline",
        "p50ms",
        "p95ms",
        "p99ms",
        "eng-rty",
        "cli-rty"
    );

    let mut p99_at_1x = None;
    let mut p99_at_2x = None;
    let mut shed_at_2x = 0u64;
    for mult in [0.25, 0.5, 1.0, 1.5, 2.0] {
        let rate = saturation_tps * mult;
        let fe = Frontend::smallbank(
            ACCOUNTS,
            &ServerConfig {
                workers,
                queue_cap,
                engine_retry: RetryPolicy::standard(),
            },
        );
        let schedule = ArrivalSchedule::generate(Mix::Smallbank, MASTER_SEED + 7, rate, requests);
        let report = run_open_loop(
            &fe,
            &schedule,
            &LoadgenConfig {
                deadline: Some(Duration::from_millis(250)),
                retry: RetryPolicy::disabled(),
            },
        );
        let settled = report.committed
            + report.shed
            + report.deadline_exceeded
            + report.rolled_back
            + report.errors;
        assert_eq!(
            settled, report.offered,
            "every request settles exactly once"
        );
        assert_eq!(report.errors, 0, "no protocol errors");
        assert_eq!(fe.shared().total_grants(), 0, "no lock leakage");
        assert_eq!(fe.shared().active_txns(), 0, "no active-txn leakage");
        if mult == 1.0 {
            p99_at_1x = Some(report.latency.p99_ms);
        }
        if mult == 2.0 {
            p99_at_2x = Some(report.latency.p99_ms);
            shed_at_2x = report.shed;
        }
        println!(
            "{:>5.2} {:>10.0} {:>9} {:>6} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>8} {:>8}",
            mult,
            rate,
            report.committed,
            report.shed,
            report.deadline_exceeded,
            report.latency.p50_ms,
            report.latency.p95_ms,
            report.latency.p99_ms,
            report.engine_retries,
            report.client_resubmits
        );
        fe.shutdown();
    }
    let (p1, p2) = (p99_at_1x.expect("1x ran"), p99_at_2x.expect("2x ran"));
    // Graceful degradation: overdrive must shed typed, and what *is*
    // accepted must still complete promptly (bounded queue in front of a
    // saturated pool; the deadline caps the worst case).
    let bounded = p2 <= (5.0 * p1).max(1.0);
    println!(
        "graceful degradation: p99@2x {:.3} ms vs p99@1x {:.3} ms (bound 5x), {} shed at 2x -> {}",
        p2,
        p1,
        shed_at_2x,
        if bounded && shed_at_2x > 0 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(
        bounded,
        "p99 at 2x overdrive exceeded 5x the saturation p99"
    );
    assert!(shed_at_2x > 0, "2x overdrive must shed typed Overloaded");
}
