//! The figure-regeneration harness.
//!
//! Each public function reproduces one figure or table of the paper's
//! evaluation (§5.3) on the deterministic simulator, printing the same
//! series the paper plots: the ratio of the unmodified (strict-2PL) system's
//! mean response time to the ACC's, as a function of the number of
//! terminals. See `EXPERIMENTS.md` for calibration and paper-vs-measured
//! numbers.

pub mod figures;
pub mod microbench;
pub mod mtbench;
pub mod netbench;
pub mod pagebench;
pub mod walbench;

pub use figures::{
    ablation_table, dump_tables, fig2, fig3, fig4, olcount_table, servers_table, sweep,
    twolevel_table, FigureParams, SweepPoint,
};
