//! Contended multi-thread benchmarks over the sharded runtime.
//!
//! Everything here measures wall-clock time on real threads, so none of it
//! belongs in `figures -- all` (whose output must stay byte-identical across
//! runs). Three entry points:
//!
//! - [`mtbench`] — lock-manager shard scaling plus the disjoint-warehouse /
//!   hot-district TPC-C microbench at 1/2/4/8 threads;
//! - [`retry_sweep`] — closed-loop calibration of [`RetryPolicy`]
//!   (max-retries × base-backoff) under a deliberately hot mix;
//! - [`stress`] — the release-mode 8-thread smoke `scripts/check.sh` runs:
//!   a short closed-loop soak that must end consistent with no leaked locks.
//!
//! Throughput numbers depend on the host (core count, scheduler); the
//! invariant checks (consistency audit, drained lock tables) do not.

use acc_common::events::EventSink;
use acc_common::rng::SeededRng;
use acc_common::{ResourceId, StepTypeId, TxnId};
use acc_engine::{run_closed_loop, ClosedLoopConfig, RetryPolicy, Workload};
use acc_lockmgr::ShardedLockManager;
use acc_lockmgr::{LockKind, NoInterference, Request, RequestCtx, RequestOutcome};
use acc_storage::{Database, Key};
use acc_tpcc::decompose::TpccSystem;
use acc_tpcc::input::{
    CustomerSelector, InputGen, NewOrderInput, OrderLineInput, OrderStatusInput, StockLevelInput,
    TpccConfig,
};
use acc_tpcc::schema::{tpcc_catalog, Scale};
use acc_tpcc::{consistency, populate, txns};
use acc_txn::runner::run;
use acc_txn::{ConcurrencyControl, RunOutcome, SharedDb, TxnProgram, WaitMode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Thread counts every table sweeps.
const THREADS: [usize; 4] = [1, 2, 4, 8];

pub(crate) fn parallelism_banner() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s) available");
    if cores < 4 {
        println!(
            "NOTE: fewer cores than benchmark threads — thread counts beyond \
             {cores} time-slice one core, so wall-clock scaling cannot appear \
             on this host; the tables below measure contention overhead only."
        );
    }
}

// ---------------------------------------------------------------------------
// Lock-manager shard scaling
// ---------------------------------------------------------------------------

/// One measurement: `threads` workers each do `iters` acquire/release pairs
/// against a shared [`ShardedLockManager`]. `disjoint` gives every worker a
/// private resource range (different shards, no lock conflicts — pure shard-
/// mutex scaling); otherwise all workers take S locks on the same 8 resources
/// (compatible grants, maximal shard-mutex contention).
fn lockmgr_ops_per_sec(threads: usize, iters: u64, disjoint: bool) -> f64 {
    let lm = Arc::new(ShardedLockManager::new(ShardedLockManager::DEFAULT_SHARDS));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let lm = Arc::clone(&lm);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            for i in 0..iters {
                let txn = TxnId(((t as u64) << 32) | i);
                let (r, kind) = if disjoint {
                    (
                        ResourceId::Named((t as u32) * 64 + (i % 64) as u32),
                        LockKind::X,
                    )
                } else {
                    (ResourceId::Named((i % 8) as u32), LockKind::S)
                };
                let out = lm.request(
                    Request::new(txn, r, kind, RequestCtx::plain(StepTypeId(1))),
                    &NoInterference,
                );
                assert_eq!(out, RequestOutcome::Granted);
                lm.release_all(txn, &NoInterference, &mut |_| {});
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("lockmgr bench worker panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(lm.total_grants(), 0, "lock table not drained");
    (threads as u64 * iters) as f64 / elapsed
}

// ---------------------------------------------------------------------------
// Contended TPC-C microbench
// ---------------------------------------------------------------------------

/// Per-cell outcome of the TPC-C microbench.
struct MtCell {
    committed: u64,
    aborted: u64,
    tps: f64,
}

/// Seeded new-order input pinned to `w_id`; `hot` forces district 1 (every
/// thread funnels into one district row), otherwise districts spread.
fn pinned_new_order(rng: &mut SeededRng, scale: &Scale, w_id: i64, hot: bool) -> NewOrderInput {
    let n = rng.int_range(5, 15);
    let lines = (0..n)
        .map(|_| OrderLineInput {
            i_id: rng.int_range(1, scale.items),
            supply_w_id: w_id,
            qty: rng.int_range(1, 10),
        })
        .collect();
    NewOrderInput {
        w_id,
        d_id: if hot {
            1
        } else {
            rng.int_range(1, scale.districts)
        },
        c_id: rng.int_range(1, scale.customers_per_district),
        lines,
        rollback: false,
    }
}

/// Run new-orders from `threads` worker threads for `duration`. In the
/// disjoint shape every thread owns its own warehouse (no data conflicts —
/// the run measures how well the decomposed runtime stays out of its own
/// way); in the hot shape all threads hammer warehouse 1 / district 1.
fn tpcc_cell(threads: usize, hot: bool, duration: Duration, seed: u64) -> MtCell {
    let scale = Scale {
        warehouses: if hot { 1 } else { threads as i64 },
        districts: 3,
        customers_per_district: 30,
        items: 100,
        initial_orders_per_district: 4,
    };
    let sys = TpccSystem::build();
    let mut db = Database::new(&tpcc_catalog());
    populate(&mut db, &scale, seed);
    let shared = Arc::new(SharedDb::new(db, Arc::clone(&sys.tables) as _));
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));

    let mut handles = Vec::new();
    for t in 0..threads {
        let shared = Arc::clone(&shared);
        let acc = Arc::clone(&sys.acc);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let w_id = if hot { 1 } else { t as i64 + 1 };
            let mut rng = SeededRng::new(seed ^ ((t as u64 + 1) << 8));
            let (mut committed, mut aborted) = (0u64, 0u64);
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let input = pinned_new_order(&mut rng, &scale, w_id, hot);
                let mut program: Box<dyn TxnProgram + Send> = Box::new(txns::NewOrder::new(input));
                match run(&shared, &*acc, program.as_mut(), WaitMode::Block) {
                    Ok(RunOutcome::Committed { .. }) => committed += 1,
                    Ok(RunOutcome::RolledBack(_)) => aborted += 1,
                    Err(e) => panic!("mtbench worker hit a hard error: {e}"),
                }
            }
            (committed, aborted)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let (mut committed, mut aborted) = (0u64, 0u64);
    for h in handles {
        let (c, a) = h.join().expect("mtbench worker panicked");
        committed += c;
        aborted += a;
    }
    let elapsed = start.elapsed().as_secs_f64();

    let violations = consistency::check(&shared.snapshot_db(), false);
    assert!(violations.is_empty(), "{violations:#?}");
    assert_eq!(shared.total_grants(), 0, "lock grants leaked");
    MtCell {
        committed,
        aborted,
        tps: committed as f64 / elapsed,
    }
}

/// Per-cell outcome of the read-mostly microbench.
struct ReadMostlyCell {
    reads: u64,
    writes: u64,
    read_tps: f64,
    version_reads: u64,
    version_fallbacks: u64,
    /// Pager counter delta over the measured window: physical page-latch
    /// traffic (these replaced the old table-stripe counters when storage
    /// went paged).
    pages: acc_storage::PagerCounters,
}

/// The hot-district read-mostly shape: one new-order writer hammering
/// warehouse 1 / district 1 while `readers` threads run order-status and
/// stock-level against the same district. With `mvcc` the read-only types
/// take the coordination-free version-read path; without it (the same policy
/// through [`Acc::without_version_reads`]) every read goes through the lock
/// manager and queues behind the writer's DIRTY pins.
fn readmostly_cell(readers: usize, mvcc: bool, duration: Duration, seed: u64) -> ReadMostlyCell {
    let scale = Scale {
        warehouses: 1,
        districts: 3,
        customers_per_district: 30,
        items: 100,
        initial_orders_per_district: 4,
    };
    let sys = TpccSystem::build();
    let acc: Arc<dyn ConcurrencyControl + Send + Sync> = if mvcc {
        Arc::clone(&sys.acc) as _
    } else {
        Arc::new(sys.acc.without_version_reads()) as _
    };
    let mut db = Database::new(&tpcc_catalog());
    populate(&mut db, &scale, seed);
    let shared = Arc::new(SharedDb::new(db, Arc::clone(&sys.tables) as _));
    let sink = EventSink::enabled(1 << 12);
    shared.set_event_sink(Arc::clone(&sink));
    let pages_base = shared.pager_counters();
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(readers + 2));

    // The writer: hot new-orders, same shape as the hot tpcc cell.
    let writer = {
        let shared = Arc::clone(&shared);
        let acc = Arc::clone(&acc);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut rng = SeededRng::new(seed ^ 0x57ea3);
            let mut committed = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let input = pinned_new_order(&mut rng, &scale, 1, true);
                let mut program: Box<dyn TxnProgram + Send> = Box::new(txns::NewOrder::new(input));
                match run(&shared, &*acc, program.as_mut(), WaitMode::Block) {
                    Ok(RunOutcome::Committed { .. }) => committed += 1,
                    Ok(RunOutcome::RolledBack(_)) => {}
                    Err(e) => panic!("read-mostly writer hit a hard error: {e}"),
                }
            }
            committed
        })
    };
    let mut handles = Vec::new();
    for t in 0..readers {
        let shared = Arc::clone(&shared);
        let acc = Arc::clone(&acc);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut rng = SeededRng::new(seed ^ ((t as u64 + 2) << 16));
            let mut committed = 0u64;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let mut program: Box<dyn TxnProgram + Send> = if rng.chance(0.5) {
                    Box::new(txns::OrderStatus::new(OrderStatusInput {
                        w_id: 1,
                        d_id: 1,
                        customer: CustomerSelector::ById(
                            rng.int_range(1, scale.customers_per_district),
                        ),
                    }))
                } else {
                    Box::new(txns::StockLevel::new(StockLevelInput {
                        w_id: 1,
                        d_id: 1,
                        threshold: rng.int_range(10, 20),
                    }))
                };
                match run(&shared, &*acc, program.as_mut(), WaitMode::Block) {
                    Ok(RunOutcome::Committed { .. }) => committed += 1,
                    Ok(RunOutcome::RolledBack(_)) => {}
                    Err(e) => panic!("read-mostly reader hit a hard error: {e}"),
                }
            }
            committed
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let writes = writer.join().expect("read-mostly writer panicked");
    let mut reads = 0u64;
    for h in handles {
        reads += h.join().expect("read-mostly reader panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();

    let violations = consistency::check(&shared.snapshot_db(), false);
    assert!(violations.is_empty(), "{violations:#?}");
    assert_eq!(shared.total_grants(), 0, "lock grants leaked");
    let c = sink.counters();
    if mvcc {
        assert!(
            c.version_reads > 0,
            "read-only types never took the version-read fast path"
        );
    } else {
        assert_eq!(c.version_reads, 0, "version reads under a no-MVCC policy");
    }
    ReadMostlyCell {
        reads,
        writes,
        read_tps: reads as f64 / elapsed,
        version_reads: c.version_reads,
        version_fallbacks: c.version_fallbacks,
        pages: shared.pager_counters() - pages_base,
    }
}

/// The contended multi-thread microbench: shard scaling of the raw lock
/// manager, then disjoint-warehouse vs hot-district TPC-C new-orders at
/// 1/2/4/8 threads. Prints two tables (speedups relative to one thread),
/// then one machine-readable JSON line per thread count — stable keys, one
/// object per line, so scripts can `grep '^{'` the output and parse without
/// scraping the human tables.
pub fn mtbench(quick: bool) {
    parallelism_banner();
    let iters: u64 = if quick { 20_000 } else { 100_000 };
    println!("\n=== sharded lock manager: acquire/release ops/s ({iters} iters/thread) ===");
    println!(
        "{:>7} {:>16} {:>9} {:>16} {:>9}",
        "threads", "disjoint ops/s", "speedup", "hot-shard ops/s", "speedup"
    );
    let mut lock_rows = Vec::new();
    let (mut base_d, mut base_h) = (0.0f64, 0.0f64);
    for &t in &THREADS {
        let d = lockmgr_ops_per_sec(t, iters, true);
        let h = lockmgr_ops_per_sec(t, iters, false);
        if t == 1 {
            base_d = d;
            base_h = h;
        }
        println!(
            "{t:>7} {d:>16.0} {:>8.2}x {h:>16.0} {:>8.2}x",
            d / base_d,
            h / base_h
        );
        lock_rows.push((d, h));
    }

    let duration = Duration::from_millis(if quick { 250 } else { 1000 });
    println!(
        "\n=== contended TPC-C new-orders, {} ms/cell (threaded engine, ACC) ===",
        duration.as_millis()
    );
    println!(
        "{:>7} {:>14} {:>9} {:>8} {:>14} {:>9} {:>8}",
        "threads", "disjoint tps", "speedup", "aborts", "hot tps", "speedup", "aborts"
    );
    let mut tpcc_rows = Vec::new();
    let (mut base_dt, mut base_ht) = (0.0f64, 0.0f64);
    for &t in &THREADS {
        let d = tpcc_cell(t, false, duration, 42);
        let h = tpcc_cell(t, true, duration, 42);
        if t == 1 {
            base_dt = d.tps;
            base_ht = h.tps;
        }
        println!(
            "{t:>7} {:>14.0} {:>8.2}x {:>8} {:>14.0} {:>8.2}x {:>8}",
            d.tps,
            d.tps / base_dt,
            d.aborted,
            h.tps,
            h.tps / base_ht,
            h.aborted
        );
        tpcc_rows.push((d, h));
    }

    println!(
        "\n=== hot-district read-mostly: 1 new-order writer + N readers, {} ms/cell ===",
        duration.as_millis()
    );
    println!(
        "{:>8} {:>15} {:>13} {:>8} {:>13} {:>10} {:>11} {:>9}",
        "readers",
        "lock-path r/s",
        "version r/s",
        "speedup",
        "version reads",
        "fallbacks",
        "latch waits",
        "restarts"
    );
    let mut rm_rows = Vec::new();
    for &t in &THREADS {
        let lock = readmostly_cell(t, false, duration, 42);
        let vers = readmostly_cell(t, true, duration, 42);
        println!(
            "{t:>8} {:>15.0} {:>13.0} {:>7.2}x {:>13} {:>10} {:>11} {:>9}",
            lock.read_tps,
            vers.read_tps,
            vers.read_tps / lock.read_tps.max(1e-9),
            vers.version_reads,
            vers.version_fallbacks,
            vers.pages.latch_waits,
            vers.pages.read_restarts
        );
        rm_rows.push((lock, vers));
    }

    println!();
    for (i, &t) in THREADS.iter().enumerate() {
        let (ld, lh) = lock_rows[i];
        let (d, h) = &tpcc_rows[i];
        println!(
            "{{\"bench\":\"mtbench\",\"threads\":{t},\
             \"lockmgr_disjoint_ops_per_s\":{ld:.0},\
             \"lockmgr_hot_ops_per_s\":{lh:.0},\
             \"tpcc_disjoint_tps\":{:.1},\"tpcc_disjoint_committed\":{},\
             \"tpcc_disjoint_aborted\":{},\
             \"tpcc_hot_tps\":{:.1},\"tpcc_hot_committed\":{},\
             \"tpcc_hot_aborted\":{}}}",
            d.tps, d.committed, d.aborted, h.tps, h.committed, h.aborted
        );
    }
    for (i, &t) in THREADS.iter().enumerate() {
        let (lock, vers) = &rm_rows[i];
        println!(
            "{{\"bench\":\"mtbench-readmostly\",\"readers\":{t},\
             \"lockpath_read_tps\":{:.1},\"lockpath_reads\":{},\"lockpath_writes\":{},\
             \"version_read_tps\":{:.1},\"version_reads_committed\":{},\"version_writes\":{},\
             \"version_reads\":{},\"version_fallbacks\":{},\
             \"lockpath_latch_waits\":{},\"lockpath_read_restarts\":{},\
             \"version_latch_waits\":{},\"version_read_restarts\":{}}}",
            lock.read_tps,
            lock.reads,
            lock.writes,
            vers.read_tps,
            vers.reads,
            vers.writes,
            vers.version_reads,
            vers.version_fallbacks,
            lock.pages.latch_waits,
            lock.pages.read_restarts,
            vers.pages.latch_waits,
            vers.pages.read_restarts
        );
    }
}

// ---------------------------------------------------------------------------
// Retry-policy calibration
// ---------------------------------------------------------------------------

struct TpccWorkload {
    gen: InputGen,
    districts: i64,
}

impl Workload for TpccWorkload {
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send> {
        txns::program_for(self.gen.next_input(rng), self.districts)
    }
}

/// One closed-loop run of the standard mix at test scale under `retry`.
fn retry_cell(retry: RetryPolicy, terminals: usize, duration: Duration, seed: u64) -> MtCell {
    let sys = TpccSystem::build();
    let scale = Scale::test();
    let mut db = Database::new(&tpcc_catalog());
    populate(&mut db, &scale, seed);
    let shared = Arc::new(SharedDb::new(db, Arc::clone(&sys.tables) as _));
    let cc = Arc::clone(&sys.acc) as _;
    let workload: Arc<dyn Workload> = Arc::new(TpccWorkload {
        gen: InputGen::new(TpccConfig::standard(scale), seed),
        districts: scale.districts,
    });
    let report = run_closed_loop(
        &shared,
        &cc,
        &workload,
        &ClosedLoopConfig {
            terminals,
            duration,
            think_time: Duration::ZERO,
            seed,
            retry,
        },
    );
    let violations = consistency::check(&shared.snapshot_db(), false);
    assert!(violations.is_empty(), "{violations:#?}");
    assert_eq!(shared.total_grants(), 0, "lock grants leaked");
    MtCell {
        committed: report.committed,
        aborted: report.aborted,
        tps: report.throughput_tps,
    }
}

// --- deadlock-prone transfer workload for the retry calibration ------------
//
// TPC-C acquires its locks in a consistent order, so deadlocks (the only
// thing a [`RetryPolicy`] retries besides dooms) are too rare to calibrate
// against. Transfers that update `from` then `to` in request order produce
// classic AB/BA cycles on demand: a handful of accounts and zero think time
// make the deadlock rate high enough that the retry knobs visibly move both
// goodput and wasted work.

const ACCOUNTS: acc_common::TableId = acc_common::TableId(0);

struct Transfer {
    from: i64,
    to: i64,
}

impl TxnProgram for Transfer {
    fn txn_type(&self) -> acc_common::TxnTypeId {
        acc_common::TxnTypeId(0)
    }
    fn step(
        &mut self,
        _i: u32,
        ctx: &mut acc_txn::StepCtx<'_>,
    ) -> acc_common::Result<acc_txn::StepOutcome> {
        let amount = acc_common::Decimal::from_int(1);
        ctx.update_key(ACCOUNTS, &Key::ints(&[self.from]), |r| {
            let b = r.decimal(1);
            r.set(1, acc_common::Value::from(b - amount));
        })?;
        ctx.update_key(ACCOUNTS, &Key::ints(&[self.to]), |r| {
            let b = r.decimal(1);
            r.set(1, acc_common::Value::from(b + amount));
        })?;
        Ok(acc_txn::StepOutcome::Done)
    }
}

struct TransferWorkload {
    accounts: i64,
}

impl Workload for TransferWorkload {
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send> {
        let from = rng.int_range(0, self.accounts - 1);
        let mut to = rng.int_range(0, self.accounts - 1);
        if to == from {
            to = (to + 1) % self.accounts;
        }
        Box::new(Transfer { from, to })
    }
}

struct RetryCell {
    committed: u64,
    aborted: u64,
    retries: u64,
    tps: f64,
}

/// One closed-loop run of the transfer workload under `retry`. Audits
/// balance conservation (committed transfers are zero-sum) and a drained
/// lock table.
fn transfer_cell(retry: RetryPolicy, terminals: usize, duration: Duration, seed: u64) -> RetryCell {
    const N_ACCOUNTS: i64 = 8;
    let mut catalog = acc_storage::Catalog::new();
    catalog.add_table(
        acc_storage::TableSchema::builder("accounts")
            .column("id", acc_storage::ColumnType::Int)
            .column("balance", acc_storage::ColumnType::Decimal)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    let mut db = Database::new(&catalog);
    for i in 0..N_ACCOUNTS {
        db.table_mut(ACCOUNTS)
            .expect("accounts table")
            .insert(acc_storage::Row::from(vec![
                acc_common::Value::Int(i),
                acc_common::Value::from(acc_common::Decimal::from_int(1000)),
            ]))
            .expect("populate");
    }
    let shared = Arc::new(SharedDb::new(db, Arc::new(NoInterference)));
    let cc: Arc<dyn acc_txn::ConcurrencyControl> = Arc::new(acc_txn::TwoPhase);
    let workload: Arc<dyn Workload> = Arc::new(TransferWorkload {
        accounts: N_ACCOUNTS,
    });
    let report = run_closed_loop(
        &shared,
        &cc,
        &workload,
        &ClosedLoopConfig {
            terminals,
            duration,
            think_time: Duration::ZERO,
            seed,
            retry,
        },
    );
    let total: acc_common::Decimal = shared
        .with_table(ACCOUNTS, |t| t.iter().map(|(_, r)| r.decimal(1)).sum())
        .expect("accounts table");
    assert_eq!(
        total,
        acc_common::Decimal::from_int(N_ACCOUNTS * 1000),
        "committed transfers must conserve balance"
    );
    assert_eq!(shared.total_grants(), 0, "lock grants leaked");
    RetryCell {
        committed: report.committed,
        aborted: report.aborted,
        retries: report.retries,
        tps: report.throughput_tps,
    }
}

/// Calibrate [`RetryPolicy`]: sweep max-retries × base-backoff under a
/// deadlock-prone 8-terminal transfer loop and print goodput, abort and
/// retry counts per cell. The *thrash point* is the corner where retries
/// balloon without raising goodput (deep retry budgets with no backoff) —
/// recorded in EXPERIMENTS.md from this table's output.
pub fn retry_sweep(quick: bool) {
    parallelism_banner();
    let duration = Duration::from_millis(if quick { 250 } else { 600 });
    let terminals = 8;
    println!(
        "\n=== retry-policy calibration: {terminals} terminals, 8-account transfers, {} ms/cell ===",
        duration.as_millis()
    );
    println!(
        "{:>11} {:>12} {:>12} {:>10} {:>9} {:>14}",
        "max_retries", "backoff", "committed/s", "aborts", "retries", "retries/commit"
    );
    for &max_retries in &[0u32, 1, 3, 6, 10] {
        let backoffs: &[u64] = if max_retries == 0 {
            &[0] // no retries → backoff is never consulted
        } else {
            &[0, 500, 2000, 8000]
        };
        for &base_us in backoffs {
            let retry = RetryPolicy {
                max_retries,
                base_backoff: Duration::from_micros(base_us),
                max_backoff: Duration::from_millis(16),
            };
            let cell = transfer_cell(retry, terminals, duration, 42);
            println!(
                "{max_retries:>11} {:>9} us {:>12.0} {:>10} {:>9} {:>14.2}",
                base_us,
                cell.tps,
                cell.aborted,
                cell.retries,
                cell.retries as f64 / cell.committed.max(1) as f64
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Release-mode stress smoke
// ---------------------------------------------------------------------------

/// One closed-loop soak of the fulfilment-saga mix under its *inferred*
/// interference tables (no hand analysis exists for this family), audited at
/// quiescence.
fn saga_cell(terminals: usize, duration: Duration, seed: u64) -> MtCell {
    use acc_workloads::torture::KitWorkload;
    use acc_workloads::{saga, WorkloadKit};
    let kit = Arc::new(saga::SagaKit::build(12, 8));
    let shared = Arc::new(SharedDb::new(kit.base(), kit.tables() as _));
    let cc = kit.acc() as _;
    let workload: Arc<dyn Workload> = Arc::new(KitWorkload(Arc::clone(&kit)));
    let report = run_closed_loop(
        &shared,
        &cc,
        &workload,
        &ClosedLoopConfig {
            terminals,
            duration,
            think_time: Duration::ZERO,
            seed,
            retry: RetryPolicy::standard(),
        },
    );
    let violations = kit.audit(&shared.snapshot_db());
    assert!(violations.is_empty(), "{violations:#?}");
    assert_eq!(shared.total_grants(), 0, "lock grants leaked");
    MtCell {
        committed: report.committed,
        aborted: report.aborted,
        tps: report.throughput_tps,
    }
}

/// The PR-gate stress smoke: 8-thread closed-loop soaks of the standard
/// TPC-C mix and of the fulfilment-saga mix (deep compensation chains,
/// inferred tables), each of which must end with its consistency audit
/// clean, the lock table drained, and a sane commit count. Exits non-zero on
/// failure so `scripts/check.sh` can gate on it.
pub fn stress(quick: bool) {
    parallelism_banner();
    let duration = Duration::from_millis(if quick { 500 } else { 1500 });
    println!(
        "\n=== stress smoke: 8 terminals, standard retry, {} ms ===",
        duration.as_millis()
    );
    let cell = retry_cell(RetryPolicy::standard(), 8, duration, 1337);
    acc_storage::latch_debug_assert_none_held("stress smoke end");
    println!(
        "committed={} aborted={} throughput={:.0} tps — consistency clean, locks drained",
        cell.committed, cell.aborted, cell.tps
    );
    if cell.committed == 0 {
        eprintln!("stress smoke committed nothing — runtime wedged");
        std::process::exit(1);
    }

    println!(
        "\n=== stress smoke: fulfilment saga, 8 terminals, standard retry, {} ms ===",
        duration.as_millis()
    );
    let cell = saga_cell(8, duration, 4242);
    acc_storage::latch_debug_assert_none_held("saga stress smoke end");
    println!(
        "committed={} aborted={} throughput={:.0} tps — saga audit clean, locks drained",
        cell.committed, cell.aborted, cell.tps
    );
    if cell.committed == 0 {
        eprintln!("saga stress smoke committed nothing — runtime wedged");
        std::process::exit(1);
    }
}
