//! Paged-storage microbench: raw B-tree page operations under the pager's
//! latch-crabbing protocol.
//!
//! Wall-clock (real threads), so it stays out of `figures -- all`. Four
//! phases over one table with small leaves:
//!
//! 1. sequential load — inserts/s and the split count for a bulk build;
//! 2. single-thread point reads — the uncontended descent rate;
//! 3. concurrent read-only scaling at 1/2/4/8 threads — optimistic read
//!    descents never block each other (latch waits stay ~0);
//! 4. readers + one writer — read descents validate against concurrent
//!    splits (restarts) instead of queuing behind a whole-table latch.
//!
//! Each phase prints a human line; machine-readable JSON lines (one object
//! per line, stable keys) follow for scripts.

use crate::mtbench::parallelism_banner;
use acc_common::{SeededRng, TableId, Value};
use acc_storage::{ColumnType, Key, PagerCounters, Row, Table, TableSchema};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Thread counts the concurrent phases sweep.
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn schema() -> TableSchema {
    let mut s = TableSchema::builder("pagebench")
        .column("k", ColumnType::Int)
        .column("a", ColumnType::Int)
        .column("b", ColumnType::Int)
        .key(&["k"])
        .rows_per_page(4) // small leaves: deep tree, frequent splits
        .build();
    s.id = TableId(0);
    s
}

fn row(k: i64) -> Row {
    Row(vec![Value::Int(k), Value::Int(k % 7), Value::Int(0)])
}

/// `readers` threads doing random point reads for a fixed per-thread count,
/// with an optional single writer updating random rows the whole time.
/// Returns (total reads, elapsed seconds, counter delta).
fn read_phase(
    table: &Arc<Table>,
    n_rows: i64,
    readers: usize,
    reads_per_thread: u64,
    with_writer: bool,
    seed: u64,
) -> (u64, f64, PagerCounters) {
    let before = table.pager_counters();
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(readers + 1 + usize::from(with_writer)));
    let writer = with_writer.then(|| {
        let t = Arc::clone(table);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        std::thread::spawn(move || {
            let mut rng = SeededRng::new(seed ^ 0xcafe);
            barrier.wait();
            let mut writes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let k = rng.int_range(0, n_rows - 1);
                if let Some(slot) = t.slot_of(&Key::ints(&[k])) {
                    let _ = t.update_with(slot, |r| {
                        r.set(2, Value::Int(writes as i64));
                    });
                    writes += 1;
                }
            }
            writes
        })
    });
    let mut handles = Vec::new();
    for r in 0..readers {
        let t = Arc::clone(table);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut rng = SeededRng::new(seed ^ ((r as u64 + 1) << 16));
            let mut found = 0u64;
            barrier.wait();
            for _ in 0..reads_per_thread {
                let k = rng.int_range(0, n_rows - 1);
                if t.get(&Key::ints(&[k])).is_some() {
                    found += 1;
                }
            }
            found
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut total = 0u64;
    for h in handles {
        total += h.join().expect("pagebench reader panicked");
    }
    let elapsed = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    if let Some(w) = writer {
        w.join().expect("pagebench writer panicked");
    }
    assert_eq!(
        total,
        readers as u64 * reads_per_thread,
        "every random key in range must be present"
    );
    (total, elapsed, table.pager_counters() - before)
}

/// The paged-storage microbench (see the module docs).
pub fn pagebench(quick: bool) {
    parallelism_banner();
    let n_rows: i64 = if quick { 20_000 } else { 100_000 };
    let reads_per_thread: u64 = if quick { 50_000 } else { 200_000 };
    let seed = 42u64;

    // Phase 1: sequential load.
    let table = Arc::new(Table::new(schema()));
    let start = Instant::now();
    for k in 0..n_rows {
        table.insert(row(k)).expect("load");
    }
    let load_s = start.elapsed().as_secs_f64();
    let load = table.pager_counters();
    println!(
        "\n=== pagebench: {n_rows} rows, leaf capacity 4 (pages: {}) ===",
        load.pages
    );
    println!(
        "load: {:>10.0} inserts/s  splits {}  page writes {}",
        n_rows as f64 / load_s,
        load.splits,
        load.page_writes
    );

    // Phases 2–3: read-only scaling.
    println!(
        "{:>8} {:>15} {:>9} {:>12} {:>10} {:>10}",
        "readers", "point reads/s", "speedup", "page reads", "latch waits", "restarts"
    );
    let mut rows = Vec::new();
    let mut base = 0.0f64;
    for &t in &THREADS {
        let (reads, elapsed, d) = read_phase(&table, n_rows, t, reads_per_thread, false, seed);
        let rps = reads as f64 / elapsed;
        if t == 1 {
            base = rps;
        }
        println!(
            "{t:>8} {rps:>15.0} {:>8.2}x {:>12} {:>10} {:>10}",
            rps / base,
            d.page_reads,
            d.latch_waits,
            d.read_restarts
        );
        rows.push((t, rps, d, false));
    }

    // Phase 4: readers vs one writer.
    println!("--- plus 1 writer (random in-place updates; reads validate, not queue) ---");
    for &t in &THREADS {
        let (reads, elapsed, d) = read_phase(&table, n_rows, t, reads_per_thread, true, seed);
        let rps = reads as f64 / elapsed;
        println!(
            "{t:>8} {rps:>15.0} {:>8.2}x {:>12} {:>10} {:>10}",
            rps / base,
            d.page_reads,
            d.latch_waits,
            d.read_restarts
        );
        rows.push((t, rps, d, true));
    }

    println!();
    println!(
        "{{\"bench\":\"pagebench-load\",\"rows\":{n_rows},\
         \"inserts_per_s\":{:.0},\"splits\":{},\"merges\":{},\
         \"page_writes\":{},\"pages\":{}}}",
        n_rows as f64 / load_s,
        load.splits,
        load.merges,
        load.page_writes,
        load.pages
    );
    for (t, rps, d, with_writer) in rows {
        println!(
            "{{\"bench\":\"pagebench\",\"readers\":{t},\"writer\":{},\
             \"point_reads_per_s\":{rps:.0},\"page_reads\":{},\
             \"latch_waits\":{},\"read_restarts\":{},\"splits\":{}}}",
            if with_writer { 1 } else { 0 },
            d.page_reads,
            d.latch_waits,
            d.read_restarts,
            d.splits
        );
    }
}
