//! Group-commit latency/throughput sweep (`figures -- wal`).
//!
//! Wall-clock, real threads, so — like `mtbench` — none of this belongs in
//! `figures -- all`. Each cell runs `threads` committers in a closed loop of
//! single-update transactions against a [`SharedDb`] whose WAL sits on a
//! [`MemDevice`] or a [`FileDevice`], under a given group-commit window (the
//! fsync interval the batch leader waits before flushing). Rows are disjoint
//! per thread, so the cell isolates the commit path: WAL append, parking on
//! the durable LSN, the leader's write+fsync.
//!
//! The interesting columns are `recs/fsync` (batch size actually achieved —
//! emergent, not configured) and the latency/throughput trade as the window
//! grows: wider windows coalesce more commits per fsync at the price of each
//! commit waiting out the window.

use acc_common::{Result, TableId, TxnTypeId, Value};
use acc_lockmgr::NoInterference;
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::runner::commit;
use acc_txn::{SharedDb, StepCtx, Transaction, TwoPhase, WaitMode};
use acc_wal::device::temp_log_path;
use acc_wal::{CommitWindow, FileDevice, GroupCommitPolicy, LogDevice, MemDevice};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const T: TableId = TableId(0);

fn counters_db(rows: i64) -> Database {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("counters")
            .column("id", ColumnType::Int)
            .column("n", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    let mut db = Database::new(&c);
    for id in 0..rows {
        db.table_mut(T)
            .expect("counters table")
            .insert(Row(vec![Value::Int(id), Value::Int(0)]))
            .expect("populate");
    }
    db
}

/// One committed read-modify-write of row `id`.
fn bump(s: &SharedDb, id: i64) -> Result<()> {
    let tid = s.begin_txn(TxnTypeId(0));
    let mut txn = Transaction::new(tid, TxnTypeId(0));
    {
        let two = TwoPhase;
        let mut ctx = StepCtx::new(s, &two, &mut txn, WaitMode::Block);
        ctx.update_key(T, &Key::ints(&[id]), |r| {
            let n = r.int(1);
            r.set(1, Value::Int(n + 1));
        })?;
    }
    commit(s, &mut txn)
}

struct WalCell {
    commits: u64,
    tps: f64,
    mean_latency_us: f64,
    fsyncs: u64,
    recs_per_fsync: f64,
}

fn wal_cell(
    dev: Box<dyn LogDevice>,
    window: CommitWindow,
    threads: usize,
    duration: Duration,
) -> WalCell {
    let policy = GroupCommitPolicy {
        window,
        max_batch: 256,
    };
    let shared = Arc::new(
        SharedDb::new(counters_db(threads as i64), Arc::new(NoInterference))
            .with_wal_backend(dev, policy),
    );
    let stop = Arc::new(AtomicBool::new(false));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let shared = Arc::clone(&shared);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut commits = 0u64;
            let mut latency = Duration::ZERO;
            barrier.wait();
            while !stop.load(Ordering::Relaxed) {
                let start = Instant::now();
                bump(&shared, t as i64).expect("walbench commit failed");
                latency += start.elapsed();
                commits += 1;
            }
            (commits, latency)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    let (mut commits, mut latency) = (0u64, Duration::ZERO);
    for h in handles {
        let (c, l) = h.join().expect("walbench worker panicked");
        commits += c;
        latency += l;
    }
    let elapsed = start.elapsed().as_secs_f64();

    // Every acknowledged commit is durable, and no commit left locks behind.
    assert_eq!(shared.durable_wal_records(), shared.wal_len() as u64);
    assert_eq!(shared.total_grants(), 0, "walbench leaked locks");
    let fsyncs = shared.wal_fsyncs();
    WalCell {
        commits,
        tps: commits as f64 / elapsed,
        mean_latency_us: latency.as_micros() as f64 / commits.max(1) as f64,
        fsyncs,
        recs_per_fsync: shared.durable_wal_records() as f64 / fsyncs.max(1) as f64,
    }
}

/// The `figures -- wal` sweep: device × group-commit window × committer
/// threads. Wall-clock; the durability and lock-drain invariants are
/// asserted per cell, the throughput numbers are host-dependent.
pub fn walbench(quick: bool) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("host parallelism: {cores} core(s) available");
    if cores < 4 {
        println!(
            "NOTE: fewer cores than committer threads — counts beyond {cores} \
             time-slice one core; the latency/batching columns remain \
             meaningful, wall-clock scaling does not."
        );
    }
    let duration = Duration::from_millis(if quick { 150 } else { 400 });
    let threads: &[usize] = if quick { &[1, 4] } else { &[1, 4, 8] };
    // Fixed windows plus the rate-adaptive policy (floor 50 µs, ceil 2 ms):
    // the adaptive rows should stay near window-0 wherever flushes retire
    // ~one commit each (lone committer; mem device) and engage a window
    // sized to the arrival rate where coalescing pays (file device under
    // concurrency) — without hand-tuning.
    let mut windows: Vec<(String, CommitWindow)> = if quick {
        vec![0u64, 200]
    } else {
        vec![0, 100, 500, 2000]
    }
    .into_iter()
    .map(|us| {
        (
            format!("{us} us"),
            CommitWindow::Fixed(Duration::from_micros(us)),
        )
    })
    .collect();
    windows.push((
        "adaptive".to_string(),
        CommitWindow::Adaptive {
            floor: Duration::from_micros(50),
            ceil: Duration::from_millis(2),
        },
    ));
    println!(
        "\n=== group commit: single-update commits, {} ms/cell, max_batch 256 ===",
        duration.as_millis()
    );
    println!(
        "{:>6} {:>10} {:>8} {:>12} {:>12} {:>14} {:>10} {:>11}",
        "device",
        "window",
        "threads",
        "commits",
        "commits/s",
        "mean lat us",
        "fsyncs",
        "recs/fsync"
    );
    for kind in ["mem", "file"] {
        for (label, win) in &windows {
            for &t in threads {
                let path = temp_log_path(&format!("walbench-{label}-{t}").replace(' ', ""));
                let dev: Box<dyn LogDevice> = match kind {
                    "mem" => Box::new(MemDevice::new()),
                    _ => {
                        let _ = std::fs::remove_file(&path);
                        Box::new(FileDevice::create(&path).expect("create bench log"))
                    }
                };
                let cell = wal_cell(dev, *win, t, duration);
                if kind == "file" {
                    let _ = std::fs::remove_file(&path);
                }
                println!(
                    "{kind:>6} {label:>10} {t:>8} {:>12} {:>12.0} {:>14.1} {:>10} {:>11.1}",
                    cell.commits, cell.tps, cell.mean_latency_us, cell.fsyncs, cell.recs_per_fsync
                );
            }
        }
    }
}

/// The `figures -- torture --fsync` smoke: the fsync-boundary crash sweep
/// (both devices, tears, injector cross-validation) at smoke scale. Exits
/// non-zero on any violation so `scripts/check.sh` can gate on it.
pub fn fsync_torture(quick: bool) {
    use acc_tpcc::torture::{run_fsync_torture, FsyncTortureConfig};
    let cfg = if quick {
        FsyncTortureConfig::smoke(42)
    } else {
        FsyncTortureConfig::standard(42)
    };
    let report = run_fsync_torture(&cfg).expect("fsync torture harness failed");
    println!(
        "fsync torture: {} boundaries, {} crash points, replayed {}, \
         compensated {}, discarded {}, rejected {} records, {} violations",
        report.boundaries,
        report.points,
        report.replayed,
        report.compensated,
        report.discarded,
        report.rejected_records,
        report.violations
    );
    if report.violations > 0 {
        eprintln!("{}", report.log);
        std::process::exit(1);
    }
}

/// The `figures -- torture --reanalysis` smoke: an online table re-analysis
/// (epoch switchover) at every step boundary of the seeded mix, plus the
/// crash sweep recovering under the edited tables. Exits non-zero on any
/// consistency violation or mixed-epoch lookup so `scripts/check.sh` can
/// gate on it.
pub fn reanalysis_torture(quick: bool) {
    use acc_tpcc::torture::{run_reanalysis_torture, ReanalysisTortureConfig};
    let cfg = if quick {
        ReanalysisTortureConfig::smoke(42)
    } else {
        ReanalysisTortureConfig::standard(42)
    };
    let report = run_reanalysis_torture(&cfg).expect("reanalysis torture harness failed");
    println!(
        "reanalysis torture: {} boundaries, {} switchovers ({} pins drained, \
         {} immediate), {} crash points under edited tables, replayed {}, \
         compensated {}, discarded {}, {} violations, {} mixed-epoch lookups",
        report.boundaries,
        report.switch_points,
        report.drained,
        report.immediate_installs,
        report.crash_points,
        report.replayed,
        report.compensated,
        report.discarded,
        report.violations,
        report.mixed_epoch_lookups
    );
    if report.violations > 0 || report.mixed_epoch_lookups > 0 {
        eprintln!("{}", report.log);
        std::process::exit(1);
    }
}

/// The `figures -- torture --ship` smoke: WAL-shipping replication crashed
/// at every ship boundary on both sides — leader death after a partial ship
/// (promote the follower), follower death mid-replay (salvage + chain
/// handshake + re-ship) — plus hostile-transport and divergence points.
/// Exits non-zero on any violation so `scripts/check.sh` can gate on it.
pub fn ship_torture(quick: bool) {
    use acc_tpcc::torture::{run_ship_torture, ShipTortureConfig};
    let cfg = if quick {
        ShipTortureConfig::smoke(42)
    } else {
        ShipTortureConfig::standard(42)
    };
    let report = run_ship_torture(&cfg).expect("ship torture harness failed");
    println!(
        "ship torture: {} ship boundaries, {} points, replayed {}, \
         compensated {}, discarded {}, {} refusals, {} resumes, {} violations",
        report.boundaries,
        report.points,
        report.replayed,
        report.compensated,
        report.discarded,
        report.refusals,
        report.resumes,
        report.violations
    );
    if report.violations > 0 {
        eprintln!("{}", report.log);
        std::process::exit(1);
    }
}
