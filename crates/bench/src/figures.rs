//! Sweep machinery for the paper's experiments.
//!
//! All experiments share one setup (§5.3): 1 warehouse, 10 districts, three
//! database servers (except the server-scaling table), terminals swept along
//! the x-axis, and the ordinate `ratio = mean_response(non-ACC) /
//! mean_response(ACC)` — a value above 1.0 means the ACC is faster.

use acc_common::clock::SimTime;
use acc_sim::{CcMode, CostModel, SimConfig, SimReport, Simulator};
use acc_tpcc::decompose::TpccSystem;
use acc_tpcc::input::TpccConfig;
use acc_tpcc::schema::Scale;
use acc_tpcc::trace::TraceCosts;
use acc_tpcc::TpccTraceSource;

/// Everything one experiment needs.
#[derive(Debug, Clone)]
pub struct FigureParams {
    /// Database server processes (paper: 3, except the scaling table).
    pub servers: usize,
    /// Terminal counts to sweep.
    pub terminals: Vec<usize>,
    /// TPC-C configuration (standard or skewed districts).
    pub tpcc: TpccConfig,
    /// Per-statement CPU and injected compute time.
    pub costs: TraceCosts,
    /// Simulated seconds measured (after warm-up).
    pub measure_s: u64,
    /// Warm-up seconds discarded.
    pub warmup_s: u64,
    /// Base seed.
    pub seed: u64,
}

impl FigureParams {
    /// The shared defaults: 3 servers, the paper's terminal sweep, standard
    /// TPC-C at benchmark scale, no injected compute time.
    pub fn baseline() -> FigureParams {
        FigureParams {
            servers: 3,
            terminals: vec![1, 10, 20, 30, 40, 50, 60],
            tpcc: TpccConfig::standard(Scale::benchmark()),
            costs: TraceCosts::default(),
            measure_s: 600,
            warmup_s: 100,
            seed: 42,
        }
    }

    /// A faster sweep for smoke tests.
    pub fn quick() -> FigureParams {
        FigureParams {
            terminals: vec![1, 20, 40, 60],
            measure_s: 200,
            warmup_s: 40,
            ..Self::baseline()
        }
    }
}

/// One x-axis point: both systems measured under identical load.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Number of terminals.
    pub terminals: usize,
    /// The unmodified (strict 2PL) system.
    pub two_phase: SimReport,
    /// The ACC.
    pub acc: SimReport,
}

impl SweepPoint {
    /// The paper's ordinate: non-ACC mean response / ACC mean response.
    pub fn response_ratio(&self) -> f64 {
        self.two_phase.mean_response_ms / self.acc.mean_response_ms
    }

    /// Fig. 4's second series: non-ACC completions / ACC completions
    /// (drops below 1.0 when the ACC completes more work).
    pub fn throughput_ratio(&self) -> f64 {
        self.two_phase.throughput_tps / self.acc.throughput_tps
    }
}

fn run_one(params: &FigureParams, mode: CcMode, terminals: usize) -> SimReport {
    run_custom(params, mode, terminals, CostModel::default(), true)
}

fn run_custom(
    params: &FigureParams,
    mode: CcMode,
    terminals: usize,
    costs: CostModel,
    release_at_step_end: bool,
) -> SimReport {
    let sys = TpccSystem::build();
    let mut source = TpccTraceSource::new(
        params.tpcc.clone(),
        params.seed ^ (terminals as u64) << 8,
        sys.templates,
        params.costs.clone(),
    );
    let two_level_templates = if mode == CcMode::AccTwoLevel {
        vec![
            sys.templates.no_loop,
            sys.templates.pay_mid,
            sys.templates.dlv_loop,
        ]
    } else {
        Vec::new()
    };
    let config = SimConfig {
        mode,
        servers: params.servers,
        terminals,
        // TPC-C terminals key and think for tens of seconds between
        // transactions; 6 s mean reproduces the paper's load regime (a
        // handful of concurrently active transactions at 60 terminals).
        think_time: SimTime::from_millis(6_000),
        duration: SimTime::from_micros((params.warmup_s + params.measure_s) * 1_000_000),
        warmup: SimTime::from_micros(params.warmup_s * 1_000_000),
        seed: params.seed ^ (terminals as u64),
        costs,
        release_at_step_end,
        two_level_templates,
    };
    // The two-level design must also use the two-level analysis: item-
    // identity arguments are unavailable to it, so several declared-safe
    // pairs stay conservatively interfering.
    let oracle = if mode == CcMode::AccTwoLevel {
        &*sys.two_level_tables
    } else {
        &*sys.tables
    };
    Simulator::new(config, oracle, &mut source).run()
}

/// **§3.2 comparison** — the one-level ACC against the earlier two-level
/// design, whose assertional locks lack item identity and hit false
/// conflicts ("if it cannot be determined at design time that the two
/// transactions will access different accounts").
pub fn twolevel_table(params: &FigureParams) -> Vec<(usize, SimReport, SimReport)> {
    let rows: Vec<(usize, SimReport, SimReport)> = params
        .terminals
        .iter()
        .map(|&terminals| {
            (
                terminals,
                run_custom(params, CcMode::Acc, terminals, CostModel::default(), true),
                run_custom(
                    params,
                    CcMode::AccTwoLevel,
                    terminals,
                    CostModel::default(),
                    true,
                ),
            )
        })
        .collect();
    println!("\n=== §3.2: one-level vs two-level ACC ===");
    println!(
        "{:>9} | {:>15} {:>15} | {:>16}",
        "terminals", "1-level rt (ms)", "2-level rt (ms)", "2-level/1-level"
    );
    println!("{}", "-".repeat(64));
    for (terminals, one, two) in &rows {
        println!(
            "{:>9} | {:>15.1} {:>15.1} | {:>16.3}",
            terminals,
            one.mean_response_ms,
            two.mean_response_ms,
            two.mean_response_ms / one.mean_response_ms
        );
    }
    rows
}

/// Sweep terminals, running both systems at every point.
pub fn sweep(params: &FigureParams) -> Vec<SweepPoint> {
    params
        .terminals
        .iter()
        .map(|&terminals| SweepPoint {
            terminals,
            two_phase: run_one(params, CcMode::TwoPhase, terminals),
            acc: run_one(params, CcMode::Acc, terminals),
        })
        .collect()
}

/// One machine-readable JSON line for a single (mode, load) measurement,
/// carrying the response-time headline plus the sink's lock/contention
/// counters. Hand-built (the workspace is dependency-free); keys are stable.
fn report_json(
    experiment: &str,
    series: &str,
    terminals: usize,
    mode: &str,
    r: &SimReport,
) -> String {
    let c = &r.counters;
    format!(
        concat!(
            "{{\"experiment\":\"{}\",\"series\":\"{}\",\"terminals\":{},",
            "\"mode\":\"{}\",\"mean_response_ms\":{:.3},\"p95_response_ms\":{:.3},",
            "\"throughput_tps\":{:.3},\"deadlocks\":{},\"lock_requests\":{},",
            "\"lock_waits\":{},\"mean_lock_wait_ms\":{:.3},\"assertion_pins\":{},",
            "\"interference_hits\":{},\"conservative_denials\":{},",
            "\"deadlock_cycles\":{},\"deadlock_victims\":{},\"compensations\":{},",
            "\"version_reads\":{},\"version_fallbacks\":{}}}"
        ),
        experiment,
        series,
        terminals,
        mode,
        r.mean_response_ms,
        r.p95_response_ms,
        r.throughput_tps,
        r.deadlocks,
        c.lock_requests,
        c.lock_waits,
        c.mean_wait_ms(),
        c.assertion_pins,
        c.interference_hits,
        c.conservative_denials,
        c.deadlocks,
        c.deadlock_victims,
        c.compensations,
        c.version_reads,
        c.version_fallbacks,
    )
}

/// Emit the sweep as JSON lines (one per mode per point) for downstream
/// scripting; printed after each human-readable table.
fn print_json(experiment: &str, series: &str, points: &[SweepPoint]) {
    for p in points {
        println!(
            "{}",
            report_json(experiment, series, p.terminals, "2pl", &p.two_phase)
        );
        println!(
            "{}",
            report_json(experiment, series, p.terminals, "acc", &p.acc)
        );
    }
}

fn print_header(title: &str) {
    println!("\n=== {title} ===");
    println!(
        "{:>9} | {:>12} {:>12} | {:>9} | {:>9} | {:>7} {:>7} | {:>5} {:>5}",
        "terminals",
        "2PL rt (ms)",
        "ACC rt (ms)",
        "rt ratio",
        "tp ratio",
        "2PL tps",
        "ACC tps",
        "2PLdl",
        "ACCdl"
    );
    println!("{}", "-".repeat(100));
}

fn print_points(points: &[SweepPoint]) {
    for p in points {
        println!(
            "{:>9} | {:>12.1} {:>12.1} | {:>9.3} | {:>9.3} | {:>7.1} {:>7.1} | {:>5} {:>5}",
            p.terminals,
            p.two_phase.mean_response_ms,
            p.acc.mean_response_ms,
            p.response_ratio(),
            p.throughput_ratio(),
            p.two_phase.throughput_tps,
            p.acc.throughput_tps,
            p.two_phase.deadlocks,
            p.acc.deadlocks,
        );
    }
}

/// **Figure 2** — the effect of hotspots: the ratio curve with the standard
/// (uniform) district distribution and with a skewed one.
pub fn fig2(params: &FigureParams) -> (Vec<SweepPoint>, Vec<SweepPoint>) {
    let standard = sweep(params);
    let mut skewed_params = params.clone();
    skewed_params.tpcc = TpccConfig::skewed(params.tpcc.scale);
    let skewed = sweep(&skewed_params);

    print_header("Figure 2: The Effect of Hotspots — Standard district distribution");
    print_points(&standard);
    print_header("Figure 2: The Effect of Hotspots — Skewed district distribution");
    print_points(&skewed);
    print_json("fig2", "standard", &standard);
    print_json("fig2", "skewed", &skewed);
    (standard, skewed)
}

/// **Figure 3** — the effect of transaction duration: with and without
/// several milliseconds of compute time between successive SQL statements.
pub fn fig3(params: &FigureParams) -> (Vec<SweepPoint>, Vec<SweepPoint>) {
    let without = sweep(params);
    let mut with_params = params.clone();
    with_params.costs = TraceCosts {
        compute_time: SimTime::from_millis(3),
        ..params.costs.clone()
    };
    let with = sweep(&with_params);

    print_header("Figure 3: The Effect of Transaction Duration — w/o compute time");
    print_points(&without);
    print_header("Figure 3: The Effect of Transaction Duration — with compute time");
    print_points(&with);
    print_json("fig3", "no_compute", &without);
    print_json("fig3", "with_compute", &with);
    (without, with)
}

/// **Figure 4** — response time *and* throughput ratios on the standard
/// configuration.
pub fn fig4(params: &FigureParams) -> Vec<SweepPoint> {
    let points = sweep(params);
    print_header("Figure 4: Response Time and Throughput");
    print_points(&points);
    print_json("fig4", "standard", &points);
    points
}

/// **§5.3, fourth experiment** (described, not plotted): server scaling.
/// With one server the server is the bottleneck and the ACC's overhead makes
/// it slightly slower; with several, lock contention dominates and the ACC
/// wins.
pub fn servers_table(params: &FigureParams) -> Vec<(usize, SweepPoint)> {
    let terminals = *params.terminals.last().expect("non-empty sweep");
    let mut rows = Vec::new();
    for servers in 1..=3 {
        let mut p = params.clone();
        p.servers = servers;
        let point = SweepPoint {
            terminals,
            two_phase: run_one(&p, CcMode::TwoPhase, terminals),
            acc: run_one(&p, CcMode::Acc, terminals),
        };
        rows.push((servers, point));
    }
    println!("\n=== Experiment 4: Database server scaling ({terminals} terminals) ===");
    println!(
        "{:>7} | {:>12} {:>12} | {:>9} | {:>11} {:>11}",
        "servers", "2PL rt (ms)", "ACC rt (ms)", "rt ratio", "2PL util", "ACC util"
    );
    println!("{}", "-".repeat(74));
    for (servers, p) in &rows {
        println!(
            "{:>7} | {:>12.1} {:>12.1} | {:>9.3} | {:>11.2} {:>11.2}",
            servers,
            p.two_phase.mean_response_ms,
            p.acc.mean_response_ms,
            p.response_ratio(),
            p.two_phase.server_utilisation,
            p.acc.server_utilisation,
        );
    }
    rows
}

/// **§5.2, lock-duration knob #2** — "increasing the number of items in an
/// order" lengthens new-order and delivery. Compares the standard 5–15
/// order-line range against a 10–20 range.
pub fn olcount_table(params: &FigureParams) -> (Vec<SweepPoint>, Vec<SweepPoint>) {
    let standard = sweep(params);
    let mut long = params.clone();
    long.tpcc.min_ol = 10;
    long.tpcc.max_ol = 20;
    let longer = sweep(&long);
    print_header("§5.2 knob: order-line count 5–15 (standard)");
    print_points(&standard);
    print_header("§5.2 knob: order-line count 10–20 (longer transactions)");
    print_points(&longer);
    print_json("olcount", "ol_5_15", &standard);
    print_json("olcount", "ol_10_20", &longer);
    (standard, longer)
}

/// Ablations of the ACC's two ingredients at the most contended point of
/// the sweep: the step-boundary lock release (the mechanism) and the
/// per-step CPU overhead (the cost).
pub fn ablation_table(params: &FigureParams) -> Vec<(String, SimReport)> {
    let terminals = *params.terminals.last().expect("non-empty sweep");
    let free = CostModel {
        assert_op: SimTime::ZERO,
        step_end: SimTime::ZERO,
        ..CostModel::default()
    };
    let double = CostModel {
        assert_op: SimTime::from_micros(320),
        step_end: SimTime::from_micros(2_400),
        ..CostModel::default()
    };
    let rows = vec![
        (
            "strict 2PL (baseline)".to_owned(),
            run_custom(
                params,
                CcMode::TwoPhase,
                terminals,
                CostModel::default(),
                true,
            ),
        ),
        (
            "ACC (full)".to_owned(),
            run_custom(params, CcMode::Acc, terminals, CostModel::default(), true),
        ),
        (
            "ACC w/o step release".to_owned(),
            run_custom(params, CcMode::Acc, terminals, CostModel::default(), false),
        ),
        (
            "ACC w/ zero overhead".to_owned(),
            run_custom(params, CcMode::Acc, terminals, free, true),
        ),
        (
            "ACC w/ 2x overhead".to_owned(),
            run_custom(params, CcMode::Acc, terminals, double, true),
        ),
    ];
    println!(
        "\n=== Ablations ({terminals} terminals, {} servers) ===",
        params.servers
    );
    println!(
        "{:<24} {:>12} {:>9} {:>7}",
        "variant", "mean rt (ms)", "tps", "dl"
    );
    println!("{}", "-".repeat(56));
    for (name, r) in &rows {
        println!(
            "{:<24} {:>12.1} {:>9.1} {:>7}",
            name, r.mean_response_ms, r.throughput_tps, r.deadlocks
        );
    }
    rows
}

/// Run one short, highly contended simulation (skewed districts, maximum
/// terminals of the sweep, ACC) and print the event sink's `lockstat` dump:
/// counter summary, top contended resources, wait-time histogram, and
/// deadlock cycle traces, followed by the same counters as a JSON line.
pub fn lockstat(params: &FigureParams) -> SimReport {
    let terminals = *params.terminals.last().expect("non-empty sweep");
    let sys = TpccSystem::build();
    let mut source = TpccTraceSource::new(
        TpccConfig::skewed(params.tpcc.scale),
        params.seed,
        sys.templates,
        params.costs.clone(),
    );
    let config = SimConfig {
        mode: CcMode::Acc,
        servers: params.servers,
        terminals,
        // Short think time = high contention: the point here is to exercise
        // the lock table, not to reproduce the paper's load regime.
        think_time: SimTime::from_millis(2_000),
        duration: SimTime::from_micros(60_000_000),
        warmup: SimTime::from_micros(10_000_000),
        seed: params.seed,
        costs: CostModel::default(),
        release_at_step_end: true,
        two_level_templates: Vec::new(),
    };
    let sim = Simulator::new(config, &*sys.tables, &mut source);
    let sink = sim.event_sink();
    let report = sim.run();
    println!(
        "\n=== lockstat: skewed TPC-C, {terminals} terminals, {} servers, ACC ===",
        params.servers
    );
    print!("{}", sink.lockstat_dump());
    pagestat(params.seed);
    println!(
        "{}",
        report_json("lockstat", "skewed", terminals, "acc", &report)
    );
    report
}

/// The physical-storage counterpart of the lockstat dump: populate the TPC-C
/// database at test scale and print the pager counters the load produced.
/// The trace-driven simulator above never touches real storage, so its page
/// counters would read zero; this section is the deterministic (single-
/// threaded, seeded) view of page-latch traffic — the per-page counters that
/// replaced the old whole-table stripe counters.
fn pagestat(seed: u64) {
    use acc_tpcc::schema::tpcc_catalog;
    let mut db = acc_storage::Database::new(&tpcc_catalog());
    acc_tpcc::populate(&mut db, &Scale::test(), seed);
    let c = db
        .tables()
        .map(acc_storage::Table::pager_counters)
        .fold(acc_storage::PagerCounters::default(), |a, b| a + b);
    println!("== pagestat: paged storage after test-scale populate ==");
    println!(
        "pages {}  page reads {}  page writes {}  splits {}  merges {}  \
         latch waits {}  read restarts {}",
        c.pages, c.page_reads, c.page_writes, c.splits, c.merges, c.latch_waits, c.read_restarts
    );
    println!(
        "{{\"bench\":\"pagestat\",\"pages\":{},\"page_reads\":{},\
         \"page_writes\":{},\"splits\":{},\"merges\":{},\
         \"latch_waits\":{},\"read_restarts\":{}}}",
        c.pages, c.page_reads, c.page_writes, c.splits, c.merges, c.latch_waits, c.read_restarts
    );
}

/// Run the crash-torture sweep (see `acc_tpcc::torture`): a seeded TPC-C mix
/// crashed at every WAL-append index plus seeded torn-tail and bit-flip
/// corruptions, each salvaged image recovered, compensated, and audited
/// against the §3.3.2 consistency conditions. Prints the per-point outcome
/// log and a summary; exits non-zero on any violation.
pub fn torture(quick: bool) -> acc_tpcc::torture::TortureReport {
    torture_with(if quick {
        acc_tpcc::torture::TortureConfig::smoke(42)
    } else {
        acc_tpcc::torture::TortureConfig::standard(42)
    })
}

/// The strided benchmark-scale torture variant (`figures -- torture
/// --strided`): the same sweep and invariants against [`Scale::benchmark`],
/// whose much longer WAL is crashed at sampled (strided) append indices
/// instead of every one.
pub fn torture_strided() -> acc_tpcc::torture::TortureReport {
    torture_with(acc_tpcc::torture::TortureConfig::benchmark_strided(42))
}

fn torture_with(cfg: acc_tpcc::torture::TortureConfig) -> acc_tpcc::torture::TortureReport {
    println!(
        "\n=== crash torture: {} txns at {} warehouse(s) × {} district(s), seed {} ===",
        cfg.txns, cfg.scale.warehouses, cfg.scale.districts, cfg.seed
    );
    let report = match acc_tpcc::torture::run_torture(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("torture harness failed: {e}");
            std::process::exit(1);
        }
    };
    print!("{}", report.log);
    println!(
        "summary: {} crash points, {} replayed, {} compensated, {} discarded, {} records rejected, {} violations",
        report.points,
        report.replayed,
        report.compensated,
        report.discarded,
        report.rejected_records,
        report.violations
    );
    if report.violations > 0 {
        eprintln!("CONSISTENCY VIOLATIONS under crash torture");
        std::process::exit(1);
    }
    report
}

/// Dump every machine-*inferred* interference matrix as deterministic JSON
/// (stable key order, steps id-sorted, no floating point — `scripts/check.sh`
/// runs this twice and byte-compares), plus the TPC-C diff against the hand
/// tables. TPC-C is the differential anchor; smallbank and the fulfilment
/// saga have no hand tables at all — what prints here is what their torture
/// and stress gates actually run under.
pub fn dump_inferred() {
    use acc_core::infer::{diff, matrix_json, DiffKind};
    use acc_workloads::{saga, smallbank};

    let hand = TpccSystem::build();
    let inferred = TpccSystem::infer();
    let steps: Vec<_> = TpccSystem::step_names().iter().map(|(s, _)| *s).collect();
    let d = diff(
        &inferred.tables,
        hand.tables.as_ref(),
        &steps,
        hand.registry.len(),
    );

    println!("== tpcc (inferred) ==");
    print!(
        "{}",
        matrix_json(
            &inferred.tables,
            &inferred.registry,
            &TpccSystem::step_names()
        )
    );
    println!("== tpcc inferred vs hand ==");
    println!("more_permissive: {}", d.more_permissive.len());
    for (s, t, k) in &d.more_permissive {
        println!(
            "  UNSOUND step {} x template {} ({})",
            s.raw(),
            t.raw(),
            if *k == DiffKind::Write {
                "write"
            } else {
                "read"
            }
        );
    }
    println!("less_permissive: {}", d.less_permissive.len());
    for (s, t, k) in &d.less_permissive {
        println!(
            "  conservative: step {} x template {} ({})",
            s.raw(),
            t.raw(),
            if *k == DiffKind::Write {
                "write"
            } else {
                "read"
            }
        );
    }

    let sb = smallbank::SmallbankKit::build(10);
    println!("== smallbank (inferred) ==");
    print!(
        "{}",
        matrix_json(&sb.tables, &sb.registry, &smallbank::step_names())
    );

    let sg = saga::SagaKit::build(6, 4);
    println!("== saga (inferred) ==");
    print!(
        "{}",
        matrix_json(&sg.tables, &sg.registry, &saga::step_names())
    );
}

/// Dump the TPC-C design-time analysis: the step×template interference
/// matrix and every recorded decision with its justification — the paper's
/// "interference tables … constructed at design time" (§5.1), as an
/// inspectable artifact.
pub fn dump_tables() {
    let sys = TpccSystem::build();
    println!("TPC-C interference matrix (rows: step types; cols: template ids; X = interferes):\n");
    print!("{}", sys.tables.dump());
    println!("\ntemplates:");
    for t in sys.registry.iter() {
        println!(
            "  [{}] {}{}",
            t.id.raw(),
            t.name,
            if t.read_guard { "  (guard)" } else { "" }
        );
    }
    println!("\ndecisions ({}):", sys.decisions.len());
    for d in &sys.decisions {
        println!(
            "  step {:>2} × template {}: {:<10} — {}",
            d.step.raw(),
            d.template.raw(),
            if d.interferes { "INTERFERES" } else { "safe" },
            d.why
        );
    }
}
