//! Minimal, dependency-free micro-benchmark harness.
//!
//! Exposes the narrow slice of the criterion API the benches in
//! `benches/` use: `Criterion::bench_function`, `benchmark_group` /
//! `BenchmarkGroup::{sample_size, bench_function, finish}`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! warmed up briefly, then timed over a fixed number of samples; the median
//! per-iteration time is reported to stdout.

use std::time::{Duration, Instant};

const DEFAULT_SAMPLES: usize = 50;
const WARMUP: Duration = Duration::from_millis(100);
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

pub struct Bencher {
    /// Iterations per timed sample, calibrated during warmup.
    iters_per_sample: u64,
    /// Per-iteration nanoseconds for each sample.
    samples_ns: Vec<f64>,
    n_samples: usize,
    calibrating: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.calibrating {
            // Warmup + calibration: find how many iterations fill a sample.
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < WARMUP {
                std::hint::black_box(f());
                n += 1;
            }
            let per_iter = WARMUP.as_secs_f64() / n.max(1) as f64;
            self.iters_per_sample = ((TARGET_SAMPLE_TIME.as_secs_f64() / per_iter) as u64).max(1);
            return;
        }
        for _ in 0..self.n_samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / self.iters_per_sample as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, n_samples: usize, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples_ns: Vec::new(),
        n_samples,
        calibrating: true,
    };
    f(&mut b);
    b.calibrating = false;
    f(&mut b);
    b.samples_ns.sort_by(|a, x| a.partial_cmp(x).unwrap());
    if b.samples_ns.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let median = b.samples_ns[b.samples_ns.len() / 2];
    let lo = b.samples_ns[0];
    let hi = b.samples_ns[b.samples_ns.len() - 1];
    println!("{name:<44} {median:>12.1} ns/iter  [{lo:.1} .. {hi:.1}]");
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, DEFAULT_SAMPLES, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::microbench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
