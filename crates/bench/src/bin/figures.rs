//! Regenerate the paper's figures and tables.
//!
//! ```text
//! cargo run -p acc-bench --release --bin figures -- all
//! cargo run -p acc-bench --release --bin figures -- fig2 [--quick]
//! ```
//!
//! Subcommands: `fig2`, `fig3`, `fig4`, `servers`, `olcount`, `ablation`,
//! `twolevel`, `lockstat`, `tables`, `infer`, `torture` (`--strided` for the
//! benchmark-scale sweep, `--fsync` for the fsync-boundary sweep,
//! `--reanalysis` for the online table-switchover sweep, `--net` for the
//! network front-end), `wal`, `mtbench`, `pagebench`, `retry`, `stress`,
//! `saturate`, `all`. `--quick` runs a shorter sweep for smoke-testing. The
//! deterministic simulator subcommands (everything in `all`) are
//! byte-identical across runs; `wal`/`mtbench`/`pagebench`/`retry`/`stress`/
//! `saturate` are wall-clock and intentionally kept out of `all`.

use acc_bench::figures::{
    ablation_table, dump_inferred, dump_tables, fig2, fig3, fig4, lockstat, olcount_table,
    servers_table, torture, torture_strided, twolevel_table, FigureParams,
};
use acc_bench::{mtbench, netbench, pagebench, walbench};

/// Every subcommand, one line each, for `--help`. `scripts/check.sh` greps
/// this output against the subcommands the README mentions, so the list must
/// stay complete.
const HELP: &str = "\
regenerate the paper's figures and tables

usage: figures -- <subcommand> [--quick] [--strided] [--fsync] [--reanalysis] [--ship] [--net] [--schedule]

subcommands:
  fig2       paper figure 2: throughput vs multiprogramming level
  fig3       paper figure 3: response time vs multiprogramming level
  fig4       paper figure 4: throughput vs think time
  servers    server-count sweep table
  olcount    order-line count sweep table
  ablation   assertion-template ablation table
  twolevel   two-level (global argument) analysis table
  lockstat   lock/step observability counter dump
  tables     dump the design-time interference tables
  infer      dump the machine-inferred matrices (TPC-C, smallbank,
             saga) as deterministic JSON plus the diff vs the hand
             tables
  torture    crash-torture sweep (--strided: benchmark scale;
             --fsync: fsync-boundary sweep; --reanalysis: online
             table re-analysis with epoch switchover; --ship:
             WAL-shipping replication crashed at every ship boundary;
             --net: network front-end tortured with connection faults
             and crashes at every protocol boundary)
  wal        group-commit latency/throughput sweep (wall-clock)
  mtbench    multi-thread lock-manager benchmark (wall-clock)
  pagebench  paged B-tree storage benchmark: page ops, splits,
             latch waits, read restarts (wall-clock)
  retry      deadlock-retry sweep (wall-clock)
  stress     multi-thread consistency stress (wall-clock)
  saturate   open-loop latency sweep past saturation through the
             network front-end (wall-clock; --schedule prints only
             the seeded arrival schedule, byte-identical per seed)
  all        every deterministic simulator figure above

flags:
  --quick       shorter smoke-scale sweeps
  --help, -h    this text
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{HELP}");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let strided = args.iter().any(|a| a == "--strided");
    let fsync = args.iter().any(|a| a == "--fsync");
    let reanalysis = args.iter().any(|a| a == "--reanalysis");
    let ship = args.iter().any(|a| a == "--ship");
    let net = args.iter().any(|a| a == "--net");
    let schedule = args.iter().any(|a| a == "--schedule");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let params = if quick {
        FigureParams::quick()
    } else {
        FigureParams::baseline()
    };

    println!(
        "assertional-acc figure harness — {} sweep, {} servers, seed {}",
        if quick { "quick" } else { "full" },
        params.servers,
        params.seed
    );

    match which {
        "fig2" => {
            fig2(&params);
        }
        "fig3" => {
            fig3(&params);
        }
        "fig4" => {
            fig4(&params);
        }
        "servers" => {
            servers_table(&params);
        }
        "olcount" => {
            olcount_table(&params);
        }
        "ablation" => {
            ablation_table(&params);
        }
        "tables" => {
            dump_tables();
        }
        "infer" => {
            dump_inferred();
        }
        "twolevel" => {
            twolevel_table(&params);
        }
        "lockstat" => {
            lockstat(&params);
        }
        "torture" => {
            if net {
                netbench::net_torture(quick);
            } else if ship {
                walbench::ship_torture(quick);
            } else if reanalysis {
                walbench::reanalysis_torture(quick);
            } else if fsync {
                walbench::fsync_torture(quick);
            } else if strided {
                torture_strided();
            } else {
                torture(quick);
            }
        }
        "wal" => {
            walbench::walbench(quick);
        }
        "mtbench" => {
            mtbench::mtbench(quick);
        }
        "pagebench" => {
            pagebench::pagebench(quick);
        }
        "retry" => {
            mtbench::retry_sweep(quick);
        }
        "stress" => {
            mtbench::stress(quick);
        }
        "saturate" => {
            if schedule {
                netbench::saturate_schedule_dump(quick);
            } else {
                netbench::saturate(quick);
            }
        }
        "all" => {
            fig2(&params);
            fig3(&params);
            fig4(&params);
            servers_table(&params);
            olcount_table(&params);
            ablation_table(&params);
            twolevel_table(&params);
        }
        other => {
            eprintln!("unknown experiment `{other}`; use fig2|fig3|fig4|servers|olcount|ablation|twolevel|lockstat|tables|infer|torture|wal|mtbench|pagebench|retry|stress|saturate|all");
            std::process::exit(2);
        }
    }
}
