//! The §5.1 district-row conflict as a micro-benchmark.
//!
//! New-order and payment together are ~86 % of the TPC-C mix and share the
//! district row (order counter vs. year-to-date total). This bench runs a
//! short, high-contention simulation of exactly that pair under 2PL and
//! under the ACC and reports simulated mean response time as the benchmark
//! measurement context (wall time here measures the simulator itself, which
//! is also worth tracking).

use acc_bench::microbench::Criterion;
use acc_bench::{criterion_group, criterion_main};
use acc_common::clock::SimTime;
use acc_sim::{CcMode, CostModel, SimConfig, Simulator};
use acc_tpcc::decompose::TpccSystem;
use acc_tpcc::input::TpccConfig;
use acc_tpcc::schema::Scale;
use acc_tpcc::trace::TraceCosts;
use acc_tpcc::TpccTraceSource;
use std::hint::black_box;

fn run(mode: CcMode) -> f64 {
    let sys = TpccSystem::build();
    let mut source = TpccTraceSource::new(
        TpccConfig::skewed(Scale::benchmark()),
        7,
        sys.templates,
        TraceCosts::default(),
    );
    let config = SimConfig {
        mode,
        servers: 3,
        terminals: 40,
        think_time: SimTime::from_millis(2_000),
        duration: SimTime::from_micros(30_000_000),
        warmup: SimTime::from_micros(5_000_000),
        seed: 7,
        costs: CostModel::default(),
        release_at_step_end: true,
        two_level_templates: Vec::new(),
    };
    Simulator::new(config, &*sys.tables, &mut source)
        .run()
        .mean_response_ms
}

fn bench_district_conflict(c: &mut Criterion) {
    let mut group = c.benchmark_group("district_conflict");
    group.sample_size(10);
    group.bench_function("two_phase_sim_30s", |b| {
        b.iter(|| black_box(run(CcMode::TwoPhase)));
    });
    group.bench_function("acc_sim_30s", |b| {
        b.iter(|| black_box(run(CcMode::Acc)));
    });
    group.finish();

    // Report the headline numbers once for the bench log.
    let two = run(CcMode::TwoPhase);
    let acc = run(CcMode::Acc);
    println!(
        "district-conflict (skewed, 40 terminals): 2PL {two:.1} ms, ACC {acc:.1} ms, ratio {:.2}",
        two / acc
    );
}

criterion_group!(benches, bench_district_conflict);
criterion_main!(benches);
