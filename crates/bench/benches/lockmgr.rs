//! Lock-manager micro-benchmarks: the cost of the ACC's run-time mechanism.
//!
//! The paper claims the overhead of an assertional lock is "comparable to
//! that for conventional locks" (§3.2); these benchmarks measure both.

use acc_bench::microbench::Criterion;
use acc_bench::{criterion_group, criterion_main};
use acc_common::{AssertionTemplateId, ResourceId, StepTypeId, TxnId};
use acc_lockmgr::{
    InterferenceOracle, LockKind, LockManager, Request, RequestCtx, RequestOutcome,
    ShardedLockManager,
};
use std::hint::black_box;

struct TableOracle;

impl InterferenceOracle for TableOracle {
    fn write_interferes(&self, step: StepTypeId, assertion: AssertionTemplateId) -> bool {
        (step.raw() + assertion.raw()).is_multiple_of(5)
    }
    fn read_interferes(&self, _: StepTypeId, _: AssertionTemplateId) -> bool {
        false
    }
}

fn bench_conventional(c: &mut Criterion) {
    c.bench_function("lockmgr/conventional_acquire_release", |b| {
        let oracle = TableOracle;
        let mut lm = LockManager::new();
        let mut i = 0u64;
        b.iter(|| {
            let txn = TxnId(i);
            let r = ResourceId::Named((i % 64) as u32);
            i += 1;
            let out = lm.request(
                Request::new(txn, r, LockKind::X, RequestCtx::plain(StepTypeId(1))),
                &oracle,
            );
            assert_eq!(out, RequestOutcome::Granted);
            black_box(lm.release_all(txn, &oracle));
        });
    });
}

fn bench_assertional(c: &mut Criterion) {
    c.bench_function("lockmgr/assertional_acquire_release", |b| {
        let oracle = TableOracle;
        let mut lm = LockManager::new();
        let mut i = 0u64;
        b.iter(|| {
            let txn = TxnId(i);
            let r = ResourceId::Named((i % 64) as u32);
            i += 1;
            let ctx = RequestCtx::plain(StepTypeId(1));
            lm.request(Request::new(txn, r, LockKind::X, ctx), &oracle);
            lm.request(
                Request::new(txn, r, LockKind::Assertional(AssertionTemplateId(1)), ctx),
                &oracle,
            );
            black_box(lm.release_all(txn, &oracle));
        });
    });
}

fn bench_contended_queue(c: &mut Criterion) {
    c.bench_function("lockmgr/contended_fifo_handoff", |b| {
        let oracle = TableOracle;
        b.iter(|| {
            let mut lm = LockManager::new();
            let r = ResourceId::Named(0);
            // One holder, 16 waiters, then a release cascade.
            for t in 0..17u64 {
                lm.request(
                    Request::new(TxnId(t), r, LockKind::X, RequestCtx::plain(StepTypeId(1))),
                    &oracle,
                );
            }
            for t in 0..17u64 {
                black_box(lm.release_all(TxnId(t), &oracle));
            }
        });
    });
}

fn bench_sharded_single_thread(c: &mut Criterion) {
    // The single-threaded cost of going through the sharded front door
    // (shard hash + per-shard mutex) instead of the plain manager. Must stay
    // within noise of `lockmgr/conventional_acquire_release` — uncontended
    // acquire/release is the hot path the decomposition must not tax.
    c.bench_function("lockmgr/sharded_acquire_release", |b| {
        let oracle = TableOracle;
        let lm = ShardedLockManager::new(ShardedLockManager::DEFAULT_SHARDS);
        let mut i = 0u64;
        b.iter(|| {
            let txn = TxnId(i);
            let r = ResourceId::Named((i % 64) as u32);
            i += 1;
            let out = lm.request(
                Request::new(txn, r, LockKind::X, RequestCtx::plain(StepTypeId(1))),
                &oracle,
            );
            assert_eq!(out, RequestOutcome::Granted);
            lm.release_all(txn, &oracle, &mut |n| {
                black_box(n);
            });
        });
    });
}

criterion_group!(
    benches,
    bench_conventional,
    bench_assertional,
    bench_contended_queue,
    bench_sharded_single_thread
);
criterion_main!(benches);
