//! Interference-oracle micro-benchmark.
//!
//! The paper's key run-time claim (§3.2): deciding whether a step conflicts
//! with a pinned assertion is a *table lookup*, unlike predicate locks which
//! must evaluate predicate intersection. This bench measures the lookup on
//! the real TPC-C interference tables.

use acc_bench::microbench::Criterion;
use acc_bench::{criterion_group, criterion_main};
use acc_lockmgr::InterferenceOracle;
use acc_tpcc::decompose::{step, TpccSystem};
use std::hint::black_box;

fn bench_lookup(c: &mut Criterion) {
    let sys = TpccSystem::build();
    let steps = [
        step::NO_S1,
        step::NO_S2,
        step::PAY_S1,
        step::PAY_S2,
        step::DLV_S1,
        step::DLV_S2,
    ];
    let templates = [
        sys.templates.no_loop,
        sys.templates.pay_mid,
        sys.templates.dlv_loop,
        acc_core::DIRTY,
    ];
    c.bench_function("oracle/tpcc_write_interferes_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = steps[i % steps.len()];
            let t = templates[i % templates.len()];
            i += 1;
            black_box(sys.tables.write_interferes(black_box(s), black_box(t)))
        });
    });
    c.bench_function("oracle/tpcc_read_interferes_lookup", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let s = steps[i % steps.len()];
            let t = templates[i % templates.len()];
            i += 1;
            black_box(sys.tables.read_interferes(black_box(s), black_box(t)))
        });
    });
    c.bench_function("oracle/analysis_build", |b| {
        b.iter(|| black_box(TpccSystem::build()).tables.n_templates());
    });
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
