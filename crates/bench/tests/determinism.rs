//! Seeded reproducibility of the figure harness, promoted from the manual
//! "two consecutive `figures -- all` runs are byte-identical" check into an
//! automated gate.
//!
//! Every subcommand in `figures -- all` is a rendering of [`sweep`] output,
//! so the invariant that matters is: the same `FigureParams` produce
//! bit-identical `SimReport`s. Debug-formatting the points round-trips every
//! `f64` exactly (two floats print identically iff they are the same bits,
//! modulo NaN), so comparing the strings is comparing the bits.

use acc_bench::figures::{sweep, FigureParams};
use acc_tpcc::input::TpccConfig;
use acc_tpcc::schema::Scale;

fn small_params(seed: u64) -> FigureParams {
    FigureParams {
        servers: 3,
        terminals: vec![1, 10],
        tpcc: TpccConfig::standard(Scale::test()),
        costs: Default::default(),
        measure_s: 60,
        warmup_s: 10,
        seed,
    }
}

#[test]
fn same_params_render_byte_identical_sweeps() {
    let a = sweep(&small_params(42));
    let b = sweep(&small_params(42));
    assert_eq!(
        format!("{a:?}"),
        format!("{b:?}"),
        "two same-seed figure sweeps diverged — seeded reproducibility regressed"
    );
    // Sanity: the sweep measured something at every point.
    for p in &a {
        assert!(p.two_phase.completed > 0 && p.acc.completed > 0);
    }
}

#[test]
fn the_seed_steers_the_sweep() {
    // Guards against the comparison above passing vacuously (e.g. a sweep
    // that ignores its RNG entirely would also be "deterministic").
    let a = sweep(&small_params(42));
    let b = sweep(&small_params(43));
    assert_ne!(format!("{a:?}"), format!("{b:?}"), "seed has no effect");
}
