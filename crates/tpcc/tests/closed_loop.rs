//! Wall-clock closed-loop TPC-C under both concurrency controls: a short
//! multi-threaded soak with the consistency audit at quiescence.

use acc_common::faults::{FaultInjector, FaultPlan};
use acc_common::rng::SeededRng;
use acc_engine::{run_closed_loop, ClosedLoopConfig, RetryPolicy, Workload};
use acc_storage::Database;
use acc_tpcc::decompose::TpccSystem;
use acc_tpcc::input::{InputGen, TpccConfig};
use acc_tpcc::schema::{tpcc_catalog, Scale};
use acc_tpcc::{consistency, populate, txns};
use acc_txn::{ConcurrencyControl, SharedDb, TwoPhase, TxnProgram};
use std::sync::Arc;
use std::time::Duration;

struct TpccWorkload {
    gen: InputGen,
    districts: i64,
}

impl Workload for TpccWorkload {
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send> {
        txns::program_for(self.gen.next_input(rng), self.districts)
    }
}

fn soak(use_acc: bool) {
    let sys = TpccSystem::build();
    let scale = Scale::test();
    let mut db = Database::new(&tpcc_catalog());
    populate(&mut db, &scale, 31);
    let shared = Arc::new(
        SharedDb::new(db, Arc::clone(&sys.tables) as _).with_wait_cap(Duration::from_secs(20)),
    );
    let cc: Arc<dyn ConcurrencyControl> = if use_acc {
        Arc::clone(&sys.acc) as _
    } else {
        Arc::new(TwoPhase)
    };
    let workload: Arc<dyn Workload> = Arc::new(TpccWorkload {
        gen: InputGen::new(TpccConfig::standard(scale), 5),
        districts: scale.districts,
    });
    let report = run_closed_loop(
        &shared,
        &cc,
        &workload,
        &ClosedLoopConfig {
            terminals: 6,
            duration: Duration::from_millis(700),
            think_time: Duration::from_millis(2),
            seed: 77,
            retry: RetryPolicy::standard(),
        },
    );
    assert!(report.committed > 20, "{report:?}");
    let v = consistency::check(&shared.snapshot_db(), !use_acc);
    assert!(v.is_empty(), "{v:#?}");
    assert_eq!(shared.total_grants(), 0);
}

#[test]
fn closed_loop_two_phase_soak() {
    soak(false);
}

#[test]
fn closed_loop_acc_soak() {
    soak(true);
}

/// Spurious-wakeup storm: every second lock wait is woken early by the fault
/// injector. Blocked waiters must re-check and re-sleep without ever being
/// granted a lock they don't hold — throughput may dip, consistency may not.
#[test]
fn closed_loop_acc_survives_spurious_wakeups() {
    let sys = TpccSystem::build();
    let scale = Scale::test();
    let mut db = Database::new(&tpcc_catalog());
    populate(&mut db, &scale, 31);
    let faults = FaultInjector::with_plan(FaultPlan::spurious_wakes(2));
    let shared = Arc::new(
        SharedDb::new(db, Arc::clone(&sys.tables) as _)
            .with_wait_cap(Duration::from_secs(20))
            .with_fault_injector(Arc::clone(&faults)),
    );
    let cc: Arc<dyn ConcurrencyControl> = Arc::clone(&sys.acc) as _;
    let workload: Arc<dyn Workload> = Arc::new(TpccWorkload {
        gen: InputGen::new(TpccConfig::standard(scale), 5),
        districts: scale.districts,
    });
    let report = run_closed_loop(
        &shared,
        &cc,
        &workload,
        &ClosedLoopConfig {
            terminals: 6,
            duration: Duration::from_millis(700),
            think_time: Duration::from_millis(2),
            seed: 77,
            retry: RetryPolicy::standard(),
        },
    );
    assert!(report.committed > 20, "{report:?}");
    let counters = faults.counters();
    assert!(
        counters.spurious_wakes > 0,
        "storm never fired (lock_waits = {})",
        counters.lock_waits
    );
    let v = consistency::check(&shared.snapshot_db(), false);
    assert!(v.is_empty(), "{v:#?}");
    assert_eq!(shared.total_grants(), 0);
}
