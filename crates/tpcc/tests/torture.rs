//! Crash-torture: recovery + compensation must hold at every crash point.
//!
//! These tests drive `acc_tpcc::torture` (see that module for the sweep
//! design): a seeded TPC-C mix, a crash at every WAL-append index plus
//! seeded torn-tail and bit-flip corruptions, and a recovery + compensation
//! + §3.3.2-consistency pass for each salvaged image.

use acc_tpcc::torture::{
    run_fsync_torture, run_reanalysis_torture, run_torture, FsyncTortureConfig,
    ReanalysisTortureConfig, TortureConfig,
};

#[test]
fn standard_sweep_holds_consistency_at_every_crash_point() {
    let report = run_torture(&TortureConfig::standard(42)).expect("torture harness failed");
    assert!(
        report.points >= 200,
        "swept only {} crash points (need ≥ 200)\n{}",
        report.points,
        report.log
    );
    assert_eq!(
        report.violations, 0,
        "consistency violated after recovery:\n{}",
        report.log
    );
    // The sweep must actually exercise all three outcome classes — a run
    // that never compensates or never rejects a torn record proves nothing.
    assert!(report.replayed > 0, "no transaction ever replayed");
    assert!(
        report.compensated > 0,
        "no crash point exercised compensation:\n{}",
        report.log
    );
    assert!(
        report.discarded > 0,
        "no crash point caught a step-less in-flight transaction:\n{}",
        report.log
    );
    assert!(
        report.rejected_records > 0,
        "no corruption point rejected records:\n{}",
        report.log
    );
    // The event sink saw exactly one RecoveryOutcome per point.
    assert_eq!(report.counters.recoveries, report.points as u64);
    assert_eq!(report.counters.recovered_compensated, report.compensated);
    assert_eq!(report.counters.recovered_discarded, report.discarded);
    assert_eq!(report.counters.rejected_records, report.rejected_records);
}

#[test]
fn same_seed_yields_byte_identical_outcome_logs() {
    let a = run_torture(&TortureConfig::smoke(7)).expect("torture harness failed");
    let b = run_torture(&TortureConfig::smoke(7)).expect("torture harness failed");
    assert_eq!(
        a.log, b.log,
        "two same-seed torture runs diverged — determinism is broken"
    );
    assert_eq!(a.violations, 0, "{}", a.log);
}

#[test]
fn different_seeds_torture_different_points() {
    let a = run_torture(&TortureConfig::smoke(1)).expect("torture harness failed");
    let b = run_torture(&TortureConfig::smoke(2)).expect("torture harness failed");
    assert_ne!(a.log, b.log, "seed does not steer the sweep");
    assert_eq!(a.violations + b.violations, 0);
}

#[test]
fn fsync_sweep_holds_consistency_at_every_boundary() {
    let report =
        run_fsync_torture(&FsyncTortureConfig::standard(42)).expect("fsync torture failed");
    assert_eq!(
        report.violations, 0,
        "consistency violated after an fsync-boundary crash:\n{}",
        report.log
    );
    assert!(
        report.boundaries >= 10,
        "only {} fsync boundaries observed — the group-commit batcher never \
         split the workload\n{}",
        report.boundaries,
        report.log
    );
    // Both devices swept every boundary, plus tears and injector replays.
    assert!(
        report.points > 2 * report.boundaries,
        "points={} boundaries={}\n{}",
        report.points,
        report.boundaries,
        report.log
    );
    // All three outcome classes must be exercised: replay (committed before
    // the boundary), compensation (durable step, in-flight at the boundary),
    // discard (no durable step yet).
    assert!(report.replayed > 0, "no transaction ever replayed");
    assert!(
        report.compensated > 0,
        "no fsync boundary landed mid-transaction after a durable step:\n{}",
        report.log
    );
    assert!(
        report.discarded > 0,
        "no fsync boundary caught a step-less in-flight transaction:\n{}",
        report.log
    );
    assert!(
        report.rejected_records > 0,
        "no sector tear rejected records:\n{}",
        report.log
    );
    assert_eq!(report.counters.recoveries, report.points as u64);
}

#[test]
fn fsync_sweep_same_seed_is_byte_identical() {
    let a = run_fsync_torture(&FsyncTortureConfig::smoke(7)).expect("fsync torture failed");
    let b = run_fsync_torture(&FsyncTortureConfig::smoke(7)).expect("fsync torture failed");
    assert_eq!(
        a.log, b.log,
        "two same-seed fsync torture runs diverged — determinism is broken"
    );
    assert_eq!(a.violations, 0, "{}", a.log);
}

#[test]
fn reanalysis_sweep_switches_at_every_boundary() {
    let report =
        run_reanalysis_torture(&ReanalysisTortureConfig::standard(42)).expect("reanalysis failed");
    // Every step boundary of the mix hosted a drained switchover (the
    // harness errors out on any WAL divergence, outcome mismatch or counter
    // disagreement, so reaching here means each one behaved).
    assert_eq!(
        report.switch_points, report.boundaries,
        "not every boundary was swept\n{}",
        report.log
    );
    assert!(report.boundaries >= 30, "{} boundaries", report.boundaries);
    assert_eq!(report.drained, report.switch_points as u64);
    assert_eq!(report.immediate_installs, 1);
    assert_eq!(
        report.mixed_epoch_lookups, 0,
        "a lookup crossed epochs:\n{}",
        report.log
    );
    assert_eq!(
        report.violations, 0,
        "consistency violated:\n{}",
        report.log
    );
    // The crash sweep under edited tables exercised all outcome classes.
    assert!(report.crash_points > 0);
    assert!(report.replayed > 0, "no transaction ever replayed");
    assert!(
        report.compensated > 0,
        "no crash point exercised compensation under edited tables:\n{}",
        report.log
    );
    assert!(
        report.discarded > 0,
        "no crash point caught a step-less in-flight transaction:\n{}",
        report.log
    );
    assert_eq!(report.counters.recoveries, report.crash_points as u64);
}

#[test]
fn reanalysis_sweep_same_seed_is_byte_identical() {
    let a = run_reanalysis_torture(&ReanalysisTortureConfig::smoke(7)).expect("reanalysis failed");
    let b = run_reanalysis_torture(&ReanalysisTortureConfig::smoke(7)).expect("reanalysis failed");
    assert_eq!(
        a.log, b.log,
        "two same-seed reanalysis runs diverged — determinism is broken"
    );
    assert_eq!(
        a.violations + a.mixed_epoch_lookups as usize,
        0,
        "{}",
        a.log
    );
}

#[test]
fn ship_sweep_crashes_every_boundary_on_both_sides() {
    use acc_tpcc::torture::{run_ship_torture, ShipTortureConfig};
    let report = run_ship_torture(&ShipTortureConfig::standard(42)).expect("ship torture failed");
    assert_eq!(
        report.violations, 0,
        "replication violated consistency or byte equality:\n{}",
        report.log
    );
    assert!(
        report.boundaries >= 4,
        "only {} ship boundaries — the batch target never split the stream\n{}",
        report.boundaries,
        report.log
    );
    // Both sides crashed at every boundary, plus hostile/divergence/plan
    // points: the sweep is wider than three passes over the boundaries.
    assert!(
        report.points > 3 * report.boundaries,
        "points={} boundaries={}\n{}",
        report.points,
        report.boundaries,
        report.log
    );
    // Promotion exercised all three §3.4 outcome classes.
    assert!(report.replayed > 0, "no promotion replayed anything");
    assert!(
        report.compensated > 0,
        "no ship boundary landed mid-transaction — promotion never compensated:\n{}",
        report.log
    );
    assert!(
        report.discarded > 0,
        "no promotion caught a step-less in-flight transaction:\n{}",
        report.log
    );
    // The hostile phases actually refused and re-shipped.
    assert!(
        report.refusals > 0,
        "nothing was ever refused:\n{}",
        report.log
    );
    assert!(report.resumes > 0, "nothing ever resumed:\n{}", report.log);
    // One RecoveryOutcome per promotion point, and ship counters flowed.
    assert_eq!(report.counters.recoveries, report.boundaries as u64);
    assert!(report.counters.ship_batches > 0);
    assert!(report.counters.ship_resumes > 0);
}

#[test]
fn ship_sweep_same_seed_is_byte_identical() {
    use acc_tpcc::torture::{run_ship_torture, ShipTortureConfig};
    let a = run_ship_torture(&ShipTortureConfig::smoke(7)).expect("ship torture failed");
    let b = run_ship_torture(&ShipTortureConfig::smoke(7)).expect("ship torture failed");
    assert_eq!(
        a.log, b.log,
        "two same-seed ship torture runs diverged — determinism is broken"
    );
    assert_eq!(a.violations, 0, "{}", a.log);
}
