//! Crash-torture: recovery + compensation must hold at every crash point.
//!
//! These tests drive `acc_tpcc::torture` (see that module for the sweep
//! design): a seeded TPC-C mix, a crash at every WAL-append index plus
//! seeded torn-tail and bit-flip corruptions, and a recovery + compensation
//! + §3.3.2-consistency pass for each salvaged image.

use acc_tpcc::torture::{run_torture, TortureConfig};

#[test]
fn standard_sweep_holds_consistency_at_every_crash_point() {
    let report = run_torture(&TortureConfig::standard(42)).expect("torture harness failed");
    assert!(
        report.points >= 200,
        "swept only {} crash points (need ≥ 200)\n{}",
        report.points,
        report.log
    );
    assert_eq!(
        report.violations, 0,
        "consistency violated after recovery:\n{}",
        report.log
    );
    // The sweep must actually exercise all three outcome classes — a run
    // that never compensates or never rejects a torn record proves nothing.
    assert!(report.replayed > 0, "no transaction ever replayed");
    assert!(
        report.compensated > 0,
        "no crash point exercised compensation:\n{}",
        report.log
    );
    assert!(
        report.discarded > 0,
        "no crash point caught a step-less in-flight transaction:\n{}",
        report.log
    );
    assert!(
        report.rejected_records > 0,
        "no corruption point rejected records:\n{}",
        report.log
    );
    // The event sink saw exactly one RecoveryOutcome per point.
    assert_eq!(report.counters.recoveries, report.points as u64);
    assert_eq!(report.counters.recovered_compensated, report.compensated);
    assert_eq!(report.counters.recovered_discarded, report.discarded);
    assert_eq!(report.counters.rejected_records, report.rejected_records);
}

#[test]
fn same_seed_yields_byte_identical_outcome_logs() {
    let a = run_torture(&TortureConfig::smoke(7)).expect("torture harness failed");
    let b = run_torture(&TortureConfig::smoke(7)).expect("torture harness failed");
    assert_eq!(
        a.log, b.log,
        "two same-seed torture runs diverged — determinism is broken"
    );
    assert_eq!(a.violations, 0, "{}", a.log);
}

#[test]
fn different_seeds_torture_different_points() {
    let a = run_torture(&TortureConfig::smoke(1)).expect("torture harness failed");
    let b = run_torture(&TortureConfig::smoke(2)).expect("torture harness failed");
    assert_ne!(a.log, b.log, "seed does not steer the sweep");
    assert_eq!(a.violations + b.violations, 0);
}
