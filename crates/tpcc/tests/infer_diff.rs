//! Differential test: the machine-inferred TPC-C interference matrix versus
//! the hand-derived tables of `acc_tpcc::decompose`.
//!
//! Soundness direction (hard): the inferred matrix is never *more*
//! permissive than the hand tables — every pair the inference admits, the
//! hand analysis admits too, so substituting the inferred matrix can only
//! block histories, never introduce new ones.
//!
//! Conservatism direction (visible, pinned): the cells where inference is
//! strictly *less* permissive are exactly the hand declarations resting on
//! temporal or item-identity arguments the footprint vocabulary cannot
//! express. The pinned set makes a conservatism regression (a new cell
//! appearing here) a test failure, not a silent throughput loss.

use acc_core::infer::{diff, DiffKind};
use acc_core::DIRTY;
use acc_lockmgr::InterferenceOracle;
use acc_tpcc::decompose::{step, TpccSystem};

#[test]
fn inferred_matrix_is_never_more_permissive_than_hand_tables() {
    let hand = TpccSystem::build();
    let inferred = TpccSystem::infer();
    let steps: Vec<_> = TpccSystem::step_names().iter().map(|(s, _)| *s).collect();
    let d = diff(
        &inferred.tables,
        hand.tables.as_ref(),
        &steps,
        hand.registry.len(),
    );
    assert!(
        d.more_permissive.is_empty(),
        "UNSOUND: inference admits pairs the hand analysis blocks: {:?}",
        d.more_permissive
    );
}

#[test]
fn strictly_conservative_cells_are_exactly_the_temporal_arguments() {
    let hand = TpccSystem::build();
    let inferred = TpccSystem::infer();
    let t = hand.templates;
    let steps: Vec<_> = TpccSystem::step_names().iter().map(|(s, _)| *s).collect();
    let d = diff(
        &inferred.tables,
        hand.tables.as_ref(),
        &steps,
        hand.registry.len(),
    );

    // Flag the conservatism visibly: every strictly-less-permissive cell is
    // printed with the hand table's justification it failed to mechanize.
    let names: std::collections::HashMap<_, _> = TpccSystem::step_names().into_iter().collect();
    for (s, tpl, kind) in &d.less_permissive {
        let why = hand
            .decisions
            .iter()
            .find(|dec| dec.step == *s && dec.template == *tpl)
            .map(|dec| dec.why.clone())
            .unwrap_or_default();
        println!(
            "CONSERVATIVE {kind:?} cell: {} × template {} — hand proof was: {why}",
            names[s],
            tpl.raw()
        );
    }

    let mut got = d.less_permissive.clone();
    got.sort();
    let mut want = vec![
        // The delivery cluster: "claims are atomic, hence distinct" and
        // "applies only to orders it claimed (committed)" are temporal
        // arguments about the claim step, invisible to footprints.
        (step::DLV_S1, t.dlv_loop, DiffKind::Write),
        (step::DLV_S1, t.dlv_dirty, DiffKind::Write),
        (step::DLV_S2, t.dlv_loop, DiffKind::Write),
        (step::DLV_CS, t.dlv_loop, DiffKind::Write),
        // "A brand-new NEW-ORDER row belongs to an unprocessed order" /
        // "compensated orders were never claimable": dlv_loop's backlog read
        // depends on row existence, which fresh/own inserts still change.
        (step::NO_S1, t.dlv_loop, DiffKind::Write),
        (step::NO_CS, t.dlv_loop, DiffKind::Write),
    ];
    want.sort();
    assert_eq!(
        got, want,
        "the inferred-vs-hand conservatism gap moved; update EXPERIMENTS.md if intended"
    );
}

#[test]
fn read_matrix_and_version_safety_match_on_the_read_only_steps() {
    let hand = TpccSystem::build();
    let inferred = TpccSystem::infer();
    // The read matrix is derived from guards + committed-readers on both
    // sides; the diff above already proves cell equality. Version-read
    // eligibility must agree on the two steps the engine actually gates
    // (§3.3 committed reads are still enforced for OST on both).
    for s in [step::OST, step::STK] {
        assert!(inferred.tables.version_read_safe(s), "{s:?}");
        assert!(hand.tables.version_read_safe(s), "{s:?}");
    }
    assert!(inferred.tables.read_interferes(step::OST, DIRTY));
    assert!(!inferred.tables.read_interferes(step::STK, DIRTY));
    assert!(inferred.tables.is_committed_reader(step::OST));
}

#[test]
fn inference_reproduces_the_section_5_1_resolution() {
    // The paper's headline example needs no hand declarations at all: the
    // district counter bump is a delta, payment's YTD assertion tolerates
    // deltas, and the footprints are column-disjoint.
    let hand = TpccSystem::build();
    let inferred = TpccSystem::infer();
    let t = hand.templates;
    assert!(!inferred.tables.write_interferes(step::NO_S1, t.pay_mid));
    assert!(!inferred.tables.write_interferes(step::PAY_S1, t.no_loop));
    // The whole payment/new-order mix is admitted mechanically, DIRTY
    // included.
    for s in [step::NO_S1, step::NO_S2, step::PAY_S1, step::PAY_S2] {
        assert!(!inferred.tables.write_interferes(s, DIRTY), "{s:?}");
    }
    // Delivery's claim stays barred from half-entered orders — inference
    // agrees with the hand table's deliberate conservative cell.
    assert!(inferred.tables.write_interferes(step::DLV_S1, DIRTY));
    // Every decision carries its proof or its blocking obligation.
    assert_eq!(
        inferred.decisions.len(),
        TpccSystem::step_names().len() * inferred.registry.len()
    );
    assert!(inferred.decisions.iter().all(|d| !d.why.is_empty()));
}
