//! Direct behavioural tests of the five TPC-C transaction programs.

use acc_common::{Decimal, Value};
use acc_storage::{Database, Key};
use acc_tpcc::decompose::TpccSystem;
use acc_tpcc::input::{
    CustomerSelector, DeliveryInput, NewOrderInput, OrderLineInput, OrderStatusInput, PaymentInput,
    StockLevelInput,
};
use acc_tpcc::populate::{self, last_name};
use acc_tpcc::schema::{col, tpcc_catalog, Scale, TABLES};
use acc_tpcc::txns;
use acc_txn::{run, RunOutcome, SharedDb, TwoPhase, WaitMode};
use std::sync::Arc;

fn shared(seed: u64) -> Arc<SharedDb> {
    let sys = TpccSystem::build();
    let mut db = Database::new(&tpcc_catalog());
    populate::populate(&mut db, &Scale::test(), seed);
    Arc::new(SharedDb::new(db, Arc::clone(&sys.tables) as _))
}

#[test]
fn new_order_math_matches_spec() {
    let s = shared(1);
    // Pin the tax/discount/price environment so the total is checkable.
    s.with_table_mut(TABLES.warehouse, |t| {
        t.update_with(0, |r| {
            r.set(col::w::TAX, Value::Decimal(Decimal::from_units(1000))); // 10%
        })
        .unwrap();
    })
    .unwrap();
    s.with_table_mut(TABLES.district, |t| {
        let d_slot = t.slot_of(&Key::ints(&[1, 1])).unwrap();
        t.update_with(d_slot, |r| {
            r.set(col::d::TAX, Value::Decimal(Decimal::from_units(500))); // 5%
        })
        .unwrap();
    })
    .unwrap();
    s.with_table_mut(TABLES.customer, |t| {
        let c_slot = t.slot_of(&Key::ints(&[1, 1, 2])).unwrap();
        t.update_with(c_slot, |r| {
            r.set(col::c::DISCOUNT, Value::Decimal(Decimal::from_units(2000)));
            // 20%
        })
        .unwrap();
    })
    .unwrap();
    s.with_table_mut(TABLES.item, |t| {
        for item in [1i64, 2] {
            let i_slot = t.slot_of(&Key::ints(&[item])).unwrap();
            t.update_with(i_slot, |r| {
                r.set(col::i::PRICE, Value::Decimal(Decimal::from_int(10)));
            })
            .unwrap();
        }
    })
    .unwrap();

    let mut no = txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 1,
        c_id: 2,
        lines: vec![
            OrderLineInput {
                i_id: 1,
                supply_w_id: 1,
                qty: 2,
            }, // 20.00
            OrderLineInput {
                i_id: 2,
                supply_w_id: 1,
                qty: 3,
            }, // 30.00
        ],
        rollback: false,
    });
    let out = run(&s, &TwoPhase, &mut no, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    // total = 50 * (1 + 0.10 + 0.05) * (1 - 0.20) = 50 * 1.15 * 0.8 = 46.
    assert_eq!(no.total, Some(Decimal::from_int(46)));
    assert_eq!(
        no.amounts,
        vec![Decimal::from_int(20), Decimal::from_int(30)]
    );
}

#[test]
fn new_order_stock_91_rule() {
    let s = shared(2);
    // Force a known stock level below the reorder threshold.
    s.with_table_mut(TABLES.stock, |t| {
        let slot = t.slot_of(&Key::ints(&[1, 5])).unwrap();
        t.update_with(slot, |r| {
            r.set(col::s::QUANTITY, Value::Int(12));
        })
        .unwrap();
    })
    .unwrap();
    let mut no = txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 1,
        c_id: 1,
        lines: vec![OrderLineInput {
            i_id: 5,
            supply_w_id: 1,
            qty: 4,
        }],
        rollback: false,
    });
    run(&s, &TwoPhase, &mut no, WaitMode::Block).unwrap();
    let stock = s
        .with_table(TABLES.stock, |t| {
            t.get(&Key::ints(&[1, 5])).unwrap().1.clone()
        })
        .unwrap();
    // 12 - 4 = 8 < 10 → +91 ⇒ 99 (spec §2.4.2.2).
    assert_eq!(stock.int(col::s::QUANTITY), 99);
    assert_eq!(stock.int(col::s::YTD), 4);
    assert_eq!(stock.int(col::s::ORDER_CNT), 1);
}

#[test]
fn payment_by_last_name_picks_middle_match() {
    let s = shared(3);
    // Scale::test gives each district customers named last_name(0..11) for
    // c_id 1..12 — every name is unique, so "middle match" is that customer.
    let mut pay = txns::Payment::new(PaymentInput {
        w_id: 1,
        d_id: 2,
        c_d_id: 2,
        customer: CustomerSelector::ByLastName(last_name(7)),
        amount: Decimal::from_int(10),
    });
    run(&s, &TwoPhase, &mut pay, WaitMode::Block).unwrap();
    assert_eq!(pay.c_id, Some(8));
    let cust = s
        .with_table(TABLES.customer, |t| {
            t.get(&Key::ints(&[1, 2, 8])).unwrap().1.clone()
        })
        .unwrap();
    assert_eq!(cust.decimal(col::c::BALANCE), Decimal::from_int(-10));
    assert_eq!(cust.decimal(col::c::YTD_PAYMENT), Decimal::from_int(10));
    assert_eq!(cust.int(col::c::PAYMENT_CNT), 1);
    assert_eq!(s.with_table(TABLES.history, |t| t.len()).unwrap(), 1);
}

#[test]
fn payment_missing_name_rolls_back_cleanly() {
    let s = shared(4);
    let ytd_before = s
        .with_table(TABLES.warehouse, |t| {
            t.get(&Key::ints(&[1])).unwrap().1.decimal(col::w::YTD)
        })
        .unwrap();
    let mut pay = txns::Payment::new(PaymentInput {
        w_id: 1,
        d_id: 1,
        c_d_id: 1,
        customer: CustomerSelector::ByLastName("NOSUCHNAME".into()),
        amount: Decimal::from_int(10),
    });
    let err = run(&s, &TwoPhase, &mut pay, WaitMode::Block).unwrap_err();
    assert!(matches!(err, acc_common::Error::NotFound(_)));
    // Step-0 effects (w_ytd/d_ytd) were rolled back physically.
    let ytd = s
        .with_table(TABLES.warehouse, |t| {
            t.get(&Key::ints(&[1])).unwrap().1.decimal(col::w::YTD)
        })
        .unwrap();
    assert_eq!(ytd, ytd_before);
    assert_eq!(s.total_grants(), 0);
}

#[test]
fn order_status_reports_last_order() {
    let s = shared(5);
    // Give customer 1 of district 1 two orders; the initial population may
    // have given them some too — new ones get higher ids.
    for _ in 0..2 {
        let mut no = txns::NewOrder::new(NewOrderInput {
            w_id: 1,
            d_id: 1,
            c_id: 1,
            lines: vec![
                OrderLineInput {
                    i_id: 1,
                    supply_w_id: 1,
                    qty: 1,
                },
                OrderLineInput {
                    i_id: 2,
                    supply_w_id: 1,
                    qty: 1,
                },
                OrderLineInput {
                    i_id: 3,
                    supply_w_id: 1,
                    qty: 1,
                },
            ],
            rollback: false,
        });
        run(&s, &TwoPhase, &mut no, WaitMode::Block).unwrap();
    }
    let mut ost = txns::OrderStatus::new(OrderStatusInput {
        w_id: 1,
        d_id: 1,
        customer: CustomerSelector::ById(1),
    });
    run(&s, &TwoPhase, &mut ost, WaitMode::Block).unwrap();
    let (o_id, n_lines) = ost.last_order.expect("customer has orders");
    assert_eq!(o_id, 6, "4 initial orders + 2 new; last is 6");
    assert_eq!(n_lines, 3);
    assert!(ost.balance.is_some());
}

#[test]
fn delivery_processes_oldest_first_and_credits_customer() {
    let s = shared(6);
    let db = s.snapshot_db();
    let (oldest, c_id, amount) = {
        let oldest = db
            .table(TABLES.new_order)
            .unwrap()
            .scan_prefix(&Key::ints(&[1, 1]))
            .next()
            .map(|(_, r)| r.int(col::no::O_ID))
            .unwrap();
        let order = db
            .table(TABLES.order)
            .unwrap()
            .get(&Key::ints(&[1, 1, oldest]))
            .unwrap()
            .1
            .clone();
        let amount: Decimal = db
            .table(TABLES.order_line)
            .unwrap()
            .scan_prefix(&Key::ints(&[1, 1, oldest]))
            .map(|(_, l)| l.decimal(col::ol::AMOUNT))
            .sum();
        (oldest, order.int(col::o::C_ID), amount)
    };

    let mut dlv = txns::Delivery::new(
        DeliveryInput {
            w_id: 1,
            carrier_id: 3,
        },
        3,
    );
    run(&s, &TwoPhase, &mut dlv, WaitMode::Block).unwrap();
    assert!(dlv.delivered.contains(&(1, oldest)));
    let db = s.snapshot_db();
    let order = db
        .table(TABLES.order)
        .unwrap()
        .get(&Key::ints(&[1, 1, oldest]))
        .unwrap()
        .1
        .clone();
    assert_eq!(order.int(col::o::CARRIER_ID), 3);
    let cust = db
        .table(TABLES.customer)
        .unwrap()
        .get(&Key::ints(&[1, 1, c_id]))
        .unwrap()
        .1
        .clone();
    assert_eq!(cust.decimal(col::c::BALANCE), amount);
    assert_eq!(cust.int(col::c::DELIVERY_CNT), 1);
    // The NEW-ORDER row is gone.
    assert!(db
        .table(TABLES.new_order)
        .unwrap()
        .get(&Key::ints(&[1, 1, oldest]))
        .is_none());
}

#[test]
fn delivery_skips_empty_districts() {
    let s = shared(7);
    // Drain district 2 completely first.
    for _ in 0..4 {
        let mut d = txns::Delivery::new(
            DeliveryInput {
                w_id: 1,
                carrier_id: 1,
            },
            3,
        );
        run(&s, &TwoPhase, &mut d, WaitMode::Block).unwrap();
    }
    // Now a delivery on the empty warehouse: commits, delivers nothing.
    let mut d = txns::Delivery::new(
        DeliveryInput {
            w_id: 1,
            carrier_id: 1,
        },
        3,
    );
    let out = run(&s, &TwoPhase, &mut d, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    assert!(d.delivered.is_empty());
}

#[test]
fn stock_level_counts_below_threshold() {
    let s = shared(8);
    // Set every stock row's quantity to 50, then drop a couple of recently
    // ordered items below threshold.
    s.with_table_mut(TABLES.stock, |t| {
        let slots: Vec<_> = t.iter().map(|(s, _)| s).collect();
        for slot in slots {
            t.update_with(slot, |r| {
                r.set(col::s::QUANTITY, Value::Int(50));
            })
            .unwrap();
        }
    })
    .unwrap();
    let mut no = txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 1,
        c_id: 1,
        lines: vec![
            OrderLineInput {
                i_id: 7,
                supply_w_id: 1,
                qty: 1,
            },
            OrderLineInput {
                i_id: 8,
                supply_w_id: 1,
                qty: 1,
            },
        ],
        rollback: false,
    });
    run(&s, &TwoPhase, &mut no, WaitMode::Block).unwrap();
    s.with_table_mut(TABLES.stock, |t| {
        for item in [7i64, 8] {
            let slot = t.slot_of(&Key::ints(&[1, item])).unwrap();
            t.update_with(slot, |r| {
                r.set(col::s::QUANTITY, Value::Int(3));
            })
            .unwrap();
        }
    })
    .unwrap();
    let mut stk = txns::StockLevel::new(StockLevelInput {
        w_id: 1,
        d_id: 1,
        threshold: 10,
    });
    run(&s, &TwoPhase, &mut stk, WaitMode::Block).unwrap();
    // Items 7 and 8 are among the last 20 orders' lines and below threshold;
    // everything else sits at 50 (or 49 after the order) — above threshold.
    assert_eq!(stk.low_stock, Some(2));
}
