//! End-to-end TPC-C runs under strict 2PL and under the ACC, with the
//! consistency conditions checked at quiescence.

use acc_common::rng::SeededRng;
use acc_common::Decimal;
use acc_engine::{Stepper, StepperConfig};
use acc_storage::{Database, Key};
use acc_tpcc::consistency;
use acc_tpcc::decompose::TpccSystem;
use acc_tpcc::input::{
    CustomerSelector, DeliveryInput, InputGen, NewOrderInput, OrderLineInput, PaymentInput,
    StockLevelInput, TpccConfig, TxnInput,
};
use acc_tpcc::populate;
use acc_tpcc::schema::{col, tpcc_catalog, Scale, TABLES};
use acc_tpcc::txns::{self, program_for};
use acc_txn::{
    run, AbortReason, ConcurrencyControl, RunOutcome, SharedDb, TwoPhase, TxnProgram, WaitMode,
};
use std::sync::Arc;
use std::time::Duration;

fn system(scale: Scale, seed: u64) -> (Arc<SharedDb>, TpccSystem) {
    let sys = TpccSystem::build();
    let cat = tpcc_catalog();
    let mut db = Database::new(&cat);
    populate(&mut db, &scale, seed);
    let shared = Arc::new(
        SharedDb::new(db, Arc::clone(&sys.tables) as _).with_wait_cap(Duration::from_secs(20)),
    );
    (shared, sys)
}

fn assert_consistent(shared: &SharedDb, strict: bool) {
    let v = consistency::check(&shared.snapshot_db(), strict);
    assert!(v.is_empty(), "consistency violations: {v:#?}");
    assert_eq!(shared.total_grants(), 0, "lock table drained");
}

fn run_with_resubmit(
    shared: &SharedDb,
    cc: &dyn ConcurrencyControl,
    mut program: Box<dyn TxnProgram + Send>,
) -> RunOutcome {
    for _ in 0..30 {
        match run(shared, cc, program.as_mut(), WaitMode::Block).expect("no hard errors") {
            RunOutcome::RolledBack(AbortReason::Deadlock)
            | RunOutcome::RolledBack(AbortReason::Doomed) => continue,
            outcome => return outcome,
        }
    }
    panic!("transaction could not complete after 30 resubmissions");
}

#[test]
fn each_transaction_type_runs_under_2pl() {
    let (shared, _sys) = system(Scale::test(), 1);

    let mut no = txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 1,
        c_id: 3,
        lines: vec![
            OrderLineInput {
                i_id: 1,
                supply_w_id: 1,
                qty: 3,
            },
            OrderLineInput {
                i_id: 2,
                supply_w_id: 1,
                qty: 4,
            },
        ],
        rollback: false,
    });
    let out = run(&shared, &TwoPhase, &mut no, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    assert_eq!(no.o_id, Some(5)); // 4 initial orders
    assert!(no.total.is_some());

    let mut pay = txns::Payment::new(PaymentInput {
        w_id: 1,
        d_id: 1,
        c_d_id: 1,
        customer: CustomerSelector::ById(3),
        amount: Decimal::from_int(100),
    });
    let out = run(&shared, &TwoPhase, &mut pay, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));

    let mut pay_by_name = txns::Payment::new(PaymentInput {
        w_id: 1,
        d_id: 1,
        c_d_id: 1,
        customer: CustomerSelector::ByLastName(acc_tpcc::populate::last_name(2)),
        amount: Decimal::from_int(50),
    });
    let out = run(&shared, &TwoPhase, &mut pay_by_name, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    assert_eq!(pay_by_name.c_id, Some(3)); // name #2 belongs to customer 3

    let mut ost = txns::OrderStatus::new(acc_tpcc::input::OrderStatusInput {
        w_id: 1,
        d_id: 1,
        customer: CustomerSelector::ById(3),
    });
    let out = run(&shared, &TwoPhase, &mut ost, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    assert!(ost.balance.is_some());

    let mut dlv = txns::Delivery::new(
        DeliveryInput {
            w_id: 1,
            carrier_id: 7,
        },
        3,
    );
    let out = run(&shared, &TwoPhase, &mut dlv, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    assert_eq!(dlv.delivered.len(), 3, "one order per district");

    let mut stk = txns::StockLevel::new(StockLevelInput {
        w_id: 1,
        d_id: 1,
        threshold: 50,
    });
    let out = run(&shared, &TwoPhase, &mut stk, WaitMode::Block).unwrap();
    assert!(matches!(out, RunOutcome::Committed { .. }));
    assert!(stk.low_stock.is_some());

    assert_consistent(&shared, true);
}

#[test]
fn new_order_rollback_compensates_under_acc() {
    let (shared, sys) = system(Scale::test(), 2);
    let stock_before: i64 = shared
        .with_table(TABLES.stock, |t| {
            t.iter().map(|(_, r)| r.int(col::s::QUANTITY)).sum()
        })
        .unwrap();

    let mut no = txns::NewOrder::new(NewOrderInput {
        w_id: 1,
        d_id: 2,
        c_id: 1,
        lines: vec![
            OrderLineInput {
                i_id: 5,
                supply_w_id: 1,
                qty: 2,
            },
            OrderLineInput {
                i_id: 6,
                supply_w_id: 1,
                qty: 2,
            },
            OrderLineInput {
                i_id: 7,
                supply_w_id: 1,
                qty: 2,
            },
        ],
        rollback: true,
    });
    let out = run(&shared, &*sys.acc, &mut no, WaitMode::Block).unwrap();
    assert_eq!(out, RunOutcome::RolledBack(AbortReason::UserAbort));

    let db = shared.snapshot_db();
    // Order gone, lines gone, stock restored.
    assert!(db
        .table(TABLES.order)
        .unwrap()
        .get(&Key::ints(&[1, 2, 5]))
        .is_none());
    let stock_after: i64 = db
        .table(TABLES.stock)
        .unwrap()
        .iter()
        .map(|(_, r)| r.int(col::s::QUANTITY))
        .sum();
    assert_eq!(stock_after, stock_before);
    // The order id was consumed (gap allowed under semantic correctness).
    let d = db
        .table(TABLES.district)
        .unwrap()
        .get(&Key::ints(&[1, 2]))
        .unwrap()
        .1
        .clone();
    assert_eq!(d.int(col::d::NEXT_O_ID), 6);
    assert_consistent(&shared, false);
}

fn threaded_mix(cc_name: &str, strict: bool) {
    let scale = Scale::test();
    let (shared, sys) = system(scale, 3);
    let cc: Arc<dyn ConcurrencyControl> = if cc_name == "acc" {
        Arc::clone(&sys.acc) as _
    } else {
        Arc::new(TwoPhase)
    };
    let gen = Arc::new(InputGen::new(TpccConfig::standard(scale), 9));

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let shared = Arc::clone(&shared);
        let cc = Arc::clone(&cc);
        let gen = Arc::clone(&gen);
        handles.push(std::thread::spawn(move || {
            let mut rng = SeededRng::new(100 + t);
            let mut committed = 0;
            for _ in 0..20 {
                let input = gen.next_input(&mut rng);
                let program = program_for(input, 3);
                if matches!(
                    run_with_resubmit(&shared, &*cc, program),
                    RunOutcome::Committed { .. }
                ) {
                    committed += 1;
                }
            }
            committed
        }));
    }
    let committed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(committed > 40, "only {committed} commits");
    assert_consistent(&shared, strict);
}

#[test]
fn threaded_mix_under_2pl_is_strictly_consistent() {
    threaded_mix("2pl", true);
}

#[test]
fn threaded_mix_under_acc_is_semantically_consistent() {
    threaded_mix("acc", false);
}

#[test]
fn stepper_explores_acc_interleavings_consistently() {
    for seed in [1u64, 7, 23, 99] {
        let scale = Scale::test();
        let (shared, sys) = system(scale, 4);
        let gen = InputGen::new(TpccConfig::standard(scale), seed);
        let mut rng = SeededRng::new(seed * 31);
        let mut programs: Vec<Box<dyn TxnProgram>> = (0..10)
            .map(|_| {
                let input = gen.next_input(&mut rng);
                let b: Box<dyn TxnProgram> = match input {
                    TxnInput::NewOrder(i) => Box::new(txns::NewOrder::new(i)),
                    TxnInput::Payment(i) => Box::new(txns::Payment::new(i)),
                    TxnInput::OrderStatus(i) => Box::new(txns::OrderStatus::new(i)),
                    TxnInput::Delivery(i) => Box::new(txns::Delivery::new(i, 3)),
                    TxnInput::StockLevel(i) => Box::new(txns::StockLevel::new(i)),
                };
                b
            })
            .collect();
        let mut stepper = Stepper::new(&shared, &*sys.acc);
        let report = stepper
            .run_all(
                &mut programs,
                &StepperConfig {
                    seed,
                    max_resubmits: 40,
                },
            )
            .unwrap();
        // All transactions reached a final state.
        assert_eq!(report.outcomes.len(), 10);
        assert_consistent(&shared, false);
    }
}

#[test]
fn deliveries_drain_new_orders() {
    let (shared, sys) = system(Scale::test(), 5);
    // 4 initial orders per district, 3 districts: 2 deliveries drain at most
    // 2 per district; run 5 to fully drain.
    for _ in 0..5 {
        let program = Box::new(txns::Delivery::new(
            DeliveryInput {
                w_id: 1,
                carrier_id: 1,
            },
            3,
        ));
        run_with_resubmit(&shared, &*sys.acc, program);
    }
    let db = shared.snapshot_db();
    assert_eq!(db.table(TABLES.new_order).unwrap().len(), 0);
    // Every order is delivered and every line stamped.
    for (_, o) in db.table(TABLES.order).unwrap().iter() {
        assert!(!o.is_null(col::o::CARRIER_ID));
    }
    for (_, l) in db.table(TABLES.order_line).unwrap().iter() {
        assert!(!l.is_null(col::ol::DELIVERY_D));
    }
    assert_consistent(&shared, true);
}

#[test]
fn legacy_reporting_txn_sees_consistent_totals_during_acc_mix() {
    // A 2PL (legacy) transaction summing a district's YTD against its
    // history must always see a consistent snapshot, even while decomposed
    // payments run — the DIRTY pins isolate it (§3.3).
    use acc_common::{Result, TxnTypeId};
    use acc_txn::{StepCtx, StepOutcome};

    struct Audit {
        d_id: i64,
        consistent: bool,
    }
    impl TxnProgram for Audit {
        fn txn_type(&self) -> TxnTypeId {
            TxnTypeId(90)
        }
        fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
            let d = ctx.read_existing(TABLES.district, &Key::ints(&[1, self.d_id]))?;
            let ytd = d.decimal(col::d::YTD);
            let hist = ctx.scan(
                TABLES.history,
                &acc_storage::Predicate::eq(col::h::C_D_ID, self.d_id),
            )?;
            let sum: Decimal = hist.iter().map(|(_, h)| h.decimal(col::h::AMOUNT)).sum();
            self.consistent = ytd == sum;
            Ok(StepOutcome::Done)
        }
    }

    let scale = Scale::test();
    let (shared, sys) = system(scale, 6);
    let gen = Arc::new(InputGen::new(TpccConfig::standard(scale), 17));

    let mut handles = Vec::new();
    for t in 0..2u64 {
        let shared = Arc::clone(&shared);
        let acc = Arc::clone(&sys.acc);
        let gen = Arc::clone(&gen);
        handles.push(std::thread::spawn(move || {
            let mut rng = SeededRng::new(t + 40);
            for _ in 0..15 {
                let p = Box::new(txns::Payment::new(gen.payment(&mut rng)));
                run_with_resubmit(&shared, &*acc, p);
            }
        }));
    }
    // Interleave audits with the payment storm.
    for _ in 0..10 {
        let mut audit2 = Audit {
            d_id: 1,
            consistent: false,
        };
        loop {
            match run(&shared, &TwoPhase, &mut audit2, WaitMode::Block).unwrap() {
                RunOutcome::Committed { .. } => break,
                RunOutcome::RolledBack(_) => continue,
            }
        }
        assert!(audit2.consistent, "audit saw torn payment state");
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_consistent(&shared, true);
}
