//! The TPC-C consistency conditions (spec §3.3.2), as a quiescence checker.
//!
//! Two flavours:
//!
//! * **strict** — everything the spec demands of a serializable execution,
//!   including the *contiguity* of order ids (condition 3);
//! * **semantic** — what the ACC's semantic-correctness criterion guarantees
//!   (§3.1): every condition except contiguity/o_id-maximality equalities,
//!   which become inequalities because a compensated new-order consumes its
//!   order number (the §4 result predicate explicitly allows this).
//!
//! Everything else — YTD sums, order/line counts, delivery flags, customer
//! balances — must hold exactly in both modes.

use crate::schema::{col, TABLES};
use acc_common::Decimal;
use acc_storage::{Database, Key};
use std::collections::HashMap;

/// A violated condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Condition number (spec §3.3.2.x).
    pub condition: u32,
    /// Human-readable description.
    pub detail: String,
}

/// Check all conditions; `strict` enables the serializable-only equalities.
pub fn check(db: &Database, strict: bool) -> Vec<Violation> {
    let mut out = Vec::new();
    let warehouses = db.table(TABLES.warehouse).expect("warehouse table");
    let districts = db.table(TABLES.district).expect("district table");
    let orders = db.table(TABLES.order).expect("order table");
    let new_orders = db.table(TABLES.new_order).expect("new_order table");
    let lines = db.table(TABLES.order_line).expect("order_line table");
    let history = db.table(TABLES.history).expect("history table");
    let customers = db.table(TABLES.customer).expect("customer table");

    // Condition 1: w_ytd = sum(d_ytd); condition 8: w_ytd = sum(h_amount).
    for (_, w) in warehouses.iter() {
        let w_id = w.int(col::w::ID);
        let d_sum: Decimal = districts
            .scan_prefix(&Key::ints(&[w_id]))
            .map(|(_, d)| d.decimal(col::d::YTD))
            .sum();
        if w.decimal(col::w::YTD) != d_sum {
            out.push(Violation {
                condition: 1,
                detail: format!(
                    "warehouse {w_id}: w_ytd {} != sum(d_ytd) {d_sum}",
                    w.decimal(col::w::YTD)
                ),
            });
        }
        let h_sum: Decimal = history
            .iter()
            .filter(|(_, h)| h.int(col::h::C_W_ID) == w_id)
            .map(|(_, h)| h.decimal(col::h::AMOUNT))
            .sum();
        if w.decimal(col::w::YTD) != h_sum {
            out.push(Violation {
                condition: 8,
                detail: format!(
                    "warehouse {w_id}: w_ytd {} != sum(h_amount) {h_sum}",
                    w.decimal(col::w::YTD)
                ),
            });
        }
    }

    for (_, d) in districts.iter() {
        let (w_id, d_id) = (d.int(col::d::W_ID), d.int(col::d::ID));
        let prefix = Key::ints(&[w_id, d_id]);
        let next_o = d.int(col::d::NEXT_O_ID);

        // Condition 2: d_next_o_id - 1 vs max(o_id) / max(no_o_id).
        let max_o = orders
            .scan_prefix(&prefix)
            .map(|(_, o)| o.int(col::o::ID))
            .max()
            .unwrap_or(0);
        if strict {
            if next_o - 1 != max_o {
                out.push(Violation {
                    condition: 2,
                    detail: format!(
                        "district ({w_id},{d_id}): d_next_o_id-1 = {} != max(o_id) = {max_o}",
                        next_o - 1
                    ),
                });
            }
        } else if next_o - 1 < max_o {
            out.push(Violation {
                condition: 2,
                detail: format!(
                    "district ({w_id},{d_id}): d_next_o_id-1 = {} < max(o_id) = {max_o}",
                    next_o - 1
                ),
            });
        }

        // Condition 3 (strict only): NEW-ORDER ids are contiguous.
        if strict {
            let no_ids: Vec<i64> = new_orders
                .scan_prefix(&prefix)
                .map(|(_, n)| n.int(col::no::O_ID))
                .collect();
            if let (Some(&min), Some(&max)) = (no_ids.iter().min(), no_ids.iter().max()) {
                if max - min + 1 != no_ids.len() as i64 {
                    out.push(Violation {
                        condition: 3,
                        detail: format!(
                            "district ({w_id},{d_id}): new_order ids not contiguous ({min}..{max}, {} rows)",
                            no_ids.len()
                        ),
                    });
                }
            }
        }

        // Condition 4: sum(o_ol_cnt) = count(order_line rows).
        let ol_cnt_sum: i64 = orders
            .scan_prefix(&prefix)
            .map(|(_, o)| o.int(col::o::OL_CNT))
            .sum();
        let line_count = lines.scan_prefix(&prefix).count() as i64;
        if ol_cnt_sum != line_count {
            out.push(Violation {
                condition: 4,
                detail: format!(
                    "district ({w_id},{d_id}): sum(ol_cnt) {ol_cnt_sum} != line rows {line_count}"
                ),
            });
        }

        // Condition 9: d_ytd = sum of the district's history amounts.
        let h_sum: Decimal = history
            .iter()
            .filter(|(_, h)| h.int(col::h::C_W_ID) == w_id && h.int(col::h::C_D_ID) == d_id)
            .map(|(_, h)| h.decimal(col::h::AMOUNT))
            .sum();
        if d.decimal(col::d::YTD) != h_sum {
            out.push(Violation {
                condition: 9,
                detail: format!(
                    "district ({w_id},{d_id}): d_ytd {} != sum(h_amount) {h_sum}",
                    d.decimal(col::d::YTD)
                ),
            });
        }
    }

    // Per-order conditions 5, 6, 7.
    for (_, o) in orders.iter() {
        let key = [o.int(col::o::W_ID), o.int(col::o::D_ID), o.int(col::o::ID)];
        let prefix = Key::ints(&key);
        let has_new_order = new_orders.get(&prefix).is_some();
        let carrier_null = o.is_null(col::o::CARRIER_ID);
        if has_new_order != carrier_null {
            out.push(Violation {
                condition: 5,
                detail: format!(
                    "order {key:?}: carrier_null={carrier_null} but new_order row present={has_new_order}"
                ),
            });
        }
        let order_lines: Vec<_> = lines.scan_prefix(&prefix).collect();
        if o.int(col::o::OL_CNT) != order_lines.len() as i64 {
            out.push(Violation {
                condition: 6,
                detail: format!(
                    "order {key:?}: ol_cnt {} != {} lines",
                    o.int(col::o::OL_CNT),
                    order_lines.len()
                ),
            });
        }
        for (_, l) in &order_lines {
            let line_undelivered = l.is_null(col::ol::DELIVERY_D);
            if line_undelivered != carrier_null {
                out.push(Violation {
                    condition: 7,
                    detail: format!(
                        "order {key:?} line {}: delivery flag disagrees with carrier",
                        l.int(col::ol::NUMBER)
                    ),
                });
            }
        }
    }

    // Condition 10 (adapted to our clean-slate population): c_balance =
    // sum(delivered line amounts) - sum(payments) per customer.
    let mut delivered: HashMap<(i64, i64, i64), Decimal> = HashMap::new();
    for (_, o) in orders.iter() {
        if o.is_null(col::o::CARRIER_ID) {
            continue;
        }
        let ckey = (
            o.int(col::o::W_ID),
            o.int(col::o::D_ID),
            o.int(col::o::C_ID),
        );
        let amount: Decimal = lines
            .scan_prefix(&Key::ints(&[
                o.int(col::o::W_ID),
                o.int(col::o::D_ID),
                o.int(col::o::ID),
            ]))
            .map(|(_, l)| l.decimal(col::ol::AMOUNT))
            .sum();
        *delivered.entry(ckey).or_insert(Decimal::ZERO) += amount;
    }
    let mut paid: HashMap<(i64, i64, i64), Decimal> = HashMap::new();
    for (_, h) in history.iter() {
        let ckey = (
            h.int(col::h::C_W_ID),
            h.int(col::h::C_D_ID),
            h.int(col::h::C_ID),
        );
        *paid.entry(ckey).or_insert(Decimal::ZERO) += h.decimal(col::h::AMOUNT);
    }
    for (_, c) in customers.iter() {
        let ckey = (c.int(col::c::W_ID), c.int(col::c::D_ID), c.int(col::c::ID));
        let expect = delivered.get(&ckey).copied().unwrap_or(Decimal::ZERO)
            - paid.get(&ckey).copied().unwrap_or(Decimal::ZERO);
        if c.decimal(col::c::BALANCE) != expect {
            out.push(Violation {
                condition: 10,
                detail: format!(
                    "customer {ckey:?}: balance {} != delivered-paid {expect}",
                    c.decimal(col::c::BALANCE)
                ),
            });
        }
        // c_ytd_payment mirrors the history sum.
        let paid_sum = paid.get(&ckey).copied().unwrap_or(Decimal::ZERO);
        if c.decimal(col::c::YTD_PAYMENT) != paid_sum {
            out.push(Violation {
                condition: 12,
                detail: format!(
                    "customer {ckey:?}: ytd_payment {} != sum(h_amount) {paid_sum}",
                    c.decimal(col::c::YTD_PAYMENT)
                ),
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::populate::populate;
    use crate::schema::{tpcc_catalog, Scale};
    use acc_common::Value;

    #[test]
    fn fresh_population_is_consistent() {
        let cat = tpcc_catalog();
        let mut db = Database::new(&cat);
        populate(&mut db, &Scale::test(), 1);
        let v = check(&db, true);
        assert!(v.is_empty(), "{v:#?}");
    }

    #[test]
    fn detects_ytd_mismatch() {
        let cat = tpcc_catalog();
        let mut db = Database::new(&cat);
        populate(&mut db, &Scale::test(), 1);
        db.table_mut(TABLES.warehouse)
            .unwrap()
            .update_with(0, |r| {
                r.set(col::w::YTD, Value::Decimal(Decimal::from_int(5)));
            })
            .unwrap();
        let v = check(&db, true);
        assert!(v.iter().any(|x| x.condition == 1), "{v:?}");
        assert!(v.iter().any(|x| x.condition == 8), "{v:?}");
    }

    #[test]
    fn detects_missing_line() {
        let cat = tpcc_catalog();
        let mut db = Database::new(&cat);
        populate(&mut db, &Scale::test(), 1);
        // Delete one order line.
        let slot = db
            .table(TABLES.order_line)
            .unwrap()
            .iter()
            .next()
            .unwrap()
            .0;
        db.table_mut(TABLES.order_line)
            .unwrap()
            .delete(slot)
            .unwrap();
        let v = check(&db, true);
        assert!(v.iter().any(|x| x.condition == 4), "{v:?}");
        assert!(v.iter().any(|x| x.condition == 6), "{v:?}");
    }

    #[test]
    fn strict_contiguity_only_in_strict_mode() {
        let cat = tpcc_catalog();
        let mut db = Database::new(&cat);
        populate(&mut db, &Scale::test(), 1);
        // Simulate a compensated order: remove order 2 of district 1 (its
        // order, lines and new_order row) leaving a gap.
        let prefix = Key::ints(&[1, 1, 2]);
        db.table_mut(TABLES.new_order)
            .unwrap()
            .delete_by_key(&prefix)
            .unwrap();
        let line_keys: Vec<Key> = db
            .table(TABLES.order_line)
            .unwrap()
            .scan_prefix(&prefix)
            .map(|(_, r)| Key::ints(&[1, 1, 2, r.int(col::ol::NUMBER)]))
            .collect();
        for k in line_keys {
            db.table_mut(TABLES.order_line)
                .unwrap()
                .delete_by_key(&k)
                .unwrap();
        }
        db.table_mut(TABLES.order)
            .unwrap()
            .delete_by_key(&prefix)
            .unwrap();

        let strict = check(&db, true);
        assert!(strict.iter().any(|x| x.condition == 3), "{strict:?}");
        let semantic = check(&db, false);
        assert!(
            semantic.iter().all(|x| x.condition != 3),
            "semantic mode tolerates gaps: {semantic:?}"
        );
        assert!(
            semantic.iter().all(|x| x.condition != 2),
            "consumed o_id is fine: {semantic:?}"
        );
    }
}
