//! Resuming TPC-C compensation after a crash.
//!
//! Crash recovery (`acc-wal`) replays durable steps and reports the
//! transactions that were in flight with at least one completed step. The
//! paper's system "saves some of its work area in a database table for
//! compensation" (§5); ours travels with the end-of-step log record. This
//! module turns a recovered work area back into the right program and runs
//! its compensating step.

use crate::decompose::ty;
use crate::txns::{Delivery, NewOrder, Payment};
use acc_common::{Decimal, Error, Result};
use acc_txn::runner::rollback;
use acc_txn::{ConcurrencyControl, SharedDb, Transaction, TxnProgram, TxnState};
use acc_wal::InFlight;

fn read_i64(bytes: &[u8], at: usize) -> Option<i64> {
    bytes
        .get(at..at + 8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte slice")))
}

/// Rebuild the compensable program for a recovered in-flight transaction.
pub fn program_for_inflight(inflight: &InFlight) -> Result<Box<dyn TxnProgram + Send>> {
    let wa = &inflight.work_area;
    match inflight.txn_type {
        t if t == ty::NEW_ORDER => {
            let (w, d, o) = (read_i64(wa, 0), read_i64(wa, 8), read_i64(wa, 16));
            match (w, d, o) {
                (Some(w), Some(d), Some(o)) if o >= 0 => Ok(Box::new(NewOrder::recovered(w, d, o))),
                _ => Err(Error::Recovery(format!(
                    "unparseable new-order work area for {}",
                    inflight.txn
                ))),
            }
        }
        t if t == ty::PAYMENT => match (read_i64(wa, 0), read_i64(wa, 8), read_i64(wa, 16)) {
            (Some(w), Some(d), Some(amount)) => Ok(Box::new(Payment::recovered(
                w,
                d,
                Decimal::from_units(amount),
            ))),
            _ => Err(Error::Recovery(format!(
                "unparseable payment work area for {}",
                inflight.txn
            ))),
        },
        t if t == ty::DELIVERY => Delivery::recovered(wa)
            .map(|p| Box::new(p) as Box<dyn TxnProgram + Send>)
            .ok_or_else(|| {
                Error::Recovery(format!(
                    "unparseable delivery work area for {}",
                    inflight.txn
                ))
            }),
        other => Err(Error::Recovery(format!(
            "in-flight transaction {} has non-compensable type {other}",
            inflight.txn
        ))),
    }
}

/// Run the compensating step for every recovered in-flight transaction.
/// Returns how many were compensated.
pub fn resume_compensation(
    shared: &SharedDb,
    cc: &dyn ConcurrencyControl,
    inflight: &[InFlight],
) -> Result<usize> {
    let mut done = 0;
    for inf in inflight {
        let mut program = program_for_inflight(inf)?;
        let mut txn = Transaction::new(inf.txn, inf.txn_type);
        txn.steps_completed = inf.steps_completed;
        txn.step_index = inf.steps_completed;
        txn.state = TxnState::Active;
        rollback(shared, cc, program.as_mut(), &mut txn)?;
        done += 1;
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::TxnId;
    use acc_wal::InFlight;

    #[test]
    fn new_order_work_area_round_trip() {
        let p = NewOrder::recovered(1, 4, 77);
        let wa = p.work_area();
        let inf = InFlight {
            txn: TxnId(9),
            txn_type: ty::NEW_ORDER,
            steps_completed: 3,
            work_area: wa,
            compensating: false,
        };
        assert!(program_for_inflight(&inf).is_ok());
    }

    #[test]
    fn payment_work_area_round_trip() {
        let p = Payment::recovered(1, 2, Decimal::from_cents(555));
        let inf = InFlight {
            txn: TxnId(9),
            txn_type: ty::PAYMENT,
            steps_completed: 1,
            work_area: p.work_area(),
            compensating: false,
        };
        assert!(program_for_inflight(&inf).is_ok());
    }

    #[test]
    fn delivery_work_area_round_trip() {
        let p = Delivery::new(
            crate::input::DeliveryInput {
                w_id: 1,
                carrier_id: 3,
            },
            10,
        );
        let inf = InFlight {
            txn: TxnId(9),
            txn_type: ty::DELIVERY,
            steps_completed: 2,
            work_area: p.work_area(),
            compensating: false,
        };
        assert!(program_for_inflight(&inf).is_ok());
    }

    fn expect_recovery_err(txn_type: acc_common::TxnTypeId, work_area: Vec<u8>) {
        let inf = InFlight {
            txn: TxnId(9),
            txn_type,
            steps_completed: 1,
            work_area,
            compensating: false,
        };
        assert!(
            matches!(program_for_inflight(&inf), Err(Error::Recovery(_))),
            "work area {:?} must be rejected",
            inf.work_area
        );
    }

    fn i64s(vals: &[i64]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn short_work_areas_are_errors_not_panics() {
        // Every prefix length shorter than the fixed header of each program.
        for len in [0usize, 1, 7, 8, 15, 16, 23] {
            expect_recovery_err(ty::NEW_ORDER, vec![0xab; len]);
            expect_recovery_err(ty::PAYMENT, vec![0xab; len]);
        }
        for len in [0usize, 1, 7, 8, 15] {
            expect_recovery_err(ty::DELIVERY, vec![0xab; len]);
        }
    }

    #[test]
    fn new_order_negative_order_id_is_rejected() {
        expect_recovery_err(ty::NEW_ORDER, i64s(&[1, 1, -5]));
    }

    #[test]
    fn delivery_malformed_work_areas_are_errors_not_panics() {
        // Negative district count: previously sized a `vec![None; n as usize]`
        // allocation from attacker-controlled bytes.
        expect_recovery_err(ty::DELIVERY, i64s(&[1, -1]));
        // Absurd district count: ditto, as a near-usize::MAX allocation.
        expect_recovery_err(ty::DELIVERY, i64s(&[1, i64::MAX]));
        // Claim index outside the district range: previously an
        // out-of-bounds slice write.
        expect_recovery_err(ty::DELIVERY, i64s(&[1, 3, 99, 5, 5, 5, 5, 1]));
        expect_recovery_err(ty::DELIVERY, i64s(&[1, 3, -2, 5, 5, 5, 5, 1]));
        // Claim tuple cut mid-field (length not a multiple of 8).
        let mut torn = i64s(&[1, 3, 0, 5, 5, 5, 5, 1]);
        torn.truncate(torn.len() - 3);
        expect_recovery_err(ty::DELIVERY, torn);
        // Claim tuple missing trailing fields.
        expect_recovery_err(ty::DELIVERY, i64s(&[1, 3, 0, 5, 5]));
        // Garbage `applied` flag.
        expect_recovery_err(ty::DELIVERY, i64s(&[1, 3, 0, 5, 5, 5, 5, 7]));
        // Non-positive warehouse id.
        expect_recovery_err(ty::DELIVERY, i64s(&[0, 3]));
    }

    #[test]
    fn garbage_work_area_is_an_error() {
        let inf = InFlight {
            txn: TxnId(9),
            txn_type: ty::NEW_ORDER,
            steps_completed: 1,
            work_area: vec![1, 2, 3],
            compensating: false,
        };
        assert!(matches!(
            program_for_inflight(&inf),
            Err(Error::Recovery(_))
        ));
        let inf = InFlight {
            txn: TxnId(9),
            txn_type: ty::ORDER_STATUS,
            steps_completed: 1,
            work_area: vec![],
            compensating: false,
        };
        assert!(matches!(
            program_for_inflight(&inf),
            Err(Error::Recovery(_))
        ));
    }
}
