//! The TPC-C workload, decomposed for the ACC exactly as the paper's
//! evaluation decomposed it (§5).
//!
//! * [`schema`] — the nine TPC-C tables, with page geometry chosen to mirror
//!   Open Ingres's page-level locking (the district table is row-per-page:
//!   it is *the* hot spot);
//! * [`populate`](mod@populate) — deterministic population at a configurable [`Scale`]
//!   (the full spec sizes are impractical for unit tests; benchmarks use a
//!   larger preset);
//! * [`input`] — TPC-C input generation: NURand customer/item selection, the
//!   standard transaction mix, plus the paper's experiment knobs (district
//!   skew for Fig. 2, order-line count and inter-statement compute time for
//!   Fig. 3);
//! * [`txns`] — the five transactions as step-decomposed
//!   [`acc_txn::TxnProgram`]s, runnable under both 2PL and the ACC;
//! * [`decompose`] — step types, assertion templates, semantic declarations
//!   and the interference analysis (the design-time artifact of §5.1);
//! * [`consistency`] — the TPC-C consistency conditions, with the strict
//!   variants that only serializable execution guarantees separated from the
//!   semantic-correctness variants the ACC guarantees;
//! * [`torture`] — the crash-torture harness: recovery + compensation +
//!   consistency at every WAL crash point, plus seeded corruption;
//! * [`trace`] — the same workload as simulator traces for the figure
//!   harness.

pub mod consistency;
pub mod decompose;
pub mod input;
pub mod populate;
pub mod recovery;
pub mod schema;
pub mod torture;
pub mod trace;
pub mod txns;

pub use decompose::TpccSystem;
pub use input::{InputGen, TpccConfig, TxnKind};
pub use populate::populate;
pub use schema::{tpcc_catalog, Scale, TableIds};
pub use trace::TpccTraceSource;
