//! TPC-C input generation: the transaction mix and per-transaction
//! parameters (spec §2), plus the paper's experiment knobs.

use crate::populate::last_name;
use crate::schema::Scale;
use acc_common::rng::{NuRand, SeededRng, Zipf};
use acc_common::Decimal;

/// The five transaction types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnKind {
    /// 45 % of the mix; mid-weight read-write.
    NewOrder,
    /// 43 %; light read-write, shares the district row with new-order.
    Payment,
    /// 4 %; read-only.
    OrderStatus,
    /// 4 %; the long-running transaction (10 districts per invocation).
    Delivery,
    /// 4 %; read-only, may run read-committed.
    StockLevel,
}

/// Workload configuration: spec defaults plus the paper's experiment knobs.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    /// Database scale.
    pub scale: Scale,
    /// District-selection skew: `0.0` is the spec's uniform choice
    /// ("Standard" in Fig. 2); larger values concentrate load on few
    /// districts ("Skewed").
    pub district_skew: f64,
    /// Order-line count range (spec: 5–15). Raising it lengthens new-order
    /// and delivery — one of the paper's two lock-duration knobs (§5.2).
    pub min_ol: i64,
    /// Upper bound of the order-line count.
    pub max_ol: i64,
    /// Fraction of new-orders that must roll back on their last item
    /// (spec: 1 %).
    pub rollback_rate: f64,
    /// Fraction of payment/order-status selecting the customer by last name
    /// (spec: 60 %).
    pub by_last_name_rate: f64,
}

impl TpccConfig {
    /// Spec-conforming configuration at the given scale.
    pub fn standard(scale: Scale) -> Self {
        TpccConfig {
            scale,
            district_skew: 0.0,
            min_ol: 5,
            max_ol: 15,
            rollback_rate: 0.01,
            by_last_name_rate: 0.60,
        }
    }

    /// The paper's "Skewed" district distribution (Fig. 2).
    pub fn skewed(scale: Scale) -> Self {
        TpccConfig {
            district_skew: 1.2,
            ..Self::standard(scale)
        }
    }
}

/// One order line request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderLineInput {
    /// Item ordered.
    pub i_id: i64,
    /// Supplying warehouse (always local at 1 warehouse).
    pub supply_w_id: i64,
    /// Quantity (1–10).
    pub qty: i64,
}

/// New-order parameters.
#[derive(Debug, Clone)]
pub struct NewOrderInput {
    /// Warehouse.
    pub w_id: i64,
    /// District.
    pub d_id: i64,
    /// Customer.
    pub c_id: i64,
    /// Requested lines.
    pub lines: Vec<OrderLineInput>,
    /// Spec-mandated rollback on the last item (1 %).
    pub rollback: bool,
}

/// How payment / order-status pick the customer (spec §2.5.1.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CustomerSelector {
    /// By primary key.
    ById(i64),
    /// By last name (select the middle matching row).
    ByLastName(String),
}

/// Payment parameters.
#[derive(Debug, Clone)]
pub struct PaymentInput {
    /// Warehouse.
    pub w_id: i64,
    /// District.
    pub d_id: i64,
    /// Customer's district (== d_id at 1 warehouse).
    pub c_d_id: i64,
    /// Customer selection.
    pub customer: CustomerSelector,
    /// Amount (1.00–5000.00).
    pub amount: Decimal,
}

/// Order-status parameters.
#[derive(Debug, Clone)]
pub struct OrderStatusInput {
    /// Warehouse.
    pub w_id: i64,
    /// District.
    pub d_id: i64,
    /// Customer selection.
    pub customer: CustomerSelector,
}

/// Delivery parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeliveryInput {
    /// Warehouse.
    pub w_id: i64,
    /// Carrier assigned to every delivered order.
    pub carrier_id: i64,
}

/// Stock-level parameters.
#[derive(Debug, Clone, Copy)]
pub struct StockLevelInput {
    /// Warehouse.
    pub w_id: i64,
    /// District.
    pub d_id: i64,
    /// Quantity threshold (10–20).
    pub threshold: i64,
}

/// Generated parameters for one transaction of the mix.
#[derive(Debug, Clone)]
pub enum TxnInput {
    /// New-order.
    NewOrder(NewOrderInput),
    /// Payment.
    Payment(PaymentInput),
    /// Order-status.
    OrderStatus(OrderStatusInput),
    /// Delivery.
    Delivery(DeliveryInput),
    /// Stock-level.
    StockLevel(StockLevelInput),
}

impl TxnInput {
    /// The kind tag.
    pub fn kind(&self) -> TxnKind {
        match self {
            TxnInput::NewOrder(_) => TxnKind::NewOrder,
            TxnInput::Payment(_) => TxnKind::Payment,
            TxnInput::OrderStatus(_) => TxnKind::OrderStatus,
            TxnInput::Delivery(_) => TxnKind::Delivery,
            TxnInput::StockLevel(_) => TxnKind::StockLevel,
        }
    }
}

/// The input generator: owns the NURand constants (drawn once, spec
/// §2.1.6.1) and the district skew distribution.
#[derive(Debug)]
pub struct InputGen {
    config: TpccConfig,
    zipf: Option<Zipf>,
    nurand_customer: NuRand,
    nurand_item: NuRand,
    nurand_name: NuRand,
}

impl InputGen {
    /// Build; the NURand `C` constants derive from `seed`.
    pub fn new(config: TpccConfig, seed: u64) -> Self {
        let mut rng = SeededRng::new(seed ^ 0xC0FFEE);
        let zipf = (config.district_skew > 0.0)
            .then(|| Zipf::new(config.scale.districts as usize, config.district_skew));
        InputGen {
            zipf,
            nurand_customer: NuRand::new(1023, rng.int_range(0, 1023)),
            nurand_item: NuRand::new(8191, rng.int_range(0, 8191)),
            nurand_name: NuRand::new(255, rng.int_range(0, 255)),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TpccConfig {
        &self.config
    }

    /// Draw a transaction kind per the standard mix (45/43/4/4/4).
    pub fn kind(&self, rng: &mut SeededRng) -> TxnKind {
        let x = rng.f64();
        if x < 0.45 {
            TxnKind::NewOrder
        } else if x < 0.88 {
            TxnKind::Payment
        } else if x < 0.92 {
            TxnKind::OrderStatus
        } else if x < 0.96 {
            TxnKind::Delivery
        } else {
            TxnKind::StockLevel
        }
    }

    /// Draw a district (uniform or skewed).
    pub fn district(&self, rng: &mut SeededRng) -> i64 {
        match &self.zipf {
            Some(z) => z.sample(rng) as i64 + 1,
            None => rng.int_range(1, self.config.scale.districts),
        }
    }

    /// Draw a customer id (NURand 1023).
    pub fn customer(&self, rng: &mut SeededRng) -> i64 {
        self.nurand_customer
            .sample(rng, 1, self.config.scale.customers_per_district)
    }

    /// Draw an item id (NURand 8191).
    pub fn item(&self, rng: &mut SeededRng) -> i64 {
        self.nurand_item.sample(rng, 1, self.config.scale.items)
    }

    /// Draw a customer selector (60 % by last name).
    pub fn customer_selector(&self, rng: &mut SeededRng) -> CustomerSelector {
        if rng.chance(self.config.by_last_name_rate) {
            let num = self.nurand_name.sample(rng, 0, 999);
            // Name numbers beyond the populated customers never match; cap
            // to the populated range like scaled-down TPC-C kits do.
            let cap = (self.config.scale.customers_per_district - 1).min(999);
            CustomerSelector::ByLastName(last_name(num.min(cap)))
        } else {
            CustomerSelector::ById(self.customer(rng))
        }
    }

    /// Generate the next transaction's full input.
    pub fn next_input(&self, rng: &mut SeededRng) -> TxnInput {
        match self.kind(rng) {
            TxnKind::NewOrder => TxnInput::NewOrder(self.new_order(rng)),
            TxnKind::Payment => TxnInput::Payment(self.payment(rng)),
            TxnKind::OrderStatus => TxnInput::OrderStatus(OrderStatusInput {
                w_id: 1,
                d_id: self.district(rng),
                customer: self.customer_selector(rng),
            }),
            TxnKind::Delivery => TxnInput::Delivery(DeliveryInput {
                w_id: 1,
                carrier_id: rng.int_range(1, 10),
            }),
            TxnKind::StockLevel => TxnInput::StockLevel(StockLevelInput {
                w_id: 1,
                d_id: self.district(rng),
                threshold: rng.int_range(10, 20),
            }),
        }
    }

    /// Generate new-order parameters.
    pub fn new_order(&self, rng: &mut SeededRng) -> NewOrderInput {
        let n = rng.int_range(self.config.min_ol, self.config.max_ol);
        let lines = (0..n)
            .map(|_| OrderLineInput {
                i_id: self.item(rng),
                supply_w_id: 1,
                qty: rng.int_range(1, 10),
            })
            .collect();
        NewOrderInput {
            w_id: 1,
            d_id: self.district(rng),
            c_id: self.customer(rng),
            lines,
            rollback: rng.chance(self.config.rollback_rate),
        }
    }

    /// Generate payment parameters.
    pub fn payment(&self, rng: &mut SeededRng) -> PaymentInput {
        let d_id = self.district(rng);
        PaymentInput {
            w_id: 1,
            d_id,
            c_d_id: d_id,
            customer: self.customer_selector(rng),
            amount: Decimal::from_cents(rng.int_range(100, 500_000)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> (InputGen, SeededRng) {
        (
            InputGen::new(TpccConfig::standard(Scale::test()), 1),
            SeededRng::new(2),
        )
    }

    #[test]
    fn mix_roughly_matches_spec() {
        let (g, mut rng) = gen();
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(g.kind(&mut rng)).or_insert(0usize) += 1;
        }
        let frac = |k: TxnKind| counts[&k] as f64 / 20_000.0;
        assert!((frac(TxnKind::NewOrder) - 0.45).abs() < 0.02);
        assert!((frac(TxnKind::Payment) - 0.43).abs() < 0.02);
        assert!((frac(TxnKind::OrderStatus) - 0.04).abs() < 0.01);
        assert!((frac(TxnKind::Delivery) - 0.04).abs() < 0.01);
        assert!((frac(TxnKind::StockLevel) - 0.04).abs() < 0.01);
    }

    #[test]
    fn inputs_stay_in_domain() {
        let (g, mut rng) = gen();
        for _ in 0..500 {
            let no = g.new_order(&mut rng);
            assert!((1..=3).contains(&no.d_id));
            assert!((1..=12).contains(&no.c_id));
            assert!((5..=15).contains(&(no.lines.len() as i64)));
            for l in &no.lines {
                assert!((1..=50).contains(&l.i_id));
                assert!((1..=10).contains(&l.qty));
            }
        }
    }

    #[test]
    fn skew_concentrates_districts() {
        let g = InputGen::new(TpccConfig::skewed(Scale::benchmark()), 1);
        let mut rng = SeededRng::new(3);
        let mut counts = vec![0usize; 11];
        for _ in 0..20_000 {
            counts[g.district(&mut rng) as usize] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let min = counts[1..].iter().min().copied().expect("non-empty");
        assert!(max > min * 4, "skewed counts: {counts:?}");
        // Uniform case stays balanced.
        let g = InputGen::new(TpccConfig::standard(Scale::benchmark()), 1);
        let mut counts = vec![0usize; 11];
        for _ in 0..20_000 {
            counts[g.district(&mut rng) as usize] += 1;
        }
        let max = *counts[1..].iter().max().expect("non-empty");
        let min = *counts[1..].iter().min().expect("non-empty");
        assert!(max < min * 2, "uniform counts: {counts:?}");
    }

    #[test]
    fn rollback_rate_near_one_percent() {
        let (g, mut rng) = gen();
        let rollbacks = (0..10_000)
            .filter(|_| g.new_order(&mut rng).rollback)
            .count();
        assert!((50..200).contains(&rollbacks), "rollbacks {rollbacks}");
    }

    #[test]
    fn selector_mixes_name_and_id() {
        let (g, mut rng) = gen();
        let mut by_name = 0;
        for _ in 0..1000 {
            if matches!(
                g.customer_selector(&mut rng),
                CustomerSelector::ByLastName(_)
            ) {
                by_name += 1;
            }
        }
        assert!((500..700).contains(&by_name), "{by_name}");
    }

    #[test]
    fn full_input_generation_covers_all_kinds() {
        let (g, mut rng) = gen();
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..500 {
            kinds.insert(g.next_input(&mut rng).kind());
        }
        assert_eq!(kinds.len(), 5);
    }
}
