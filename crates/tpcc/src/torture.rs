//! The crash-torture harness: recovery + compensation at every crash point.
//!
//! The paper's robustness claim (§3.4) is that multi-step transactions
//! survive failure via compensating steps. This module proves the claim
//! mechanically: it runs a seeded TPC-C mix under the ACC, captures the WAL's
//! durable byte image, and then "crashes" the system at *every* append index
//! (plus seeded samples of torn-tail cuts and single-bit flips), recovering
//! each salvaged prefix into a pristine base, resuming compensation, and
//! checking the §3.3.2 consistency conditions.
//!
//! Three properties are enforced at every point:
//!
//! 1. **consistency** — the semantic TPC-C conditions hold after recovery +
//!    compensation (strict serializability conditions are out of scope for
//!    the ACC by design);
//! 2. **no silent loss** — every transaction on the salvaged log is
//!    accounted for: fully replayed, compensated, or discarded (no durable
//!    step); corrupt bytes beyond the clean prefix are counted as rejected
//!    records, never silently absorbed;
//! 3. **determinism** — the per-point outcome log is a pure function of the
//!    seed: two runs with the same config produce byte-identical logs.
//!
//! A fourth phase validates the live fault injector itself
//! ([`acc_common::faults`]): re-running the workload with a planned crash
//! must capture exactly the prefix the offline sweep cut at the same point,
//! and the two edges of a step boundary must differ by exactly the
//! end-of-step record — the distinction that decides replay-then-compensate
//! versus discard.

use crate::decompose::{TableEdit, TpccSystem};
use crate::schema::Scale;
use crate::{consistency, input, recovery, txns};
use acc_common::events::{Event, EventSink};
use acc_common::faults::{BoundaryEdge, Corruption, FaultInjector, FaultPlan, ShipPlan};
use acc_common::{CounterSnapshot, Error, Result, SeededRng};
use acc_lockmgr::{InstallOutcome, SharedOracle};
use acc_repl::{
    stream_chain, Applied, Follower, MemTransport, Refusal, Replicator, ShipBatch, Shipper,
};
use acc_storage::Database;
use acc_txn::runner::run;
use acc_txn::{SharedDb, WaitMode};
use acc_wal::device::temp_log_path;
use acc_wal::{
    recover, sector, FileDevice, FsyncSnapshot, GroupCommitPolicy, LogDevice, LogRecord, Lsn,
    MemDevice, Snooper, Wal,
};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sizing of a torture run. Everything is derived from `seed`; two runs with
/// an equal config produce byte-identical outcome logs.
#[derive(Debug, Clone, Copy)]
pub struct TortureConfig {
    /// Master seed for population, inputs and corruption sampling.
    pub seed: u64,
    /// Database scale the mix runs against.
    pub scale: Scale,
    /// Transactions in the baseline TPC-C mix.
    pub txns: usize,
    /// Ceiling on swept append indices; above it the sweep strides (and says
    /// so in the log). `usize::MAX` sweeps every index.
    pub max_append_points: usize,
    /// Seeded torn-tail cuts (byte truncations, usually mid-record).
    pub torn_samples: usize,
    /// Seeded single-bit flips over the full image.
    pub flip_samples: usize,
    /// Live fault-injector crash replays to cross-validate against the
    /// offline sweep.
    pub injector_samples: usize,
}

impl TortureConfig {
    /// The full sweep: every append index of a 16-transaction mix plus
    /// generous corruption samples. Used by `figures -- torture` and the
    /// torture test (≥ 200 points).
    pub fn standard(seed: u64) -> TortureConfig {
        TortureConfig {
            seed,
            scale: Scale::test(),
            txns: 16,
            max_append_points: usize::MAX,
            torn_samples: 24,
            flip_samples: 16,
            injector_samples: 4,
        }
    }

    /// A bounded smoke run (~100 points) for the PR gate in
    /// `scripts/check.sh`.
    pub fn smoke(seed: u64) -> TortureConfig {
        TortureConfig {
            seed,
            scale: Scale::test(),
            txns: 10,
            max_append_points: 72,
            torn_samples: 16,
            flip_samples: 8,
            injector_samples: 2,
        }
    }

    /// The strided benchmark-scale sweep: a larger mix against
    /// [`Scale::benchmark`] whose WAL is far too long to crash at every
    /// append index, so the sweep strides through sampled crash points. Same
    /// invariants as [`TortureConfig::standard`], bigger state space.
    pub fn benchmark_strided(seed: u64) -> TortureConfig {
        TortureConfig {
            seed,
            scale: Scale::benchmark(),
            txns: 24,
            max_append_points: 96,
            torn_samples: 24,
            flip_samples: 16,
            injector_samples: 4,
        }
    }
}

/// Aggregate outcome of a torture run.
#[derive(Debug)]
pub struct TortureReport {
    /// Crash/corruption points recovered (every one passed consistency
    /// unless `violations > 0`).
    pub points: usize,
    /// Transactions fully replayed, summed over all points.
    pub replayed: u64,
    /// In-flight transactions compensated, summed over all points.
    pub compensated: u64,
    /// In-flight transactions discarded (no durable step), summed.
    pub discarded: u64,
    /// Torn/corrupt records rejected past the clean prefix, summed.
    pub rejected_records: u64,
    /// Consistency violations across all points (must be 0).
    pub violations: usize,
    /// One line per point; byte-identical across same-seed runs.
    pub log: String,
    /// Counter snapshot of the harness's event sink (includes the
    /// `recoveries` family fed by [`Event::RecoveryOutcome`]).
    pub counters: CounterSnapshot,
}

/// Per-point outcome of one crash-recover-compensate pass.
struct PointStats {
    decoded: usize,
    replayed: usize,
    compensated: usize,
    discarded: usize,
    violations: usize,
}

fn fresh_base(scale: &Scale, seed: u64) -> Database {
    let mut db = Database::new(&crate::tpcc_catalog());
    crate::populate(&mut db, scale, seed);
    db
}

/// Run the seeded TPC-C mix single-threaded under the ACC, returning the
/// final durable WAL image and (if a fault plan was installed) the image the
/// injector captured at its crash point.
fn run_workload(
    cfg: &TortureConfig,
    sys: &TpccSystem,
    plan: Option<FaultPlan>,
) -> Result<(Vec<u8>, Option<Vec<u8>>)> {
    let scale = cfg.scale;
    let mut shared = SharedDb::new(fresh_base(&scale, cfg.seed), Arc::clone(&sys.tables) as _);
    let injector = plan.map(FaultInjector::with_plan);
    if let Some(f) = &injector {
        shared = shared.with_fault_injector(Arc::clone(f));
    }
    let gen = input::InputGen::new(input::TpccConfig::standard(scale), cfg.seed);
    let mut rng = SeededRng::new(cfg.seed ^ 0x746f_7274); // "tort"
    for _ in 0..cfg.txns {
        let mut program = txns::program_for(gen.next_input(&mut rng), scale.districts);
        // Single-threaded: deadlocks are impossible, user aborts are part of
        // the mix; hard errors are harness bugs and propagate.
        run(&shared, &*sys.acc, program.as_mut(), WaitMode::Block)?;
    }
    let image = shared.wal_bytes();
    Ok((image, injector.and_then(|f| f.captured_image())))
}

/// Byte offset of the end of each intact frame in `image` (offset `[k-1]` is
/// the exact prefix length holding the first `k` records).
fn record_offsets(image: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while image.len() - pos >= 12 {
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if image.len() - pos - 12 < len {
            break;
        }
        pos += 12 + len;
        out.push(pos);
    }
    out
}

/// One crash point: salvage `bytes`, recover into a clone of `base`, resume
/// compensation, audit consistency, lock cleanliness and the no-silent-loss
/// accounting.
fn crash_and_recover(base: &Database, sys: &TpccSystem, bytes: &[u8]) -> Result<PointStats> {
    let salvaged = Wal::from_bytes(bytes);
    let decoded = salvaged.len();
    let txns_on_log: HashSet<_> = salvaged.records().iter().map(|r| r.txn()).collect();

    let mut db = base.clone();
    let report = recover(&mut db, &salvaged)?;
    let shared = SharedDb::new(db, Arc::clone(&sys.tables) as _);
    let compensated =
        recovery::resume_compensation(&shared, &*sys.acc, &report.needs_compensation)?;

    let replayed = report.committed.len() + report.aborted.len();
    let discarded = report.discarded.len();
    // No silent loss: every transaction that reached the salvaged log is in
    // exactly one bucket.
    if replayed + compensated + discarded != txns_on_log.len() {
        return Err(Error::Internal(format!(
            "accounting hole: {} txns on log, {} replayed + {} compensated + {} discarded",
            txns_on_log.len(),
            replayed,
            compensated,
            discarded
        )));
    }

    let violations = consistency::check(&shared.snapshot_db(), false).len();
    let grants = shared.total_grants();
    // Compensation must leave no lock behind; a leak here stalls the next
    // workload a real restart would admit.
    if grants != 0 {
        return Err(Error::Internal(format!(
            "{grants} lock grants leaked by post-crash compensation"
        )));
    }
    Ok(PointStats {
        decoded,
        replayed,
        compensated,
        discarded,
        violations,
    })
}

fn emit_point(
    sink: &EventSink,
    log: &mut String,
    label: &str,
    stats: &PointStats,
    rejected: usize,
) {
    sink.emit(Event::RecoveryOutcome {
        replayed: stats.replayed as u32,
        compensated: stats.compensated as u32,
        discarded: stats.discarded as u32,
        rejected_records: rejected as u32,
    });
    let _ = writeln!(
        log,
        "{label}: decoded={} replayed={} compensated={} discarded={} rejected={} violations={}",
        stats.decoded,
        stats.replayed,
        stats.compensated,
        stats.discarded,
        rejected,
        stats.violations
    );
}

/// Run the full torture sweep. Errors indicate harness-level failures (a
/// recovery or compensation pass that itself failed); consistency violations
/// are *counted* in the report so the caller can assert on them.
pub fn run_torture(cfg: &TortureConfig) -> Result<TortureReport> {
    let sys = TpccSystem::build();
    let base = fresh_base(&cfg.scale, cfg.seed);
    let sink = EventSink::enabled(64);
    let mut log = String::new();
    let mut points = 0usize;
    let mut stats_sum = (0u64, 0u64, 0u64, 0u64); // replayed, compensated, discarded, rejected
    let mut violations = 0usize;

    // ---- phase 1: baseline -------------------------------------------------
    let (image, _) = run_workload(cfg, &sys, None)?;
    let offsets = record_offsets(&image);
    let n = offsets.len();
    let _ = writeln!(
        log,
        "baseline: seed={} txns={} records={} image={}B",
        cfg.seed,
        cfg.txns,
        n,
        image.len()
    );

    let mut sweep = |log: &mut String,
                     label: String,
                     bytes: &[u8],
                     expect_decoded: Option<usize>,
                     rejected: usize|
     -> Result<()> {
        let stats = crash_and_recover(&base, &sys, bytes)?;
        if let Some(want) = expect_decoded {
            if stats.decoded != want {
                return Err(Error::Internal(format!(
                    "{label}: decoded {} records, expected {want} — the codec's \
                     clean-prefix guarantee is broken",
                    stats.decoded
                )));
            }
        }
        points += 1;
        stats_sum.0 += stats.replayed as u64;
        stats_sum.1 += stats.compensated as u64;
        stats_sum.2 += stats.discarded as u64;
        stats_sum.3 += rejected as u64;
        violations += stats.violations;
        emit_point(&sink, log, &label, &stats, rejected);
        Ok(())
    };

    // ---- phase 2a: crash at every append index -----------------------------
    let stride = n.div_ceil(cfg.max_append_points).max(1);
    if stride > 1 {
        let _ = writeln!(
            log,
            "append sweep: striding by {stride} ({} of {} indices; bounded smoke run)",
            n / stride + 1,
            n + 1
        );
    }
    let mut ks: Vec<usize> = (0..=n).step_by(stride).collect();
    if ks.last() != Some(&n) {
        ks.push(n); // always include the crash-after-everything point
    }
    for k in ks {
        let cut = if k == 0 { 0 } else { offsets[k - 1] };
        sweep(&mut log, format!("append k={k}"), &image[..cut], Some(k), 0)?;
    }

    // ---- phase 2b: seeded torn-tail cuts -----------------------------------
    let mut rng = SeededRng::new(cfg.seed ^ 0x746f_726e); // "torn"
    for _ in 0..cfg.torn_samples {
        let cut = 1 + rng.index(image.len() - 1);
        let intact = offsets.partition_point(|&o| o <= cut);
        // A cut strictly inside a frame leaves one torn record behind it.
        let torn_record = usize::from(offsets.binary_search(&cut).is_err());
        sweep(
            &mut log,
            format!("torn cut={cut}"),
            &image[..cut],
            Some(intact),
            torn_record,
        )?;
    }

    // ---- phase 2c: seeded single-bit flips ---------------------------------
    let mut rng = SeededRng::new(cfg.seed ^ 0x666c_6970); // "flip"
    for _ in 0..cfg.flip_samples {
        let byte = rng.index(image.len());
        let bit = rng.index(8) as u8;
        let mut corrupt = image.clone();
        corrupt[byte] ^= 1 << bit;
        // Decoding must stop exactly at the frame containing the flip; all
        // records from there on are rejected.
        let intact = offsets.partition_point(|&o| o <= byte);
        sweep(
            &mut log,
            format!("flip byte={byte} bit={bit}"),
            &corrupt,
            Some(intact),
            n - intact,
        )?;
    }

    // ---- phase 3: live injector cross-validation ---------------------------
    let mut rng = SeededRng::new(cfg.seed ^ 0x696e_6a65); // "inje"
    for s in 0..cfg.injector_samples {
        let k = 1 + rng.index(n);
        // Odd samples also mangle the capture with a torn tail, exercising
        // the injector's corruption path end to end.
        let torn = if s % 2 == 1 { 1 + rng.index(11) } else { 0 };
        let plan = FaultPlan::crash_after_appends(k as u64).with_corruption(if torn > 0 {
            Corruption::TornTail(torn as u32)
        } else {
            Corruption::None
        });
        let (_, captured) = run_workload(cfg, &sys, Some(plan))?;
        let captured = captured
            .ok_or_else(|| Error::Internal(format!("injector never fired for append k={k}")))?;
        let expected = &image[..offsets[k - 1] - torn];
        if captured != expected {
            return Err(Error::Internal(format!(
                "injector capture at append k={k} torn={torn} diverged from the \
                 offline prefix ({} vs {} bytes) — the workload is not \
                 deterministic",
                captured.len(),
                expected.len()
            )));
        }
        let intact = offsets.partition_point(|&o| o <= captured.len());
        sweep(
            &mut log,
            format!("inject append k={k} torn={torn}"),
            &captured,
            Some(intact),
            usize::from(torn > 0),
        )?;
    }

    // ---- phase 3b: the two edges of one step boundary ----------------------
    let n_boundaries = Wal::from_bytes(&image)
        .records()
        .iter()
        .filter(|r| matches!(r, LogRecord::StepEnd { .. }))
        .count();
    if n_boundaries > 0 {
        let b = (n_boundaries / 2) as u64;
        let edge_image = |edge| -> Result<Vec<u8>> {
            let (_, captured) =
                run_workload(cfg, &sys, Some(FaultPlan::crash_at_step_boundary(b, edge)))?;
            captured
                .ok_or_else(|| Error::Internal(format!("boundary {b} {edge} crash never fired")))
        };
        let before = edge_image(BoundaryEdge::Before)?;
        let after = edge_image(BoundaryEdge::After)?;
        let before_recs = Wal::from_bytes(&before);
        let after_recs = Wal::from_bytes(&after);
        let Some(LogRecord::StepEnd {
            txn, step_index, ..
        }) = after_recs.records().last().cloned()
        else {
            return Err(Error::Internal(
                "after-edge capture does not end in the end-of-step record".into(),
            ));
        };
        if after_recs.len() != before_recs.len() + 1 {
            return Err(Error::Internal(format!(
                "boundary edges differ by {} records, expected exactly the \
                 end-of-step record",
                after_recs.len() - before_recs.len()
            )));
        }
        // The edge decides the in-flight step's fate: after the record it is
        // durable (steps_completed = step_index + 1, then compensated);
        // before it, the step never happened durably.
        for (img, label, want_steps) in [
            (&before, "before", step_index as usize),
            (&after, "after", step_index as usize + 1),
        ] {
            let salvaged = Wal::from_bytes(img);
            let mut db = base.clone();
            let report = recover(&mut db, &salvaged)?;
            let durable_steps = report
                .needs_compensation
                .iter()
                .find(|inf| inf.txn == txn)
                .map(|inf| inf.steps_completed as usize)
                .unwrap_or(0);
            if durable_steps != want_steps {
                return Err(Error::Internal(format!(
                    "boundary {b} {label}-edge: {txn} has {durable_steps} durable \
                     steps, expected {want_steps}"
                )));
            }
            sweep(
                &mut log,
                format!("inject boundary b={b} edge={label}"),
                img,
                Some(salvaged.len()),
                0,
            )?;
        }
    }

    let (replayed, compensated, discarded, rejected_records) = stats_sum;
    let _ = writeln!(
        log,
        "total: points={points} replayed={replayed} compensated={compensated} \
         discarded={discarded} rejected={rejected_records} violations={violations}"
    );
    Ok(TortureReport {
        points,
        replayed,
        compensated,
        discarded,
        rejected_records,
        violations,
        log,
        counters: sink.counters(),
    })
}

// ---------------------------------------------------------------------------
// Fsync-boundary torture: crash points a real disk can actually exhibit.
// ---------------------------------------------------------------------------

/// Sizing of a fsync-boundary torture run. The append-index sweep above
/// models an idealised disk that persists every append; this sweep models the
/// real one — everything past the last completed fsync vanishes, and a torn
/// write mangles a whole sector. All crash points come from one seeded
/// workload run per device, so two runs with an equal config produce
/// byte-identical outcome logs.
#[derive(Debug, Clone, Copy)]
pub struct FsyncTortureConfig {
    /// Master seed for population, inputs and tear sampling.
    pub seed: u64,
    /// Database scale the mix runs against.
    pub scale: Scale,
    /// Transactions in the TPC-C mix.
    pub txns: usize,
    /// Group-commit batch threshold. Small values force background flushes
    /// *inside* steps, so fsync boundaries fall mid-transaction and the
    /// sweep exercises compensation and discard, not just replay.
    pub max_batch: usize,
    /// Seeded sector tears applied to the file device's raw image.
    pub tear_samples: usize,
    /// Live `crash_after_fsyncs` replays to cross-validate the injector
    /// against the snapshot sweep.
    pub injector_samples: usize,
}

impl FsyncTortureConfig {
    /// The full sweep used by `figures -- torture --fsync` and the torture
    /// tests: every fsync boundary on both devices, generous tear samples.
    pub fn standard(seed: u64) -> FsyncTortureConfig {
        FsyncTortureConfig {
            seed,
            scale: Scale::test(),
            txns: 16,
            max_batch: 4,
            tear_samples: 16,
            injector_samples: 3,
        }
    }

    /// A bounded smoke run for the PR gate in `scripts/check.sh`.
    pub fn smoke(seed: u64) -> FsyncTortureConfig {
        FsyncTortureConfig {
            seed,
            scale: Scale::test(),
            txns: 8,
            max_batch: 6,
            tear_samples: 6,
            injector_samples: 2,
        }
    }
}

/// Aggregate outcome of a fsync-boundary torture run.
#[derive(Debug)]
pub struct FsyncTortureReport {
    /// Fsync boundaries observed per device (equal across devices by
    /// determinism).
    pub boundaries: usize,
    /// Crash/tear points recovered across both devices.
    pub points: usize,
    /// Transactions fully replayed, summed over all points.
    pub replayed: u64,
    /// In-flight transactions compensated, summed over all points.
    pub compensated: u64,
    /// In-flight transactions discarded, summed over all points.
    pub discarded: u64,
    /// Torn/corrupt records rejected past the clean prefix, summed.
    pub rejected_records: u64,
    /// Consistency violations across all points (must be 0).
    pub violations: usize,
    /// One line per point; byte-identical across same-seed runs.
    pub log: String,
    /// Counter snapshot of the harness's event sink.
    pub counters: CounterSnapshot,
}

/// Uniquifier for temp log files (tests run concurrently in one process).
static FSYNC_RUN: AtomicU64 = AtomicU64::new(0);

type Snapshots = Arc<Mutex<Vec<FsyncSnapshot>>>;

/// What one fsync workload run leaves behind: the full record stream, every
/// fsync-boundary snapshot, the final raw device image, and (with a plan
/// armed) the injector's captured image.
type FsyncRun = (Vec<u8>, Vec<FsyncSnapshot>, Vec<u8>, Option<Vec<u8>>);

fn make_device(
    kind: &str,
    cfg: &FsyncTortureConfig,
) -> Result<(Box<dyn LogDevice>, Snapshots, Option<std::path::PathBuf>)> {
    match kind {
        "mem" => {
            let (dev, snaps) = Snooper::new(MemDevice::new());
            Ok((Box::new(dev), snaps, None))
        }
        "file" => {
            let run = FSYNC_RUN.fetch_add(1, Ordering::Relaxed);
            let path = temp_log_path(&format!("fsynctort-{}-{run}", cfg.seed));
            let (dev, snaps) = Snooper::new(FileDevice::create(&path)?);
            Ok((Box::new(dev), snaps, Some(path)))
        }
        other => Err(Error::Internal(format!("unknown device kind {other}"))),
    }
}

/// Run the seeded mix single-threaded on `kind`'s device under a
/// small-batch group-commit policy, force-sync the tail, and return the full
/// record stream, every fsync-boundary snapshot, the final raw device image,
/// and (with a plan) the injector's captured image.
fn run_fsync_workload(
    cfg: &FsyncTortureConfig,
    sys: &TpccSystem,
    kind: &str,
    plan: Option<FaultPlan>,
) -> Result<FsyncRun> {
    let scale = cfg.scale;
    let (dev, snaps, path) = make_device(kind, cfg)?;
    let policy = GroupCommitPolicy::fixed(std::time::Duration::ZERO, cfg.max_batch);
    let mut shared = SharedDb::new(fresh_base(&scale, cfg.seed), Arc::clone(&sys.tables) as _)
        .with_wal_backend(dev, policy);
    let injector = plan.map(FaultInjector::with_plan);
    if let Some(f) = &injector {
        shared = shared.with_fault_injector(Arc::clone(f));
    }
    let gen = input::InputGen::new(input::TpccConfig::standard(scale), cfg.seed);
    let mut rng = SeededRng::new(cfg.seed ^ 0x746f_7274); // "tort" — same mix as run_workload
    for _ in 0..cfg.txns {
        let mut program = txns::program_for(gen.next_input(&mut rng), scale.districts);
        run(&shared, &*sys.acc, program.as_mut(), WaitMode::Block)?;
    }
    // Force-sync the tail (an abort record can trail the last commit) so the
    // final snapshot covers the whole stream and both devices agree.
    let len = shared.wal_len();
    if len > 0 {
        shared.sync_wal(Lsn(len as u64 - 1))?;
    }
    let stream = shared.wal_bytes();
    let raw = shared.wal_raw_image();
    let snapshots = snaps.lock().unwrap().clone();
    // The raw image is in memory now; drop the device (closing the file)
    // and clean up the temp path.
    drop(shared);
    if let Some(p) = path {
        let _ = std::fs::remove_file(p);
    }
    Ok((
        stream,
        snapshots,
        raw,
        injector.and_then(|f| f.captured_image()),
    ))
}

/// Run the fsync-boundary torture sweep over both devices. Phases:
///
/// 1. baseline per device — same seed, same mix, snapshot every fsync;
/// 2. device parity — mem and file must agree on every boundary's durable
///    stream (the device changes the format, never the contract);
/// 3. boundary sweep — each snapshot is an exact frame prefix of the final
///    stream; recover + compensate + audit it like any crash point;
/// 4. injector cross-validation — a live `crash_after_fsyncs(j)` run must
///    capture exactly snapshot `j`;
/// 5. sector tears — mangle one sector of the file device's raw image
///    (including, deterministically, one that splits a frame across a sector
///    boundary) and verify the chained checksums salvage an exact prefix
///    with no silent loss.
pub fn run_fsync_torture(cfg: &FsyncTortureConfig) -> Result<FsyncTortureReport> {
    let sys = TpccSystem::build();
    let base = fresh_base(&cfg.scale, cfg.seed);
    let sink = EventSink::enabled(64);
    let mut log = String::new();
    let mut points = 0usize;
    let mut stats_sum = (0u64, 0u64, 0u64, 0u64);
    let mut violations = 0usize;

    // ---- phase 1: baseline on each device ----------------------------------
    let (mem_stream, mem_snaps, _, _) = run_fsync_workload(cfg, &sys, "mem", None)?;
    let (file_stream, file_snaps, file_raw, _) = run_fsync_workload(cfg, &sys, "file", None)?;
    let offsets = record_offsets(&mem_stream);
    let _ = writeln!(
        log,
        "baseline: seed={} txns={} max_batch={} records={} stream={}B boundaries={}",
        cfg.seed,
        cfg.txns,
        cfg.max_batch,
        offsets.len(),
        mem_stream.len(),
        mem_snaps.len()
    );

    // ---- phase 2: device parity --------------------------------------------
    if mem_stream != file_stream {
        return Err(Error::Internal(
            "mem and file devices disagree on the final record stream".into(),
        ));
    }
    if mem_snaps.len() != file_snaps.len() {
        return Err(Error::Internal(format!(
            "device fsync counts diverge: mem={} file={}",
            mem_snaps.len(),
            file_snaps.len()
        )));
    }
    for (j, (m, f)) in mem_snaps.iter().zip(&file_snaps).enumerate() {
        if m.stream != f.stream {
            return Err(Error::Internal(format!(
                "boundary {j}: mem and file durable streams diverge \
                 ({} vs {} bytes)",
                m.stream.len(),
                f.stream.len()
            )));
        }
    }
    let _ = writeln!(
        log,
        "parity: mem == file at all {} boundaries",
        mem_snaps.len()
    );

    let mut sweep = |log: &mut String,
                     label: String,
                     bytes: &[u8],
                     expect_decoded: Option<usize>,
                     rejected: usize|
     -> Result<()> {
        let stats = crash_and_recover(&base, &sys, bytes)?;
        if let Some(want) = expect_decoded {
            if stats.decoded != want {
                return Err(Error::Internal(format!(
                    "{label}: decoded {} records, expected {want}",
                    stats.decoded
                )));
            }
        }
        points += 1;
        stats_sum.0 += stats.replayed as u64;
        stats_sum.1 += stats.compensated as u64;
        stats_sum.2 += stats.discarded as u64;
        stats_sum.3 += rejected as u64;
        violations += stats.violations;
        emit_point(&sink, log, &label, &stats, rejected);
        Ok(())
    };

    // ---- phase 3: sweep every fsync boundary, both devices -----------------
    // The crash model: everything past `durable_lsn` (the snapshot) vanishes.
    // Each snapshot must be an exact frame-boundary prefix of the final
    // stream — a durable suffix can never appear without its prefix.
    for (kind, snaps) in [("mem", &mem_snaps), ("file", &file_snaps)] {
        for (j, snap) in snaps.iter().enumerate() {
            let cut = snap.stream.len();
            if mem_stream[..cut] != snap.stream[..] {
                return Err(Error::Internal(format!(
                    "{kind} boundary {j}: durable stream is not a prefix of \
                     the final stream"
                )));
            }
            let intact = offsets.partition_point(|&o| o <= cut);
            if cut != 0 && offsets.binary_search(&cut).is_err() {
                return Err(Error::Internal(format!(
                    "{kind} boundary {j}: durable stream cuts mid-frame at \
                     byte {cut} — flushes must drain whole records"
                )));
            }
            sweep(
                &mut log,
                format!("{kind} fsync j={}", j + 1),
                &snap.stream,
                Some(intact),
                0,
            )?;
        }
    }

    // ---- phase 4: live injector cross-validation ---------------------------
    let n_boundaries = mem_snaps.len();
    let mut rng = SeededRng::new(cfg.seed ^ 0x6673_796e); // "fsyn"
    for _ in 0..cfg.injector_samples.min(n_boundaries) {
        let j = 1 + rng.index(n_boundaries);
        let plan = FaultPlan::crash_after_fsyncs(j as u64);
        let (_, _, _, captured) = run_fsync_workload(cfg, &sys, "mem", Some(plan))?;
        let captured = captured
            .ok_or_else(|| Error::Internal(format!("injector never fired for fsync j={j}")))?;
        if captured != mem_snaps[j - 1].stream {
            return Err(Error::Internal(format!(
                "injector capture at fsync j={j} diverged from the snapshot \
                 ({} vs {} bytes) — the workload is not deterministic",
                captured.len(),
                mem_snaps[j - 1].stream.len()
            )));
        }
        let intact = offsets.partition_point(|&o| o <= captured.len());
        sweep(
            &mut log,
            format!("inject fsync j={j}"),
            &captured,
            Some(intact),
            0,
        )?;
    }

    // ---- phase 5a: deterministic tear of a frame-spanning sector -----------
    // The ROADMAP bug this PR fixes: a frame that spans a sector boundary,
    // with one of its sectors torn, must be rejected by the page checksums —
    // the length header alone cannot see it.
    let spanning = offsets
        .iter()
        .zip(std::iter::once(&0usize).chain(offsets.iter()))
        .find(|&(&end, &start)| start / sector::CAPACITY != (end - 1) / sector::CAPACITY)
        .map(|(&end, &start)| (start, end));
    if let Some((start, end)) = spanning {
        // Tear the *second* sector the frame touches: the frame's head
        // survives in sector k, its tail is garbage.
        let k = start / sector::CAPACITY + 1;
        let mut torn = file_raw.clone();
        Corruption::SectorTear {
            index: k as u64,
            sector_size: sector::SECTOR_SIZE as u32,
        }
        .apply(&mut torn);
        let opened = sector::open(&torn);
        if !opened.torn || opened.stream.len() > start.max(k * sector::CAPACITY) {
            return Err(Error::Internal(format!(
                "spanning-frame tear at sector {k} not detected: salvaged \
                 {} bytes (frame {start}..{end})",
                opened.stream.len()
            )));
        }
        let intact = offsets.partition_point(|&o| o <= opened.stream.len());
        // Everything after the salvage point is rejected, including the
        // split frame.
        sweep(
            &mut log,
            format!("tear spanning-frame sector={k}"),
            &opened.stream,
            Some(intact),
            offsets.len() - intact,
        )?;
    } else {
        let _ = writeln!(
            log,
            "tear spanning-frame: no frame spans a sector (skipped)"
        );
    }

    // ---- phase 5b: seeded sector tears -------------------------------------
    let n_sectors = file_raw.len() / sector::SECTOR_SIZE;
    let mut rng = SeededRng::new(cfg.seed ^ 0x7465_6172); // "tear"
    for _ in 0..cfg.tear_samples {
        let k = rng.index(n_sectors.max(1));
        let mut torn = file_raw.clone();
        Corruption::SectorTear {
            index: k as u64,
            sector_size: sector::SECTOR_SIZE as u32,
        }
        .apply(&mut torn);
        let opened = sector::open(&torn);
        // Chained checksums: salvage stops at (or before) the torn sector;
        // the stream is always an exact byte prefix of the reference.
        let want_stream_len = (k * sector::CAPACITY).min(mem_stream.len());
        if opened.stream.len() != want_stream_len || mem_stream[..want_stream_len] != opened.stream
        {
            return Err(Error::Internal(format!(
                "tear sector={k}: salvaged {} bytes, expected the {}‑byte \
                 prefix",
                opened.stream.len(),
                want_stream_len
            )));
        }
        let intact = offsets.partition_point(|&o| o <= opened.stream.len());
        sweep(
            &mut log,
            format!("tear sector={k}"),
            &opened.stream,
            Some(intact),
            offsets.len() - intact,
        )?;
    }

    let (replayed, compensated, discarded, rejected_records) = stats_sum;
    let _ = writeln!(
        log,
        "total: boundaries={n_boundaries} points={points} replayed={replayed} \
         compensated={compensated} discarded={discarded} rejected={rejected_records} \
         violations={violations}"
    );
    Ok(FsyncTortureReport {
        boundaries: n_boundaries,
        points,
        replayed,
        compensated,
        discarded,
        rejected_records,
        violations,
        log,
        counters: sink.counters(),
    })
}

// ---------------------------------------------------------------------------
// Reanalysis torture: an epoch switchover at every step boundary.
// ---------------------------------------------------------------------------

/// Sizing of a reanalysis torture run. The sweeps above crash the system;
/// this one *re-analyzes* it: at every step boundary of the seeded mix a
/// re-derived interference table ([`TableEdit`], cycling through add, widen
/// and remove) is installed into the live system, and the harness checks the
/// epoch protocol did its job — the switch drains the pinned transaction,
/// no lookup ever mixes epochs, and the workload's durable image is
/// byte-identical to an undisturbed run. A crash sweep then recovers every
/// WAL prefix *under the edited tables*, and an fsync pass crashes inside
/// the drain window itself.
#[derive(Debug, Clone, Copy)]
pub struct ReanalysisTortureConfig {
    /// Master seed for population and inputs.
    pub seed: u64,
    /// Database scale the mix runs against.
    pub scale: Scale,
    /// Transactions in the TPC-C mix.
    pub txns: usize,
    /// Ceiling on swept step boundaries; above it the sweep strides.
    pub max_boundaries: usize,
    /// Ceiling on crash-under-new-tables append indices.
    pub max_crash_points: usize,
    /// Group-commit batch threshold for the fsync-during-drain pass.
    pub max_batch: usize,
}

impl ReanalysisTortureConfig {
    /// The full sweep used by `figures -- torture --reanalysis`: a
    /// switchover at every step boundary of a 16-transaction mix.
    pub fn standard(seed: u64) -> ReanalysisTortureConfig {
        ReanalysisTortureConfig {
            seed,
            scale: Scale::test(),
            txns: 16,
            max_boundaries: usize::MAX,
            max_crash_points: 72,
            max_batch: 4,
        }
    }

    /// A bounded smoke run for the PR gate in `scripts/check.sh`.
    pub fn smoke(seed: u64) -> ReanalysisTortureConfig {
        ReanalysisTortureConfig {
            seed,
            scale: Scale::test(),
            txns: 8,
            max_boundaries: 16,
            max_crash_points: 24,
            max_batch: 6,
        }
    }
}

/// Aggregate outcome of a reanalysis torture run.
#[derive(Debug)]
pub struct ReanalysisTortureReport {
    /// Step boundaries in the baseline mix.
    pub boundaries: usize,
    /// Live switchover points exercised (drained installs).
    pub switch_points: usize,
    /// Quiescent installs that switched immediately.
    pub immediate_installs: u64,
    /// Pins drained across all switchovers.
    pub drained: u64,
    /// Crash points recovered under edited tables.
    pub crash_points: usize,
    /// Transactions fully replayed, summed over all crash points.
    pub replayed: u64,
    /// In-flight transactions compensated, summed over all crash points.
    pub compensated: u64,
    /// In-flight transactions discarded, summed over all crash points.
    pub discarded: u64,
    /// Torn/corrupt records rejected past the clean prefix, summed.
    pub rejected_records: u64,
    /// Consistency violations across all points and runs (must be 0).
    pub violations: usize,
    /// Mixed-epoch lookups observed across all runs (must be 0).
    pub mixed_epoch_lookups: u64,
    /// One line per point; byte-identical across same-seed runs.
    pub log: String,
    /// Counter snapshot of the harness's event sink.
    pub counters: CounterSnapshot,
}

/// What one hooked workload run leaves behind, for assertions against the
/// undisturbed baseline.
struct SwitchRun {
    image: Vec<u8>,
    boundaries: u64,
    epoch: u64,
    switches: u64,
    mixed: u64,
    outcome: Option<InstallOutcome>,
    violations: usize,
    grants: usize,
    counters: CounterSnapshot,
}

/// Run the seeded mix with an optional re-analysis installed at step
/// boundary `at` (1-based, counted across the whole mix) through the live
/// step-boundary hook — exactly how an online operator would install new
/// tables while transactions are running.
fn run_switch_workload(
    cfg: &ReanalysisTortureConfig,
    sys: &TpccSystem,
    install: Option<(u64, SharedOracle)>,
) -> Result<SwitchRun> {
    let scale = cfg.scale;
    let shared = Arc::new(SharedDb::new(
        fresh_base(&scale, cfg.seed),
        Arc::clone(&sys.tables) as _,
    ));
    let sink = Arc::new(EventSink::enabled(64));
    shared.set_event_sink(Arc::clone(&sink));
    let outcome = Arc::new(Mutex::new(None));
    if let Some((at, tables)) = install {
        let sh = Arc::clone(&shared);
        let out = Arc::clone(&outcome);
        shared.set_step_boundary_hook(Some(Box::new(move |count| {
            if count == at {
                let o = sh.install_oracle(Arc::clone(&tables));
                *out.lock().expect("outcome not poisoned") = Some(o);
            }
        })));
    }
    let gen = input::InputGen::new(input::TpccConfig::standard(scale), cfg.seed);
    let mut rng = SeededRng::new(cfg.seed ^ 0x746f_7274); // "tort" — same mix as run_workload
    for _ in 0..cfg.txns {
        let mut program = txns::program_for(gen.next_input(&mut rng), scale.districts);
        run(&shared, &*sys.acc, program.as_mut(), WaitMode::Block)?;
    }
    // Dropping the hook breaks its `Arc<SharedDb>` cycle.
    shared.set_step_boundary_hook(None);
    let outcome = *outcome.lock().expect("outcome not poisoned");
    let reg = shared.registry();
    Ok(SwitchRun {
        image: shared.wal_bytes(),
        boundaries: shared.step_boundaries(),
        epoch: reg.epoch(),
        switches: reg.switches(),
        mixed: reg.mixed_epoch_lookups(),
        outcome,
        violations: consistency::check(&shared.snapshot_db(), false).len(),
        grants: shared.total_grants(),
        counters: sink.counters(),
    })
}

/// Run the reanalysis torture sweep. Phases:
///
/// 1. baseline — the undisturbed mix: durable image, boundary count;
/// 2. switchover sweep — install a re-derived table at every step boundary
///    (edits cycle add-audit → widen → remove); each run must drain exactly
///    the one pinned transaction, switch exactly once, observe zero
///    mixed-epoch lookups, leave zero locks, pass consistency, and produce
///    a WAL byte-identical to the baseline (re-analysis is pure metadata:
///    it must never perturb the workload's durable history);
/// 3. quiescent install — between transactions the same install switches
///    immediately, draining nothing;
/// 4. crash sweep under edited tables — every salvaged WAL prefix recovers
///    and compensates under the *new* tables (base template ids are stable
///    across edits, so the policy's lock choices remain meaningful);
/// 5. fsync-during-drain — the mix runs on a snooped device with a small
///    group-commit batch and an install at the middle boundary; every
///    fsync-boundary snapshot (including those inside the drain window)
///    recovers under the edited tables.
pub fn run_reanalysis_torture(cfg: &ReanalysisTortureConfig) -> Result<ReanalysisTortureReport> {
    let sys = TpccSystem::build();
    let edits = [
        TableEdit::AddAudit,
        TableEdit::WidenNoLoop,
        TableEdit::RemoveAudit,
    ];
    let edited: Vec<TpccSystem> = edits.iter().map(|&e| TpccSystem::reanalyze(e)).collect();
    let base = fresh_base(&cfg.scale, cfg.seed);
    let sink = EventSink::enabled(64);
    let mut log = String::new();
    let mut stats_sum = (0u64, 0u64, 0u64, 0u64);
    let mut violations = 0usize;
    let mut mixed = 0u64;
    let mut drained = 0u64;

    // ---- phase 1: baseline -------------------------------------------------
    let baseline = run_switch_workload(cfg, &sys, None)?;
    if baseline.switches != 0 || baseline.epoch != 0 {
        return Err(Error::Internal(
            "baseline run switched epochs with no install".into(),
        ));
    }
    violations += baseline.violations;
    mixed += baseline.mixed;
    let offsets = record_offsets(&baseline.image);
    let n_boundaries = baseline.boundaries as usize;
    let _ = writeln!(
        log,
        "baseline: seed={} txns={} records={} image={}B boundaries={}",
        cfg.seed,
        cfg.txns,
        offsets.len(),
        baseline.image.len(),
        n_boundaries
    );

    // ---- phase 2: a switchover at every step boundary ----------------------
    let stride = n_boundaries.div_ceil(cfg.max_boundaries).max(1);
    if stride > 1 {
        let _ = writeln!(
            log,
            "switch sweep: striding by {stride} ({} of {} boundaries; bounded smoke run)",
            n_boundaries / stride + 1,
            n_boundaries
        );
    }
    let mut bs: Vec<usize> = (1..=n_boundaries).step_by(stride).collect();
    if bs.last() != Some(&n_boundaries) {
        bs.push(n_boundaries); // always include the final boundary
    }
    let mut switch_points = 0usize;
    for b in bs {
        let edit = edits[b % edits.len()];
        let esys = &edited[b % edits.len()];
        let run = run_switch_workload(cfg, &sys, Some((b as u64, Arc::clone(&esys.tables) as _)))?;
        // Re-analysis is pure metadata: the durable history must not move.
        if run.image != baseline.image {
            return Err(Error::Internal(format!(
                "switch at boundary {b}: WAL diverged from baseline \
                 ({} vs {} bytes) — the switchover perturbed the workload",
                run.image.len(),
                baseline.image.len()
            )));
        }
        // The hook fires inside a live (pinned) transaction, so the install
        // must drain exactly that one pin and switch exactly once.
        if run.outcome != Some(InstallOutcome::Draining { pins: 1 }) {
            return Err(Error::Internal(format!(
                "switch at boundary {b}: install outcome {:?}, expected a \
                 1-pin drain",
                run.outcome
            )));
        }
        if run.switches != 1 || run.epoch != 1 {
            return Err(Error::Internal(format!(
                "switch at boundary {b}: {} switches to epoch {}, expected \
                 exactly one",
                run.switches, run.epoch
            )));
        }
        if run.counters.epoch_switches != 1
            || run.counters.epoch_drained_pins != 1
            || run.counters.epoch_parked_admissions != 0
        {
            return Err(Error::Internal(format!(
                "switch at boundary {b}: counters disagree with the registry \
                 (switches={} drained={} parked={})",
                run.counters.epoch_switches,
                run.counters.epoch_drained_pins,
                run.counters.epoch_parked_admissions
            )));
        }
        if run.grants != 0 {
            return Err(Error::Internal(format!(
                "switch at boundary {b}: {} lock grants leaked",
                run.grants
            )));
        }
        switch_points += 1;
        drained += 1;
        violations += run.violations;
        mixed += run.mixed;
        let _ = writeln!(
            log,
            "switch b={b} edit={edit:?}: drained=1 epoch={} mixed={} violations={}",
            run.epoch, run.mixed, run.violations
        );
    }

    // ---- phase 3: quiescent install switches immediately -------------------
    let mut immediate_installs = 0u64;
    {
        let scale = cfg.scale;
        let shared = SharedDb::new(fresh_base(&scale, cfg.seed), Arc::clone(&sys.tables) as _);
        let gen = input::InputGen::new(input::TpccConfig::standard(scale), cfg.seed);
        let mut rng = SeededRng::new(cfg.seed ^ 0x746f_7274); // "tort"
        let half = cfg.txns / 2;
        for i in 0..cfg.txns {
            if i == half {
                let outcome = shared.install_oracle(Arc::clone(&edited[0].tables) as _);
                if outcome != (InstallOutcome::Immediate { epoch: 1 }) {
                    return Err(Error::Internal(format!(
                        "quiescent install: outcome {outcome:?}, expected an \
                         immediate switch to epoch 1"
                    )));
                }
                immediate_installs += 1;
            }
            let mut program = txns::program_for(gen.next_input(&mut rng), scale.districts);
            run(&shared, &*sys.acc, program.as_mut(), WaitMode::Block)?;
        }
        if shared.wal_bytes() != baseline.image {
            return Err(Error::Internal(
                "quiescent install: WAL diverged from baseline".into(),
            ));
        }
        violations += consistency::check(&shared.snapshot_db(), false).len();
        mixed += shared.registry().mixed_epoch_lookups();
        let _ = writeln!(
            log,
            "quiescent install after txn {half}: immediate epoch=1 mixed={}",
            shared.registry().mixed_epoch_lookups()
        );
    }

    let mut points = 0usize;
    let mut sweep = |log: &mut String,
                     label: String,
                     esys: &TpccSystem,
                     bytes: &[u8],
                     expect_decoded: Option<usize>|
     -> Result<()> {
        let stats = crash_and_recover(&base, esys, bytes)?;
        if let Some(want) = expect_decoded {
            if stats.decoded != want {
                return Err(Error::Internal(format!(
                    "{label}: decoded {} records, expected {want}",
                    stats.decoded
                )));
            }
        }
        points += 1;
        stats_sum.0 += stats.replayed as u64;
        stats_sum.1 += stats.compensated as u64;
        stats_sum.2 += stats.discarded as u64;
        violations += stats.violations;
        emit_point(&sink, log, &label, &stats, 0);
        Ok(())
    };

    // ---- phase 4: crash at every append index, recover under new tables ----
    let n = offsets.len();
    let cstride = n.div_ceil(cfg.max_crash_points).max(1);
    if cstride > 1 {
        let _ = writeln!(
            log,
            "crash sweep: striding by {cstride} ({} of {} indices; bounded smoke run)",
            n / cstride + 1,
            n + 1
        );
    }
    let mut ks: Vec<usize> = (0..=n).step_by(cstride).collect();
    if ks.last() != Some(&n) {
        ks.push(n);
    }
    for k in ks {
        let cut = if k == 0 { 0 } else { offsets[k - 1] };
        let edit = edits[k % edits.len()];
        let esys = &edited[k % edits.len()];
        sweep(
            &mut log,
            format!("crash k={k} edit={edit:?}"),
            esys,
            &baseline.image[..cut],
            Some(k),
        )?;
    }

    // ---- phase 5: fsync boundaries inside the drain window -----------------
    let drain_sys = &edited[0]; // AddAudit: the widest edit
    {
        let scale = cfg.scale;
        let (dev, snaps) = Snooper::new(MemDevice::new());
        let policy = GroupCommitPolicy::fixed(std::time::Duration::ZERO, cfg.max_batch);
        let shared = Arc::new(
            SharedDb::new(fresh_base(&scale, cfg.seed), Arc::clone(&sys.tables) as _)
                .with_wal_backend(Box::new(dev), policy),
        );
        let b_mid = (n_boundaries / 2).max(1) as u64;
        {
            let sh = Arc::clone(&shared);
            let tables = Arc::clone(&drain_sys.tables);
            shared.set_step_boundary_hook(Some(Box::new(move |count| {
                if count == b_mid {
                    sh.install_oracle(Arc::clone(&tables) as _);
                }
            })));
        }
        let gen = input::InputGen::new(input::TpccConfig::standard(scale), cfg.seed);
        let mut rng = SeededRng::new(cfg.seed ^ 0x746f_7274); // "tort"
        for _ in 0..cfg.txns {
            let mut program = txns::program_for(gen.next_input(&mut rng), scale.districts);
            run(&shared, &*sys.acc, program.as_mut(), WaitMode::Block)?;
        }
        shared.set_step_boundary_hook(None);
        let len = shared.wal_len();
        if len > 0 {
            shared.sync_wal(Lsn(len as u64 - 1))?;
        }
        let stream = shared.wal_bytes();
        if stream != baseline.image {
            return Err(Error::Internal(
                "fsync-during-drain run: record stream diverged from baseline".into(),
            ));
        }
        if shared.registry().switches() != 1 {
            return Err(Error::Internal(
                "fsync-during-drain run: the mid-mix install never switched".into(),
            ));
        }
        mixed += shared.registry().mixed_epoch_lookups();
        let snapshots = snaps.lock().unwrap().clone();
        let _ = writeln!(
            log,
            "fsync-during-drain: install at b={b_mid} max_batch={} boundaries={}",
            cfg.max_batch,
            snapshots.len()
        );
        drop(shared);
        for (j, snap) in snapshots.iter().enumerate() {
            let cut = snap.stream.len();
            if cut != 0 && offsets.binary_search(&cut).is_err() {
                return Err(Error::Internal(format!(
                    "fsync j={}: durable stream cuts mid-frame at byte {cut}",
                    j + 1
                )));
            }
            let intact = offsets.partition_point(|&o| o <= cut);
            sweep(
                &mut log,
                format!("fsync j={}", j + 1),
                drain_sys,
                &snap.stream,
                Some(intact),
            )?;
        }
    }

    let (replayed, compensated, discarded, rejected_records) = stats_sum;
    let _ = writeln!(
        log,
        "total: boundaries={n_boundaries} switches={switch_points} immediate={immediate_installs} \
         crash_points={points} replayed={replayed} compensated={compensated} \
         discarded={discarded} rejected={rejected_records} violations={violations} \
         mixed_epoch={mixed}"
    );
    Ok(ReanalysisTortureReport {
        boundaries: n_boundaries,
        switch_points,
        immediate_installs,
        drained,
        crash_points: points,
        replayed,
        compensated,
        discarded,
        rejected_records,
        violations,
        mixed_epoch_lookups: mixed,
        log,
        counters: sink.counters(),
    })
}

// ======================================================================
// WAL-shipping torture: crash every ship boundary on both sides.
// ======================================================================

/// Sizing of a WAL-shipping torture run. The crash sweeps above kill one
/// machine; this one tortures a *pair*: a leader shipping its durable WAL
/// prefix and a follower verifying, persisting and replaying it. Every ship
/// boundary is crashed on both sides — leader death after a partial ship
/// (promote the follower's verified prefix), follower death mid-replay
/// (salvage, chain-handshake, re-ship) — plus hostile-transport and
/// divergence points. Everything is derived from `seed`; two runs with an
/// equal config produce byte-identical outcome logs.
#[derive(Debug, Clone, Copy)]
pub struct ShipTortureConfig {
    /// Master seed for population, inputs and plan sampling.
    pub seed: u64,
    /// Database scale the mix runs against.
    pub scale: Scale,
    /// Transactions in the TPC-C mix.
    pub txns: usize,
    /// Group-commit batch threshold (records); small values put fsync —
    /// and therefore ship — boundaries mid-transaction.
    pub max_batch: usize,
    /// Ship batch size target in bytes. Small enough to yield many ship
    /// boundaries per workload.
    pub ship_batch: usize,
    /// Seeded drop/duplicate/delay transport plans to converge under.
    pub plan_samples: usize,
    /// Live `crash_after_ships` pumps cross-validating the injector
    /// against the boundary sweep.
    pub injector_samples: usize,
}

impl ShipTortureConfig {
    /// The full sweep used by `figures -- torture --ship` and the torture
    /// tests: every ship boundary on both sides.
    pub fn standard(seed: u64) -> ShipTortureConfig {
        ShipTortureConfig {
            seed,
            scale: Scale::test(),
            txns: 16,
            max_batch: 4,
            ship_batch: 300,
            plan_samples: 4,
            injector_samples: 3,
        }
    }

    /// A bounded smoke run for the PR gate in `scripts/check.sh`.
    pub fn smoke(seed: u64) -> ShipTortureConfig {
        ShipTortureConfig {
            seed,
            scale: Scale::test(),
            txns: 8,
            max_batch: 6,
            ship_batch: 500,
            plan_samples: 2,
            injector_samples: 2,
        }
    }
}

/// Aggregate outcome of a WAL-shipping torture run.
#[derive(Debug)]
pub struct ShipTortureReport {
    /// Ship boundaries in the baseline replication (crash points per side).
    pub boundaries: usize,
    /// Crash/refusal/divergence points exercised.
    pub points: usize,
    /// Transactions fully replayed across all promotion points.
    pub replayed: u64,
    /// In-flight transactions compensated across all promotion points.
    pub compensated: u64,
    /// In-flight transactions discarded across all promotion points.
    pub discarded: u64,
    /// Torn/corrupt records rejected past the clean prefix, summed.
    pub rejected_records: u64,
    /// Consistency violations across all points (must be 0).
    pub violations: usize,
    /// Batches the follower refused across all hostile points (> 0 — the
    /// sweep is not a sweep if nothing was ever refused).
    pub refusals: u64,
    /// Shipper rewinds to the follower's verified frontier.
    pub resumes: u64,
    /// One line per point; byte-identical across same-seed runs.
    pub log: String,
    /// Counter snapshot of the harness's event sink (includes the `ship_*`
    /// family fed by the replication pump).
    pub counters: CounterSnapshot,
}

/// Run the seeded mix on a mem device under a small-batch group-commit
/// policy, force-sync the tail, and return the durable record stream and
/// its record count — the only bytes a leader is ever allowed to ship.
fn run_ship_workload(cfg: &ShipTortureConfig, sys: &TpccSystem) -> Result<(Vec<u8>, u64)> {
    let scale = cfg.scale;
    let policy = GroupCommitPolicy::fixed(std::time::Duration::ZERO, cfg.max_batch);
    let shared = SharedDb::new(fresh_base(&scale, cfg.seed), Arc::clone(&sys.tables) as _)
        .with_wal_backend(Box::new(MemDevice::new()), policy);
    let gen = input::InputGen::new(input::TpccConfig::standard(scale), cfg.seed);
    let mut rng = SeededRng::new(cfg.seed ^ 0x746f_7274); // "tort" — same mix as run_workload
    for _ in 0..cfg.txns {
        let mut program = txns::program_for(gen.next_input(&mut rng), scale.districts);
        run(&shared, &*sys.acc, program.as_mut(), WaitMode::Block)?;
    }
    let len = shared.wal_len();
    if len > 0 {
        shared.sync_wal(Lsn(len as u64 - 1))?;
    }
    Ok((shared.wal_durable_stream(), shared.durable_wal_records()))
}

/// A follower standing at exactly `prefix` of the leader's stream, built by
/// verifying it as one giant batch (chain-checked like any ship).
fn follower_at(base: &Database, durable: &[u8], prefix: usize, records: u64) -> Result<Follower> {
    let mut f = Follower::new(base.clone(), Box::new(MemDevice::new()));
    if prefix > 0 {
        let batch = ShipBatch {
            seq: 0,
            start: 0,
            payload: durable[..prefix].to_vec(),
            chain: stream_chain(&durable[..prefix]),
        };
        match f.apply(&batch) {
            Applied::Accepted { records: got } if got == records => {}
            other => {
                return Err(Error::Internal(format!(
                    "bootstrap ship of {prefix}B refused: {other:?}"
                )))
            }
        }
    }
    Ok(f)
}

/// Run the WAL-shipping torture sweep. Phases:
///
/// 1. baseline — replicate the whole durable stream batch-by-batch over a
///    clean transport, recording every ship boundary; the follower's bytes,
///    replay frontier and replayed image must match the leader exactly, and
///    the shipped frontier must clamp the leader's prune watermark;
/// 2. leader crash after every partial ship — promote the follower's
///    verified prefix: recover, resume compensation, audit §3.3.2
///    consistency, lock cleanliness and no-silent-loss accounting;
/// 3. injector cross-validation — a live pump with `crash_after_ships(j)`
///    armed must capture exactly the follower stream at boundary `j`;
/// 4. hostile transport at every boundary — a torn re-ship, a gapped batch
///    and a chain-corrupt batch are each refused with the frontier
///    unchanged, then the genuine batch is accepted;
/// 5. follower crash at every boundary — the follower dies (a torn local
///    write in flight), resumes from its own device, chain-handshakes with
///    the leader, and the remainder re-ships to byte equality;
/// 6. divergence — a follower whose salvaged tail was forged must be
///    refused at handshake with a typed [`Error::Divergence`], never
///    silently re-shipped over;
/// 7. seeded hostile plans — drop/duplicate/delay/tear plans over the full
///    stream still converge to byte equality.
pub fn run_ship_torture(cfg: &ShipTortureConfig) -> Result<ShipTortureReport> {
    let sys = TpccSystem::build();
    let base = fresh_base(&cfg.scale, cfg.seed);
    let sink = EventSink::enabled(64);
    let mut log = String::new();
    let mut points = 0usize;
    let mut stats_sum = (0u64, 0u64, 0u64, 0u64);
    let mut violations = 0usize;
    let mut refusals = 0u64;
    let mut resumes = 0u64;

    // ---- phase 1: baseline replication, boundary enumeration ---------------
    let (durable, records) = run_ship_workload(cfg, &sys)?;
    let offsets = record_offsets(&durable);
    if offsets.last().copied().unwrap_or(0) != durable.len() {
        return Err(Error::Internal(
            "durable stream does not end on a frame boundary".into(),
        ));
    }
    // Ship batch-by-batch with the raw shipper so every boundary is
    // observable: boundaries[k] = (byte offset, record count) after k+1
    // accepted ships.
    let mut shipper = Shipper::new(cfg.ship_batch);
    let mut follower = Follower::new(base.clone(), Box::new(MemDevice::new()));
    let mut boundaries: Vec<(usize, u64)> = Vec::new();
    while let Some(batch) = shipper.next_batch(&durable) {
        match follower.apply(&batch) {
            Applied::Accepted { .. } => {
                let p = follower.resume_point();
                shipper.ack_to(p.offset, p.records);
                boundaries.push((p.offset as usize, p.records));
            }
            other => {
                return Err(Error::Internal(format!(
                    "clean baseline ship refused at seq {}: {other:?}",
                    batch.seq
                )))
            }
        }
    }
    let n = boundaries.len();
    if follower.stream() != durable {
        return Err(Error::Internal("baseline follower bytes diverged".into()));
    }
    if follower.replay_lsn() != records {
        return Err(Error::Internal(format!(
            "baseline replay frontier {} != durable records {records}",
            follower.replay_lsn()
        )));
    }
    let follower_violations = consistency::check(&follower.snapshot()?, false).len();
    violations += follower_violations;
    let _ = writeln!(
        log,
        "baseline: seed={} txns={} records={} stream={}B ship_batch={} boundaries={} \
         follower_violations={follower_violations}",
        cfg.seed,
        cfg.txns,
        records,
        durable.len(),
        cfg.ship_batch,
        n
    );
    // The shipped frontier clamps the leader's prune watermark (replication
    // lag must never let the leader prune versions a follower read needs).
    {
        let shared = SharedDb::new(base.clone(), Arc::clone(&sys.tables) as _);
        shared.set_shipped_frontier(boundaries[n / 2].1);
        let w = shared.version_watermark();
        if w > boundaries[n / 2].1.checked_sub(1) {
            return Err(Error::Internal(format!(
                "prune watermark {w:?} ignores shipped frontier {}",
                boundaries[n / 2].1
            )));
        }
    }

    // ---- phase 2: leader crash after every partial ship → promote ----------
    for (k, &(off, recs)) in boundaries.iter().enumerate() {
        let stats = crash_and_recover(&base, &sys, &durable[..off])?;
        if stats.decoded as u64 != recs {
            return Err(Error::Internal(format!(
                "promote k={}: {} records decoded, boundary holds {recs}",
                k + 1,
                stats.decoded
            )));
        }
        points += 1;
        violations += stats.violations;
        stats_sum.0 += stats.replayed as u64;
        stats_sum.1 += stats.compensated as u64;
        stats_sum.2 += stats.discarded as u64;
        emit_point(&sink, &mut log, &format!("promote k={}", k + 1), &stats, 0);
    }

    // ---- phase 3: injector cross-validation --------------------------------
    let mut rng = SeededRng::new(cfg.seed ^ 0x7368_6970); // "ship"
    for _ in 0..cfg.injector_samples {
        let j = rng.int_range(1, n as i64) as u64;
        let injector = FaultInjector::with_plan(FaultPlan::crash_after_ships(j));
        let mut rep = Replicator::new(MemTransport::new(), cfg.ship_batch, cfg.seed)
            .with_faults(Arc::clone(&injector));
        let mut f = Follower::new(base.clone(), Box::new(MemDevice::new()));
        rep.pump(&mut f, &durable, records)?;
        let captured = injector
            .captured_image()
            .ok_or_else(|| Error::Internal(format!("crash_after_ships({j}) never fired")))?;
        let expect = &durable[..boundaries[j as usize - 1].0];
        if captured != expect {
            return Err(Error::Internal(format!(
                "injector at ship {j}: captured {}B, boundary sweep cut {}B",
                captured.len(),
                expect.len()
            )));
        }
        points += 1;
        let _ = writeln!(log, "injector j={j}: captured={}B ok", captured.len());
    }

    // ---- phase 4: hostile transport at every boundary ----------------------
    for (k, &(off, recs)) in boundaries.iter().enumerate() {
        // Stand a follower at the *previous* boundary and attack the ship
        // that would carry it to this one.
        let (prev_off, prev_recs) = if k == 0 { (0, 0) } else { boundaries[k - 1] };
        let mut f = follower_at(&base, &durable, prev_off, prev_recs)?;
        let genuine = ShipBatch {
            seq: 0,
            start: prev_off as u64,
            payload: durable[prev_off..off].to_vec(),
            chain: stream_chain(&durable[..off]),
        };
        // (a) torn mid-frame in transit;
        let mut torn = genuine.clone();
        torn.payload.truncate(torn.payload.len() - 1);
        let torn_refused = matches!(f.apply(&torn), Applied::Refused(Refusal::TornFrame));
        // (b) a gap (first frame lost);
        let skip = record_offsets(&genuine.payload)[0];
        let gapped = ShipBatch {
            seq: 1,
            start: (prev_off + skip) as u64,
            payload: genuine.payload[skip..].to_vec(),
            chain: genuine.chain,
        };
        let gap_refused = matches!(f.apply(&gapped), Applied::Refused(Refusal::Gap { .. }));
        // (c) a flipped chain (corruption or foreign history).
        let mut forged = genuine.clone();
        forged.chain ^= 1;
        let chain_refused = matches!(f.apply(&forged), Applied::Refused(Refusal::Chain { .. }));
        let frontier_held = f.resume_point().offset == prev_off as u64;
        // The genuine re-ship must then land.
        let accepted =
            matches!(f.apply(&genuine), Applied::Accepted { records: r } if r == recs - prev_recs);
        if !(torn_refused && gap_refused && chain_refused && frontier_held && accepted) {
            violations += 1;
        }
        refusals += 3;
        points += 1;
        let _ = writeln!(
            log,
            "hostile k={}: torn={} gap={} chain={} frontier_held={} reship_ok={}",
            k + 1,
            torn_refused,
            gap_refused,
            chain_refused,
            frontier_held,
            accepted
        );
    }

    // ---- phase 5: follower crash at every boundary → resume + re-ship ------
    for (k, &(off, recs)) in boundaries.iter().enumerate() {
        let f = follower_at(&base, &durable, off, recs)?;
        // Crash: memory dies; a torn local write may be in flight.
        let mut dev = f.into_device();
        let torn = (cfg.seed as usize + k) % 11 + 1;
        dev.stage(&vec![0xEE; torn]);
        let _ = dev.sync();
        let mut f = Follower::resume(base.clone(), dev);
        let salvage_ok = f.replay_lsn() == recs;
        let point = f.resume_point();
        let mut rep = Replicator::new(MemTransport::new(), cfg.ship_batch, cfg.seed ^ k as u64)
            .with_events(Arc::clone(&sink));
        rep.resume(&durable, point)?;
        let stats = rep.pump(&mut f, &durable, records)?;
        resumes += 1 + stats.resumes; // the handshake plus any pump rewinds
        let caught_up = f.stream() == durable && f.replay_lsn() == records;
        if !(salvage_ok && caught_up) {
            violations += 1;
        }
        points += 1;
        let _ = writeln!(
            log,
            "follower-crash k={}: torn_tail={torn}B salvage_ok={salvage_ok} reshipped={} caught_up={caught_up}",
            k + 1,
            stats.records
        );
    }

    // ---- phase 6: divergence is refused, typed ------------------------------
    {
        let mid = boundaries[n / 2];
        let f = follower_at(&base, &durable, mid.0, mid.1)?;
        let mut dev = f.into_device();
        // Forge a whole (framed) record the leader never wrote, so salvage
        // keeps it and the handshake must catch it.
        let mut fake = vec![0u8; 13];
        fake[..4].copy_from_slice(&1u32.to_le_bytes());
        dev.stage(&fake);
        dev.sync()
            .map_err(|e| Error::Internal(format!("divergence staging: {e}")))?;
        let f = Follower::resume(base.clone(), dev);
        let mut rep = Replicator::new(MemTransport::new(), cfg.ship_batch, cfg.seed);
        let diverged = matches!(
            rep.resume(&durable, f.resume_point()),
            Err(Error::Divergence { .. })
        );
        if !diverged {
            violations += 1;
        }
        points += 1;
        let _ = writeln!(log, "divergence: forged_tail=13B typed_refusal={diverged}");
    }

    // ---- phase 7: seeded hostile plans over the full stream -----------------
    for i in 0..cfg.plan_samples {
        let plan = ShipPlan::seeded(&mut rng);
        let batch = rng.int_range(120, 700) as usize;
        let mut rep = Replicator::new(MemTransport::with_plan(plan), batch, cfg.seed ^ i as u64)
            .with_events(Arc::clone(&sink));
        let mut f = Follower::new(base.clone(), Box::new(MemDevice::new()));
        let stats = rep.pump(&mut f, &durable, records)?;
        let converged = f.stream() == durable && f.replay_lsn() == records;
        if !converged {
            violations += 1;
        }
        refusals += stats.refusals;
        resumes += stats.resumes;
        points += 1;
        let _ = writeln!(
            log,
            "plan i={i}: {plan:?} batch={batch} refused={} resumed={} converged={converged}",
            stats.refusals, stats.resumes
        );
    }

    let (replayed, compensated, discarded, rejected_records) = stats_sum;
    let _ = writeln!(
        log,
        "total: boundaries={n} points={points} replayed={replayed} compensated={compensated} \
         discarded={discarded} rejected={rejected_records} violations={violations} \
         refused={refusals} resumes={resumes}"
    );
    Ok(ShipTortureReport {
        boundaries: n,
        points,
        replayed,
        compensated,
        discarded,
        rejected_records,
        violations,
        refusals,
        resumes,
        log,
        counters: sink.counters(),
    })
}
