//! Deterministic TPC-C population.
//!
//! Deviations from spec §4.3, chosen so the consistency conditions are
//! exactly checkable from a clean slate (documented in DESIGN.md): customer
//! balances start at zero with no seed history rows, and the initial orders
//! are all undelivered (they feed the first delivery transactions).

use crate::schema::{Scale, TABLES};
use acc_common::rng::SeededRng;
use acc_common::{Decimal, Value};
use acc_storage::{Database, Row};

/// The sixteen TPC-C last-name syllables (spec §4.3.2.3).
pub const LAST_NAME_SYLLABLES: [&str; 10] = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
];

/// Build a customer last name from a number in `[0, 999]`.
pub fn last_name(num: i64) -> String {
    let n = num.clamp(0, 999) as usize;
    format!(
        "{}{}{}",
        LAST_NAME_SYLLABLES[n / 100],
        LAST_NAME_SYLLABLES[(n / 10) % 10],
        LAST_NAME_SYLLABLES[n % 10]
    )
}

/// Populate `db` (built from [`crate::schema::tpcc_catalog`]) at the given
/// scale. Returns the RNG-consumed generator for reproducibility checks.
pub fn populate(db: &mut Database, scale: &Scale, seed: u64) {
    let mut rng = SeededRng::new(seed);

    for w in 1..=scale.warehouses {
        db.table_mut(TABLES.warehouse)
            .expect("warehouse table")
            .insert(Row(vec![
                Value::Int(w),
                Value::str(format!("WARE{w:02}")),
                Value::Decimal(Decimal::from_units(rng.int_range(0, 2000))), // 0–20 % tax
                Value::Decimal(Decimal::ZERO),
            ]))
            .expect("fresh warehouse row");

        for d in 1..=scale.districts {
            db.table_mut(TABLES.district)
                .expect("district table")
                .insert(Row(vec![
                    Value::Int(w),
                    Value::Int(d),
                    Value::str(format!("DIST{d:02}")),
                    Value::Decimal(Decimal::from_units(rng.int_range(0, 2000))),
                    Value::Decimal(Decimal::ZERO),
                    Value::Int(scale.initial_orders_per_district + 1),
                ]))
                .expect("fresh district row");

            for c in 1..=scale.customers_per_district {
                // Spec: first 1000 customers cycle through the syllable
                // names; beyond that, NURand-style spread.
                let name_num = if c <= 1000 {
                    c - 1
                } else {
                    rng.int_range(0, 999)
                };
                let credit = if rng.chance(0.10) { "BC" } else { "GC" };
                db.table_mut(TABLES.customer)
                    .expect("customer table")
                    .insert(Row(vec![
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(c),
                        Value::str(rng.alnum_string(8, 16)),
                        Value::str(last_name(name_num)),
                        Value::str(credit),
                        Value::Decimal(Decimal::from_units(rng.int_range(0, 5000))), // 0–50 %
                        Value::Decimal(Decimal::ZERO),
                        Value::Decimal(Decimal::ZERO),
                        Value::Int(0),
                        Value::Int(0),
                        Value::str(rng.alnum_string(12, 24)),
                    ]))
                    .expect("fresh customer row");
            }

            // Initial undelivered orders, one per o_id starting at 1.
            for o in 1..=scale.initial_orders_per_district {
                let c_id = rng.int_range(1, scale.customers_per_district);
                let ol_cnt = rng.int_range(5, 15);
                db.table_mut(TABLES.order)
                    .expect("order table")
                    .insert(Row(vec![
                        Value::Int(w),
                        Value::Int(d),
                        Value::Int(o),
                        Value::Int(c_id),
                        Value::Int(0),
                        Value::Null, // undelivered
                        Value::Int(ol_cnt),
                        Value::Bool(true),
                    ]))
                    .expect("fresh order row");
                db.table_mut(TABLES.new_order)
                    .expect("new_order table")
                    .insert(Row(vec![Value::Int(w), Value::Int(d), Value::Int(o)]))
                    .expect("fresh new_order row");
                for l in 1..=ol_cnt {
                    let i_id = rng.int_range(1, scale.items);
                    db.table_mut(TABLES.order_line)
                        .expect("order_line table")
                        .insert(Row(vec![
                            Value::Int(w),
                            Value::Int(d),
                            Value::Int(o),
                            Value::Int(l),
                            Value::Int(i_id),
                            Value::Int(w),
                            Value::Null, // not delivered
                            Value::Int(5),
                            Value::Decimal(Decimal::from_cents(rng.int_range(1, 999_999))),
                            Value::str(rng.alnum_string(24, 24)),
                        ]))
                        .expect("fresh order_line row");
                }
            }
        }
    }

    for i in 1..=scale.items {
        db.table_mut(TABLES.item)
            .expect("item table")
            .insert(Row(vec![
                Value::Int(i),
                Value::str(rng.alnum_string(14, 24)),
                Value::Decimal(Decimal::from_cents(rng.int_range(100, 10_000))),
                Value::str(rng.alnum_string(26, 50)),
            ]))
            .expect("fresh item row");
    }
    for w in 1..=scale.warehouses {
        for i in 1..=scale.items {
            db.table_mut(TABLES.stock)
                .expect("stock table")
                .insert(Row(vec![
                    Value::Int(w),
                    Value::Int(i),
                    Value::Int(rng.int_range(10, 100)),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(0),
                    Value::str(rng.alnum_string(24, 24)),
                ]))
                .expect("fresh stock row");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{col, tpcc_catalog};
    use acc_storage::Key;

    #[test]
    fn last_names_follow_syllables() {
        assert_eq!(last_name(0), "BARBARBAR");
        assert_eq!(last_name(371), "PRICALLYOUGHT");
        assert_eq!(last_name(999), "EINGEINGEING");
    }

    #[test]
    fn population_has_expected_cardinalities() {
        let cat = tpcc_catalog();
        let mut db = Database::new(&cat);
        let scale = Scale::test();
        populate(&mut db, &scale, 42);

        assert_eq!(db.table(TABLES.warehouse).unwrap().len(), 1);
        assert_eq!(db.table(TABLES.district).unwrap().len(), 3);
        assert_eq!(db.table(TABLES.customer).unwrap().len(), 36);
        assert_eq!(db.table(TABLES.item).unwrap().len(), 50);
        assert_eq!(db.table(TABLES.stock).unwrap().len(), 50);
        assert_eq!(db.table(TABLES.order).unwrap().len(), 12);
        assert_eq!(db.table(TABLES.new_order).unwrap().len(), 12);
        assert!(db.table(TABLES.order_line).unwrap().len() >= 12 * 5);
        assert_eq!(db.table(TABLES.history).unwrap().len(), 0);

        // next_o_id points one past the initial orders.
        let d = db
            .table(TABLES.district)
            .unwrap()
            .get(&Key::ints(&[1, 1]))
            .unwrap()
            .1
            .clone();
        assert_eq!(d.int(col::d::NEXT_O_ID), 5);
    }

    #[test]
    fn population_is_deterministic() {
        let cat = tpcc_catalog();
        let scale = Scale::test();
        let mut a = Database::new(&cat);
        populate(&mut a, &scale, 7);
        let mut b = Database::new(&cat);
        populate(&mut b, &scale, 7);
        let rows = |db: &Database| -> Vec<String> {
            db.tables()
                .flat_map(|t| t.iter().map(|(_, r)| r.to_string()).collect::<Vec<_>>())
                .collect()
        };
        assert_eq!(rows(&a), rows(&b));
    }

    #[test]
    fn customer_last_name_index_works() {
        let cat = tpcc_catalog();
        let mut db = Database::new(&cat);
        populate(&mut db, &Scale::test(), 42);
        // Customer 1 in district 1 has name BARBARBAR (c=1 → name_num 0).
        let hits = db.table(TABLES.customer).unwrap().lookup_secondary(
            0,
            &Key(vec![Value::Int(1), Value::Int(1), Value::str(last_name(0))]),
        );
        assert!(!hits.is_empty());
    }
}
