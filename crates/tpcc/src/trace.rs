//! TPC-C as simulator traces.
//!
//! The trace generator mirrors the statement-by-statement lock footprint of
//! the programs in [`crate::txns`] — same step types, same decomposition,
//! same hot district row — against the page geometry of
//! [`crate::schema::tpcc_catalog`]. A small amount of logical state (order
//! counters, undelivered-order queues) keeps resource ids realistic.

use crate::decompose::{step, ty};
use crate::input::{InputGen, TpccConfig, TxnKind};
use crate::schema::TABLES;
use acc_common::clock::SimTime;
use acc_common::rng::SeededRng;
use acc_common::{AssertionTemplateId, ResourceId, TableId};
use acc_core::DIRTY;
use acc_lockmgr::LockMode;
use acc_sim::{Op, StepTrace, TraceSource, TxnTrace};
use std::collections::VecDeque;

/// Cost knobs for trace generation.
#[derive(Debug, Clone)]
pub struct TraceCosts {
    /// CPU demand per SQL statement.
    pub cpu_per_stmt: SimTime,
    /// Compute time injected before each statement of new-order's line steps
    /// and delivery's steps (Fig. 3's knob; zero for the baseline curves).
    pub compute_time: SimTime,
}

impl Default for TraceCosts {
    fn default() -> Self {
        TraceCosts {
            cpu_per_stmt: SimTime::from_millis(5),
            compute_time: SimTime::ZERO,
        }
    }
}

/// Rows per page mirrored from the schema (kept in sync by a test).
mod rpp {
    pub const CUSTOMER: i64 = 4;
    pub const HISTORY: i64 = 8;
    pub const NEW_ORDER: i64 = 4;
    pub const ORDER: i64 = 4;
    pub const ITEM: i64 = 16;
    pub const STOCK: i64 = 4;
}

/// Per-district page-space stride so order-derived pages never collide
/// across districts.
const DISTRICT_STRIDE: i64 = 1 << 20;

/// The TPC-C trace source.
pub struct TpccTraceSource {
    gen: InputGen,
    costs: TraceCosts,
    templates: crate::decompose::Templates,
    next_o: Vec<i64>,
    undelivered: Vec<VecDeque<(i64, i64)>>, // (o_id, ol_cnt) per district
    history_rows: i64,
}

impl TpccTraceSource {
    /// Build from a workload config and the system's template handles.
    pub fn new(
        config: TpccConfig,
        seed: u64,
        templates: crate::decompose::Templates,
        costs: TraceCosts,
    ) -> Self {
        let scale = config.scale;
        let next_o = vec![scale.initial_orders_per_district + 1; scale.districts as usize + 1];
        let undelivered = (0..=scale.districts)
            .map(|_| {
                (1..=scale.initial_orders_per_district)
                    .map(|o| (o, 10))
                    .collect()
            })
            .collect();
        TpccTraceSource {
            gen: InputGen::new(config, seed),
            costs,
            templates,
            next_o,
            undelivered,
            history_rows: 0,
        }
    }

    fn cpu(&self) -> SimTime {
        self.costs.cpu_per_stmt
    }

    // ----- resource mapping -------------------------------------------------

    fn page(table: TableId, page: i64) -> ResourceId {
        ResourceId::Page(table, page as u32)
    }

    fn warehouse_row() -> ResourceId {
        Self::page(TABLES.warehouse, 0)
    }

    fn district_row(d: i64) -> ResourceId {
        Self::page(TABLES.district, d - 1)
    }

    fn customer_page(&self, d: i64, c: i64) -> ResourceId {
        let cpd = self.gen.config().scale.customers_per_district;
        Self::page(TABLES.customer, ((d - 1) * cpd + (c - 1)) / rpp::CUSTOMER)
    }

    fn item_page(i: i64) -> ResourceId {
        Self::page(TABLES.item, (i - 1) / rpp::ITEM)
    }

    fn stock_page(i: i64) -> ResourceId {
        Self::page(TABLES.stock, (i - 1) / rpp::STOCK)
    }

    fn order_page(d: i64, o: i64) -> ResourceId {
        Self::page(TABLES.order, (d - 1) * DISTRICT_STRIDE + o / rpp::ORDER)
    }

    fn order_line_page(d: i64, o: i64) -> ResourceId {
        // An order's 5–15 lines cluster: model one page per order.
        Self::page(TABLES.order_line, (d - 1) * DISTRICT_STRIDE + o)
    }

    fn new_order_page(d: i64, o: i64) -> ResourceId {
        Self::page(
            TABLES.new_order,
            (d - 1) * DISTRICT_STRIDE + o / rpp::NEW_ORDER,
        )
    }

    fn history_page(&self) -> ResourceId {
        Self::page(TABLES.history, self.history_rows / rpp::HISTORY)
    }

    // ----- per-transaction traces -------------------------------------------

    fn new_order_trace(&mut self, rng: &mut SeededRng) -> TxnTrace {
        let input = self.gen.new_order(rng);
        let d = input.d_id;
        let o_id = self.next_o[d as usize];
        self.next_o[d as usize] += 1;
        let cpu = self.cpu();
        let tpl: Vec<AssertionTemplateId> = vec![self.templates.no_loop];

        // Step NO_S1: warehouse read, customer read, district counter bump,
        // ORDER + NEW-ORDER inserts.
        let s1 = StepTrace {
            step_type: step::NO_S1,
            ops: vec![
                Op::read(Self::warehouse_row(), cpu),
                Op::read(self.customer_page(d, input.c_id), cpu),
                Op::write(Self::district_row(d), cpu),
                Op::write(Self::order_page(d, o_id), cpu)
                    .with_lock(ResourceId::Table(TABLES.order), LockMode::IX)
                    .with_templates(tpl.clone()),
                Op::write(Self::new_order_page(d, o_id), cpu)
                    .with_lock(ResourceId::Table(TABLES.new_order), LockMode::IX),
            ],
        };
        let mut steps = vec![s1];
        for line in &input.lines {
            steps.push(StepTrace {
                step_type: step::NO_S2,
                ops: vec![
                    Op::read(Self::item_page(line.i_id), cpu).with_compute(self.costs.compute_time),
                    Op::write(Self::stock_page(line.i_id), cpu),
                    Op::write(Self::order_line_page(d, o_id), cpu)
                        .with_lock(ResourceId::Table(TABLES.order_line), LockMode::IX)
                        .with_templates(tpl.clone()),
                ],
            });
        }
        let n = steps.len();
        if !input.rollback {
            self.undelivered[d as usize].push_back((o_id, input.lines.len() as i64));
        }
        TxnTrace {
            txn_type: ty::NEW_ORDER,
            steps,
            comp_step: Some(step::NO_CS),
            guard: DIRTY,
            abort_after_step: input.rollback.then_some(n - 1),
            version_safe: false,
        }
    }

    fn payment_trace(&mut self, rng: &mut SeededRng) -> TxnTrace {
        let input = self.gen.payment(rng);
        let d = input.d_id;
        let cpu = self.cpu();
        let tpl = vec![self.templates.pay_mid];
        let c_id = self.gen.customer(rng);
        self.history_rows += 1;
        let by_name = matches!(
            input.customer,
            crate::input::CustomerSelector::ByLastName(_)
        );

        let s1 = StepTrace {
            step_type: step::PAY_S1,
            ops: vec![
                Op::write(Self::warehouse_row(), cpu).with_templates(tpl.clone()),
                Op::write(Self::district_row(d), cpu).with_templates(tpl.clone()),
            ],
        };
        let mut ops2 = Vec::new();
        if by_name {
            // Index probe touches an extra customer page.
            ops2.push(Op::read(self.customer_page(d, (c_id % 60) + 1), cpu));
        }
        ops2.push(Op::write(self.customer_page(d, c_id), cpu));
        ops2.push(
            Op::write(self.history_page(), cpu)
                .with_lock(ResourceId::Table(TABLES.history), LockMode::IX),
        );
        TxnTrace {
            txn_type: ty::PAYMENT,
            steps: vec![
                s1,
                StepTrace {
                    step_type: step::PAY_S2,
                    ops: ops2,
                },
            ],
            comp_step: Some(step::PAY_CS),
            guard: DIRTY,
            abort_after_step: None,
            version_safe: false,
        }
    }

    fn order_status_trace(&mut self, rng: &mut SeededRng) -> TxnTrace {
        let d = self.gen.district(rng);
        let c_id = self.gen.customer(rng);
        let cpu = self.cpu();
        let recent = (self.next_o[d as usize] - 1).max(1);
        TxnTrace {
            txn_type: ty::ORDER_STATUS,
            steps: vec![StepTrace {
                step_type: step::OST,
                ops: vec![
                    Op::read(self.customer_page(d, c_id), cpu),
                    Op::read(Self::order_page(d, recent), cpu),
                    Op::read(Self::order_line_page(d, recent), cpu),
                ],
            }],
            comp_step: None,
            guard: DIRTY,
            abort_after_step: None,
            // Read-only: eligible for coordination-free version reads.
            version_safe: true,
        }
    }

    fn delivery_trace(&mut self, _rng: &mut SeededRng) -> TxnTrace {
        let cpu = self.cpu();
        let tpl = vec![self.templates.dlv_loop];
        let districts = self.gen.config().scale.districts;
        let mut steps = Vec::with_capacity(districts as usize * 2);
        for d in 1..=districts {
            let claimed = self.undelivered[d as usize].pop_front();
            // DLV_S1: probe the district's oldest NEW-ORDER index page and
            // delete the row. (Open Ingres reaches the oldest entry through
            // the index with page locks — no table-level scan lock.)
            let probe = claimed.map(|(o, _)| o).unwrap_or(self.next_o[d as usize]);
            let mut claim_ops =
                vec![Op::read(Self::new_order_page(d, probe), cpu)
                    .with_compute(self.costs.compute_time)];
            if let Some((o_id, _)) = claimed {
                claim_ops.push(
                    Op::write(Self::new_order_page(d, o_id), cpu)
                        .with_lock(ResourceId::Table(TABLES.new_order), LockMode::IX),
                );
            }
            steps.push(StepTrace {
                step_type: step::DLV_S1,
                ops: claim_ops,
            });
            // DLV_S2: order, its lines, the customer.
            let apply_ops = match claimed {
                Some((o_id, _)) => {
                    let c_id = (o_id % self.gen.config().scale.customers_per_district) + 1;
                    vec![
                        Op::write(Self::order_page(d, o_id), cpu)
                            .with_compute(self.costs.compute_time)
                            .with_templates(tpl.clone()),
                        Op::write(Self::order_line_page(d, o_id), cpu).with_templates(tpl.clone()),
                        Op::write(self.customer_page(d, c_id), cpu),
                    ]
                }
                None => Vec::new(),
            };
            steps.push(StepTrace {
                step_type: step::DLV_S2,
                ops: apply_ops,
            });
        }
        TxnTrace {
            txn_type: ty::DELIVERY,
            steps,
            comp_step: Some(step::DLV_CS),
            guard: self.templates.dlv_dirty,
            abort_after_step: None,
            version_safe: false,
        }
    }

    fn stock_level_trace(&mut self, rng: &mut SeededRng) -> TxnTrace {
        let d = self.gen.district(rng);
        let cpu = self.cpu();
        let next_o = self.next_o[d as usize];
        let mut ops = vec![Op::read(Self::district_row(d), cpu)];
        for o in (next_o - 20).max(1)..next_o {
            ops.push(Op::read(Self::order_line_page(d, o), cpu));
        }
        // Probe a sample of stock pages.
        for _ in 0..8 {
            ops.push(Op::read(Self::stock_page(self.gen.item(rng)), cpu));
        }
        TxnTrace {
            txn_type: ty::STOCK_LEVEL,
            steps: vec![StepTrace {
                step_type: step::STK,
                ops,
            }],
            comp_step: None,
            guard: DIRTY,
            abort_after_step: None,
            // Read-only: eligible for coordination-free version reads.
            version_safe: true,
        }
    }
}

impl TraceSource for TpccTraceSource {
    fn next_trace(&mut self, rng: &mut SeededRng) -> TxnTrace {
        match self.gen.kind(rng) {
            TxnKind::NewOrder => self.new_order_trace(rng),
            TxnKind::Payment => self.payment_trace(rng),
            TxnKind::OrderStatus => self.order_status_trace(rng),
            TxnKind::Delivery => self.delivery_trace(rng),
            TxnKind::StockLevel => self.stock_level_trace(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::TpccSystem;
    use crate::schema::{tpcc_catalog, Scale};

    fn source() -> TpccTraceSource {
        let sys = TpccSystem::build();
        TpccTraceSource::new(
            TpccConfig::standard(Scale::benchmark()),
            1,
            sys.templates,
            TraceCosts::default(),
        )
    }

    #[test]
    fn rpp_constants_match_schema() {
        let cat = tpcc_catalog();
        assert_eq!(
            cat.schema(TABLES.customer).rows_per_page as i64,
            rpp::CUSTOMER
        );
        assert_eq!(
            cat.schema(TABLES.history).rows_per_page as i64,
            rpp::HISTORY
        );
        assert_eq!(
            cat.schema(TABLES.new_order).rows_per_page as i64,
            rpp::NEW_ORDER
        );
        assert_eq!(cat.schema(TABLES.order).rows_per_page as i64, rpp::ORDER);
        assert_eq!(cat.schema(TABLES.item).rows_per_page as i64, rpp::ITEM);
        assert_eq!(cat.schema(TABLES.stock).rows_per_page as i64, rpp::STOCK);
    }

    #[test]
    fn traces_have_expected_shape() {
        let mut s = source();
        let mut rng = SeededRng::new(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let t = s.next_trace(&mut rng);
            seen.insert(t.txn_type);
            match t.txn_type {
                x if x == ty::NEW_ORDER => {
                    assert!(t.steps.len() >= 6, "header + ≥5 lines");
                    assert_eq!(t.steps[0].step_type, step::NO_S1);
                    assert_eq!(t.steps[1].step_type, step::NO_S2);
                    assert!(t.comp_step.is_some());
                    // District row is the third statement of step 0.
                    assert!(t.steps[0].ops[2].locks.iter().any(|(r, m)| m.is_write()
                        && matches!(r, ResourceId::Page(tid, _) if *tid == TABLES.district)));
                }
                x if x == ty::PAYMENT => {
                    assert_eq!(t.steps.len(), 2);
                    // Also writes the district row — the §5.1 conflict.
                    assert!(t.steps[0].ops[1].locks.iter().any(|(r, m)| m.is_write()
                        && matches!(r, ResourceId::Page(tid, _) if *tid == TABLES.district)));
                }
                x if x == ty::DELIVERY => {
                    assert_eq!(t.steps.len(), 20, "two steps per district");
                }
                x if x == ty::ORDER_STATUS || x == ty::STOCK_LEVEL => {
                    assert_eq!(t.steps.len(), 1);
                    assert!(t.steps[0].ops.iter().all(|o| !o.is_write()));
                }
                other => panic!("unexpected type {other}"),
            }
        }
        assert_eq!(seen.len(), 5, "all five kinds generated");
    }

    #[test]
    fn order_ids_advance_and_deliveries_consume() {
        let mut s = source();
        let mut rng = SeededRng::new(3);
        let before: i64 = s.next_o.iter().sum();
        for _ in 0..200 {
            s.next_trace(&mut rng);
        }
        assert!(s.next_o.iter().sum::<i64>() > before);
    }

    #[test]
    fn trace_generation_is_deterministic() {
        let sys = TpccSystem::build();
        let mk = || {
            TpccTraceSource::new(
                TpccConfig::standard(Scale::benchmark()),
                9,
                sys.templates,
                TraceCosts::default(),
            )
        };
        let (mut a, mut b) = (mk(), mk());
        let mut ra = SeededRng::new(5);
        let mut rb = SeededRng::new(5);
        for _ in 0..200 {
            let ta = a.next_trace(&mut ra);
            let tb = b.next_trace(&mut rb);
            assert_eq!(ta.txn_type, tb.txn_type);
            assert_eq!(ta.steps.len(), tb.steps.len());
            assert_eq!(ta.abort_after_step, tb.abort_after_step);
            for (sa, sb) in ta.steps.iter().zip(tb.steps.iter()) {
                assert_eq!(sa.step_type, sb.step_type);
                let la: Vec<_> = sa.ops.iter().map(|o| o.locks.clone()).collect();
                let lb: Vec<_> = sb.ops.iter().map(|o| o.locks.clone()).collect();
                assert_eq!(la, lb);
            }
        }
    }

    #[test]
    fn compute_time_knob_reaches_line_steps() {
        let sys = TpccSystem::build();
        let mut s = TpccTraceSource::new(
            TpccConfig::standard(Scale::benchmark()),
            1,
            sys.templates,
            TraceCosts {
                cpu_per_stmt: SimTime::from_millis(5),
                compute_time: SimTime::from_millis(7),
            },
        );
        let mut rng = SeededRng::new(4);
        for _ in 0..100 {
            let t = s.next_trace(&mut rng);
            if t.txn_type == ty::NEW_ORDER {
                assert_eq!(t.steps[1].ops[0].compute_before, SimTime::from_millis(7));
                return;
            }
        }
        panic!("no new-order generated in 100 draws");
    }
}
