//! The design-time decomposition and interference analysis of the TPC-C
//! transactions (paper §5.1).
//!
//! # Step types
//!
//! Eleven step types are defined (the paper reports eleven forward step
//! types; our decomposition arrives at eight forward plus three compensating
//! — the mapping is documented in DESIGN.md):
//!
//! | type | transaction | does |
//! |---|---|---|
//! | `NO_S1` | new-order | read warehouse/customer, bump `d_next_o_id`, insert ORDER + NEW-ORDER |
//! | `NO_S2` | new-order | one order line: read ITEM, update STOCK, insert ORDER-LINE (× ol_cnt) |
//! | `PAY_S1` | payment | update `w_ytd`, `d_ytd` |
//! | `PAY_S2` | payment | select customer (id or last name), update balance, insert HISTORY |
//! | `OST` | order-status | read customer + last order + its lines (committed reads required) |
//! | `DLV_S1` | delivery | find & delete the district's oldest NEW-ORDER row |
//! | `DLV_S2` | delivery | set carrier, stamp lines delivered, credit the customer |
//! | `STK` | stock-level | read `d_next_o_id`, scan recent lines, count low stock (read-committed) |
//! | `NO_CS`/`PAY_CS`/`DLV_CS` | compensating steps |
//!
//! # The §5.1 conflict, resolved by column analysis
//!
//! New-order's `NO_S1` writes `d_next_o_id`; payment's `PAY_S1` writes
//! `d_ytd` — the *same district row*. Under 2PL these serialize. Here the
//! footprints are column-disjoint, so neither step interferes with the
//! other's interstep assertions, and the two transaction types interleave on
//! the same district.

use crate::schema::{col, TABLES};

use acc_core::analysis::Decision;
use acc_core::{
    Acc, Analysis, AssertionRegistry, Inference, InterferenceTables, StepFootprint, StepSpec,
    TableFootprint, TxnSpec, DIRTY,
};
use std::sync::Arc;

/// Transaction type ids.
pub mod ty {
    use acc_common::TxnTypeId;
    pub const NEW_ORDER: TxnTypeId = TxnTypeId(1);
    pub const PAYMENT: TxnTypeId = TxnTypeId(2);
    pub const ORDER_STATUS: TxnTypeId = TxnTypeId(3);
    pub const DELIVERY: TxnTypeId = TxnTypeId(4);
    pub const STOCK_LEVEL: TxnTypeId = TxnTypeId(5);
}

/// Step type ids.
pub mod step {
    use acc_common::StepTypeId;
    pub const NO_S1: StepTypeId = StepTypeId(1);
    pub const NO_S2: StepTypeId = StepTypeId(2);
    pub const PAY_S1: StepTypeId = StepTypeId(3);
    pub const PAY_S2: StepTypeId = StepTypeId(4);
    pub const OST: StepTypeId = StepTypeId(5);
    pub const DLV_S1: StepTypeId = StepTypeId(6);
    pub const DLV_S2: StepTypeId = StepTypeId(7);
    pub const STK: StepTypeId = StepTypeId(8);
    pub const NO_CS: StepTypeId = StepTypeId(20);
    pub const PAY_CS: StepTypeId = StepTypeId(21);
    pub const DLV_CS: StepTypeId = StepTypeId(22);
}

/// Key spaces for the inference footprints ([`TpccSystem::infer`]).
pub mod ks {
    use acc_core::KeySpace;
    /// Order ids allocated from `d_next_o_id`: each new-order instance holds
    /// a freshly allocated id, and its ORDER / NEW-ORDER / ORDER-LINE rows
    /// are keyed by it.
    pub const ORDER: KeySpace = KeySpace(0);
    /// Claimed order ids: each delivery instance atomically claims a
    /// distinct oldest order per district (the claim deletes the NEW-ORDER
    /// row), and from then on owns that order's rows.
    pub const CLAIM: KeySpace = KeySpace(1);
    /// Per-payment history keys: each payment inserts exactly one HISTORY
    /// row under its own fresh key.
    pub const TXN: KeySpace = KeySpace(2);
}

/// An online edit to the assertion-template set. [`TpccSystem::reanalyze`]
/// re-derives the full interference matrix from the edited set; the epoch
/// registry (`acc_txn::SharedDb::install_oracle`) then switches the live
/// system over once every in-flight transaction has drained.
///
/// Every edit preserves the base template ids (the base registry is rebuilt
/// in the identical define order, extras go last), so a policy built against
/// the base system keeps meaning the same templates under the new tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableEdit {
    /// Define an extra "backlog audit" template that reads the ORDER and
    /// NEW-ORDER row sets. No step is declared safe against it, so every
    /// writer whose footprint overlaps (new-order's header step, delivery's
    /// claim step, both their compensations) becomes interfering —
    /// the "add an assertion template" direction.
    AddAudit,
    /// Rebuild without the audit template — the "remove a template"
    /// direction. Lookups against the departed id fall off the matrix and
    /// answer conservatively (see `InterferenceTables`).
    RemoveAudit,
    /// Widen `no_loop`'s read footprint with ORDER-LINE's `DELIVERY_D`
    /// column: delivery's apply and compensating steps now overlap it and
    /// flip from safe to interfering — the "widen a footprint" direction
    /// (strictly more conservative, so always sound to install).
    WidenNoLoop,
}

/// Assertion template handles produced by [`TpccSystem::build`].
#[derive(Debug, Clone, Copy)]
pub struct Templates {
    /// New-order's loop invariant: its order's line count matches progress.
    pub no_loop: acc_common::AssertionTemplateId,
    /// Payment's interstep assertion: the warehouse/district YTD columns
    /// include this payment's amount.
    pub pay_mid: acc_common::AssertionTemplateId,
    /// Delivery's loop invariant over processed districts.
    pub dlv_loop: acc_common::AssertionTemplateId,
    /// Delivery's type-specific uncommitted-data guard: deliveries may
    /// safely write pages pinned by *other deliveries* (they claim distinct
    /// orders atomically), while everything in-flight from new-order stays
    /// barred behind the shared [`DIRTY`] guard.
    pub dlv_dirty: acc_common::AssertionTemplateId,
    /// The backlog-audit template, present only in a
    /// [`TableEdit::AddAudit`] re-analysis (always the last id, so the base
    /// ids are stable across edits).
    pub audit: Option<acc_common::AssertionTemplateId>,
}

/// The product of [`TpccSystem::infer`]: the machine-derived matrix over the
/// base TPC-C templates (same ids as the hand system's), plus its own
/// registry (the enriched read footprints) and decision log.
pub struct InferredTpcc {
    /// The enriched template registry (base ids, refined read footprints).
    pub registry: AssertionRegistry,
    /// The machine-derived interference matrix.
    pub tables: InterferenceTables,
    /// Every recorded inference decision, with the discharging proof or the
    /// blocking obligation.
    pub decisions: Vec<Decision>,
}

/// The complete design-time product: templates, interference tables, policy.
pub struct TpccSystem {
    /// Template registry.
    pub registry: Arc<AssertionRegistry>,
    /// The run-time lookup tables (the system-wide interference oracle).
    pub tables: Arc<InterferenceTables>,
    /// The tables a *two-level* ACC (§3.2) would have to use: identical
    /// footprints, but declarations that rest on item identity ("its own
    /// order's lines", "distinct claimed orders") are unavailable to an
    /// analysis that cannot see item identity at run time, so those pairs
    /// stay conservatively interfering. Used only by the §3.2 comparison
    /// experiment.
    pub two_level_tables: Arc<InterferenceTables>,
    /// The ACC policy with all five decompositions.
    pub acc: Arc<Acc>,
    /// Template handles.
    pub templates: Templates,
    /// Every recorded analysis decision (documentation artifact).
    pub decisions: Vec<Decision>,
}

impl TpccSystem {
    /// The shared step footprints: both the one-level and the §3.2
    /// two-level analyses start from exactly these write sets.
    fn footprinted_analysis(reg: &AssertionRegistry) -> Analysis<'_> {
        use step::*;
        Analysis::new(reg)
            .step(StepFootprint::new(
                NO_S1,
                "new-order: header",
                vec![
                    TableFootprint::columns(TABLES.district, [col::d::NEXT_O_ID]),
                    TableFootprint::rows(
                        TABLES.order,
                        [
                            col::o::W_ID,
                            col::o::D_ID,
                            col::o::ID,
                            col::o::C_ID,
                            col::o::ENTRY_D,
                            col::o::CARRIER_ID,
                            col::o::OL_CNT,
                            col::o::ALL_LOCAL,
                        ],
                    ),
                    TableFootprint::rows(TABLES.new_order, [0, 1, 2]),
                ],
            ))
            .step(StepFootprint::new(
                NO_S2,
                "new-order: one line",
                vec![
                    TableFootprint::columns(
                        TABLES.stock,
                        [col::s::QUANTITY, col::s::YTD, col::s::ORDER_CNT],
                    ),
                    TableFootprint::rows(TABLES.order_line, (0..10).collect::<Vec<_>>()),
                ],
            ))
            .step(StepFootprint::new(
                PAY_S1,
                "payment: warehouse/district ytd",
                vec![
                    TableFootprint::columns(TABLES.warehouse, [col::w::YTD]),
                    TableFootprint::columns(TABLES.district, [col::d::YTD]),
                ],
            ))
            .step(StepFootprint::new(
                PAY_S2,
                "payment: customer + history",
                vec![
                    TableFootprint::columns(
                        TABLES.customer,
                        [
                            col::c::BALANCE,
                            col::c::YTD_PAYMENT,
                            col::c::PAYMENT_CNT,
                            col::c::DATA,
                        ],
                    ),
                    TableFootprint::rows(TABLES.history, (0..6).collect::<Vec<_>>()),
                ],
            ))
            .step(StepFootprint::new(OST, "order-status (read-only)", vec![]))
            .step(StepFootprint::new(
                DLV_S1,
                "delivery: claim oldest new-order",
                vec![TableFootprint::rows(TABLES.new_order, [])],
            ))
            .step(StepFootprint::new(
                DLV_S2,
                "delivery: apply to order/lines/customer",
                vec![
                    TableFootprint::columns(TABLES.order, [col::o::CARRIER_ID]),
                    TableFootprint::columns(TABLES.order_line, [col::ol::DELIVERY_D]),
                    TableFootprint::columns(
                        TABLES.customer,
                        [col::c::BALANCE, col::c::DELIVERY_CNT],
                    ),
                ],
            ))
            .step(StepFootprint::new(STK, "stock-level (read-only)", vec![]))
            // ----- compensating step footprints ---------------------------
            .step(StepFootprint::new(
                NO_CS,
                "new-order compensation",
                vec![
                    TableFootprint::rows(TABLES.order, []),
                    TableFootprint::rows(TABLES.new_order, []),
                    TableFootprint::rows(TABLES.order_line, []),
                    TableFootprint::columns(
                        TABLES.stock,
                        [col::s::QUANTITY, col::s::YTD, col::s::ORDER_CNT],
                    ),
                ],
            ))
            .step(StepFootprint::new(
                PAY_CS,
                "payment compensation",
                vec![
                    TableFootprint::columns(TABLES.warehouse, [col::w::YTD]),
                    TableFootprint::columns(TABLES.district, [col::d::YTD]),
                    TableFootprint::columns(
                        TABLES.customer,
                        [col::c::BALANCE, col::c::YTD_PAYMENT, col::c::PAYMENT_CNT],
                    ),
                    TableFootprint::rows(TABLES.history, []),
                ],
            ))
            .step(StepFootprint::new(
                DLV_CS,
                "delivery compensation",
                vec![
                    TableFootprint::rows(TABLES.new_order, []),
                    TableFootprint::columns(TABLES.order, [col::o::CARRIER_ID]),
                    TableFootprint::columns(TABLES.order_line, [col::ol::DELIVERY_D]),
                    TableFootprint::columns(
                        TABLES.customer,
                        [col::c::BALANCE, col::c::DELIVERY_CNT],
                    ),
                ],
            ))
    }

    /// Run the design-time analysis and build the policy.
    pub fn build() -> TpccSystem {
        Self::build_edited(None)
    }

    /// Re-derive the whole design-time product from an edited template set —
    /// the online re-analysis entry point. The returned system's `tables`
    /// are what a caller hands to `SharedDb::install_oracle`; its `acc`
    /// policy is interchangeable with the base one because the base template
    /// ids are preserved.
    pub fn reanalyze(edit: TableEdit) -> TpccSystem {
        Self::build_edited(Some(edit))
    }

    /// Step names for reports and the `figures -- infer` JSON dump.
    pub fn step_names() -> Vec<(acc_common::StepTypeId, &'static str)> {
        use step::*;
        vec![
            (NO_S1, "new-order: header"),
            (NO_S2, "new-order: one line"),
            (PAY_S1, "payment: warehouse/district ytd"),
            (PAY_S2, "payment: customer + history"),
            (OST, "order-status (read-only)"),
            (DLV_S1, "delivery: claim oldest new-order"),
            (DLV_S2, "delivery: apply to order/lines/customer"),
            (STK, "stock-level (read-only)"),
            (NO_CS, "new-order compensation"),
            (PAY_CS, "payment compensation"),
            (DLV_CS, "delivery compensation"),
        ]
    }

    /// Run the *automatic* interference inference over the TPC-C step types
    /// and base templates — no hand declarations, only footprints enriched
    /// with the semantic refinements of `acc::footprint` (effects, key
    /// regions, delta tolerance).
    ///
    /// The refinements encode per-footprint facts that hold of our
    /// implementation: stock/YTD/balance updates are commutative deltas
    /// compensated by the inverse delta; ORDER/NEW-ORDER/ORDER-LINE inserts
    /// use the freshly allocated order id ([`ks::ORDER`]); delivery's apply
    /// and compensation touch only the orders its claim step atomically took
    /// ([`ks::CLAIM`]); each payment owns its HISTORY key ([`ks::TXN`]).
    /// Hand declarations resting on *temporal* or cross-step arguments
    /// ("claimed orders are committed because the claim blocked on DIRTY",
    /// "compensated orders were never claimable") have no footprint form and
    /// come out conservatively interfering — `acc::infer::diff` against the
    /// hand tables makes that cost visible, and the differential test pins
    /// it.
    pub fn infer() -> InferredTpcc {
        use step::*;
        let mut reg = AssertionRegistry::new();
        // Same define order as `build_edited`, so template ids line up with
        // the hand system's and the two matrices are directly comparable.
        let _no_loop = reg.define(
            "no-loop: entered lines match loop progress for this order",
            vec![
                // "This order" is the instance's own freshly allocated id.
                TableFootprint::columns(TABLES.order, [col::o::OL_CNT]).own(ks::ORDER),
                TableFootprint::rows(TABLES.order_line, []).own(ks::ORDER),
            ],
            None,
        );
        let _pay_mid = reg.define(
            "pay-mid: w_ytd and d_ytd include this payment's amount",
            vec![
                // "Includes my contribution" is invariant under other
                // payments' commutative additions.
                TableFootprint::columns(TABLES.warehouse, [col::w::YTD]).tolerates_deltas(),
                TableFootprint::columns(TABLES.district, [col::d::YTD]).tolerates_deltas(),
            ],
            None,
        );
        let _dlv_loop = reg.define(
            "dlv-loop: districts processed so far are fully delivered",
            vec![
                TableFootprint::columns(TABLES.order, [col::o::CARRIER_ID]),
                TableFootprint::columns(TABLES.order_line, [col::ol::DELIVERY_D]),
                TableFootprint::rows(TABLES.new_order, []),
                TableFootprint::columns(TABLES.customer, [col::c::BALANCE]).tolerates_deltas(),
            ],
            None,
        );
        let _dlv_dirty = reg.define_guard("dlv-dirty: uncommitted delivery writes");

        let (tables, decisions) = Inference::new(&reg)
            .step(StepFootprint::new(
                NO_S1,
                "new-order: header",
                vec![
                    TableFootprint::columns(TABLES.district, [col::d::NEXT_O_ID]).delta(),
                    TableFootprint::rows(
                        TABLES.order,
                        [
                            col::o::W_ID,
                            col::o::D_ID,
                            col::o::ID,
                            col::o::C_ID,
                            col::o::ENTRY_D,
                            col::o::CARRIER_ID,
                            col::o::OL_CNT,
                            col::o::ALL_LOCAL,
                        ],
                    )
                    .fresh(ks::ORDER),
                    TableFootprint::rows(TABLES.new_order, [0, 1, 2]).fresh(ks::ORDER),
                ],
            ))
            .step(StepFootprint::new(
                NO_S2,
                "new-order: one line",
                vec![
                    TableFootprint::columns(
                        TABLES.stock,
                        [col::s::QUANTITY, col::s::YTD, col::s::ORDER_CNT],
                    )
                    .delta(),
                    TableFootprint::rows(TABLES.order_line, (0..10).collect::<Vec<_>>())
                        .fresh(ks::ORDER),
                ],
            ))
            .step(StepFootprint::new(
                PAY_S1,
                "payment: warehouse/district ytd",
                vec![
                    TableFootprint::columns(TABLES.warehouse, [col::w::YTD]).delta(),
                    TableFootprint::columns(TABLES.district, [col::d::YTD]).delta(),
                ],
            ))
            .step(StepFootprint::new(
                PAY_S2,
                "payment: customer + history",
                // The hand footprint also lists `c_data` (the TPC-C spec
                // rewrites it for bad credit); our implementation only ever
                // appends fixed-at-execution deltas to the numeric columns,
                // so the inferred footprint can drop it and declare the rest
                // a delta.
                vec![
                    TableFootprint::columns(
                        TABLES.customer,
                        [col::c::BALANCE, col::c::YTD_PAYMENT, col::c::PAYMENT_CNT],
                    )
                    .delta(),
                    TableFootprint::rows(TABLES.history, (0..6).collect::<Vec<_>>()).fresh(ks::TXN),
                ],
            ))
            .step(StepFootprint::new(OST, "order-status (read-only)", vec![]))
            .step(StepFootprint::new(
                DLV_S1,
                "delivery: claim oldest new-order",
                // The claim deletes *some district's oldest* NEW-ORDER row —
                // which one depends on the live backlog, so no key region
                // confines it. This is exactly the hand table's temporal
                // argument ("claims are atomic, hence distinct") that
                // footprints cannot express.
                vec![TableFootprint::rows(TABLES.new_order, [])],
            ))
            .step(StepFootprint::new(
                DLV_S2,
                "delivery: apply to order/lines/customer",
                vec![
                    TableFootprint::columns(TABLES.order, [col::o::CARRIER_ID]).own(ks::CLAIM),
                    TableFootprint::columns(TABLES.order_line, [col::ol::DELIVERY_D])
                        .own(ks::CLAIM),
                    TableFootprint::columns(
                        TABLES.customer,
                        [col::c::BALANCE, col::c::DELIVERY_CNT],
                    )
                    .delta(),
                ],
            ))
            .step(StepFootprint::new(STK, "stock-level (read-only)", vec![]))
            .step(StepFootprint::new(
                NO_CS,
                "new-order compensation",
                vec![
                    TableFootprint::rows(TABLES.order, []).own(ks::ORDER),
                    TableFootprint::rows(TABLES.new_order, []).own(ks::ORDER),
                    TableFootprint::rows(TABLES.order_line, []).own(ks::ORDER),
                    TableFootprint::columns(
                        TABLES.stock,
                        [col::s::QUANTITY, col::s::YTD, col::s::ORDER_CNT],
                    )
                    .delta(),
                ],
            ))
            .step(StepFootprint::new(
                PAY_CS,
                "payment compensation",
                vec![
                    TableFootprint::columns(TABLES.warehouse, [col::w::YTD]).delta(),
                    TableFootprint::columns(TABLES.district, [col::d::YTD]).delta(),
                    TableFootprint::columns(
                        TABLES.customer,
                        [col::c::BALANCE, col::c::YTD_PAYMENT, col::c::PAYMENT_CNT],
                    )
                    .delta(),
                    TableFootprint::rows(TABLES.history, []).own(ks::TXN),
                ],
            ))
            .step(StepFootprint::new(
                DLV_CS,
                "delivery compensation",
                vec![
                    TableFootprint::rows(TABLES.new_order, []).own(ks::CLAIM),
                    TableFootprint::columns(TABLES.order, [col::o::CARRIER_ID]).own(ks::CLAIM),
                    TableFootprint::columns(TABLES.order_line, [col::ol::DELIVERY_D])
                        .own(ks::CLAIM),
                    TableFootprint::columns(
                        TABLES.customer,
                        [col::c::BALANCE, col::c::DELIVERY_CNT],
                    )
                    .delta(),
                ],
            ))
            .require_committed_reads(OST)
            .build();
        InferredTpcc {
            registry: reg,
            tables,
            decisions,
        }
    }

    fn build_edited(edit: Option<TableEdit>) -> TpccSystem {
        use step::*;

        let mut reg = AssertionRegistry::new();
        let mut no_loop_reads = vec![
            TableFootprint::columns(TABLES.order, [col::o::OL_CNT]),
            TableFootprint::rows(TABLES.order_line, []),
        ];
        if edit == Some(TableEdit::WidenNoLoop) {
            // The widened invariant also cares about delivery stamps on this
            // order's lines.
            no_loop_reads.push(TableFootprint::columns(
                TABLES.order_line,
                [col::ol::DELIVERY_D],
            ));
        }
        let no_loop = reg.define(
            "no-loop: entered lines match loop progress for this order",
            no_loop_reads,
            None,
        );
        let pay_mid = reg.define(
            "pay-mid: w_ytd and d_ytd include this payment's amount",
            vec![
                TableFootprint::columns(TABLES.warehouse, [col::w::YTD]),
                TableFootprint::columns(TABLES.district, [col::d::YTD]),
            ],
            None,
        );
        let dlv_loop = reg.define(
            "dlv-loop: districts processed so far are fully delivered",
            vec![
                TableFootprint::columns(TABLES.order, [col::o::CARRIER_ID]),
                TableFootprint::columns(TABLES.order_line, [col::ol::DELIVERY_D]),
                TableFootprint::rows(TABLES.new_order, []),
                TableFootprint::columns(TABLES.customer, [col::c::BALANCE]),
            ],
            None,
        );
        let dlv_dirty = reg.define_guard("dlv-dirty: uncommitted delivery writes");
        // Extra templates always define *after* the base four, so the ids a
        // running policy pinned keep meaning the same thing across epochs.
        let audit = if edit == Some(TableEdit::AddAudit) {
            Some(reg.define(
                "audit: open new-order backlog matches order headers",
                vec![
                    TableFootprint::rows(TABLES.new_order, []),
                    TableFootprint::rows(TABLES.order, []),
                ],
                None,
            ))
        } else {
            None
        };

        let (mut tables, decisions) = Self::footprinted_analysis(&reg)
            // ----- semantic declarations (each with its §5.1-style proof
            // ----- sketch) -------------------------------------------------
            // New-order instances interleave arbitrarily (§4).
            .declare_safe(NO_S1, no_loop, "order ids are unique: another header insert cannot change this order's line count")
            .declare_safe(NO_S2, no_loop, "lines are keyed by own order id; stock columns are outside the assertion")
            .declare_safe(NO_CS, no_loop, "compensation removes only its own order's rows")
            // Delivery's invariant survives the rest of the mix.
            .declare_safe(NO_S1, dlv_loop, "a brand-new NEW-ORDER row belongs to an unprocessed order")
            .declare_safe(NO_S2, dlv_loop, "new lines belong to orders delivery has not claimed (claim deletes the NEW-ORDER row first)")
            .declare_safe(PAY_S2, dlv_loop, "balance updates commute with delivery's credit")
            .declare_safe(PAY_CS, dlv_loop, "compensation subtracts its own amount; balance deltas commute with delivery's credit")
            .declare_safe(DLV_S1, dlv_loop, "concurrent deliveries claim distinct orders (claim is atomic)")
            .declare_safe(DLV_S2, dlv_loop, "applies to own claimed orders only")
            .declare_safe(DLV_CS, dlv_loop, "compensation restores only its own claimed orders")
            .declare_safe(NO_CS, dlv_loop, "compensated orders were never claimable (their NEW-ORDER row was DIRTY-pinned)")
            // Payment's interstep assertion is monotone in both YTD columns.
            .declare_safe(PAY_S1, pay_mid, "ytd additions are monotone: they cannot remove this payment's contribution")
            .declare_safe(PAY_CS, pay_mid, "compensation subtracts only its own contribution")
            .declare_safe(DLV_S2, pay_mid, "delivery does not touch ytd columns")
            // DIRTY (uncommitted-data) declarations: which steps may write
            // over another decomposed transaction's exposed state.
            .declare_safe(NO_S1, DIRTY, "d_next_o_id increments commute and are never compensated; header inserts create fresh keys")
            .declare_safe(NO_S2, DIRTY, "stock decrements commute (compensation restores by increment); line inserts create fresh keys")
            .declare_safe(PAY_S1, DIRTY, "ytd additions commute (compensation subtracts)")
            .declare_safe(PAY_S2, DIRTY, "balance additions commute; history keys are fresh")
            .declare_safe(DLV_S2, DIRTY, "applies only to rows of orders it atomically claimed (committed, since DLV_S1 blocks on DIRTY)")
            .declare_safe(NO_CS, DIRTY, "restock increments commute; deletes touch own keys")
            .declare_safe(PAY_CS, DIRTY, "ytd/balance subtractions commute; deletes own history row")
            .declare_safe(DLV_CS, DIRTY, "restores only its own claimed orders")
            // Delivery's own guard: concurrent deliveries claim *distinct*
            // orders (the claim step is atomic), so pages pinned by another
            // delivery's uncommitted claim are safe for the whole mix; if a
            // delivery compensates, it restores only its own orders.
            .declare_safe(NO_S1, dlv_dirty, "new headers create fresh keys on any page")
            .declare_safe(NO_S2, dlv_dirty, "new lines belong to unclaimed orders")
            .declare_safe(PAY_S1, dlv_dirty, "ytd columns are disjoint from delivery writes")
            .declare_safe(PAY_S2, dlv_dirty, "balance additions commute with delivery's credit")
            .declare_safe(DLV_S1, dlv_dirty, "each claim atomically takes a distinct oldest order")
            .declare_safe(DLV_S2, dlv_dirty, "applies only to own claimed orders")
            .declare_safe(NO_CS, dlv_dirty, "compensated orders were never claimable")
            .declare_safe(PAY_CS, dlv_dirty, "subtracts own amounts only")
            .declare_safe(DLV_CS, dlv_dirty, "restores own claimed orders only")
            // DLV_S1 deliberately NOT declared safe against DIRTY: delivery
            // must not claim a half-entered order.
            //
            // Order-status reports committed state to the customer (§3.3's
            // committed-reads requirement); stock-level is allowed dirty
            // reads (the spec permits read-committed for it).
            .require_committed_reads(OST)
            .build();
        // Guard templates block committed-readers via read interference; the
        // write matrix already handles everything else.
        let _ = &mut tables;

        // ---- the two-level analysis (§3.2 comparison) ---------------------
        // Re-run with the same footprints but only the declarations whose
        // justification does not mention item identity: commutativity and
        // monotonicity arguments survive; "own keys / own order / distinct
        // claims" arguments do not.
        let (two_level_tables, _) = Self::footprinted_analysis(&reg)
            .declare_safe(
                PAY_S1,
                pay_mid,
                "ytd additions are monotone (global argument)",
            )
            .declare_safe(
                PAY_CS,
                pay_mid,
                "subtraction of own contribution commutes (global argument)",
            )
            .declare_safe(
                DLV_S2,
                pay_mid,
                "delivery never touches ytd columns (footprint argument)",
            )
            .declare_safe(NO_S1, DIRTY, "counter increments commute (global argument)")
            .declare_safe(NO_S2, DIRTY, "stock decrements commute (global argument)")
            .declare_safe(PAY_S1, DIRTY, "ytd additions commute (global argument)")
            .declare_safe(PAY_S2, DIRTY, "balance additions commute (global argument)")
            .declare_safe(NO_CS, DIRTY, "restock increments commute (global argument)")
            .declare_safe(PAY_CS, DIRTY, "subtractions commute (global argument)")
            .require_committed_reads(OST)
            .build();

        let registry = Arc::new(reg);
        let acc = Arc::new(Acc::new(
            Arc::clone(&registry),
            vec![
                TxnSpec {
                    txn_type: ty::NEW_ORDER,
                    name: "new-order".into(),
                    steps: vec![
                        StepSpec {
                            step_type: NO_S1,
                            active: vec![no_loop],
                        },
                        StepSpec {
                            step_type: NO_S2,
                            active: vec![no_loop],
                        },
                    ],
                    overflow: Some(1),
                    comp_step: Some(NO_CS),
                    guard: DIRTY,
                    version_safe: false,
                },
                TxnSpec {
                    txn_type: ty::PAYMENT,
                    name: "payment".into(),
                    steps: vec![
                        StepSpec {
                            step_type: PAY_S1,
                            active: vec![pay_mid],
                        },
                        StepSpec {
                            step_type: PAY_S2,
                            active: vec![pay_mid],
                        },
                    ],
                    overflow: None,
                    comp_step: Some(PAY_CS),
                    guard: DIRTY,
                    version_safe: false,
                },
                TxnSpec {
                    txn_type: ty::ORDER_STATUS,
                    name: "order-status".into(),
                    steps: vec![StepSpec {
                        step_type: OST,
                        active: vec![],
                    }],
                    overflow: None,
                    comp_step: None,
                    guard: DIRTY,
                    // Read-only: OST writes nothing, so its reads may be
                    // served from committed row versions. Its §3.3
                    // committed-reads requirement is met by the visibility
                    // rule (chains serve only committed images).
                    version_safe: true,
                },
                TxnSpec {
                    txn_type: ty::DELIVERY,
                    name: "delivery".into(),
                    steps: vec![
                        StepSpec {
                            step_type: DLV_S1,
                            active: vec![dlv_loop],
                        },
                        StepSpec {
                            step_type: DLV_S2,
                            active: vec![dlv_loop],
                        },
                    ],
                    overflow: Some(0),
                    comp_step: Some(DLV_CS),
                    guard: dlv_dirty,
                    version_safe: false,
                },
                TxnSpec {
                    txn_type: ty::STOCK_LEVEL,
                    name: "stock-level".into(),
                    steps: vec![StepSpec {
                        step_type: STK,
                        active: vec![],
                    }],
                    overflow: None,
                    comp_step: None,
                    guard: DIRTY,
                    // Read-only, like order-status.
                    version_safe: true,
                },
            ],
        ));

        TpccSystem {
            registry,
            tables: Arc::new(tables),
            two_level_tables: Arc::new(two_level_tables),
            acc,
            templates: Templates {
                no_loop,
                pay_mid,
                dlv_loop,
                dlv_dirty,
                audit,
            },
            decisions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_lockmgr::InterferenceOracle;

    #[test]
    fn section_5_1_district_conflict_is_resolved() {
        let sys = TpccSystem::build();
        // New-order's counter bump does not invalidate payment's ytd
        // assertion, and vice versa — the same-district-row interleaving the
        // paper highlights.
        assert!(!sys
            .tables
            .write_interferes(step::NO_S1, sys.templates.pay_mid));
        assert!(!sys
            .tables
            .write_interferes(step::PAY_S1, sys.templates.no_loop));
    }

    #[test]
    fn delivery_cannot_claim_inflight_orders() {
        let sys = TpccSystem::build();
        assert!(sys.tables.write_interferes(step::DLV_S1, DIRTY));
        // …but applying to claimed (committed) orders is declared safe.
        assert!(!sys.tables.write_interferes(step::DLV_S2, DIRTY));
    }

    #[test]
    fn order_status_requires_committed_reads() {
        let sys = TpccSystem::build();
        assert!(sys.tables.read_interferes(step::OST, DIRTY));
        assert!(!sys.tables.read_interferes(step::STK, DIRTY));
        assert!(!sys.tables.read_interferes(step::NO_S2, DIRTY));
    }

    #[test]
    fn new_orders_interleave_freely() {
        let sys = TpccSystem::build();
        for s in [step::NO_S1, step::NO_S2] {
            assert!(!sys.tables.write_interferes(s, sys.templates.no_loop));
            assert!(!sys.tables.write_interferes(s, DIRTY));
        }
    }

    #[test]
    fn footprint_overlaps_still_conservative_where_undeclared() {
        let sys = TpccSystem::build();
        // A legacy step invalidates everything.
        assert!(sys
            .tables
            .write_interferes(acc_common::ids::LEGACY_STEP, sys.templates.no_loop));
        // NO_S2 invalidates delivery's line-column assertion? Declared safe.
        assert!(!sys
            .tables
            .write_interferes(step::NO_S2, sys.templates.dlv_loop));
        // But NO_S1 *does* interfere with no_loop's order-line cardinality…
        // no: declared safe. The compensating DLV_CS against no_loop was
        // never declared: footprints decide (order_line columns vs
        // cardinality: disjoint).
        assert!(!sys
            .tables
            .write_interferes(step::DLV_CS, sys.templates.no_loop));
    }

    #[test]
    fn delivery_spec_cycles_steps() {
        let sys = TpccSystem::build();
        use acc_common::TxnId;
        use acc_txn::{ConcurrencyControl, TxnMeta};
        let meta = |i| TxnMeta {
            id: TxnId(1),
            txn_type: ty::DELIVERY,
            step_index: i,
            compensating: false,
        };
        assert_eq!(sys.acc.step_type(&meta(0)), step::DLV_S1);
        assert_eq!(sys.acc.step_type(&meta(1)), step::DLV_S2);
        assert_eq!(sys.acc.step_type(&meta(2)), step::DLV_S1);
        assert_eq!(sys.acc.step_type(&meta(3)), step::DLV_S2);
        assert_eq!(sys.acc.step_type(&meta(18)), step::DLV_S1);
        assert_eq!(sys.acc.step_type(&meta(19)), step::DLV_S2);
    }

    #[test]
    fn decisions_are_recorded_for_every_pair() {
        let sys = TpccSystem::build();
        // 11 step types × 5 templates (DIRTY, three interstep assertions,
        // the delivery guard).
        assert_eq!(sys.decisions.len(), 11 * 5);
        assert!(sys
            .decisions
            .iter()
            .any(|d| d.why.contains("declared safe")));
        let dump = sys.tables.dump();
        assert!(dump.lines().count() >= 11, "{dump}");
    }

    #[test]
    fn widen_no_loop_flips_delivery_pairs() {
        let base = TpccSystem::build();
        let wide = TpccSystem::reanalyze(TableEdit::WidenNoLoop);
        // Base ids survive the edit unchanged.
        assert_eq!(wide.templates.no_loop, base.templates.no_loop);
        assert_eq!(wide.templates.dlv_dirty, base.templates.dlv_dirty);
        assert_eq!(wide.templates.audit, None);
        // Delivery's apply step and its compensation now write a column the
        // widened no_loop reads — and neither pair was ever declared safe.
        for (sys, expect) in [(&base, false), (&wide, true)] {
            assert_eq!(
                sys.tables
                    .write_interferes(step::DLV_S2, sys.templates.no_loop),
                expect
            );
            assert_eq!(
                sys.tables
                    .write_interferes(step::DLV_CS, sys.templates.no_loop),
                expect
            );
        }
        // Declarations still win over the widened overlap: new-order's own
        // line inserts stay safe against its own assertion.
        assert!(!wide
            .tables
            .write_interferes(step::NO_S2, wide.templates.no_loop));
        // And the §5.1 resolution is untouched by the edit.
        assert!(!wide
            .tables
            .write_interferes(step::PAY_S1, wide.templates.no_loop));
    }

    #[test]
    fn add_audit_makes_backlog_writers_interfere() {
        let base = TpccSystem::build();
        let sys = TpccSystem::reanalyze(TableEdit::AddAudit);
        let audit = sys.templates.audit.expect("audit template defined");
        // Defined last: the base ids are stable.
        assert_eq!(sys.templates.no_loop, base.templates.no_loop);
        assert_eq!(sys.templates.dlv_dirty, base.templates.dlv_dirty);
        assert_eq!(sys.decisions.len(), 11 * 6);
        // Writers into ORDER/NEW-ORDER row sets were never declared safe
        // against the new template, so the footprint overlap decides.
        for s in [step::NO_S1, step::DLV_S1, step::NO_CS, step::DLV_CS] {
            assert!(sys.tables.write_interferes(s, audit), "step {s:?}");
        }
        // Disjoint writers stay safe against it.
        for s in [step::PAY_S1, step::PAY_S2, step::NO_S2, step::DLV_S2] {
            assert!(!sys.tables.write_interferes(s, audit), "step {s:?}");
        }
        // Pre-existing pairs are unchanged by the addition.
        assert!(!sys
            .tables
            .write_interferes(step::NO_S1, sys.templates.pay_mid));
        assert!(sys.tables.write_interferes(step::DLV_S1, DIRTY));
    }

    #[test]
    fn remove_audit_rebuilds_base_and_stays_conservative_for_departed_id() {
        let with = TpccSystem::reanalyze(TableEdit::AddAudit);
        let without = TpccSystem::reanalyze(TableEdit::RemoveAudit);
        let base = TpccSystem::build();
        // Removal really is the base matrix again.
        assert_eq!(without.tables.dump(), base.tables.dump());
        // A straggler still holding the departed audit id gets conservative
        // *write* answers, never a panic (the id is off the end of the
        // matrix row). Reads only ever conflict with guard templates, so the
        // departed non-guard id stays read-safe — reads cannot falsify it.
        let departed = with.templates.audit.unwrap();
        assert!(without.tables.write_interferes(step::PAY_S1, departed));
        assert!(without.tables.write_interferes(step::NO_S2, departed));
        assert!(!without.tables.read_interferes(step::STK, departed));
    }
}
