//! The five TPC-C transactions as step-decomposed [`TxnProgram`]s.
//!
//! Each program runs unchanged under strict 2PL (step boundaries ignored,
//! physical rollback) and under the ACC (locks released per step,
//! compensating steps). Program-local state is written idempotently per step
//! because a deadlock-victim step is re-executed after its effects are
//! undone.

use crate::input::{
    CustomerSelector, DeliveryInput, NewOrderInput, OrderStatusInput, PaymentInput, StockLevelInput,
};
use crate::schema::{col, TABLES};
use acc_common::{Decimal, Error, Result, TxnTypeId, Value};
use acc_storage::{Key, Row};
use acc_txn::{StepCtx, StepOutcome, TxnProgram};
use std::collections::HashSet;

use crate::decompose::ty;

/// Resolve a customer selector to a concrete c_id (spec §2.5.2.2: by last
/// name, take the row at position ⌈n/2⌉ ordered by first name).
fn resolve_customer(
    ctx: &mut StepCtx<'_>,
    w_id: i64,
    d_id: i64,
    sel: &CustomerSelector,
) -> Result<i64> {
    match sel {
        CustomerSelector::ById(c) => Ok(*c),
        CustomerSelector::ByLastName(last) => {
            let mut rows = ctx.lookup_secondary(
                TABLES.customer,
                0,
                &Key(vec![
                    Value::Int(w_id),
                    Value::Int(d_id),
                    Value::str(last.clone()),
                ]),
            )?;
            if rows.is_empty() {
                return Err(Error::NotFound(format!(
                    "customer with last name {last} in district {d_id}"
                )));
            }
            rows.sort_by(|a, b| a.1.str(col::c::FIRST).cmp(b.1.str(col::c::FIRST)));
            Ok(rows[rows.len() / 2].1.int(col::c::ID))
        }
    }
}

// ---------------------------------------------------------------------------
// New-order
// ---------------------------------------------------------------------------

/// The new-order transaction (spec §2.4), decomposed as header + one step
/// per order line (paper §4/§5.1).
pub struct NewOrder {
    /// Input parameters.
    pub input: NewOrderInput,
    /// The order id assigned in step 0.
    pub o_id: Option<i64>,
    /// Per-line amounts (idempotently overwritten).
    pub amounts: Vec<Decimal>,
    /// Total after tax and discount, set on the final step.
    pub total: Option<Decimal>,
    w_tax: Decimal,
    d_tax: Decimal,
    c_discount: Decimal,
}

impl NewOrder {
    /// Rebuild a program skeleton from a recovered work area, sufficient to
    /// run the compensating step (which reads everything else it needs from
    /// the durable order lines themselves).
    pub fn recovered(w_id: i64, d_id: i64, o_id: i64) -> Self {
        let mut p = NewOrder::new(NewOrderInput {
            w_id,
            d_id,
            c_id: 1,
            lines: Vec::new(),
            rollback: false,
        });
        p.o_id = Some(o_id);
        p
    }

    /// Wrap an input.
    pub fn new(input: NewOrderInput) -> Self {
        let n = input.lines.len();
        NewOrder {
            input,
            o_id: None,
            amounts: vec![Decimal::ZERO; n],
            total: None,
            w_tax: Decimal::ZERO,
            d_tax: Decimal::ZERO,
            c_discount: Decimal::ZERO,
        }
    }
}

impl TxnProgram for NewOrder {
    fn txn_type(&self) -> TxnTypeId {
        ty::NEW_ORDER
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let (w, d) = (self.input.w_id, self.input.d_id);
        if i == 0 {
            let wrow = ctx.read_existing(TABLES.warehouse, &Key::ints(&[w]))?;
            self.w_tax = wrow.decimal(col::w::TAX);
            let crow = ctx.read_existing(TABLES.customer, &Key::ints(&[w, d, self.input.c_id]))?;
            self.c_discount = crow.decimal(col::c::DISCOUNT);

            let drow = ctx
                .read_for_update(TABLES.district, &Key::ints(&[w, d]))?
                .ok_or_else(|| Error::NotFound(format!("district ({w},{d})")))?;
            self.d_tax = drow.decimal(col::d::TAX);
            let o_id = drow.int(col::d::NEXT_O_ID);
            ctx.update_key(TABLES.district, &Key::ints(&[w, d]), |r| {
                r.set(col::d::NEXT_O_ID, Value::Int(o_id + 1));
            })?;
            self.o_id = Some(o_id);

            ctx.insert(
                TABLES.order,
                Row(vec![
                    Value::Int(w),
                    Value::Int(d),
                    Value::Int(o_id),
                    Value::Int(self.input.c_id),
                    Value::Int(0),
                    Value::Null,
                    Value::Int(self.input.lines.len() as i64),
                    Value::Bool(true),
                ]),
            )?;
            ctx.insert(
                TABLES.new_order,
                Row(vec![Value::Int(w), Value::Int(d), Value::Int(o_id)]),
            )?;
            return Ok(StepOutcome::Continue);
        }

        let idx = (i - 1) as usize;
        let last = idx + 1 == self.input.lines.len();
        if last && self.input.rollback {
            // Spec §2.4.1.4: 1 % of new-orders hit an unused item number on
            // their final line and must roll back.
            return Ok(StepOutcome::Abort);
        }
        let line = self.input.lines[idx];
        let o_id = self.o_id.expect("step 0 assigned the order id");

        let item = match ctx.read(TABLES.item, &Key::ints(&[line.i_id]))? {
            Some(r) => r,
            None => return Ok(StepOutcome::Abort),
        };
        let price = item.decimal(col::i::PRICE);

        let stock = ctx
            .read_for_update(TABLES.stock, &Key::ints(&[line.supply_w_id, line.i_id]))?
            .ok_or_else(|| Error::NotFound(format!("stock item {}", line.i_id)))?;
        let qty = stock.int(col::s::QUANTITY);
        let new_qty = if qty - line.qty >= 10 {
            qty - line.qty
        } else {
            qty - line.qty + 91
        };
        ctx.update_key(
            TABLES.stock,
            &Key::ints(&[line.supply_w_id, line.i_id]),
            |r| {
                r.set(col::s::QUANTITY, Value::Int(new_qty));
                let ytd = r.int(col::s::YTD);
                r.set(col::s::YTD, Value::Int(ytd + line.qty));
                let cnt = r.int(col::s::ORDER_CNT);
                r.set(col::s::ORDER_CNT, Value::Int(cnt + 1));
            },
        )?;

        let amount = price.mul_int(line.qty);
        self.amounts[idx] = amount;
        ctx.insert(
            TABLES.order_line,
            Row(vec![
                Value::Int(w),
                Value::Int(d),
                Value::Int(o_id),
                Value::Int(i as i64),
                Value::Int(line.i_id),
                Value::Int(line.supply_w_id),
                Value::Null,
                Value::Int(line.qty),
                Value::Decimal(amount),
                Value::str("dist-info"),
            ]),
        )?;

        if last {
            let sum: Decimal = self.amounts.iter().copied().sum();
            let taxed = sum * (Decimal::from_int(1) + self.w_tax + self.d_tax);
            self.total = Some(taxed * (Decimal::from_int(1) - self.c_discount));
            Ok(StepOutcome::Done)
        } else {
            Ok(StepOutcome::Continue)
        }
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        let (w, d) = (self.input.w_id, self.input.d_id);
        let o_id = self.o_id.expect("compensating implies step 0 completed");
        // Lines entered by completed steps 1..steps_completed carry numbers
        // 1..steps_completed. Return goods to stock, then remove the order.
        for line_no in (1..steps_completed as i64).rev() {
            let Some(line) =
                ctx.read_for_update(TABLES.order_line, &Key::ints(&[w, d, o_id, line_no]))?
            else {
                continue;
            };
            let i_id = line.int(col::ol::I_ID);
            let qty = line.int(col::ol::QUANTITY);
            ctx.update_key(TABLES.stock, &Key::ints(&[w, i_id]), |r| {
                let q = r.int(col::s::QUANTITY);
                r.set(col::s::QUANTITY, Value::Int(q + qty));
                let ytd = r.int(col::s::YTD);
                r.set(col::s::YTD, Value::Int(ytd - qty));
                let cnt = r.int(col::s::ORDER_CNT);
                r.set(col::s::ORDER_CNT, Value::Int(cnt - 1));
            })?;
            ctx.delete_key(TABLES.order_line, &Key::ints(&[w, d, o_id, line_no]))?;
        }
        ctx.delete_key(TABLES.new_order, &Key::ints(&[w, d, o_id]))?;
        ctx.delete_key(TABLES.order, &Key::ints(&[w, d, o_id]))?;
        // The d_next_o_id increment is NOT undone: order numbers are
        // consumed; the §4 result predicate allows the unsuccessful branch.
        Ok(())
    }

    fn work_area(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.input.w_id.to_le_bytes());
        out.extend_from_slice(&self.input.d_id.to_le_bytes());
        out.extend_from_slice(&self.o_id.unwrap_or(-1).to_le_bytes());
        out
    }
}

// ---------------------------------------------------------------------------
// Payment
// ---------------------------------------------------------------------------

/// The payment transaction (spec §2.5): warehouse/district YTD, then
/// customer + history.
pub struct Payment {
    /// Input parameters.
    pub input: PaymentInput,
    /// The resolved customer id (after step 1).
    pub c_id: Option<i64>,
}

impl Payment {
    /// Wrap an input.
    pub fn new(input: PaymentInput) -> Self {
        Payment { input, c_id: None }
    }

    /// Rebuild from a recovered work area (enough for compensation: the
    /// warehouse/district pair and the amount).
    pub fn recovered(w_id: i64, d_id: i64, amount: Decimal) -> Self {
        Payment::new(PaymentInput {
            w_id,
            d_id,
            c_d_id: d_id,
            customer: CustomerSelector::ById(1),
            amount,
        })
    }
}

impl TxnProgram for Payment {
    fn txn_type(&self) -> TxnTypeId {
        ty::PAYMENT
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let (w, d) = (self.input.w_id, self.input.d_id);
        let amount = self.input.amount;
        if i == 0 {
            ctx.update_key(TABLES.warehouse, &Key::ints(&[w]), |r| {
                let ytd = r.decimal(col::w::YTD);
                r.set(col::w::YTD, Value::Decimal(ytd + amount));
            })?;
            ctx.update_key(TABLES.district, &Key::ints(&[w, d]), |r| {
                let ytd = r.decimal(col::d::YTD);
                r.set(col::d::YTD, Value::Decimal(ytd + amount));
            })?;
            return Ok(StepOutcome::Continue);
        }

        let c_id = resolve_customer(ctx, w, self.input.c_d_id, &self.input.customer)?;
        self.c_id = Some(c_id);
        ctx.update_key(
            TABLES.customer,
            &Key::ints(&[w, self.input.c_d_id, c_id]),
            |r| {
                let bal = r.decimal(col::c::BALANCE);
                r.set(col::c::BALANCE, Value::Decimal(bal - amount));
                let ytd = r.decimal(col::c::YTD_PAYMENT);
                r.set(col::c::YTD_PAYMENT, Value::Decimal(ytd + amount));
                let cnt = r.int(col::c::PAYMENT_CNT);
                r.set(col::c::PAYMENT_CNT, Value::Int(cnt + 1));
            },
        )?;
        // History primary key: the transaction id is unique per attempt.
        ctx.insert(
            TABLES.history,
            Row(vec![
                Value::Int(ctx.txn_id().raw() as i64),
                Value::Int(w),
                Value::Int(self.input.c_d_id),
                Value::Int(c_id),
                Value::Int(0),
                Value::Decimal(amount),
            ]),
        )?;
        Ok(StepOutcome::Done)
    }

    fn work_area(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.input.w_id.to_le_bytes());
        out.extend_from_slice(&self.input.d_id.to_le_bytes());
        out.extend_from_slice(&self.input.amount.units().to_le_bytes());
        out
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        let (w, d) = (self.input.w_id, self.input.d_id);
        let amount = self.input.amount;
        if steps_completed >= 1 {
            ctx.update_key(TABLES.warehouse, &Key::ints(&[w]), |r| {
                let ytd = r.decimal(col::w::YTD);
                r.set(col::w::YTD, Value::Decimal(ytd - amount));
            })?;
            ctx.update_key(TABLES.district, &Key::ints(&[w, d]), |r| {
                let ytd = r.decimal(col::d::YTD);
                r.set(col::d::YTD, Value::Decimal(ytd - amount));
            })?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Order-status
// ---------------------------------------------------------------------------

/// The order-status transaction (spec §2.6): read-only, single step,
/// committed reads required.
pub struct OrderStatus {
    /// Input parameters.
    pub input: OrderStatusInput,
    /// The customer's balance at read time.
    pub balance: Option<Decimal>,
    /// The last order's id and line count, if the customer has any orders.
    pub last_order: Option<(i64, usize)>,
}

impl OrderStatus {
    /// Wrap an input.
    pub fn new(input: OrderStatusInput) -> Self {
        OrderStatus {
            input,
            balance: None,
            last_order: None,
        }
    }
}

impl TxnProgram for OrderStatus {
    fn txn_type(&self) -> TxnTypeId {
        ty::ORDER_STATUS
    }

    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let (w, d) = (self.input.w_id, self.input.d_id);
        let c_id = resolve_customer(ctx, w, d, &self.input.customer)?;
        let crow = ctx.read_existing(TABLES.customer, &Key::ints(&[w, d, c_id]))?;
        self.balance = Some(crow.decimal(col::c::BALANCE));

        let orders = ctx.lookup_secondary(TABLES.order, 0, &Key::ints(&[w, d, c_id]))?;
        let last = orders.iter().map(|(_, r)| r.int(col::o::ID)).max();
        if let Some(o_id) = last {
            let lines = ctx.scan_prefix(TABLES.order_line, &Key::ints(&[w, d, o_id]))?;
            self.last_order = Some((o_id, lines.len()));
        }
        Ok(StepOutcome::Done)
    }
}

// ---------------------------------------------------------------------------
// Delivery
// ---------------------------------------------------------------------------

/// Per-district bookkeeping for delivery.
#[derive(Debug, Clone, Default)]
struct Claim {
    o_id: i64,
    c_id: i64,
    ol_cnt: i64,
    amount: Decimal,
    applied: bool,
}

/// The delivery transaction (spec §2.7): the long-running transaction. Two
/// steps per district: claim the oldest undelivered order, then apply.
pub struct Delivery {
    /// Input parameters.
    pub input: DeliveryInput,
    /// Number of districts to process.
    pub districts: i64,
    /// Orders delivered (district, order) — for reporting.
    pub delivered: Vec<(i64, i64)>,
    claims: Vec<Option<Claim>>,
}

impl Delivery {
    /// Wrap an input for a warehouse with `districts` districts.
    pub fn new(input: DeliveryInput, districts: i64) -> Self {
        Delivery {
            input,
            districts,
            delivered: Vec::new(),
            claims: vec![None; districts as usize],
        }
    }

    /// Rebuild from a recovered work area. Returns `None` for a malformed
    /// area: every field a corrupt log could hand us is validated before it
    /// sizes an allocation or indexes a slice.
    pub fn recovered(work_area: &[u8]) -> Option<Self> {
        if !work_area.len().is_multiple_of(8) {
            return None;
        }
        let mut it = work_area
            .chunks_exact(8)
            .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        let w_id = it.next()?;
        let districts = it.next()?;
        if w_id < 1 || !(1..=100).contains(&districts) {
            return None;
        }
        let mut p = Delivery::new(
            DeliveryInput {
                w_id,
                carrier_id: 1,
            },
            districts,
        );
        while let Some(idx) = it.next() {
            let o_id = it.next()?;
            let c_id = it.next()?;
            let ol_cnt = it.next()?;
            let amount = it.next()?;
            let applied = it.next()?;
            if !(0..districts).contains(&idx) || !(0..=1).contains(&applied) {
                return None;
            }
            p.claims[idx as usize] = Some(Claim {
                o_id,
                c_id,
                ol_cnt,
                amount: Decimal::from_units(amount),
                applied: applied != 0,
            });
        }
        Some(p)
    }
}

impl TxnProgram for Delivery {
    fn txn_type(&self) -> TxnTypeId {
        ty::DELIVERY
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let w = self.input.w_id;
        let d = (i as i64) / 2 + 1;
        let idx = (d - 1) as usize;
        let is_claim = i.is_multiple_of(2);
        let last = d == self.districts && !is_claim;

        if is_claim {
            // DLV_S1: find and delete the oldest NEW-ORDER row. Keys are
            // (w, d, o_id), so the oldest undelivered order is the first
            // entry in the district's prefix — an early-terminating tree
            // descent, not a full-prefix materialization.
            self.claims[idx] = None;
            let oldest = ctx
                .first_by_prefix(TABLES.new_order, &Key::ints(&[w, d]))?
                .map(|(_, r)| r.int(col::no::O_ID));
            if let Some(o_id) = oldest {
                ctx.delete_key(TABLES.new_order, &Key::ints(&[w, d, o_id]))?;
                self.claims[idx] = Some(Claim {
                    o_id,
                    ..Claim::default()
                });
            }
            return Ok(StepOutcome::Continue);
        }

        // DLV_S2: apply to the claimed order.
        if let Some(claim) = self.claims[idx].clone() {
            let o_id = claim.o_id;
            let order = ctx
                .read_for_update(TABLES.order, &Key::ints(&[w, d, o_id]))?
                .ok_or_else(|| Error::NotFound(format!("claimed order ({w},{d},{o_id})")))?;
            let c_id = order.int(col::o::C_ID);
            let ol_cnt = order.int(col::o::OL_CNT);
            ctx.update_key(TABLES.order, &Key::ints(&[w, d, o_id]), |r| {
                r.set(col::o::CARRIER_ID, Value::Int(self.input.carrier_id));
            })?;
            let mut amount = Decimal::ZERO;
            for l in 1..=ol_cnt {
                let line = ctx
                    .read_for_update(TABLES.order_line, &Key::ints(&[w, d, o_id, l]))?
                    .ok_or_else(|| Error::NotFound(format!("line {l} of order {o_id}")))?;
                amount += line.decimal(col::ol::AMOUNT);
                ctx.update_key(TABLES.order_line, &Key::ints(&[w, d, o_id, l]), |r| {
                    r.set(col::ol::DELIVERY_D, Value::Int(1));
                })?;
            }
            ctx.update_key(TABLES.customer, &Key::ints(&[w, d, c_id]), |r| {
                let bal = r.decimal(col::c::BALANCE);
                r.set(col::c::BALANCE, Value::Decimal(bal + amount));
                let cnt = r.int(col::c::DELIVERY_CNT);
                r.set(col::c::DELIVERY_CNT, Value::Int(cnt + 1));
            })?;
            self.claims[idx] = Some(Claim {
                o_id,
                c_id,
                ol_cnt,
                amount,
                applied: true,
            });
            self.delivered.push((d, o_id));
        }
        Ok(if last {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }

    fn work_area(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.input.w_id.to_le_bytes());
        out.extend_from_slice(&self.districts.to_le_bytes());
        for (idx, claim) in self.claims.iter().enumerate() {
            let Some(c) = claim else { continue };
            for v in [
                idx as i64,
                c.o_id,
                c.c_id,
                c.ol_cnt,
                c.amount.units(),
                i64::from(c.applied),
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        out
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        let w = self.input.w_id;
        // Completed steps 0..steps_completed cover districts in pairs; walk
        // the claims and reverse whatever was durably done.
        let full_pairs = (steps_completed / 2) as usize;
        let half_claim = steps_completed % 2 == 1;
        for idx in (0..self.claims.len()).rev() {
            let Some(claim) = self.claims[idx].clone() else {
                continue;
            };
            let d = idx as i64 + 1;
            let claim_done = idx < full_pairs || (half_claim && idx == full_pairs);
            let apply_done = claim.applied && idx < full_pairs;
            if apply_done {
                ctx.update_key(TABLES.customer, &Key::ints(&[w, d, claim.c_id]), |r| {
                    let bal = r.decimal(col::c::BALANCE);
                    r.set(col::c::BALANCE, Value::Decimal(bal - claim.amount));
                    let cnt = r.int(col::c::DELIVERY_CNT);
                    r.set(col::c::DELIVERY_CNT, Value::Int(cnt - 1));
                })?;
                for l in 1..=claim.ol_cnt {
                    ctx.update_key(TABLES.order_line, &Key::ints(&[w, d, claim.o_id, l]), |r| {
                        r.set(col::ol::DELIVERY_D, Value::Null);
                    })?;
                }
                ctx.update_key(TABLES.order, &Key::ints(&[w, d, claim.o_id]), |r| {
                    r.set(col::o::CARRIER_ID, Value::Null);
                })?;
            }
            if claim_done {
                // Put the claim back so another delivery can take it.
                ctx.insert(
                    TABLES.new_order,
                    Row(vec![Value::Int(w), Value::Int(d), Value::Int(claim.o_id)]),
                )?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Stock-level
// ---------------------------------------------------------------------------

/// The stock-level transaction (spec §2.8): read-only, single step,
/// read-committed allowed.
pub struct StockLevel {
    /// Input parameters.
    pub input: StockLevelInput,
    /// Number of recently ordered items below the threshold.
    pub low_stock: Option<usize>,
}

impl StockLevel {
    /// Wrap an input.
    pub fn new(input: StockLevelInput) -> Self {
        StockLevel {
            input,
            low_stock: None,
        }
    }
}

impl TxnProgram for StockLevel {
    fn txn_type(&self) -> TxnTypeId {
        ty::STOCK_LEVEL
    }

    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let (w, d) = (self.input.w_id, self.input.d_id);
        let drow = ctx.read_existing(TABLES.district, &Key::ints(&[w, d]))?;
        let next_o = drow.int(col::d::NEXT_O_ID);

        // Order-line keys are (w, d, o_id, number): the last 20 orders'
        // lines form one contiguous key range, so a single range descent
        // replaces the per-order prefix rescans.
        let lo = Key::ints(&[w, d, (next_o - 20).max(1)]);
        let hi = Key::ints(&[w, d, next_o]);
        let mut items: HashSet<i64> = HashSet::new();
        for (_, line) in ctx.scan_range(TABLES.order_line, &lo, &hi)? {
            items.insert(line.int(col::ol::I_ID));
        }
        let mut low = 0usize;
        for i_id in items {
            if let Some(stock) = ctx.read(TABLES.stock, &Key::ints(&[w, i_id]))? {
                if stock.int(col::s::QUANTITY) < self.input.threshold {
                    low += 1;
                }
            }
        }
        self.low_stock = Some(low);
        Ok(StepOutcome::Done)
    }
}

/// Construct the program for a generated input.
pub fn program_for(input: crate::input::TxnInput, districts: i64) -> Box<dyn TxnProgram + Send> {
    match input {
        crate::input::TxnInput::NewOrder(i) => Box::new(NewOrder::new(i)),
        crate::input::TxnInput::Payment(i) => Box::new(Payment::new(i)),
        crate::input::TxnInput::OrderStatus(i) => Box::new(OrderStatus::new(i)),
        crate::input::TxnInput::Delivery(i) => Box::new(Delivery::new(i, districts)),
        crate::input::TxnInput::StockLevel(i) => Box::new(StockLevel::new(i)),
    }
}
