//! The TPC-C schema (spec §1.3), sized by a [`Scale`].
//!
//! Column subsets: we keep every column the five transactions read or write
//! plus the keys; purely decorative fields (street addresses, zip codes) are
//! collapsed into single `data` columns so rows stay realistic in count
//! without bloating the tests.

use acc_common::TableId;
use acc_storage::{Catalog, ColumnType, TableSchema};

/// Table ids in catalog order.
#[derive(Debug, Clone, Copy)]
pub struct TableIds {
    /// WAREHOUSE.
    pub warehouse: TableId,
    /// DISTRICT — the hot table.
    pub district: TableId,
    /// CUSTOMER.
    pub customer: TableId,
    /// HISTORY.
    pub history: TableId,
    /// NEW-ORDER.
    pub new_order: TableId,
    /// ORDER.
    pub order: TableId,
    /// ORDER-LINE.
    pub order_line: TableId,
    /// ITEM (read-only).
    pub item: TableId,
    /// STOCK.
    pub stock: TableId,
}

/// Canonical table ids (the catalog is always built in this order).
pub const TABLES: TableIds = TableIds {
    warehouse: TableId(0),
    district: TableId(1),
    customer: TableId(2),
    history: TableId(3),
    new_order: TableId(4),
    order: TableId(5),
    order_line: TableId(6),
    item: TableId(7),
    stock: TableId(8),
};

/// Column positions, spelled out so program code reads like the spec.
pub mod col {
    /// WAREHOUSE columns.
    pub mod w {
        pub const ID: usize = 0;
        pub const NAME: usize = 1;
        pub const TAX: usize = 2;
        pub const YTD: usize = 3;
    }
    /// DISTRICT columns.
    pub mod d {
        pub const W_ID: usize = 0;
        pub const ID: usize = 1;
        pub const NAME: usize = 2;
        pub const TAX: usize = 3;
        pub const YTD: usize = 4;
        pub const NEXT_O_ID: usize = 5;
    }
    /// CUSTOMER columns.
    pub mod c {
        pub const W_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const ID: usize = 2;
        pub const FIRST: usize = 3;
        pub const LAST: usize = 4;
        pub const CREDIT: usize = 5;
        pub const DISCOUNT: usize = 6;
        pub const BALANCE: usize = 7;
        pub const YTD_PAYMENT: usize = 8;
        pub const PAYMENT_CNT: usize = 9;
        pub const DELIVERY_CNT: usize = 10;
        pub const DATA: usize = 11;
    }
    /// HISTORY columns.
    pub mod h {
        pub const ID: usize = 0;
        pub const C_W_ID: usize = 1;
        pub const C_D_ID: usize = 2;
        pub const C_ID: usize = 3;
        pub const DATE: usize = 4;
        pub const AMOUNT: usize = 5;
    }
    /// NEW-ORDER columns.
    pub mod no {
        pub const W_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const O_ID: usize = 2;
    }
    /// ORDER columns.
    pub mod o {
        pub const W_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const ID: usize = 2;
        pub const C_ID: usize = 3;
        pub const ENTRY_D: usize = 4;
        pub const CARRIER_ID: usize = 5;
        pub const OL_CNT: usize = 6;
        pub const ALL_LOCAL: usize = 7;
    }
    /// ORDER-LINE columns.
    pub mod ol {
        pub const W_ID: usize = 0;
        pub const D_ID: usize = 1;
        pub const O_ID: usize = 2;
        pub const NUMBER: usize = 3;
        pub const I_ID: usize = 4;
        pub const SUPPLY_W_ID: usize = 5;
        pub const DELIVERY_D: usize = 6;
        pub const QUANTITY: usize = 7;
        pub const AMOUNT: usize = 8;
        pub const DIST_INFO: usize = 9;
    }
    /// ITEM columns.
    pub mod i {
        pub const ID: usize = 0;
        pub const NAME: usize = 1;
        pub const PRICE: usize = 2;
        pub const DATA: usize = 3;
    }
    /// STOCK columns.
    pub mod s {
        pub const W_ID: usize = 0;
        pub const I_ID: usize = 1;
        pub const QUANTITY: usize = 2;
        pub const YTD: usize = 3;
        pub const ORDER_CNT: usize = 4;
        pub const REMOTE_CNT: usize = 5;
        pub const DIST_INFO: usize = 6;
    }
}

/// Database sizing. The spec's cardinalities (3000 customers/district,
/// 100 000 items) are one preset; tests use much smaller ones.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Warehouses (the paper's experiments use 1).
    pub warehouses: i64,
    /// Districts per warehouse (spec: 10).
    pub districts: i64,
    /// Customers per district (spec: 3000).
    pub customers_per_district: i64,
    /// Items = stock entries per warehouse (spec: 100 000).
    pub items: i64,
    /// Initially entered, undelivered orders per district. (Deviation from
    /// the spec's 3000 orders/district with 2100 delivered: we start with
    /// all-undelivered orders and zero balances so the consistency
    /// conditions are exactly checkable; documented in DESIGN.md.)
    pub initial_orders_per_district: i64,
}

impl Scale {
    /// Tiny scale for unit tests.
    pub fn test() -> Scale {
        Scale {
            warehouses: 1,
            districts: 3,
            customers_per_district: 12,
            items: 50,
            initial_orders_per_district: 4,
        }
    }

    /// The scale the figure harness and examples use: 1 warehouse, the
    /// spec's 10 districts, scaled-down customer/item counts.
    pub fn benchmark() -> Scale {
        Scale {
            warehouses: 1,
            districts: 10,
            customers_per_district: 300,
            items: 2000,
            initial_orders_per_district: 30,
        }
    }
}

/// Build the TPC-C catalog.
pub fn tpcc_catalog() -> Catalog {
    let mut c = Catalog::new();
    let w = c.add_table(
        TableSchema::builder("warehouse")
            .column("w_id", ColumnType::Int)
            .column("w_name", ColumnType::Str)
            .column("w_tax", ColumnType::Decimal)
            .column("w_ytd", ColumnType::Decimal)
            .key(&["w_id"])
            .rows_per_page(1)
            .build(),
    );
    let d = c.add_table(
        TableSchema::builder("district")
            .column("d_w_id", ColumnType::Int)
            .column("d_id", ColumnType::Int)
            .column("d_name", ColumnType::Str)
            .column("d_tax", ColumnType::Decimal)
            .column("d_ytd", ColumnType::Decimal)
            .column("d_next_o_id", ColumnType::Int)
            .key(&["d_w_id", "d_id"])
            .rows_per_page(1) // the hot spot: one lockable item per district
            .build(),
    );
    let cu = c.add_table(
        TableSchema::builder("customer")
            .column("c_w_id", ColumnType::Int)
            .column("c_d_id", ColumnType::Int)
            .column("c_id", ColumnType::Int)
            .column("c_first", ColumnType::Str)
            .column("c_last", ColumnType::Str)
            .column("c_credit", ColumnType::Str)
            .column("c_discount", ColumnType::Decimal)
            .column("c_balance", ColumnType::Decimal)
            .column("c_ytd_payment", ColumnType::Decimal)
            .column("c_payment_cnt", ColumnType::Int)
            .column("c_delivery_cnt", ColumnType::Int)
            .column("c_data", ColumnType::Str)
            .key(&["c_w_id", "c_d_id", "c_id"])
            .index(&["c_w_id", "c_d_id", "c_last"])
            .rows_per_page(4)
            .build(),
    );
    let h = c.add_table(
        TableSchema::builder("history")
            .column("h_id", ColumnType::Int)
            .column("h_c_w_id", ColumnType::Int)
            .column("h_c_d_id", ColumnType::Int)
            .column("h_c_id", ColumnType::Int)
            .column("h_date", ColumnType::Int)
            .column("h_amount", ColumnType::Decimal)
            .key(&["h_id"])
            .rows_per_page(8)
            .build(),
    );
    let no = c.add_table(
        TableSchema::builder("new_order")
            .column("no_w_id", ColumnType::Int)
            .column("no_d_id", ColumnType::Int)
            .column("no_o_id", ColumnType::Int)
            .key(&["no_w_id", "no_d_id", "no_o_id"])
            .rows_per_page(4)
            .build(),
    );
    let o = c.add_table(
        TableSchema::builder("orders")
            .column("o_w_id", ColumnType::Int)
            .column("o_d_id", ColumnType::Int)
            .column("o_id", ColumnType::Int)
            .column("o_c_id", ColumnType::Int)
            .column("o_entry_d", ColumnType::Int)
            .column("o_carrier_id", ColumnType::Int)
            .column("o_ol_cnt", ColumnType::Int)
            .column("o_all_local", ColumnType::Bool)
            .key(&["o_w_id", "o_d_id", "o_id"])
            .index(&["o_w_id", "o_d_id", "o_c_id"])
            .rows_per_page(4)
            .build(),
    );
    let ol = c.add_table(
        TableSchema::builder("order_line")
            .column("ol_w_id", ColumnType::Int)
            .column("ol_d_id", ColumnType::Int)
            .column("ol_o_id", ColumnType::Int)
            .column("ol_number", ColumnType::Int)
            .column("ol_i_id", ColumnType::Int)
            .column("ol_supply_w_id", ColumnType::Int)
            .column("ol_delivery_d", ColumnType::Int)
            .column("ol_quantity", ColumnType::Int)
            .column("ol_amount", ColumnType::Decimal)
            .column("ol_dist_info", ColumnType::Str)
            .key(&["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"])
            .rows_per_page(8)
            .build(),
    );
    let i = c.add_table(
        TableSchema::builder("item")
            .column("i_id", ColumnType::Int)
            .column("i_name", ColumnType::Str)
            .column("i_price", ColumnType::Decimal)
            .column("i_data", ColumnType::Str)
            .key(&["i_id"])
            .rows_per_page(16)
            .build(),
    );
    let s = c.add_table(
        TableSchema::builder("stock")
            .column("s_w_id", ColumnType::Int)
            .column("s_i_id", ColumnType::Int)
            .column("s_quantity", ColumnType::Int)
            .column("s_ytd", ColumnType::Int)
            .column("s_order_cnt", ColumnType::Int)
            .column("s_remote_cnt", ColumnType::Int)
            .column("s_dist_info", ColumnType::Str)
            .key(&["s_w_id", "s_i_id"])
            .rows_per_page(4)
            .build(),
    );
    // Guard against reordering: the TABLES constant must match.
    assert_eq!(
        (w, d, cu, h, no, o, ol, i, s),
        (
            TABLES.warehouse,
            TABLES.district,
            TABLES.customer,
            TABLES.history,
            TABLES.new_order,
            TABLES.order,
            TABLES.order_line,
            TABLES.item,
            TABLES.stock
        )
    );
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_builds_with_expected_ids() {
        let c = tpcc_catalog();
        assert_eq!(c.len(), 9);
        assert_eq!(c.schema(TABLES.district).name, "district");
        assert_eq!(c.schema(TABLES.district).rows_per_page, 1);
        assert_eq!(c.schema(TABLES.stock).name, "stock");
        // Secondary index on customer last name exists.
        assert_eq!(c.schema(TABLES.customer).secondary.len(), 1);
        assert_eq!(c.schema(TABLES.order).secondary.len(), 1);
    }

    #[test]
    fn column_constants_match_schema() {
        let c = tpcc_catalog();
        assert_eq!(
            c.schema(TABLES.district).col("d_next_o_id"),
            col::d::NEXT_O_ID
        );
        assert_eq!(c.schema(TABLES.district).col("d_ytd"), col::d::YTD);
        assert_eq!(c.schema(TABLES.customer).col("c_balance"), col::c::BALANCE);
        assert_eq!(c.schema(TABLES.order).col("o_ol_cnt"), col::o::OL_CNT);
        assert_eq!(
            c.schema(TABLES.order_line).col("ol_amount"),
            col::ol::AMOUNT
        );
        assert_eq!(c.schema(TABLES.stock).col("s_quantity"), col::s::QUANTITY);
        assert_eq!(c.schema(TABLES.item).col("i_price"), col::i::PRICE);
        assert_eq!(c.schema(TABLES.warehouse).col("w_ytd"), col::w::YTD);
        assert_eq!(c.schema(TABLES.history).col("h_amount"), col::h::AMOUNT);
        assert_eq!(c.schema(TABLES.new_order).col("no_o_id"), col::no::O_ID);
    }

    #[test]
    fn scales() {
        let t = Scale::test();
        assert_eq!(t.warehouses, 1);
        let b = Scale::benchmark();
        assert_eq!(b.districts, 10);
        assert!(b.items > t.items);
    }
}
