//! The two bring-your-own-workload families end to end: matrix shape as the
//! inference derives it, the four-phase crash/switchover torture protocol,
//! and a short multi-threaded closed-loop burn for each family.
//!
//! Nothing here consults a hand-written interference table — the matrices
//! under test are exactly what [`acc_core::Inference`] produced from the
//! declared footprints, installed through the live registry.

use acc_core::{InterferenceTables, DIRTY};
use acc_engine::{run_closed_loop, ClosedLoopConfig, RetryPolicy, Workload};
use acc_lockmgr::InterferenceOracle;
use acc_txn::SharedDb;
use acc_workloads::torture::KitWorkload;
use acc_workloads::{run_workload_torture, saga, smallbank, WorkloadKit, WorkloadTortureConfig};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Matrix shape: the inference must prove exactly the cells the footprint
// arguments support, and nothing more.
// ---------------------------------------------------------------------------

#[test]
fn smallbank_inferred_matrix_shape() {
    use smallbank::step::*;
    let kit = smallbank::SmallbankKit::build(10);
    let t: &InterferenceTables = &kit.tables;
    let all = [
        BAL, DEP, TRS, WRC, SP_S1, SP_S2, AMG_S1, AMG_S2, OPEN, SP_CS, AMG_CS,
    ];

    // Balance-conservation template: every delta-writing step is proved
    // tolerable; the fresh-row OPEN step is the one conservative cell — its
    // inserts land in tables the template reads with row cardinality, and
    // "fresh keys" says nothing about a COUNT-style predicate.
    for s in all {
        let expect = s == OPEN;
        assert_eq!(
            t.write_interferes(s, kit.conserve),
            expect,
            "conserve cell for step {s:?}"
        );
    }

    // DIRTY: every step is analyzed (writes either commute or are confined
    // to fresh/own regions), so none needs the legacy read fence.
    for s in all {
        assert!(!t.write_interferes(s, DIRTY), "dirty cell for step {s:?}");
        assert!(t.is_analyzed(s), "step {s:?} analyzed");
    }

    // The read-only balance inquiry runs on committed data.
    assert!(t.is_committed_reader(BAL));
    assert!(t.read_interferes(BAL, DIRTY));
    // Version-read eligibility at the oracle level means "write row
    // all-clear" (the per-transaction `version_safe` flag is the second
    // half of the gate); only OPEN carries an interfering write here.
    for s in all {
        assert_eq!(
            t.version_read_safe(s),
            s != OPEN,
            "version reads for step {s:?}"
        );
    }
}

#[test]
fn saga_inferred_matrix_shape() {
    use saga::step::*;
    let kit = saga::SagaKit::build(6, 4);
    let t: &InterferenceTables = &kit.tables;
    let all = [FUL_S1, FUL_RES, FUL_PAY, FUL_SHIP, RESTOCK, STATUS, FUL_CS];

    // res-mid reads LEDGER.capacity *without* delta tolerance, so the two
    // capacity-writing steps are conservatively blocked; everything else is
    // proved out (tolerated deltas, own-region rows, fresh inserts into
    // row-sets the template scopes to the instance's own key space).
    for s in all {
        let expect = s == FUL_SHIP || s == RESTOCK;
        assert_eq!(
            t.write_interferes(s, kit.res_mid),
            expect,
            "res-mid cell for step {s:?}"
        );
    }
    for s in all {
        assert!(!t.write_interferes(s, DIRTY), "dirty cell for step {s:?}");
        assert!(t.is_analyzed(s), "step {s:?} analyzed");
    }
    assert!(t.is_committed_reader(STATUS));
    // Oracle-level version-read eligibility tracks the all-clear write row:
    // the two conservative capacity writers are the only exclusions.
    for s in all {
        assert_eq!(
            t.version_read_safe(s),
            s != FUL_SHIP && s != RESTOCK,
            "version reads for step {s:?}"
        );
    }
}

#[test]
fn inference_decisions_cover_every_declared_step() {
    let sb = smallbank::SmallbankKit::build(6);
    assert!(!sb.decisions.is_empty());
    let sg = saga::SagaKit::build(4, 3);
    assert!(!sg.decisions.is_empty());
}

// ---------------------------------------------------------------------------
// Torture: four-phase protocol per family.
// ---------------------------------------------------------------------------

#[test]
fn smallbank_survives_the_torture_protocol() {
    let kit = smallbank::SmallbankKit::build(8);
    let cfg = WorkloadTortureConfig {
        seed: 0xB4A2,
        txns: 120,
        max_append_points: 80,
    };
    let report = run_workload_torture(&kit, &cfg).expect("torture protocol");
    assert_eq!(
        report.violations, 0,
        "consistency violations:\n{}",
        report.log
    );
    assert!(
        report.points >= 40,
        "only {} crash points swept",
        report.points
    );
    assert!(
        report.compensated > 0,
        "sweep never resumed a compensation — mix too shallow?\n{}",
        report.log
    );
    // Determinism of the sweep itself: the outcome log is a pure function
    // of the config.
    let again = run_workload_torture(&kit, &cfg).expect("torture re-run");
    assert_eq!(report.log, again.log, "torture log not deterministic");
}

#[test]
fn saga_survives_the_torture_protocol_with_deep_chains() {
    let kit = saga::SagaKit::build(6, 4);
    let cfg = WorkloadTortureConfig {
        seed: 0x5A6A,
        txns: 110,
        max_append_points: 90,
    };
    let report = run_workload_torture(&kit, &cfg).expect("torture protocol");
    assert_eq!(
        report.violations, 0,
        "consistency violations:\n{}",
        report.log
    );
    assert!(
        report.points >= 40,
        "only {} crash points swept",
        report.points
    );
    // The whole reason this family exists: crash points late in a four-leg
    // saga leave compensation chains far past TPC-C's two-to-three steps.
    assert!(
        report.max_comp_depth >= 5,
        "deepest resumed chain was {} completed steps — want >= 5\n{}",
        report.max_comp_depth,
        report.log
    );
    let again = run_workload_torture(&kit, &cfg).expect("torture re-run");
    assert_eq!(report.log, again.log, "torture log not deterministic");
}

// ---------------------------------------------------------------------------
// Concurrency: a short closed-loop burn under the inferred tables, audited
// at quiescence. (The release-mode stress gate runs the long version; this
// keeps the property in the plain test suite.)
// ---------------------------------------------------------------------------

fn burn(kit: Arc<dyn WorkloadKit>, seed: u64) {
    let shared = Arc::new(SharedDb::new(kit.base(), kit.tables() as _));
    let cc: Arc<dyn acc_txn::ConcurrencyControl> = kit.acc();
    let workload: Arc<dyn Workload> = Arc::new(KitWorkload(Arc::new(KitRef(Arc::clone(&kit)))));
    let report = run_closed_loop(
        &shared,
        &cc,
        &workload,
        &ClosedLoopConfig {
            terminals: 8,
            duration: Duration::from_millis(200),
            think_time: Duration::ZERO,
            seed,
            retry: RetryPolicy::standard(),
        },
    );
    assert!(report.committed > 0, "{}: nothing committed", kit.name());
    let violations = kit.audit(&shared.snapshot_db());
    assert!(
        violations.is_empty(),
        "{} audit after 8-thread burn: {violations:?}",
        kit.name()
    );
    assert_eq!(shared.total_grants(), 0, "{}: grants leaked", kit.name());
}

/// A [`WorkloadKit`] forwarder so the trait-object kit can ride through the
/// generic [`KitWorkload`] adapter.
struct KitRef(Arc<dyn WorkloadKit>);

impl WorkloadKit for KitRef {
    fn name(&self) -> &'static str {
        self.0.name()
    }
    fn base(&self) -> acc_storage::Database {
        self.0.base()
    }
    fn tables(&self) -> Arc<InterferenceTables> {
        self.0.tables()
    }
    fn acc(&self) -> Arc<acc_core::Acc> {
        self.0.acc()
    }
    fn next_program(&self, rng: &mut acc_common::SeededRng) -> Box<dyn acc_txn::TxnProgram + Send> {
        self.0.next_program(rng)
    }
    fn program_for_inflight(
        &self,
        inf: &acc_wal::InFlight,
    ) -> acc_common::Result<Box<dyn acc_txn::TxnProgram + Send>> {
        self.0.program_for_inflight(inf)
    }
    fn audit(&self, db: &acc_storage::Database) -> Vec<String> {
        self.0.audit(db)
    }
}

#[test]
fn smallbank_eight_thread_burn() {
    burn(Arc::new(smallbank::SmallbankKit::build(12)), 0xCAFE);
}

#[test]
fn saga_eight_thread_burn() {
    burn(Arc::new(saga::SagaKit::build(8, 6)), 0xFEED);
}
