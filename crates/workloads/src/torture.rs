//! A workload-generic crash/switchover torture harness.
//!
//! The TPC-C harness (`acc-tpcc`'s `torture` module) hard-codes its
//! population, mix and consistency conditions. This module factors the
//! protocol out behind [`WorkloadKit`] so any workload family that can
//! populate a base database, generate seeded programs, rebuild in-flight
//! programs from recovered work areas, and audit its own invariants gets the
//! full treatment:
//!
//! 1. **baseline** — the seeded mix runs single-threaded under the family's
//!    *inferred* tables; the quiescent audit must be clean and no lock grant
//!    may remain;
//! 2. **live switchover** — the same mix starts under the fully-conservative
//!    default tables and, at a mid-run step boundary, installs the inferred
//!    tables through [`SharedDb::install_oracle`] — the PR 5 epoch-versioned
//!    registry path. Exactly one switch, zero mixed-epoch lookups, and a WAL
//!    byte-identical to the baseline (table installation is pure metadata);
//!    a second, quiescent install must complete [`InstallOutcome::Immediate`];
//! 3. **determinism** — the baseline re-run produces a byte-identical WAL;
//! 4. **crash sweep** — the baseline image is cut at every record append
//!    (strided down to [`WorkloadTortureConfig::max_append_points`]); each
//!    prefix is salvaged, recovered into a pristine base, compensation is
//!    resumed, and the point must satisfy the family audit, the
//!    no-silent-loss accounting, and zero lock leakage. The deepest
//!    compensation chain observed is reported, so the saga family can assert
//!    its long chains were actually exercised.

use acc_common::{Error, Result, SeededRng};
use acc_core::{Acc, InterferenceTables};
use acc_lockmgr::{InstallOutcome, SharedOracle};
use acc_storage::Database;
use acc_txn::runner::{rollback, run};
use acc_txn::{SharedDb, Transaction, TxnProgram, TxnState, WaitMode};
use acc_wal::{recover, InFlight, Wal};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::{saga, smallbank};

/// Everything the generic harness needs to know about a workload family.
pub trait WorkloadKit: Send + Sync {
    /// Family name for report lines.
    fn name(&self) -> &'static str;
    /// A freshly populated base database (deterministic).
    fn base(&self) -> Database;
    /// The family's inferred interference tables.
    fn tables(&self) -> Arc<InterferenceTables>;
    /// The family's ACC policy.
    fn acc(&self) -> Arc<Acc>;
    /// The next transaction of the seeded mix.
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send>;
    /// Rebuild the compensable program for a recovered in-flight
    /// transaction from its durable work area.
    fn program_for_inflight(&self, inf: &InFlight) -> Result<Box<dyn TxnProgram + Send>>;
    /// The family's quiescent consistency audit: one line per violation.
    fn audit(&self, db: &Database) -> Vec<String>;
}

impl WorkloadKit for smallbank::SmallbankKit {
    fn name(&self) -> &'static str {
        "smallbank"
    }
    fn base(&self) -> Database {
        smallbank::populate(self.accounts)
    }
    fn tables(&self) -> Arc<InterferenceTables> {
        Arc::clone(&self.tables)
    }
    fn acc(&self) -> Arc<Acc> {
        Arc::clone(&self.acc)
    }
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send> {
        smallbank::SmallbankKit::next_program(self, rng)
    }
    fn program_for_inflight(&self, inf: &InFlight) -> Result<Box<dyn TxnProgram + Send>> {
        smallbank::SmallbankKit::program_for_inflight(self, inf)
    }
    fn audit(&self, db: &Database) -> Vec<String> {
        smallbank::audit(db)
    }
}

impl WorkloadKit for saga::SagaKit {
    fn name(&self) -> &'static str {
        "saga"
    }
    fn base(&self) -> Database {
        saga::populate(self.skus, self.customers)
    }
    fn tables(&self) -> Arc<InterferenceTables> {
        Arc::clone(&self.tables)
    }
    fn acc(&self) -> Arc<Acc> {
        Arc::clone(&self.acc)
    }
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send> {
        saga::SagaKit::next_program(self, rng)
    }
    fn program_for_inflight(&self, inf: &InFlight) -> Result<Box<dyn TxnProgram + Send>> {
        saga::SagaKit::program_for_inflight(self, inf)
    }
    fn audit(&self, db: &Database) -> Vec<String> {
        saga::audit(db)
    }
}

/// Adapts a [`WorkloadKit`] to the threaded engine's
/// [`Workload`](acc_engine::Workload) trait for closed-loop stress runs.
pub struct KitWorkload<K: WorkloadKit>(pub Arc<K>);

impl<K: WorkloadKit> acc_engine::Workload for KitWorkload<K> {
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send> {
        self.0.next_program(rng)
    }
}

/// Sizing of a generic torture run. Everything is derived from `seed`; two
/// runs with an equal config produce byte-identical outcome logs.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadTortureConfig {
    /// Master seed for the mix.
    pub seed: u64,
    /// Transactions in the seeded mix.
    pub txns: usize,
    /// Cap on crash points (the sweep strides the append indexes down to
    /// at most this many cuts, always including the final append).
    pub max_append_points: usize,
}

/// Aggregate outcome of [`run_workload_torture`].
#[derive(Debug, Clone)]
pub struct WorkloadTortureReport {
    /// Crash points actually swept.
    pub points: usize,
    /// Transactions replayed (committed + aborted) summed over points.
    pub replayed: usize,
    /// Compensations resumed, summed over points.
    pub compensated: usize,
    /// Transactions discarded (no durable step), summed over points.
    pub discarded: usize,
    /// Audit violations summed over every phase and point. Must be zero.
    pub violations: usize,
    /// Deepest compensation chain resumed anywhere in the sweep, in
    /// completed steps.
    pub max_comp_depth: u32,
    /// The deterministic per-point outcome log.
    pub log: String,
}

struct MixRun {
    image: Vec<u8>,
    boundaries: u64,
    epoch: u64,
    switches: u64,
    mixed: u64,
    outcome: Option<InstallOutcome>,
    violations: Vec<String>,
    grants: usize,
}

/// Run the seeded mix single-threaded, bootstrapped with `bootstrap` tables,
/// optionally installing `install` at the given 1-based step boundary
/// through the live hook.
fn run_mix(
    kit: &dyn WorkloadKit,
    cfg: &WorkloadTortureConfig,
    bootstrap: SharedOracle,
    install: Option<(u64, SharedOracle)>,
) -> Result<MixRun> {
    let shared = Arc::new(SharedDb::new(kit.base(), bootstrap));
    let outcome = Arc::new(Mutex::new(None));
    if let Some((at, tables)) = install {
        let sh = Arc::clone(&shared);
        let out = Arc::clone(&outcome);
        shared.set_step_boundary_hook(Some(Box::new(move |count| {
            if count == at {
                let o = sh.install_oracle(Arc::clone(&tables));
                *out.lock().expect("outcome not poisoned") = Some(o);
            }
        })));
    }
    let acc = kit.acc();
    let mut rng = SeededRng::new(cfg.seed ^ 0x776b_6c64); // "wkld"
    for _ in 0..cfg.txns {
        let mut program = kit.next_program(&mut rng);
        run(&shared, &*acc, program.as_mut(), WaitMode::Block)?;
    }
    // Dropping the hook breaks its `Arc<SharedDb>` cycle.
    shared.set_step_boundary_hook(None);
    let outcome = *outcome.lock().expect("outcome not poisoned");
    let reg = shared.registry();
    Ok(MixRun {
        image: shared.wal_bytes(),
        boundaries: shared.step_boundaries(),
        epoch: reg.epoch(),
        switches: reg.switches(),
        mixed: reg.mixed_epoch_lookups(),
        outcome,
        violations: kit.audit(&shared.snapshot_db()),
        grants: shared.total_grants(),
    })
}

/// Byte offsets just *after* each whole record frame in `image`.
fn record_offsets(image: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while image.len() - pos >= 12 {
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if image.len() - pos - 12 < len {
            break;
        }
        pos += 12 + len;
        out.push(pos);
    }
    out
}

struct PointStats {
    replayed: usize,
    compensated: usize,
    discarded: usize,
    violations: usize,
    max_depth: u32,
}

/// One crash point: salvage `bytes`, recover into a clone of `base`, resume
/// compensation through the family's recovered programs, then check the
/// family audit, lock cleanliness and the no-silent-loss accounting.
fn crash_and_recover(kit: &dyn WorkloadKit, base: &Database, bytes: &[u8]) -> Result<PointStats> {
    let salvaged = Wal::from_bytes(bytes);
    let txns_on_log: HashSet<_> = salvaged.records().iter().map(|r| r.txn()).collect();

    let mut db = base.clone();
    let report = recover(&mut db, &salvaged)?;
    let shared = SharedDb::new(db, kit.tables() as _);
    let acc = kit.acc();
    let mut compensated = 0usize;
    let mut max_depth = 0u32;
    for inf in &report.needs_compensation {
        let mut program = kit.program_for_inflight(inf)?;
        let mut txn = Transaction::new(inf.txn, inf.txn_type);
        txn.steps_completed = inf.steps_completed;
        txn.step_index = inf.steps_completed;
        txn.state = TxnState::Active;
        rollback(&shared, &*acc, program.as_mut(), &mut txn)?;
        max_depth = max_depth.max(inf.steps_completed);
        compensated += 1;
    }

    let replayed = report.committed.len() + report.aborted.len();
    let discarded = report.discarded.len();
    // No silent loss: every transaction that reached the salvaged log is in
    // exactly one bucket.
    if replayed + compensated + discarded != txns_on_log.len() {
        return Err(Error::Internal(format!(
            "accounting hole: {} txns on log, {replayed} replayed + {compensated} compensated + \
             {discarded} discarded",
            txns_on_log.len(),
        )));
    }

    let violations = kit.audit(&shared.snapshot_db()).len();
    let grants = shared.total_grants();
    // Compensation must leave no lock behind; a leak here stalls the next
    // workload a real restart would admit.
    if grants != 0 {
        return Err(Error::Internal(format!(
            "{grants} lock grants leaked by post-crash compensation"
        )));
    }
    Ok(PointStats {
        replayed,
        compensated,
        discarded,
        violations,
        max_depth,
    })
}

/// Run the full four-phase torture protocol for one workload family.
pub fn run_workload_torture(
    kit: &dyn WorkloadKit,
    cfg: &WorkloadTortureConfig,
) -> Result<WorkloadTortureReport> {
    let mut log = String::new();
    let name = kit.name();

    // Phase 1: baseline under the inferred tables.
    let baseline = run_mix(kit, cfg, kit.tables() as _, None)?;
    if !baseline.violations.is_empty() {
        return Err(Error::Internal(format!(
            "{name} baseline audit failed: {}",
            baseline.violations.join("; ")
        )));
    }
    if baseline.grants != 0 {
        return Err(Error::Internal(format!(
            "{name} baseline leaked {} lock grants",
            baseline.grants
        )));
    }
    if baseline.switches != 0 || baseline.epoch != 0 {
        return Err(Error::Internal(format!(
            "{name} baseline saw unexpected table switches"
        )));
    }
    let _ = writeln!(
        log,
        "[{name}] baseline: {} wal bytes, {} step boundaries",
        baseline.image.len(),
        baseline.boundaries
    );

    // Phase 2: live switchover — bootstrap with the fully-conservative
    // default tables, install the inferred ones mid-run through the
    // epoch-versioned registry.
    let at = (baseline.boundaries / 2).max(1);
    let switched = run_mix(
        kit,
        cfg,
        Arc::new(InterferenceTables::default()) as _,
        Some((at, kit.tables() as _)),
    )?;
    let outcome = switched.outcome.ok_or_else(|| {
        Error::Internal(format!(
            "{name} switchover hook never fired (boundary {at} of {})",
            switched.boundaries
        ))
    })?;
    if switched.switches != 1 || switched.epoch != 1 {
        return Err(Error::Internal(format!(
            "{name} switchover: expected exactly one switch to epoch 1, saw {} (epoch {})",
            switched.switches, switched.epoch
        )));
    }
    if switched.mixed != 0 {
        return Err(Error::Internal(format!(
            "{name} switchover: {} mixed-epoch lookups",
            switched.mixed
        )));
    }
    if switched.image != baseline.image {
        return Err(Error::Internal(format!(
            "{name} switchover perturbed the durable history: {} vs {} baseline bytes",
            switched.image.len(),
            baseline.image.len()
        )));
    }
    if !switched.violations.is_empty() || switched.grants != 0 {
        return Err(Error::Internal(format!(
            "{name} switchover run left {} violations, {} grants",
            switched.violations.len(),
            switched.grants
        )));
    }
    let _ = writeln!(
        log,
        "[{name}] switchover at boundary {at}: {:?}, wal identical",
        outcome
    );

    // Quiescent install: with nothing running, the same install completes
    // immediately.
    {
        let shared = SharedDb::new(kit.base(), Arc::new(InterferenceTables::default()) as _);
        match shared.install_oracle(kit.tables() as _) {
            InstallOutcome::Immediate { epoch: 1 } => {}
            other => {
                return Err(Error::Internal(format!(
                    "{name} quiescent install: expected Immediate {{ epoch: 1 }}, got {other:?}"
                )))
            }
        }
    }

    // Phase 3: determinism — the baseline re-run is byte-identical.
    let rerun = run_mix(kit, cfg, kit.tables() as _, None)?;
    if rerun.image != baseline.image {
        return Err(Error::Internal(format!(
            "{name} is not deterministic: re-run produced {} wal bytes vs {}",
            rerun.image.len(),
            baseline.image.len()
        )));
    }

    // Phase 4: crash sweep over every append index, strided to the cap.
    let base = kit.base();
    let offsets = record_offsets(&baseline.image);
    let stride = offsets.len().div_ceil(cfg.max_append_points).max(1);
    let mut report = WorkloadTortureReport {
        points: 0,
        replayed: 0,
        compensated: 0,
        discarded: 0,
        violations: baseline.violations.len() + switched.violations.len(),
        max_comp_depth: 0,
        log,
    };
    for (idx, &off) in offsets.iter().enumerate() {
        let last = idx == offsets.len() - 1;
        if idx % stride != 0 && !last {
            continue;
        }
        let stats = crash_and_recover(kit, &base, &baseline.image[..off])?;
        report.points += 1;
        report.replayed += stats.replayed;
        report.compensated += stats.compensated;
        report.discarded += stats.discarded;
        report.violations += stats.violations;
        report.max_comp_depth = report.max_comp_depth.max(stats.max_depth);
        let _ = writeln!(
            report.log,
            "[{name}] point {idx} cut {off}: replayed {} compensated {} discarded {} \
             violations {} depth {}",
            stats.replayed, stats.compensated, stats.discarded, stats.violations, stats.max_depth
        );
    }
    let _ = writeln!(
        report.log,
        "[{name}] sweep: {} points, {} compensated, max depth {}, {} violations",
        report.points, report.compensated, report.max_comp_depth, report.violations
    );
    Ok(report)
}
