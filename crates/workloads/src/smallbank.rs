//! A smallbank-style account workload, analyzed entirely by inference.
//!
//! Four tables (ACCOUNT, SAVINGS, CHECKING and a one-row LEDGER), seven
//! transaction types: balance inquiry (read-only), three one-step balance
//! mutators, two-step send-payment and amalgamate (both compensatable), and
//! open-account (fresh-key inserts). Every balance mutation is a commutative
//! integer delta whose compensation is the inverse delta, and the only
//! assignments in the system land on freshly allocated keys — so the
//! inference proves every step guard-safe and the whole mix runs without a
//! single hand declaration.
//!
//! The one deliberate conservative cell: `conserve-mid` (the mid-transfer
//! conservation template) reads the SAVINGS/CHECKING balance columns *over
//! all rows* — a cardinality-dependent sum — so `open-account`'s fresh
//! inserts interfere with it. The insert actually preserves conservation
//! (it bumps the ledger total in the same step), but that atomicity argument
//! has no footprint form; the matrix takes the paper's conservative default.
//!
//! The global invariant audited at quiescence: `LEDGER.total` equals the sum
//! of every savings and checking balance, no balance is negative, and the
//! three per-account tables hold exactly the same id sets.

use acc_common::{
    AssertionTemplateId, Error, Result, SeededRng, StepTypeId, TableId, TxnTypeId, Value,
};
use acc_core::analysis::Decision;
use acc_core::{
    Acc, AssertionRegistry, Inference, InterferenceTables, KeySpace, StepFootprint, StepSpec,
    TableFootprint, TxnSpec, DIRTY,
};
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::{StepCtx, StepOutcome, TxnProgram};
use acc_wal::InFlight;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Table ids in catalog order.
pub mod table {
    use acc_common::TableId;
    pub const ACCOUNT: TableId = TableId(0);
    pub const SAVINGS: TableId = TableId(1);
    pub const CHECKING: TableId = TableId(2);
    pub const LEDGER: TableId = TableId(3);
}

/// Column positions.
pub mod col {
    /// ACCOUNT columns.
    pub mod a {
        pub const ID: usize = 0;
        pub const NAME: usize = 1;
    }
    /// SAVINGS / CHECKING columns (same shape).
    pub mod b {
        pub const ID: usize = 0;
        pub const BAL: usize = 1;
    }
    /// LEDGER columns (single row, id 0).
    pub mod l {
        pub const ID: usize = 0;
        pub const TOTAL: usize = 1;
        pub const NEXT_ID: usize = 2;
    }
}

/// Key space of freshly opened account ids (allocated from `LEDGER.next_id`).
pub const ACCT: KeySpace = KeySpace(0);

/// Step type ids.
pub mod step {
    use acc_common::StepTypeId;
    pub const BAL: StepTypeId = StepTypeId(1);
    pub const DEP: StepTypeId = StepTypeId(2);
    pub const TRS: StepTypeId = StepTypeId(3);
    pub const WRC: StepTypeId = StepTypeId(4);
    pub const SP_S1: StepTypeId = StepTypeId(5);
    pub const SP_S2: StepTypeId = StepTypeId(6);
    pub const AMG_S1: StepTypeId = StepTypeId(7);
    pub const AMG_S2: StepTypeId = StepTypeId(8);
    pub const OPEN: StepTypeId = StepTypeId(9);
    pub const SP_CS: StepTypeId = StepTypeId(20);
    pub const AMG_CS: StepTypeId = StepTypeId(21);
}

/// Transaction type ids.
pub mod ty {
    use acc_common::TxnTypeId;
    pub const BALANCE: TxnTypeId = TxnTypeId(1);
    pub const DEPOSIT: TxnTypeId = TxnTypeId(2);
    pub const TRANSACT_SAVINGS: TxnTypeId = TxnTypeId(3);
    pub const WRITE_CHECK: TxnTypeId = TxnTypeId(4);
    pub const SEND_PAYMENT: TxnTypeId = TxnTypeId(5);
    pub const AMALGAMATE: TxnTypeId = TxnTypeId(6);
    pub const OPEN_ACCOUNT: TxnTypeId = TxnTypeId(7);
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("account")
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Int)
            .key(&["id"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("savings")
            .column("id", ColumnType::Int)
            .column("bal", ColumnType::Int)
            .key(&["id"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("checking")
            .column("id", ColumnType::Int)
            .column("bal", ColumnType::Int)
            .key(&["id"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("ledger")
            .column("id", ColumnType::Int)
            .column("total", ColumnType::Int)
            .column("next_id", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    c
}

const INIT_SAVINGS: i64 = 1000;
const INIT_CHECKING: i64 = 500;

/// Build and populate the base database: accounts `1..=n`.
pub fn populate(n: i64) -> Database {
    let mut db = Database::new(&catalog());
    for i in 1..=n {
        db.table_mut(table::ACCOUNT)
            .expect("account table")
            .insert(Row(vec![Value::Int(i), Value::Int(i)]))
            .expect("populate account");
        db.table_mut(table::SAVINGS)
            .expect("savings table")
            .insert(Row(vec![Value::Int(i), Value::Int(INIT_SAVINGS)]))
            .expect("populate savings");
        db.table_mut(table::CHECKING)
            .expect("checking table")
            .insert(Row(vec![Value::Int(i), Value::Int(INIT_CHECKING)]))
            .expect("populate checking");
    }
    db.table_mut(table::LEDGER)
        .expect("ledger table")
        .insert(Row(vec![
            Value::Int(0),
            Value::Int(n * (INIT_SAVINGS + INIT_CHECKING)),
            Value::Int(n + 1),
        ]))
        .expect("populate ledger");
    db
}

/// Step names for reports and the `figures -- infer` JSON dump.
pub fn step_names() -> Vec<(StepTypeId, &'static str)> {
    use step::*;
    vec![
        (BAL, "balance (read-only)"),
        (DEP, "deposit-checking"),
        (TRS, "transact-savings"),
        (WRC, "write-check"),
        (SP_S1, "send-payment: debit source"),
        (SP_S2, "send-payment: credit destination"),
        (AMG_S1, "amalgamate: drain source"),
        (AMG_S2, "amalgamate: credit destination"),
        (OPEN, "open-account"),
        (SP_CS, "send-payment compensation"),
        (AMG_CS, "amalgamate compensation"),
    ]
}

/// The complete design-time product, machine-derived: templates, inferred
/// interference tables, ACC policy, the seeded mix generator, the recovery
/// hook, and the consistency auditor.
pub struct SmallbankKit {
    /// The template registry (DIRTY + `conserve-mid`).
    pub registry: Arc<AssertionRegistry>,
    /// The machine-inferred interference matrix.
    pub tables: Arc<InterferenceTables>,
    /// The ACC policy driving the decomposed types.
    pub acc: Arc<Acc>,
    /// Every recorded inference decision (proof or blocking obligation).
    pub decisions: Vec<Decision>,
    /// The mid-transfer conservation template.
    pub conserve: AssertionTemplateId,
    /// Accounts in the base population.
    pub accounts: i64,
}

impl SmallbankKit {
    /// Run the inference and build the policy for a population of `accounts`.
    pub fn build(accounts: i64) -> SmallbankKit {
        use col::{b, l};
        use step::*;
        use table::*;

        let mut reg = AssertionRegistry::new();
        // "The money I moved out of the source is still in flight, and the
        // global total accounts for it": a sum over every balance, invariant
        // under other transactions' commutative deltas, but dependent on the
        // row population.
        let conserve = reg.define(
            "conserve-mid: global total accounts for my in-flight transfer",
            vec![
                TableFootprint::rows(SAVINGS, [b::BAL]).tolerates_deltas(),
                TableFootprint::rows(CHECKING, [b::BAL]).tolerates_deltas(),
                TableFootprint::columns(LEDGER, [l::TOTAL]).tolerates_deltas(),
            ],
            None,
        );

        let (tables, decisions) = Inference::new(&reg)
            .step(StepFootprint::new(BAL, "balance (read-only)", vec![]))
            .step(StepFootprint::new(
                DEP,
                "deposit-checking",
                vec![
                    TableFootprint::columns(CHECKING, [b::BAL]).delta(),
                    TableFootprint::columns(LEDGER, [l::TOTAL]).delta(),
                ],
            ))
            .step(StepFootprint::new(
                TRS,
                "transact-savings",
                vec![
                    TableFootprint::columns(SAVINGS, [b::BAL]).delta(),
                    TableFootprint::columns(LEDGER, [l::TOTAL]).delta(),
                ],
            ))
            .step(StepFootprint::new(
                WRC,
                "write-check",
                vec![
                    TableFootprint::columns(CHECKING, [b::BAL]).delta(),
                    TableFootprint::columns(LEDGER, [l::TOTAL]).delta(),
                ],
            ))
            .step(StepFootprint::new(
                SP_S1,
                "send-payment: debit source",
                vec![TableFootprint::columns(CHECKING, [b::BAL]).delta()],
            ))
            .step(StepFootprint::new(
                SP_S2,
                "send-payment: credit destination",
                vec![TableFootprint::columns(CHECKING, [b::BAL]).delta()],
            ))
            .step(StepFootprint::new(
                AMG_S1,
                "amalgamate: drain source",
                // The drained amounts are fixed when the step executes (it
                // reads the balances it zeroes), so the write is a delta and
                // its compensation the inverse delta.
                vec![
                    TableFootprint::columns(SAVINGS, [b::BAL]).delta(),
                    TableFootprint::columns(CHECKING, [b::BAL]).delta(),
                ],
            ))
            .step(StepFootprint::new(
                AMG_S2,
                "amalgamate: credit destination",
                vec![TableFootprint::columns(CHECKING, [b::BAL]).delta()],
            ))
            .step(StepFootprint::new(
                OPEN,
                "open-account",
                vec![
                    TableFootprint::columns(LEDGER, [l::TOTAL, l::NEXT_ID]).delta(),
                    TableFootprint::rows(ACCOUNT, [0, 1]).fresh(ACCT),
                    TableFootprint::rows(SAVINGS, [0, 1]).fresh(ACCT),
                    TableFootprint::rows(CHECKING, [0, 1]).fresh(ACCT),
                ],
            ))
            .step(StepFootprint::new(
                SP_CS,
                "send-payment compensation",
                vec![TableFootprint::columns(CHECKING, [b::BAL]).delta()],
            ))
            .step(StepFootprint::new(
                AMG_CS,
                "amalgamate compensation",
                vec![
                    TableFootprint::columns(SAVINGS, [b::BAL]).delta(),
                    TableFootprint::columns(CHECKING, [b::BAL]).delta(),
                ],
            ))
            .require_committed_reads(BAL)
            .build();

        let one_step = |ty, name: &str, st| TxnSpec {
            txn_type: ty,
            name: name.to_owned(),
            steps: vec![StepSpec {
                step_type: st,
                active: vec![],
            }],
            overflow: None,
            comp_step: None,
            guard: DIRTY,
            version_safe: false,
        };
        let specs = vec![
            TxnSpec {
                version_safe: true,
                ..one_step(ty::BALANCE, "balance", BAL)
            },
            one_step(ty::DEPOSIT, "deposit-checking", DEP),
            one_step(ty::TRANSACT_SAVINGS, "transact-savings", TRS),
            one_step(ty::WRITE_CHECK, "write-check", WRC),
            TxnSpec {
                txn_type: ty::SEND_PAYMENT,
                name: "send-payment".to_owned(),
                steps: vec![
                    StepSpec {
                        step_type: SP_S1,
                        active: vec![conserve],
                    },
                    StepSpec {
                        step_type: SP_S2,
                        active: vec![conserve],
                    },
                ],
                overflow: None,
                comp_step: Some(SP_CS),
                guard: DIRTY,
                version_safe: false,
            },
            TxnSpec {
                txn_type: ty::AMALGAMATE,
                name: "amalgamate".to_owned(),
                steps: vec![
                    StepSpec {
                        step_type: AMG_S1,
                        active: vec![conserve],
                    },
                    StepSpec {
                        step_type: AMG_S2,
                        active: vec![conserve],
                    },
                ],
                overflow: None,
                comp_step: Some(AMG_CS),
                guard: DIRTY,
                version_safe: false,
            },
            one_step(ty::OPEN_ACCOUNT, "open-account", OPEN),
        ];

        let registry = Arc::new(reg);
        let acc = Arc::new(Acc::new(Arc::clone(&registry), specs));
        SmallbankKit {
            registry,
            tables: Arc::new(tables),
            acc,
            decisions,
            conserve,
            accounts,
        }
    }

    /// One seeded transaction from the standard mix.
    pub fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send> {
        let id = rng.int_range(1, self.accounts);
        match rng.index(100) {
            0..=14 => Box::new(Balance { id }),
            15..=34 => Box::new(Deposit {
                id,
                amount: rng.int_range(1, 100),
            }),
            35..=49 => Box::new(TransactSavings {
                id,
                amount: rng.int_range(-40, 60),
            }),
            50..=64 => Box::new(WriteCheck {
                id,
                amount: rng.int_range(1, 120),
            }),
            65..=84 => {
                let mut dst = rng.int_range(1, self.accounts);
                if dst == id {
                    dst = dst % self.accounts + 1;
                }
                Box::new(SendPayment {
                    src: id,
                    dst,
                    amount: rng.int_range(1, 80),
                })
            }
            85..=94 => {
                let mut dst = rng.int_range(1, self.accounts);
                if dst == id {
                    dst = dst % self.accounts + 1;
                }
                Box::new(Amalgamate::new(id, dst))
            }
            _ => Box::new(OpenAccount {
                initial: rng.int_range(0, 200),
                opened: None,
            }),
        }
    }

    /// Rebuild the compensable program for a recovered in-flight transaction.
    pub fn program_for_inflight(&self, inf: &InFlight) -> Result<Box<dyn TxnProgram + Send>> {
        match inf.txn_type {
            t if t == ty::SEND_PAYMENT => SendPayment::recovered(&inf.work_area)
                .map(|p| Box::new(p) as Box<dyn TxnProgram + Send>)
                .ok_or_else(|| {
                    Error::Recovery(format!(
                        "unparseable send-payment work area for {}",
                        inf.txn
                    ))
                }),
            t if t == ty::AMALGAMATE => Amalgamate::recovered(&inf.work_area)
                .map(|p| Box::new(p) as Box<dyn TxnProgram + Send>)
                .ok_or_else(|| {
                    Error::Recovery(format!("unparseable amalgamate work area for {}", inf.txn))
                }),
            other => Err(Error::Recovery(format!(
                "in-flight transaction {} has non-compensable smallbank type {other}",
                inf.txn
            ))),
        }
    }
}

/// The quiescence audit: conservation of money, non-negative balances,
/// aligned id sets, and a sane id allocator. Returns one line per violation.
pub fn audit(db: &Database) -> Vec<String> {
    use col::{a, b, l};
    let mut out = Vec::new();
    let accounts = db.table(table::ACCOUNT).expect("account table");
    let savings = db.table(table::SAVINGS).expect("savings table");
    let checking = db.table(table::CHECKING).expect("checking table");
    let ledger = db.table(table::LEDGER).expect("ledger table");

    let acct_ids: BTreeSet<i64> = accounts.iter().map(|(_, r)| r.int(a::ID)).collect();
    let sav_ids: BTreeSet<i64> = savings.iter().map(|(_, r)| r.int(b::ID)).collect();
    let chk_ids: BTreeSet<i64> = checking.iter().map(|(_, r)| r.int(b::ID)).collect();
    if sav_ids != acct_ids || chk_ids != acct_ids {
        out.push(format!(
            "account tables misaligned: {} accounts, {} savings, {} checking",
            acct_ids.len(),
            sav_ids.len(),
            chk_ids.len()
        ));
    }

    let mut sum = 0i64;
    for (tbl, name) in [(savings, "savings"), (checking, "checking")] {
        for (_, r) in tbl.iter() {
            let bal = r.int(b::BAL);
            if bal < 0 {
                out.push(format!(
                    "{name} balance of account {} is {bal}",
                    r.int(b::ID)
                ));
            }
            sum += bal;
        }
    }

    let (_, lrow) = ledger
        .get(&Key::ints(&[0]))
        .expect("ledger row 0 must exist");
    if lrow.int(l::TOTAL) != sum {
        out.push(format!(
            "ledger total {} != sum of balances {sum}",
            lrow.int(l::TOTAL)
        ));
    }
    let max_id = acct_ids.iter().max().copied().unwrap_or(0);
    if lrow.int(l::NEXT_ID) <= max_id {
        out.push(format!(
            "ledger next_id {} <= max account id {max_id}",
            lrow.int(l::NEXT_ID)
        ));
    }
    out
}

fn add_int(ctx: &mut StepCtx<'_>, tbl: TableId, key: &Key, c: usize, d: i64) -> Result<()> {
    let updated = ctx.update_key(tbl, key, |r| {
        let v = r.int(c);
        r.set(c, Value::Int(v + d));
    })?;
    if !updated {
        return Err(Error::NotFound(format!("{tbl:?} row {key:?}")));
    }
    Ok(())
}

fn read_i64(bytes: &[u8], at: usize) -> Option<i64> {
    bytes
        .get(at..at + 8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte slice")))
}

// ---------------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------------

/// Read-only balance inquiry (version-read eligible).
pub struct Balance {
    /// Account inspected.
    pub id: i64,
}

impl TxnProgram for Balance {
    fn txn_type(&self) -> TxnTypeId {
        ty::BALANCE
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let key = Key::ints(&[self.id]);
        let s = ctx.read(table::SAVINGS, &key)?;
        let c = ctx.read(table::CHECKING, &key)?;
        let _ = (s, c);
        Ok(StepOutcome::Done)
    }
}

/// One-step checking deposit.
pub struct Deposit {
    /// Target account.
    pub id: i64,
    /// Amount (positive).
    pub amount: i64,
}

impl TxnProgram for Deposit {
    fn txn_type(&self) -> TxnTypeId {
        ty::DEPOSIT
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        add_int(
            ctx,
            table::CHECKING,
            &Key::ints(&[self.id]),
            col::b::BAL,
            self.amount,
        )?;
        add_int(
            ctx,
            table::LEDGER,
            &Key::ints(&[0]),
            col::l::TOTAL,
            self.amount,
        )?;
        Ok(StepOutcome::Done)
    }
}

/// One-step savings credit/debit; aborts rather than overdraw.
pub struct TransactSavings {
    /// Target account.
    pub id: i64,
    /// Signed amount.
    pub amount: i64,
}

impl TxnProgram for TransactSavings {
    fn txn_type(&self) -> TxnTypeId {
        ty::TRANSACT_SAVINGS
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let key = Key::ints(&[self.id]);
        let row = ctx
            .read_for_update(table::SAVINGS, &key)?
            .ok_or_else(|| Error::NotFound(format!("savings {}", self.id)))?;
        if row.int(col::b::BAL) + self.amount < 0 {
            return Ok(StepOutcome::Abort);
        }
        add_int(ctx, table::SAVINGS, &key, col::b::BAL, self.amount)?;
        add_int(
            ctx,
            table::LEDGER,
            &Key::ints(&[0]),
            col::l::TOTAL,
            self.amount,
        )?;
        Ok(StepOutcome::Done)
    }
}

/// One-step check: debits checking; aborts on insufficient funds.
pub struct WriteCheck {
    /// Target account.
    pub id: i64,
    /// Amount (positive).
    pub amount: i64,
}

impl TxnProgram for WriteCheck {
    fn txn_type(&self) -> TxnTypeId {
        ty::WRITE_CHECK
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let key = Key::ints(&[self.id]);
        let row = ctx
            .read_for_update(table::CHECKING, &key)?
            .ok_or_else(|| Error::NotFound(format!("checking {}", self.id)))?;
        if row.int(col::b::BAL) < self.amount {
            return Ok(StepOutcome::Abort);
        }
        add_int(ctx, table::CHECKING, &key, col::b::BAL, -self.amount)?;
        add_int(
            ctx,
            table::LEDGER,
            &Key::ints(&[0]),
            col::l::TOTAL,
            -self.amount,
        )?;
        Ok(StepOutcome::Done)
    }
}

/// Two-step checking-to-checking transfer; compensation credits the source
/// back.
pub struct SendPayment {
    /// Source account.
    pub src: i64,
    /// Destination account.
    pub dst: i64,
    /// Amount (positive).
    pub amount: i64,
}

impl SendPayment {
    /// Rebuild from a recovered work area.
    pub fn recovered(wa: &[u8]) -> Option<SendPayment> {
        let (src, dst, amount) = (read_i64(wa, 0)?, read_i64(wa, 8)?, read_i64(wa, 16)?);
        if amount < 0 {
            return None;
        }
        Some(SendPayment { src, dst, amount })
    }
}

impl TxnProgram for SendPayment {
    fn txn_type(&self) -> TxnTypeId {
        ty::SEND_PAYMENT
    }
    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        if i == 0 {
            let key = Key::ints(&[self.src]);
            let row = ctx
                .read_for_update(table::CHECKING, &key)?
                .ok_or_else(|| Error::NotFound(format!("checking {}", self.src)))?;
            if row.int(col::b::BAL) < self.amount {
                return Ok(StepOutcome::Abort);
            }
            add_int(ctx, table::CHECKING, &key, col::b::BAL, -self.amount)?;
            Ok(StepOutcome::Continue)
        } else {
            add_int(
                ctx,
                table::CHECKING,
                &Key::ints(&[self.dst]),
                col::b::BAL,
                self.amount,
            )?;
            Ok(StepOutcome::Done)
        }
    }
    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        if steps_completed >= 1 {
            add_int(
                ctx,
                table::CHECKING,
                &Key::ints(&[self.src]),
                col::b::BAL,
                self.amount,
            )?;
        }
        Ok(())
    }
    fn work_area(&self) -> Vec<u8> {
        let mut wa = Vec::with_capacity(24);
        for v in [self.src, self.dst, self.amount] {
            wa.extend_from_slice(&v.to_le_bytes());
        }
        wa
    }
}

/// Two-step amalgamate: drain the source's savings and checking into the
/// destination's checking. The drained amounts are fixed at step-1 execution
/// and travel in the work area so compensation can restore them after a
/// crash.
pub struct Amalgamate {
    /// Source account.
    pub src: i64,
    /// Destination account.
    pub dst: i64,
    /// Savings amount drained in step 0 (idempotently overwritten).
    pub moved_savings: i64,
    /// Checking amount drained in step 0.
    pub moved_checking: i64,
}

impl Amalgamate {
    /// A fresh amalgamate.
    pub fn new(src: i64, dst: i64) -> Amalgamate {
        Amalgamate {
            src,
            dst,
            moved_savings: 0,
            moved_checking: 0,
        }
    }

    /// Rebuild from a recovered work area.
    pub fn recovered(wa: &[u8]) -> Option<Amalgamate> {
        Some(Amalgamate {
            src: read_i64(wa, 0)?,
            dst: read_i64(wa, 8)?,
            moved_savings: read_i64(wa, 16)?,
            moved_checking: read_i64(wa, 24)?,
        })
    }
}

impl TxnProgram for Amalgamate {
    fn txn_type(&self) -> TxnTypeId {
        ty::AMALGAMATE
    }
    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let src_key = Key::ints(&[self.src]);
        if i == 0 {
            let s = ctx.read_existing(table::SAVINGS, &src_key)?;
            let c = ctx.read_existing(table::CHECKING, &src_key)?;
            self.moved_savings = s.int(col::b::BAL);
            self.moved_checking = c.int(col::b::BAL);
            add_int(
                ctx,
                table::SAVINGS,
                &src_key,
                col::b::BAL,
                -self.moved_savings,
            )?;
            add_int(
                ctx,
                table::CHECKING,
                &src_key,
                col::b::BAL,
                -self.moved_checking,
            )?;
            Ok(StepOutcome::Continue)
        } else {
            add_int(
                ctx,
                table::CHECKING,
                &Key::ints(&[self.dst]),
                col::b::BAL,
                self.moved_savings + self.moved_checking,
            )?;
            Ok(StepOutcome::Done)
        }
    }
    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        if steps_completed >= 1 {
            let src_key = Key::ints(&[self.src]);
            add_int(
                ctx,
                table::SAVINGS,
                &src_key,
                col::b::BAL,
                self.moved_savings,
            )?;
            add_int(
                ctx,
                table::CHECKING,
                &src_key,
                col::b::BAL,
                self.moved_checking,
            )?;
        }
        Ok(())
    }
    fn work_area(&self) -> Vec<u8> {
        let mut wa = Vec::with_capacity(32);
        for v in [self.src, self.dst, self.moved_savings, self.moved_checking] {
            wa.extend_from_slice(&v.to_le_bytes());
        }
        wa
    }
}

/// One-step open-account: allocate an id from the ledger, insert the three
/// per-account rows, and fold the opening balance into the total.
pub struct OpenAccount {
    /// Opening checking balance.
    pub initial: i64,
    /// The id allocated at execution (idempotently overwritten).
    pub opened: Option<i64>,
}

impl TxnProgram for OpenAccount {
    fn txn_type(&self) -> TxnTypeId {
        ty::OPEN_ACCOUNT
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let lkey = Key::ints(&[0]);
        let lrow = ctx
            .read_for_update(table::LEDGER, &lkey)?
            .ok_or_else(|| Error::NotFound("ledger row".to_owned()))?;
        let id = lrow.int(col::l::NEXT_ID);
        self.opened = Some(id);
        ctx.update_key(table::LEDGER, &lkey, |r| {
            let total = r.int(col::l::TOTAL);
            r.set(col::l::TOTAL, Value::Int(total + self.initial));
            r.set(col::l::NEXT_ID, Value::Int(id + 1));
        })?;
        ctx.insert(table::ACCOUNT, Row(vec![Value::Int(id), Value::Int(id)]))?;
        ctx.insert(table::SAVINGS, Row(vec![Value::Int(id), Value::Int(0)]))?;
        ctx.insert(
            table::CHECKING,
            Row(vec![Value::Int(id), Value::Int(self.initial)]),
        )?;
        Ok(StepOutcome::Done)
    }
}
