//! An order-fulfilment saga with deep compensation chains, analyzed by
//! inference.
//!
//! A fulfilment transaction allocates an order id, reserves stock for one to
//! four legs (one step per leg), places a payment hold, and ships — up to
//! seven steps. Any leg can abort (insufficient stock) and any crash point
//! leaves up to six completed steps to compensate: release every reserved
//! leg, drop the payment hold, delete the saga's own rows. This is the
//! §3.4 compensation story stretched far past TPC-C's two-to-three-step
//! chains.
//!
//! Everything the saga writes is either a commutative delta (stock,
//! holds, revenue), a fresh-keyed insert (the saga header and its items,
//! keyed by the freshly allocated order id — [`ORDERS`]), or an assignment
//! confined to the instance's own rows (the final state flip) — so the
//! inference proves every step guard-safe with no hand declarations.
//!
//! Two deliberately conservative cells showcase the default: `res-mid`
//! reads `LEDGER.capacity` *without* delta tolerance (the predicate is a
//! bound, not a sum the instance contributes to), so `restock` and the
//! shipping step — both capacity deltas — interfere with it. The mechanical
//! analysis cannot know a capacity bound survives commutative additions; the
//! paper's answer is to block, and the matrix says so.
//!
//! Quiescent invariants audited: stock accounting (`capacity = on_hand +
//! reserved` summed over SKUs), zero outstanding reservations and holds,
//! revenue equal to the value of completed sagas, per-customer balances
//! consistent with their completed orders, and saga/item row alignment.

use acc_common::{
    AssertionTemplateId, Error, Result, SeededRng, StepTypeId, TableId, TxnTypeId, Value,
};
use acc_core::analysis::Decision;
use acc_core::{
    Acc, AssertionRegistry, Inference, InterferenceTables, KeySpace, StepFootprint, StepSpec,
    TableFootprint, TxnSpec, DIRTY,
};
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::{StepCtx, StepOutcome, TxnProgram};
use acc_wal::InFlight;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Table ids in catalog order.
pub mod table {
    use acc_common::TableId;
    pub const SKU: TableId = TableId(0);
    pub const ACCOUNT: TableId = TableId(1);
    pub const SAGA: TableId = TableId(2);
    pub const SAGA_ITEM: TableId = TableId(3);
    pub const LEDGER: TableId = TableId(4);
}

/// Column positions.
pub mod col {
    /// SKU columns.
    pub mod s {
        pub const ID: usize = 0;
        pub const ON_HAND: usize = 1;
        pub const RESERVED: usize = 2;
    }
    /// ACCOUNT (customer) columns.
    pub mod a {
        pub const ID: usize = 0;
        pub const BALANCE: usize = 1;
        pub const HELD: usize = 2;
    }
    /// SAGA header columns.
    pub mod g {
        pub const ID: usize = 0;
        pub const CUST: usize = 1;
        pub const N_LEGS: usize = 2;
        /// 0 = in flight, 1 = shipped.
        pub const STATE: usize = 3;
    }
    /// SAGA-ITEM columns (key: order id, leg).
    pub mod i {
        pub const ORDER_ID: usize = 0;
        pub const LEG: usize = 1;
        pub const SKU: usize = 2;
        pub const QTY: usize = 3;
    }
    /// LEDGER columns (single row, id 0).
    pub mod l {
        pub const ID: usize = 0;
        pub const CAPACITY: usize = 1;
        pub const REVENUE: usize = 2;
        pub const NEXT_ORDER: usize = 3;
    }
}

/// Key space of freshly allocated order ids (from `LEDGER.next_order`); the
/// saga header and every saga item are keyed by it.
pub const ORDERS: KeySpace = KeySpace(0);

/// Step type ids. The four fulfilment shapes (1–4 legs) share step types:
/// the *step* semantics are identical, only the step count differs.
pub mod step {
    use acc_common::StepTypeId;
    pub const FUL_S1: StepTypeId = StepTypeId(1);
    pub const FUL_RES: StepTypeId = StepTypeId(2);
    pub const FUL_PAY: StepTypeId = StepTypeId(3);
    pub const FUL_SHIP: StepTypeId = StepTypeId(4);
    pub const RESTOCK: StepTypeId = StepTypeId(5);
    pub const STATUS: StepTypeId = StepTypeId(6);
    pub const FUL_CS: StepTypeId = StepTypeId(20);
}

/// Transaction type ids. `FULFIL_1..=FULFIL_4` are the four leg counts; a
/// `TxnSpec` declares a *fixed* step sequence, so each saga length is its
/// own type (the overflow mechanism only cycles a tail, it cannot express
/// "N legs, then two closing steps").
pub mod ty {
    use acc_common::TxnTypeId;
    pub const FULFIL_1: TxnTypeId = TxnTypeId(1);
    pub const FULFIL_2: TxnTypeId = TxnTypeId(2);
    pub const FULFIL_3: TxnTypeId = TxnTypeId(3);
    pub const FULFIL_4: TxnTypeId = TxnTypeId(4);
    pub const RESTOCK: TxnTypeId = TxnTypeId(5);
    pub const STATUS: TxnTypeId = TxnTypeId(6);
}

/// Unit price of a SKU — derivable everywhere, so audits can recompute order
/// values from the durable saga items alone.
pub fn price(sku: i64) -> i64 {
    10 + sku
}

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("sku")
            .column("id", ColumnType::Int)
            .column("on_hand", ColumnType::Int)
            .column("reserved", ColumnType::Int)
            .key(&["id"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("account")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Int)
            .column("held", ColumnType::Int)
            .key(&["id"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("saga")
            .column("id", ColumnType::Int)
            .column("cust", ColumnType::Int)
            .column("n_legs", ColumnType::Int)
            .column("state", ColumnType::Int)
            .key(&["id"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("saga_item")
            .column("order_id", ColumnType::Int)
            .column("leg", ColumnType::Int)
            .column("sku", ColumnType::Int)
            .column("qty", ColumnType::Int)
            .key(&["order_id", "leg"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("ledger")
            .column("id", ColumnType::Int)
            .column("capacity", ColumnType::Int)
            .column("revenue", ColumnType::Int)
            .column("next_order", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    c
}

const INIT_ON_HAND: i64 = 60;
const INIT_BALANCE: i64 = 10_000;

/// Build and populate the base database: SKUs `1..=skus`, customer accounts
/// `1..=customers`.
pub fn populate(skus: i64, customers: i64) -> Database {
    let mut db = Database::new(&catalog());
    for s in 1..=skus {
        db.table_mut(table::SKU)
            .expect("sku table")
            .insert(Row(vec![
                Value::Int(s),
                Value::Int(INIT_ON_HAND),
                Value::Int(0),
            ]))
            .expect("populate sku");
    }
    for a in 1..=customers {
        db.table_mut(table::ACCOUNT)
            .expect("account table")
            .insert(Row(vec![
                Value::Int(a),
                Value::Int(INIT_BALANCE),
                Value::Int(0),
            ]))
            .expect("populate account");
    }
    db.table_mut(table::LEDGER)
        .expect("ledger table")
        .insert(Row(vec![
            Value::Int(0),
            Value::Int(skus * INIT_ON_HAND),
            Value::Int(0),
            Value::Int(1),
        ]))
        .expect("populate ledger");
    db
}

/// Step names for reports and the `figures -- infer` JSON dump.
pub fn step_names() -> Vec<(StepTypeId, &'static str)> {
    use step::*;
    vec![
        (FUL_S1, "fulfil: open saga"),
        (FUL_RES, "fulfil: reserve one leg"),
        (FUL_PAY, "fulfil: hold payment"),
        (FUL_SHIP, "fulfil: ship and settle"),
        (RESTOCK, "restock"),
        (STATUS, "order-status (read-only)"),
        (FUL_CS, "fulfil compensation"),
    ]
}

/// The complete design-time product for the saga family.
pub struct SagaKit {
    /// The template registry (DIRTY + `res-mid`).
    pub registry: Arc<AssertionRegistry>,
    /// The machine-inferred interference matrix.
    pub tables: Arc<InterferenceTables>,
    /// The ACC policy driving the decomposed types.
    pub acc: Arc<Acc>,
    /// Every recorded inference decision.
    pub decisions: Vec<Decision>,
    /// The mid-saga reservation template.
    pub res_mid: AssertionTemplateId,
    /// SKUs in the base population.
    pub skus: i64,
    /// Customer accounts in the base population.
    pub customers: i64,
}

impl SagaKit {
    /// Run the inference and build the policy.
    pub fn build(skus: i64, customers: i64) -> SagaKit {
        use col::{a, g, l, s};
        use step::*;
        use table::*;

        let mut reg = AssertionRegistry::new();
        // "My reservations are intact": the instance's own saga rows are
        // untouched, stock counters moved only by commutative deltas — but
        // the capacity column is read as a *bound*, which mechanical
        // analysis cannot prove invariant under other steps' deltas.
        let res_mid = reg.define(
            "res-mid: reserved legs intact, stock accounting consistent",
            vec![
                TableFootprint::columns(SKU, [s::ON_HAND, s::RESERVED]).tolerates_deltas(),
                TableFootprint::rows(SAGA_ITEM, []).own(ORDERS),
                TableFootprint::columns(table::SAGA, [g::STATE]).own(ORDERS),
                TableFootprint::columns(LEDGER, [l::CAPACITY]),
            ],
            None,
        );

        let (tables, decisions) = Inference::new(&reg)
            .step(StepFootprint::new(
                FUL_S1,
                "fulfil: open saga",
                vec![
                    TableFootprint::columns(LEDGER, [l::NEXT_ORDER]).delta(),
                    TableFootprint::rows(table::SAGA, [0, 1, 2, 3]).fresh(ORDERS),
                ],
            ))
            .step(StepFootprint::new(
                FUL_RES,
                "fulfil: reserve one leg",
                vec![
                    TableFootprint::columns(SKU, [s::ON_HAND, s::RESERVED]).delta(),
                    TableFootprint::rows(SAGA_ITEM, [0, 1, 2, 3]).fresh(ORDERS),
                ],
            ))
            .step(StepFootprint::new(
                FUL_PAY,
                "fulfil: hold payment",
                vec![TableFootprint::columns(ACCOUNT, [a::HELD]).delta()],
            ))
            .step(StepFootprint::new(
                FUL_SHIP,
                "fulfil: ship and settle",
                vec![
                    TableFootprint::columns(SKU, [s::RESERVED]).delta(),
                    TableFootprint::columns(ACCOUNT, [a::BALANCE, a::HELD]).delta(),
                    TableFootprint::columns(LEDGER, [l::REVENUE, l::CAPACITY]).delta(),
                    TableFootprint::columns(table::SAGA, [g::STATE]).own(ORDERS),
                ],
            ))
            .step(StepFootprint::new(
                RESTOCK,
                "restock",
                vec![
                    TableFootprint::columns(SKU, [s::ON_HAND]).delta(),
                    TableFootprint::columns(LEDGER, [l::CAPACITY]).delta(),
                ],
            ))
            .step(StepFootprint::new(
                STATUS,
                "order-status (read-only)",
                vec![],
            ))
            .step(StepFootprint::new(
                FUL_CS,
                "fulfil compensation",
                vec![
                    TableFootprint::columns(SKU, [s::ON_HAND, s::RESERVED]).delta(),
                    TableFootprint::columns(ACCOUNT, [a::HELD]).delta(),
                    TableFootprint::rows(SAGA_ITEM, []).own(ORDERS),
                    TableFootprint::rows(table::SAGA, []).own(ORDERS),
                ],
            ))
            .require_committed_reads(STATUS)
            .build();

        let fulfil_spec = |ty: TxnTypeId, legs: usize| {
            let mut steps = vec![StepSpec {
                step_type: FUL_S1,
                active: vec![res_mid],
            }];
            for _ in 0..legs {
                steps.push(StepSpec {
                    step_type: FUL_RES,
                    active: vec![res_mid],
                });
            }
            steps.push(StepSpec {
                step_type: FUL_PAY,
                active: vec![res_mid],
            });
            steps.push(StepSpec {
                step_type: FUL_SHIP,
                active: vec![res_mid],
            });
            TxnSpec {
                txn_type: ty,
                name: format!("fulfil-{legs}"),
                steps,
                overflow: None,
                comp_step: Some(FUL_CS),
                guard: DIRTY,
                version_safe: false,
            }
        };
        let specs = vec![
            fulfil_spec(ty::FULFIL_1, 1),
            fulfil_spec(ty::FULFIL_2, 2),
            fulfil_spec(ty::FULFIL_3, 3),
            fulfil_spec(ty::FULFIL_4, 4),
            TxnSpec {
                txn_type: ty::RESTOCK,
                name: "restock".to_owned(),
                steps: vec![StepSpec {
                    step_type: RESTOCK,
                    active: vec![],
                }],
                overflow: None,
                comp_step: None,
                guard: DIRTY,
                version_safe: false,
            },
            TxnSpec {
                txn_type: ty::STATUS,
                name: "order-status".to_owned(),
                steps: vec![StepSpec {
                    step_type: STATUS,
                    active: vec![],
                }],
                overflow: None,
                comp_step: None,
                guard: DIRTY,
                version_safe: true,
            },
        ];

        let registry = Arc::new(reg);
        let acc = Arc::new(Acc::new(Arc::clone(&registry), specs));
        SagaKit {
            registry,
            tables: Arc::new(tables),
            acc,
            decisions,
            res_mid,
            skus,
            customers,
        }
    }

    /// One seeded transaction from the standard mix: 60 % fulfilments
    /// (uniform 1–4 legs), 20 % restocks, 20 % status inquiries.
    pub fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send> {
        match rng.index(10) {
            0..=5 => {
                let n_legs = rng.int_range(1, 4);
                let legs = (0..n_legs)
                    .map(|_| (rng.int_range(1, self.skus), rng.int_range(1, 5)))
                    .collect();
                Box::new(Fulfil::new(rng.int_range(1, self.customers), legs))
            }
            6 | 7 => Box::new(Restock {
                sku: rng.int_range(1, self.skus),
                qty: rng.int_range(5, 40),
            }),
            _ => Box::new(Status {
                order_id: rng.int_range(1, 40),
                sku: rng.int_range(1, self.skus),
            }),
        }
    }

    /// Rebuild the compensable program for a recovered in-flight transaction.
    pub fn program_for_inflight(&self, inf: &InFlight) -> Result<Box<dyn TxnProgram + Send>> {
        match inf.txn_type {
            t if (ty::FULFIL_1.raw()..=ty::FULFIL_4.raw()).contains(&t.raw()) => {
                Fulfil::recovered(&inf.work_area)
                    .filter(|p| p.txn_type() == t)
                    .map(|p| Box::new(p) as Box<dyn TxnProgram + Send>)
                    .ok_or_else(|| {
                        Error::Recovery(format!("unparseable fulfil work area for {}", inf.txn))
                    })
            }
            other => Err(Error::Recovery(format!(
                "in-flight transaction {} has non-compensable saga type {other}",
                inf.txn
            ))),
        }
    }
}

/// The quiescence audit. Returns one line per violation.
pub fn audit(db: &Database) -> Vec<String> {
    use col::{a, g, i, l};
    let mut out = Vec::new();
    let skus = db.table(table::SKU).expect("sku table");
    let accounts = db.table(table::ACCOUNT).expect("account table");
    let sagas = db.table(table::SAGA).expect("saga table");
    let items = db.table(table::SAGA_ITEM).expect("saga_item table");
    let ledger = db.table(table::LEDGER).expect("ledger table");
    let (_, lrow) = ledger
        .get(&Key::ints(&[0]))
        .expect("ledger row 0 must exist");

    // Stock accounting: capacity = sum(on_hand) + sum(reserved); at
    // quiescence no reservation is outstanding.
    let (mut on_hand, mut reserved) = (0i64, 0i64);
    for (_, r) in skus.iter() {
        on_hand += r.int(col::s::ON_HAND);
        reserved += r.int(col::s::RESERVED);
        if r.int(col::s::ON_HAND) < 0 || r.int(col::s::RESERVED) < 0 {
            out.push(format!("sku {} has negative stock", r.int(col::s::ID)));
        }
    }
    if reserved != 0 {
        out.push(format!("{reserved} units still reserved at quiescence"));
    }
    if lrow.int(l::CAPACITY) != on_hand + reserved {
        out.push(format!(
            "capacity {} != on_hand {on_hand} + reserved {reserved}",
            lrow.int(l::CAPACITY)
        ));
    }

    // Saga/item alignment and per-order value.
    let mut order_value: BTreeMap<i64, i64> = BTreeMap::new();
    let mut legs_seen: BTreeMap<i64, i64> = BTreeMap::new();
    for (_, r) in items.iter() {
        let oid = r.int(i::ORDER_ID);
        *order_value.entry(oid).or_insert(0) += r.int(i::QTY) * price(r.int(i::SKU));
        *legs_seen.entry(oid).or_insert(0) += 1;
    }
    let mut revenue = 0i64;
    let mut spent: BTreeMap<i64, i64> = BTreeMap::new();
    let mut max_order = 0i64;
    let mut n_sagas = 0usize;
    for (_, r) in sagas.iter() {
        n_sagas += 1;
        let oid = r.int(g::ID);
        max_order = max_order.max(oid);
        if r.int(g::STATE) != 1 {
            out.push(format!("saga {oid} left in state {}", r.int(g::STATE)));
        }
        if legs_seen.get(&oid).copied().unwrap_or(0) != r.int(g::N_LEGS) {
            out.push(format!(
                "saga {oid}: {} items for {} declared legs",
                legs_seen.get(&oid).copied().unwrap_or(0),
                r.int(g::N_LEGS)
            ));
        }
        let value = order_value.get(&oid).copied().unwrap_or(0);
        revenue += value;
        *spent.entry(r.int(g::CUST)).or_insert(0) += value;
    }
    if legs_seen.len() != n_sagas {
        out.push(format!(
            "{} orders own saga items but only {n_sagas} saga headers exist",
            legs_seen.len()
        ));
    }
    if lrow.int(l::REVENUE) != revenue {
        out.push(format!(
            "ledger revenue {} != value of completed sagas {revenue}",
            lrow.int(l::REVENUE)
        ));
    }
    if lrow.int(l::NEXT_ORDER) <= max_order {
        out.push(format!(
            "ledger next_order {} <= max saga id {max_order}",
            lrow.int(l::NEXT_ORDER)
        ));
    }

    // Accounts: no outstanding holds; balance reflects completed orders.
    for (_, r) in accounts.iter() {
        let id = r.int(a::ID);
        if r.int(a::HELD) != 0 {
            out.push(format!(
                "account {id} holds {} at quiescence",
                r.int(a::HELD)
            ));
        }
        let want = INIT_BALANCE - spent.get(&id).copied().unwrap_or(0);
        if r.int(a::BALANCE) != want {
            out.push(format!(
                "account {id} balance {} != expected {want}",
                r.int(a::BALANCE)
            ));
        }
    }
    out
}

fn add_int(ctx: &mut StepCtx<'_>, tbl: TableId, key: &Key, c: usize, d: i64) -> Result<()> {
    let updated = ctx.update_key(tbl, key, |r| {
        let v = r.int(c);
        r.set(c, Value::Int(v + d));
    })?;
    if !updated {
        return Err(Error::NotFound(format!("{tbl:?} row {key:?}")));
    }
    Ok(())
}

fn read_i64(bytes: &[u8], at: usize) -> Option<i64> {
    bytes
        .get(at..at + 8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("8-byte slice")))
}

// ---------------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------------

/// The fulfilment saga: open, reserve each leg, hold payment, ship.
pub struct Fulfil {
    /// Customer placing the order.
    pub cust: i64,
    /// `(sku, qty)` per leg (1–4 legs).
    pub legs: Vec<(i64, i64)>,
    /// The order id allocated in step 0 (idempotently overwritten there,
    /// restored from the work area by recovery).
    pub order_id: Option<i64>,
}

impl Fulfil {
    /// A fresh saga.
    pub fn new(cust: i64, legs: Vec<(i64, i64)>) -> Fulfil {
        assert!(
            (1..=4).contains(&legs.len()),
            "fulfilment sagas have 1..=4 legs"
        );
        Fulfil {
            cust,
            legs,
            order_id: None,
        }
    }

    /// Rebuild from a recovered work area:
    /// `[order_id, cust, n_legs, (sku, qty) * n_legs]` as little-endian i64s.
    pub fn recovered(wa: &[u8]) -> Option<Fulfil> {
        let order_id = read_i64(wa, 0)?;
        let cust = read_i64(wa, 8)?;
        let n_legs = read_i64(wa, 16)?;
        if order_id < 1 || !(1..=4).contains(&n_legs) {
            return None;
        }
        let mut legs = Vec::new();
        for leg in 0..n_legs as usize {
            let sku = read_i64(wa, 24 + leg * 16)?;
            let qty = read_i64(wa, 32 + leg * 16)?;
            if qty < 0 {
                return None;
            }
            legs.push((sku, qty));
        }
        Some(Fulfil {
            cust,
            legs,
            order_id: Some(order_id),
        })
    }

    fn total(&self) -> i64 {
        self.legs.iter().map(|&(sku, qty)| qty * price(sku)).sum()
    }

    fn oid(&self) -> i64 {
        self.order_id.expect("order id allocated in step 0")
    }
}

impl TxnProgram for Fulfil {
    fn txn_type(&self) -> TxnTypeId {
        TxnTypeId(self.legs.len() as u32)
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let n_legs = self.legs.len() as u32;
        let lkey = Key::ints(&[0]);
        if i == 0 {
            // Open: allocate the order id, insert the saga header.
            let lrow = ctx
                .read_for_update(table::LEDGER, &lkey)?
                .ok_or_else(|| Error::NotFound("ledger row".to_owned()))?;
            let oid = lrow.int(col::l::NEXT_ORDER);
            self.order_id = Some(oid);
            ctx.update_key(table::LEDGER, &lkey, |r| {
                r.set(col::l::NEXT_ORDER, Value::Int(oid + 1));
            })?;
            ctx.insert(
                table::SAGA,
                Row(vec![
                    Value::Int(oid),
                    Value::Int(self.cust),
                    Value::Int(n_legs as i64),
                    Value::Int(0),
                ]),
            )?;
            Ok(StepOutcome::Continue)
        } else if i <= n_legs {
            // Reserve one leg; abort the whole saga on insufficient stock
            // (compensation then unwinds every leg reserved so far).
            let leg = (i - 1) as usize;
            let (sku, qty) = self.legs[leg];
            let skey = Key::ints(&[sku]);
            let srow = ctx
                .read_for_update(table::SKU, &skey)?
                .ok_or_else(|| Error::NotFound(format!("sku {sku}")))?;
            if srow.int(col::s::ON_HAND) < qty {
                return Ok(StepOutcome::Abort);
            }
            ctx.update_key(table::SKU, &skey, |r| {
                let oh = r.int(col::s::ON_HAND);
                let rs = r.int(col::s::RESERVED);
                r.set(col::s::ON_HAND, Value::Int(oh - qty));
                r.set(col::s::RESERVED, Value::Int(rs + qty));
            })?;
            ctx.insert(
                table::SAGA_ITEM,
                Row(vec![
                    Value::Int(self.oid()),
                    Value::Int(leg as i64),
                    Value::Int(sku),
                    Value::Int(qty),
                ]),
            )?;
            Ok(StepOutcome::Continue)
        } else if i == n_legs + 1 {
            // Hold payment; abort if the customer cannot cover it.
            let total = self.total();
            let akey = Key::ints(&[self.cust]);
            let arow = ctx
                .read_for_update(table::ACCOUNT, &akey)?
                .ok_or_else(|| Error::NotFound(format!("account {}", self.cust)))?;
            if arow.int(col::a::BALANCE) - arow.int(col::a::HELD) < total {
                return Ok(StepOutcome::Abort);
            }
            add_int(ctx, table::ACCOUNT, &akey, col::a::HELD, total)?;
            Ok(StepOutcome::Continue)
        } else {
            // Ship and settle: release reservations outward, capture the
            // hold, book revenue, flip the saga's own state row.
            let total = self.total();
            let mut shipped_units = 0;
            for &(sku, qty) in &self.legs {
                add_int(ctx, table::SKU, &Key::ints(&[sku]), col::s::RESERVED, -qty)?;
                shipped_units += qty;
            }
            let akey = Key::ints(&[self.cust]);
            add_int(ctx, table::ACCOUNT, &akey, col::a::BALANCE, -total)?;
            add_int(ctx, table::ACCOUNT, &akey, col::a::HELD, -total)?;
            ctx.update_key(table::LEDGER, &lkey, |r| {
                let rev = r.int(col::l::REVENUE);
                let cap = r.int(col::l::CAPACITY);
                r.set(col::l::REVENUE, Value::Int(rev + total));
                r.set(col::l::CAPACITY, Value::Int(cap - shipped_units));
            })?;
            let flipped = ctx.update_key(table::SAGA, &Key::ints(&[self.oid()]), |r| {
                r.set(col::g::STATE, Value::Int(1));
            })?;
            if !flipped {
                return Err(Error::Internal(format!(
                    "saga {} lost its own header before shipping",
                    self.oid()
                )));
            }
            Ok(StepOutcome::Done)
        }
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        let n_legs = self.legs.len() as u32;
        let oid = self.oid();
        // Legs reserved by completed steps 2..=steps_completed.
        let legs_done = steps_completed.saturating_sub(1).min(n_legs) as usize;
        for leg in 0..legs_done {
            let (sku, qty) = self.legs[leg];
            ctx.update_key(table::SKU, &Key::ints(&[sku]), |r| {
                let oh = r.int(col::s::ON_HAND);
                let rs = r.int(col::s::RESERVED);
                r.set(col::s::ON_HAND, Value::Int(oh + qty));
                r.set(col::s::RESERVED, Value::Int(rs - qty));
            })?;
            ctx.delete_key(table::SAGA_ITEM, &Key::ints(&[oid, leg as i64]))?;
        }
        if steps_completed >= n_legs + 2 {
            add_int(
                ctx,
                table::ACCOUNT,
                &Key::ints(&[self.cust]),
                col::a::HELD,
                -self.total(),
            )?;
        }
        ctx.delete_key(table::SAGA, &Key::ints(&[oid]))?;
        Ok(())
    }

    fn work_area(&self) -> Vec<u8> {
        let mut wa = Vec::with_capacity(24 + 16 * self.legs.len());
        for v in [
            self.order_id.unwrap_or(0),
            self.cust,
            self.legs.len() as i64,
        ] {
            wa.extend_from_slice(&v.to_le_bytes());
        }
        for &(sku, qty) in &self.legs {
            wa.extend_from_slice(&sku.to_le_bytes());
            wa.extend_from_slice(&qty.to_le_bytes());
        }
        wa
    }
}

/// One-step restock: add stock to a SKU and capacity to the ledger.
pub struct Restock {
    /// SKU restocked.
    pub sku: i64,
    /// Units added.
    pub qty: i64,
}

impl TxnProgram for Restock {
    fn txn_type(&self) -> TxnTypeId {
        ty::RESTOCK
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        add_int(
            ctx,
            table::SKU,
            &Key::ints(&[self.sku]),
            col::s::ON_HAND,
            self.qty,
        )?;
        add_int(
            ctx,
            table::LEDGER,
            &Key::ints(&[0]),
            col::l::CAPACITY,
            self.qty,
        )?;
        Ok(StepOutcome::Done)
    }
}

/// Read-only order status (version-read eligible): the saga header, its
/// items, and current stock for one SKU.
pub struct Status {
    /// Order inquired about (may not exist).
    pub order_id: i64,
    /// A SKU whose stock the caller also checks.
    pub sku: i64,
}

impl TxnProgram for Status {
    fn txn_type(&self) -> TxnTypeId {
        ty::STATUS
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let header = ctx.read(table::SAGA, &Key::ints(&[self.order_id]))?;
        if header.is_some() {
            let _ = ctx.scan_prefix(table::SAGA_ITEM, &Key::ints(&[self.order_id]))?;
        }
        let _ = ctx.read(table::SKU, &Key::ints(&[self.sku]))?;
        Ok(StepOutcome::Done)
    }
}
