//! Workload families beyond TPC-C, built entirely on the *inferred*
//! interference tables.
//!
//! TPC-C's decomposition (`acc-tpcc`) was analyzed by hand, with the
//! automatic inference (`acc_core::infer`) differential-tested against it.
//! The two families here invert that relationship: neither has a hand table
//! at all. Each declares honest step footprints and assertion-template read
//! footprints, runs [`acc_core::Inference`], and installs whatever matrix
//! comes out — the bring-your-own-workload path a user of the system would
//! take.
//!
//! * [`smallbank`] — a smallbank-style account/transfer mix: seven
//!   transaction types over four tables, conservation-of-money invariant,
//!   two multi-step types with compensation.
//! * [`saga`] — an order-fulfilment saga with up to four reservation legs
//!   before payment and shipping; crashing late in a long saga exercises
//!   compensation chains up to six completed steps deep.
//! * [`torture`] — a workload-generic crash/switchover torture harness:
//!   baseline, live [`install_oracle`](acc_txn::SharedDb::install_oracle)
//!   switchover from fully-conservative default tables to the inferred ones,
//!   determinism double-run, and a crash-at-every-WAL-append sweep with
//!   resumed compensation and the family's own consistency audit at every
//!   point.

pub mod saga;
pub mod smallbank;
pub mod torture;

pub use torture::{
    run_workload_torture, WorkloadKit, WorkloadTortureConfig, WorkloadTortureReport,
};
