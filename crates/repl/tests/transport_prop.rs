//! Model-based randomized replication test: under random transport
//! misbehavior plans — drop, duplicate, delay/reorder, tear — and random
//! batch sizes, the pump must always converge the follower to a byte image
//! identical to the leader's durable prefix, and a follower crashed and
//! resumed at a random point must converge to the same image after the
//! chain handshake.
//!
//! The "model" here is the leader's durable stream itself: replication adds
//! no semantics, so the only correct follower state is byte equality, and
//! the replayed image is checked row-for-row against the leader's own
//! recovery of the same prefix.

use acc_common::faults::ShipPlan;
use acc_common::{Result, SeededRng, TableId, TxnTypeId, Value};
use acc_lockmgr::NoInterference;
use acc_repl::{frame_prefix, Follower, MemTransport, Replicator};
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::runner::commit;
use acc_txn::{SharedDb, StepCtx, Transaction, TwoPhase, WaitMode};
use acc_wal::{GroupCommitPolicy, MemDevice};
use std::sync::Arc;
use std::time::Duration;

const T: TableId = TableId(0);
const KEYS: i64 = 12;
/// A fixed offset so these seeds don't collide with other suites.
const SEED_BASE: u64 = 0x5e1f_0000;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("accounts")
            .column("id", ColumnType::Int)
            .column("n", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(3)
            .build(),
    );
    c
}

fn seeded_db() -> Database {
    let c = catalog();
    let mut db = Database::new(&c);
    for id in 0..KEYS {
        db.table_mut(T)
            .unwrap()
            .insert(Row(vec![Value::Int(id), Value::Int(0)]))
            .unwrap();
    }
    db
}

/// One read-modify-write transaction adding `delta` to row `id`.
fn add(s: &SharedDb, id: i64, delta: i64) -> Result<()> {
    let tid = s.begin_txn(TxnTypeId(0));
    let mut txn = Transaction::new(tid, TxnTypeId(0));
    {
        let two = TwoPhase;
        let mut ctx = StepCtx::new(s, &two, &mut txn, WaitMode::Block);
        ctx.update_key(T, &Key::ints(&[id]), |r| {
            let n = r.int(1);
            r.set(1, Value::Int(n + delta));
        })?;
    }
    commit(s, &mut txn)
}

/// Run a seeded leader workload and return its durable stream + records.
fn leader_history(rng: &mut SeededRng, txns: usize) -> (Vec<u8>, u64) {
    let policy = GroupCommitPolicy::fixed(Duration::ZERO, 1 << 20);
    let s = SharedDb::new(seeded_db(), Arc::new(NoInterference))
        .with_wal_backend(Box::new(MemDevice::new()), policy);
    for _ in 0..txns {
        let id = rng.int_range(0, KEYS - 1);
        let delta = rng.int_range(1, 9);
        add(&s, id, delta).expect("leader commit");
    }
    (s.wal_durable_stream(), s.durable_wal_records())
}

/// The leader's own recovery of its durable prefix — the reference image.
fn reference_image(durable: &[u8]) -> Database {
    let mut db = seeded_db();
    acc_wal::recover(&mut db, &acc_wal::Wal::from_bytes(durable)).expect("reference recovery");
    db
}

fn assert_images_match(reference: &Database, follower: &mut Follower, seed: u64) {
    for id in 0..KEYS {
        let key = Key::ints(&[id]);
        let want = reference
            .table(T)
            .unwrap()
            .get(&key)
            .map(|(_, r)| r.clone());
        let got = follower.read_at(T, &key).expect("replayed read");
        assert_eq!(want, got, "seed {seed}: row {id} differs after replication");
    }
}

#[test]
fn random_misbehavior_plans_always_converge_to_the_leader_prefix() {
    for seed in 0..24u64 {
        let mut rng = SeededRng::new(SEED_BASE + seed);
        let txns = rng.int_range(4, 20) as usize;
        let (durable, records) = leader_history(&mut rng, txns);
        let plan = ShipPlan::seeded(&mut rng);
        let max_batch = rng.int_range(40, 600) as usize;

        let mut rep = Replicator::new(MemTransport::with_plan(plan), max_batch, seed);
        let mut f = Follower::new(seeded_db(), Box::new(MemDevice::new()));
        rep.pump(&mut f, &durable, records)
            .unwrap_or_else(|e| panic!("seed {seed}: pump failed under {plan:?}: {e}"));

        assert_eq!(
            f.stream(),
            &durable[..],
            "seed {seed}: follower bytes diverged under {plan:?}"
        );
        assert_eq!(f.replay_lsn(), records, "seed {seed}");
        assert_images_match(&reference_image(&durable), &mut f, seed);
    }
}

#[test]
fn crash_and_resume_at_random_points_still_converges() {
    for seed in 100..112u64 {
        let mut rng = SeededRng::new(SEED_BASE + seed);
        let txns = rng.int_range(6, 16) as usize;
        let (durable, records) = leader_history(&mut rng, txns);

        // First leg: replicate a random frame-aligned prefix cleanly.
        let cut = rng.int_range(1, durable.len() as i64 - 1) as usize;
        let (half_len, half_records) = frame_prefix(&durable[..cut]);
        let mut rep = Replicator::new(MemTransport::new(), 200, seed);
        let mut f = Follower::new(seeded_db(), Box::new(MemDevice::new()));
        rep.pump(&mut f, &durable[..half_len], half_records)
            .expect("first leg");

        // Crash the follower; maybe a torn local write is in flight.
        let mut dev = f.into_device();
        if rng.chance(0.5) {
            let torn = rng.int_range(1, 11) as usize;
            dev.stage(&vec![0xEEu8; torn]);
            let _ = dev.sync();
        }
        let mut f = Follower::resume(seeded_db(), dev);
        assert_eq!(f.replay_lsn(), half_records, "seed {seed}: salvage drift");

        // Second leg under a hostile plan, after the chain handshake.
        let plan = ShipPlan::seeded(&mut rng);
        let mut rep = Replicator::new(MemTransport::with_plan(plan), 200, seed ^ 1);
        rep.resume(&durable, f.resume_point())
            .unwrap_or_else(|e| panic!("seed {seed}: clean resume refused: {e}"));
        rep.pump(&mut f, &durable, records)
            .unwrap_or_else(|e| panic!("seed {seed}: second leg failed under {plan:?}: {e}"));

        assert_eq!(f.stream(), &durable[..], "seed {seed}");
        assert_images_match(&reference_image(&durable), &mut f, seed);
    }
}
