//! The follower-lag / catch-up table behind EXPERIMENTS.md §Replication.
//!
//! Wall-clock is meaningless on a 1-core CI host, so every quantity here is
//! a deterministic count: ship batches, pump rounds (resumes included), and
//! the `ship_lag_max` high-water gauge (leader records the follower still
//! lacked at the worst moment). Regenerate the table with:
//!
//! ```text
//! cargo test -p acc-repl --test lag_table -- --nocapture
//! ```
//!
//! The stream is synthetic (fixed-size record frames) so the table isolates
//! ship mechanics — batch size and transport delay — from workload shape.

use acc_common::events::EventSink;
use acc_common::faults::ShipPlan;
use acc_repl::{Follower, MemTransport, Replicator};
use acc_storage::{Catalog, Database};
use acc_wal::MemDevice;
use std::sync::Arc;

/// One synthetic record frame: 12-byte header + 120 payload bytes (about
/// the mean frame size of the seeded TPC-C mix).
const FRAME_PAYLOAD: usize = 120;
const FRAME: usize = 12 + FRAME_PAYLOAD;

fn stream(frames: usize) -> Vec<u8> {
    let mut s = Vec::with_capacity(frames * FRAME);
    for i in 0..frames {
        let mut f = vec![0u8; FRAME];
        f[..4].copy_from_slice(&(FRAME_PAYLOAD as u32).to_le_bytes());
        f[12..].fill(i as u8);
        s.extend(f);
    }
    s
}

fn follower() -> Follower {
    Follower::new(Database::new(&Catalog::new()), Box::new(MemDevice::new()))
}

struct Cell {
    batches: u64,
    resumes: u64,
    max_lag: u64,
}

fn replicate(frames: usize, batch_bytes: usize, plan: ShipPlan) -> Cell {
    let durable = stream(frames);
    let sink = EventSink::enabled(16);
    let mut rep = Replicator::new(MemTransport::with_plan(plan), batch_bytes, 42)
        .with_events(Arc::clone(&sink));
    let mut f = follower();
    rep.pump(&mut f, &durable, frames as u64).expect("pump");
    assert_eq!(f.stream(), &durable[..], "lag cell diverged");
    Cell {
        batches: sink.counters().ship_batches,
        resumes: sink.counters().ship_resumes,
        max_lag: sink.counters().ship_lag_max,
    }
}

#[test]
fn lag_table() {
    const FRAMES: usize = 1000;
    let delays: [(&str, ShipPlan); 3] = [
        ("none", ShipPlan::default()),
        (
            "1-in-3 by 2",
            ShipPlan {
                delay_every: Some((3, 2)),
                ..Default::default()
            },
        ),
        (
            "1-in-2 by 3",
            ShipPlan {
                delay_every: Some((2, 3)),
                ..Default::default()
            },
        ),
    ];
    println!("\nreplay lag over a {FRAMES}-record stream (counts, not wall-clock):");
    println!(
        "{:>12} {:>13} {:>9} {:>9} {:>9}",
        "batch bytes", "delay plan", "batches", "resumes", "max lag"
    );
    for &batch in &[256usize, 1024, 4096, 16384] {
        for (label, plan) in &delays {
            let c = replicate(FRAMES, batch, *plan);
            println!(
                "{batch:>12} {label:>13} {:>9} {:>9} {:>9}",
                c.batches, c.resumes, c.max_lag
            );
            // Sanity pins so the published table can't silently rot: a
            // clean transport needs exactly ceil(stream/batch-aligned)
            // ships and its worst lag is everything minus the first batch.
            if plan.is_clean() {
                let per = (batch / FRAME).max(1) as u64;
                let expect = (FRAMES as u64).div_ceil(per);
                assert_eq!(c.batches, expect, "batch={batch}");
                assert_eq!(c.max_lag, FRAMES as u64 - per.min(FRAMES as u64));
                assert_eq!(c.resumes, 0);
            } else {
                assert!(c.resumes > 0, "delay plan never forced a resume");
            }
        }
    }
}

#[test]
fn partition_catch_up() {
    const FRAMES: usize = 1500;
    const PARTITION_AT: usize = 500;
    let durable = stream(FRAMES);
    println!("\ncatch-up after a 1000-record partition (follower at {PARTITION_AT}):");
    println!(
        "{:>12} {:>11} {:>15} {:>15}",
        "batch bytes", "lag at heal", "batches to heal", "resumes"
    );
    for &batch in &[1024usize, 4096, 16384] {
        let sink = EventSink::enabled(16);
        let mut rep =
            Replicator::new(MemTransport::new(), batch, 42).with_events(Arc::clone(&sink));
        let mut f = follower();
        // Replicate the pre-partition prefix, then the link dies while the
        // leader commits another 1000 records.
        rep.pump(
            &mut f,
            &durable[..PARTITION_AT * FRAME],
            PARTITION_AT as u64,
        )
        .expect("pre-partition pump");
        let before = sink.counters().ship_batches;
        let lag_at_heal = (FRAMES - PARTITION_AT) as u64;
        // Heal: one pump drains the backlog.
        rep.pump(&mut f, &durable, FRAMES as u64)
            .expect("catch-up pump");
        let c = sink.counters();
        assert_eq!(f.replay_lsn(), FRAMES as u64, "never caught up");
        println!(
            "{batch:>12} {lag_at_heal:>11} {:>15} {:>15}",
            c.ship_batches - before,
            c.ship_resumes
        );
        let per = (batch / FRAME).max(1) as u64;
        assert_eq!(c.ship_batches - before, lag_at_heal.div_ceil(per));
        assert_eq!(c.ship_resumes, 0);
        // Worst lag is right after the first post-heal batch lands.
        assert_eq!(c.ship_lag_max, lag_at_heal - per, "high-water lag");
    }
}
