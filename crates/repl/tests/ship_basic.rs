//! End-to-end replication over a real leader: transactions commit through
//! the group-commit WAL, the pump ships the durable prefix, and the follower
//! replays it into an image that answers version-safe reads.

use acc_common::events::EventSink;
use acc_common::faults::ShipPlan;
use acc_common::{Error, Result, TableId, TxnTypeId, Value};
use acc_lockmgr::NoInterference;
use acc_repl::{Applied, Follower, MemTransport, Replicator};
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::runner::commit;
use acc_txn::{SharedDb, StepCtx, Transaction, TwoPhase, WaitMode};
use acc_wal::{GroupCommitPolicy, MemDevice};
use std::sync::Arc;
use std::time::Duration;

const T: TableId = TableId(0);

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("counters")
            .column("id", ColumnType::Int)
            .column("n", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(2)
            .build(),
    );
    c
}

fn seeded_db() -> Database {
    let c = catalog();
    let mut db = Database::new(&c);
    for id in 0..8 {
        db.table_mut(T)
            .unwrap()
            .insert(Row(vec![Value::Int(id), Value::Int(0)]))
            .unwrap();
    }
    db
}

/// A leader whose every commit syncs immediately (zero batch window).
fn leader() -> Arc<SharedDb> {
    let policy = GroupCommitPolicy::fixed(Duration::ZERO, 1 << 20);
    Arc::new(
        SharedDb::new(seeded_db(), Arc::new(NoInterference))
            .with_wal_backend(Box::new(MemDevice::new()), policy),
    )
}

/// One read-modify-write transaction bumping row `id`, then commit.
fn bump(s: &SharedDb, id: i64) -> Result<()> {
    let tid = s.begin_txn(TxnTypeId(0));
    let mut txn = Transaction::new(tid, TxnTypeId(0));
    {
        let two = TwoPhase;
        let mut ctx = StepCtx::new(s, &two, &mut txn, WaitMode::Block);
        ctx.update_key(T, &Key::ints(&[id]), |r| {
            let n = r.int(1);
            r.set(1, Value::Int(n + 1));
        })?;
    }
    commit(s, &mut txn)
}

fn fresh_follower() -> Follower {
    Follower::new(seeded_db(), Box::new(MemDevice::new()))
}

#[test]
fn follower_replays_the_shipped_prefix_and_serves_reads() {
    let s = leader();
    for id in 0..5 {
        bump(&s, id).expect("leader commit");
        bump(&s, id).expect("leader commit");
    }
    let durable = s.wal_durable_stream();
    let records = s.durable_wal_records();
    assert!(records > 0, "workload produced no durable records");

    let sink = EventSink::enabled(64);
    let mut rep = Replicator::new(MemTransport::new(), 256, 7).with_events(Arc::clone(&sink));
    let mut f = fresh_follower();
    let stats = rep.pump(&mut f, &durable, records).expect("clean pump");

    assert_eq!(f.stream(), &durable[..], "follower image != durable prefix");
    assert_eq!(f.replay_lsn(), records);
    assert_eq!(stats.records, records);
    assert_eq!(stats.refusals, 0);
    assert_eq!(stats.resumes, 0);
    assert!(stats.batches >= 2, "batch target never split the stream");

    // The replayed image answers reads at the replay frontier.
    for id in 0..5i64 {
        let row = f
            .read_at(T, &Key::ints(&[id]))
            .expect("replayed read")
            .expect("row exists");
        assert_eq!(row.int(1), 2, "row {id}");
    }

    // Ship counters flowed to the sink, and the shipped frontier feeds the
    // leader's prune watermark.
    let c = sink.counters();
    assert_eq!(c.ship_batches, stats.batches);
    assert_eq!(c.ship_records, records);
    assert_eq!(c.ship_refusals, 0);
    assert_eq!(rep.shipped_records(), records);
    s.set_shipped_frontier(rep.shipped_records());
    assert_eq!(s.shipped_frontier(), Some(records));
}

#[test]
fn hostile_transport_converges_to_the_same_bytes() {
    let s = leader();
    for id in 0..8 {
        bump(&s, id).expect("leader commit");
    }
    let durable = s.wal_durable_stream();
    let records = s.durable_wal_records();

    let plan = ShipPlan {
        drop_every: Some(3),
        duplicate_every: Some(2),
        delay_every: Some((5, 2)),
        tear_at: Some((4, acc_common::Corruption::ShipTear(7))),
    };
    let sink = EventSink::enabled(256);
    let mut rep =
        Replicator::new(MemTransport::with_plan(plan), 128, 11).with_events(Arc::clone(&sink));
    let mut f = fresh_follower();
    let stats = rep.pump(&mut f, &durable, records).expect("pump converges");

    assert_eq!(
        f.stream(),
        &durable[..],
        "hostile transport corrupted state"
    );
    assert_eq!(f.replay_lsn(), records);
    assert!(stats.resumes > 0, "plan never forced a resume");
    let c = sink.counters();
    assert!(c.ship_resumes > 0);
    assert!(c.ship_refusals > 0, "the torn batch was never refused");
}

#[test]
fn transient_send_failures_retry_with_backoff() {
    let s = leader();
    for id in 0..4 {
        bump(&s, id).expect("leader commit");
    }
    let durable = s.wal_durable_stream();
    let records = s.durable_wal_records();

    let sink = EventSink::enabled(64);
    let mut rep = Replicator::new(MemTransport::new().failing_every(2), 128, 3)
        .with_events(Arc::clone(&sink));
    let mut f = fresh_follower();
    let stats = rep.pump(&mut f, &durable, records).expect("retries absorb");

    assert_eq!(f.stream(), &durable[..]);
    assert!(stats.retries > 0, "fail_every(2) never tripped");
    assert_eq!(sink.counters().ship_retries, stats.retries);
}

#[test]
fn follower_crash_resume_handshake_and_reship() {
    let s = leader();
    for id in 0..6 {
        bump(&s, id).expect("leader commit");
    }
    let durable = s.wal_durable_stream();
    let records = s.durable_wal_records();

    // Ship roughly half the stream, then crash the follower.
    let half = &durable[..durable.len() / 2];
    let (half_len, half_records) = acc_repl::frame_prefix(half);
    let half_stream = &durable[..half_len];
    let mut rep = Replicator::new(MemTransport::new(), 128, 5);
    let mut f = fresh_follower();
    rep.pump(&mut f, half_stream, half_records)
        .expect("first leg");
    assert_eq!(f.replay_lsn(), half_records);

    // Crash: memory dies, the device survives — including a torn local
    // tail from a write in flight at crash time.
    let mut dev = f.into_device();
    dev.stage(&[0xde, 0xad, 0xbe]);
    let _ = dev.sync();
    let mut f = Follower::resume(seeded_db(), dev);
    assert_eq!(
        f.replay_lsn(),
        half_records,
        "torn tail must not count as replayed history"
    );

    // Handshake: the leader verifies the follower's chain, rewinds, and
    // re-ships the remainder.
    let point = f.resume_point();
    assert_eq!(point.offset, half_len as u64);
    let mut rep = Replicator::new(MemTransport::new(), 128, 6);
    rep.resume(&durable, point).expect("chains match");
    rep.pump(&mut f, &durable, records).expect("second leg");
    assert_eq!(f.stream(), &durable[..]);
    assert_eq!(f.replay_lsn(), records);
}

#[test]
fn diverged_follower_is_refused_with_a_typed_error() {
    let s = leader();
    for id in 0..4 {
        bump(&s, id).expect("leader commit");
    }
    let durable = s.wal_durable_stream();

    // Ship everything, then hand-corrupt the follower's durable tail and
    // restart it: its salvaged history no longer matches the leader's.
    let mut rep = Replicator::new(MemTransport::new(), 128, 9);
    let mut f = fresh_follower();
    rep.pump(&mut f, &durable, s.durable_wal_records())
        .expect("clean pump");
    let mut dev = f.into_device();
    // A whole fake frame, so resume-salvage keeps it: 1 payload byte.
    let mut forged = vec![0u8; 13];
    forged[..4].copy_from_slice(&1u32.to_le_bytes());
    dev.stage(&forged);
    dev.sync().expect("mem device sync");
    let f = Follower::resume(seeded_db(), dev);

    let err = rep
        .resume(&durable, f.resume_point())
        .expect_err("diverged history accepted");
    assert!(
        matches!(err, Error::Divergence { at, .. } if at == durable.len() as u64 + 13),
        "wrong error: {err:?}"
    );
}

#[test]
fn promotion_recovers_the_verified_prefix() {
    let s = leader();
    for id in 0..6 {
        bump(&s, id).expect("leader commit");
    }
    let durable = s.wal_durable_stream();
    let records = s.durable_wal_records();

    let mut rep = Replicator::new(MemTransport::new(), 256, 13);
    let mut f = fresh_follower();
    rep.pump(&mut f, &durable, records).expect("clean pump");

    let promoted = f.promote().expect("promotion");
    assert!(
        promoted.report.needs_compensation.is_empty(),
        "clean commits need no compensation"
    );
    // The promoted image equals the leader's own recovered state.
    let mut leader_img = seeded_db();
    acc_wal::recover(&mut leader_img, &acc_wal::Wal::from_bytes(&durable))
        .expect("leader recovery");
    for id in 0..6i64 {
        let key = Key::ints(&[id]);
        let l = leader_img
            .table(T)
            .unwrap()
            .get(&key)
            .map(|(_, r)| r.clone());
        let p = promoted
            .db
            .table(T)
            .unwrap()
            .get(&key)
            .map(|(_, r)| r.clone());
        assert_eq!(l, p, "row {id} differs after failover");
    }
}

#[test]
fn duplicates_and_stale_batches_are_idempotent() {
    let s = leader();
    for id in 0..3 {
        bump(&s, id).expect("leader commit");
    }
    let durable = s.wal_durable_stream();
    let records = s.durable_wal_records();

    let mut rep = Replicator::new(MemTransport::new(), 1 << 20, 1);
    let mut f = fresh_follower();
    rep.pump(&mut f, &durable, records).expect("clean pump");

    // Re-deliver the whole stream as one stale batch: pure duplicate.
    let stale = acc_repl::ShipBatch {
        seq: 999,
        start: 0,
        payload: durable.clone(),
        chain: acc_repl::stream_chain(&durable),
    };
    assert_eq!(f.apply(&stale), Applied::Duplicate);
    assert_eq!(f.replay_lsn(), records, "duplicate moved the frontier");
}
