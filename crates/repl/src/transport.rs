//! Pluggable ship transports.
//!
//! The default is [`MemTransport`]: a deterministic in-process channel whose
//! misbehavior — drop, duplicate, delay (reorder), tear — is scripted by an
//! [`acc_common::faults::ShipPlan`], so the same plan over the same stream
//! misdelivers identically. A loopback-TCP transport ([`tcp::TcpTransport`])
//! proves the protocol survives a real byte pipe; its wire framing is the
//! workspace-shared [`acc_common::frame`] module (the same frames the
//! `acc-server` front-end speaks), so framing and chained-checksum idioms
//! live in one place.

use crate::ship::ShipBatch;
use acc_common::faults::{ShipAction, ShipPlan};
use acc_common::{Error, Result};
use std::collections::VecDeque;

/// A one-way batch pipe from shipper to follower.
pub trait ShipTransport {
    /// Queue one batch for delivery. `Err` is a *transient* send failure —
    /// the caller retries with backoff; the batch was not delivered.
    fn send(&mut self, batch: ShipBatch) -> Result<()>;

    /// The next delivered batch, if one is available.
    fn recv(&mut self) -> Option<ShipBatch>;
}

/// Deterministic in-memory transport with scripted misbehavior.
#[derive(Debug, Default)]
pub struct MemTransport {
    plan: ShipPlan,
    /// Every `k`th send (1-based) fails transiently before the plan is even
    /// consulted — the retry-with-backoff path.
    fail_every: Option<u64>,
    /// 1-based send ordinal (failed sends count: a retry is a new send).
    sent: u64,
    queue: VecDeque<ShipBatch>,
    /// Held-back batches: `(sends remaining until release, batch)`.
    delayed: Vec<(u32, ShipBatch)>,
}

impl MemTransport {
    /// A perfectly behaved transport.
    pub fn new() -> MemTransport {
        MemTransport::default()
    }

    /// A transport misbehaving per `plan`.
    pub fn with_plan(plan: ShipPlan) -> MemTransport {
        MemTransport {
            plan,
            ..MemTransport::default()
        }
    }

    /// Fail every `k`th send transiently (retry-path injection).
    pub fn failing_every(mut self, k: u64) -> MemTransport {
        self.fail_every = Some(k);
        self
    }

    /// Sends observed (including failed ones).
    pub fn sends(&self) -> u64 {
        self.sent
    }
}

impl ShipTransport for MemTransport {
    fn send(&mut self, batch: ShipBatch) -> Result<()> {
        self.sent += 1;
        let ordinal = self.sent;
        if matches!(self.fail_every, Some(k) if k > 0 && ordinal.is_multiple_of(k)) {
            return Err(Error::Internal("transient ship failure (injected)".into()));
        }
        // Release previously delayed batches whose countdown expires with
        // this send — *before* the current batch is enqueued, so a released
        // batch genuinely arrives out of order.
        let mut due = Vec::new();
        self.delayed.retain_mut(|(left, b)| {
            *left -= 1;
            if *left == 0 {
                due.push(b.clone());
                false
            } else {
                true
            }
        });
        self.queue.extend(due);

        let mut batch = batch;
        self.plan.corruption(ordinal).apply(&mut batch.payload);
        match self.plan.action(ordinal) {
            ShipAction::Deliver => self.queue.push_back(batch),
            ShipAction::Drop => {}
            ShipAction::Duplicate => {
                self.queue.push_back(batch.clone());
                self.queue.push_back(batch);
            }
            ShipAction::Delay(n) => self.delayed.push((n.max(1), batch)),
        }
        Ok(())
    }

    fn recv(&mut self) -> Option<ShipBatch> {
        self.queue.pop_front()
    }
}

/// Loopback-TCP transport: the same protocol over a real socket pair, framed
/// by the workspace-shared [`acc_common::frame`] module. A ship batch maps
/// 1:1 onto a wire [`Frame`]: `seq`/`start`/`chain` ride the header and the
/// batch payload is the frame payload.
pub mod tcp {
    use super::*;
    use acc_common::frame::{Decoded, Frame, FrameBuf};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// A connected loopback socket pair speaking ship batches.
    pub struct TcpTransport {
        tx: TcpStream,
        rx: TcpStream,
        /// Incremental frame decoder over the receive side.
        buf: FrameBuf,
    }

    impl TcpTransport {
        /// Bind an ephemeral loopback listener and connect to it.
        pub fn loopback() -> Result<TcpTransport> {
            let io = |e: std::io::Error| Error::Internal(format!("loopback setup: {e}"));
            let listener = TcpListener::bind("127.0.0.1:0").map_err(io)?;
            let addr = listener.local_addr().map_err(io)?;
            let tx = TcpStream::connect(addr).map_err(io)?;
            let (rx, _) = listener.accept().map_err(io)?;
            rx.set_read_timeout(Some(Duration::from_millis(10)))
                .map_err(io)?;
            tx.set_nodelay(true).map_err(io)?;
            Ok(TcpTransport {
                tx,
                rx,
                buf: FrameBuf::new(),
            })
        }

        /// Pull whatever the socket has ready into the frame decoder; false
        /// once the socket would block (or closed/errored).
        fn fill(&mut self) -> bool {
            let mut chunk = [0u8; 4096];
            loop {
                match self.rx.read(&mut chunk) {
                    Ok(0) => return false,
                    Ok(n) => {
                        self.buf.extend(&chunk[..n]);
                        if n < chunk.len() {
                            return true;
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        return false;
                    }
                    Err(_) => return false,
                }
            }
        }
    }

    impl ShipTransport for TcpTransport {
        fn send(&mut self, batch: ShipBatch) -> Result<()> {
            let wire = Frame {
                seq: batch.seq,
                start: batch.start,
                chain: batch.chain,
                payload: batch.payload,
            }
            .encode();
            self.tx
                .write_all(&wire)
                .map_err(|e| Error::Internal(format!("ship send: {e}")))
        }

        fn recv(&mut self) -> Option<ShipBatch> {
            loop {
                match self.buf.next_frame() {
                    Decoded::Frame(f) => {
                        return Some(ShipBatch {
                            seq: f.seq,
                            start: f.start,
                            payload: f.payload,
                            chain: f.chain,
                        });
                    }
                    // A violating peer gets no further reads — the follower
                    // treats silence as a dead leader and re-handshakes.
                    Decoded::Violation => return None,
                    Decoded::Incomplete => {
                        if !self.fill() {
                            // Nothing new arrived; try once more in case the
                            // last fill completed a frame, then give up.
                            if let Decoded::Frame(f) = self.buf.next_frame() {
                                return Some(ShipBatch {
                                    seq: f.seq,
                                    start: f.start,
                                    payload: f.payload,
                                    chain: f.chain,
                                });
                            }
                            return None;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(seq: u64, start: u64, payload: Vec<u8>) -> ShipBatch {
        ShipBatch {
            seq,
            start,
            chain: seq ^ 0xabcd,
            payload,
        }
    }

    #[test]
    fn clean_transport_delivers_in_order() {
        let mut t = MemTransport::new();
        for i in 0..5 {
            t.send(batch(i, i * 10, vec![i as u8])).unwrap();
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| t.recv()).map(|b| b.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn plan_drops_duplicates_and_delays() {
        let plan = ShipPlan {
            drop_every: Some(5),
            duplicate_every: Some(3),
            delay_every: Some((4, 2)),
            tear_at: None,
        };
        let mut t = MemTransport::with_plan(plan);
        for i in 1..=8u64 {
            t.send(batch(i, 0, vec![])).unwrap();
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| t.recv()).map(|b| b.seq).collect();
        // 1,2 deliver; 3 duplicates; 4 delayed 2 sends (released before 6);
        // 5 dropped; 6 duplicates (after 4's release); 7 delivers; 8 delayed
        // (2 sends) and never released.
        assert_eq!(seqs, vec![1, 2, 3, 3, 4, 6, 6, 7]);
    }

    #[test]
    fn injected_failures_are_transient_errors() {
        let mut t = MemTransport::new().failing_every(2);
        assert!(t.send(batch(1, 0, vec![])).is_ok());
        assert!(t.send(batch(2, 0, vec![])).is_err());
        assert!(t.send(batch(2, 0, vec![])).is_ok(), "retry is a new send");
        assert_eq!(t.sends(), 3);
    }

    #[test]
    fn tcp_loopback_round_trips_batches() {
        let mut t = tcp::TcpTransport::loopback().expect("loopback pair");
        let batches = vec![
            batch(0, 0, vec![1, 2, 3]),
            batch(1, 3, Vec::new()),
            batch(2, 3, vec![0u8; 5000]),
        ];
        for b in &batches {
            t.send(b.clone()).unwrap();
        }
        let mut got = Vec::new();
        for _ in 0..100 {
            if let Some(b) = t.recv() {
                got.push(b);
            }
            if got.len() == batches.len() {
                break;
            }
        }
        assert_eq!(got, batches);
    }
}
