//! WAL-shipping replication for the assertional concurrency control engine.
//!
//! The paper's engine (§2) journals every transaction step through a single
//! write-ahead log; this crate turns that log into a replication stream. A
//! leader-side [`Shipper`] cuts frame-aligned batches from the *durable*
//! prefix of the record stream — never past `durable_lsn`, because staged
//! bytes can rewind on a leader crash — and a [`Follower`] verifies each
//! batch against the cumulative FNV-1a sector chain before persisting it to
//! its own log device and replaying it through the existing recovery path
//! into its own database image.
//!
//! Three properties fall out of keying verification on `(offset, chain)`
//! rather than on transport sequencing:
//!
//! - **Torn, reordered, and duplicated ships are harmless.** A batch that is
//!   not a whole number of record frames, or that does not start exactly at
//!   the follower's verified frontier, or whose chain does not match the
//!   follower's own bytes plus the payload, is refused with the frontier
//!   unchanged. Re-shipping is idempotent.
//! - **Divergence is a typed error, not a panic.** On resume, the leader
//!   recomputes the chain at the follower's claimed offset; a mismatch is
//!   [`acc_common::Error::Divergence`] — the histories are incompatible and
//!   no retry reconciles them.
//! - **Failover is just recovery on another machine.** Promoting a follower
//!   ([`Follower::promote`]) runs the same recovery + §3.4 compensation
//!   pipeline over the salvaged verified prefix that a restarted leader
//!   would run over its own disk.
//!
//! Transports are pluggable ([`ShipTransport`]): the default
//! [`MemTransport`] is a deterministic in-process channel whose misbehavior
//! (drop/duplicate/delay/tear) is scripted by an
//! [`acc_common::faults::ShipPlan`]; a loopback-TCP transport
//! ([`TcpTransport`]) speaks the workspace-shared [`acc_common::frame`] wire
//! format over a real socket pair. The [`Replicator`] pump drives the whole
//! loop with bounded full-jitter retry and emits
//! [`acc_common::events::Event`] ship counters for lag backpressure.

pub mod follower;
pub mod pump;
pub mod ship;
pub mod transport;

pub use follower::{Applied, Follower, Promoted, Refusal, ResumePoint};
pub use pump::{PumpStats, Replicator};
pub use ship::{count_frames, frame_prefix, stream_chain, ShipBatch, Shipper};
pub use transport::tcp::TcpTransport;
pub use transport::{MemTransport, ShipTransport};
