//! The follower: verifies shipped batches, persists them to its own WAL
//! device, and replays the verified prefix through the *existing* recovery
//! path into its own [`StripedDb`] image.
//!
//! Verification keys off the stream, not the transport: a batch is accepted
//! only if it starts exactly at the verified frontier, is a whole number of
//! record frames, and hashes — appended to the follower's own bytes — to the
//! cumulative chain the leader claimed. Torn payloads, sequence gaps and
//! reordered deliveries all fail one of those checks and are refused with
//! the frontier unchanged; re-shipping the same bytes is idempotent
//! (duplicates land entirely inside the verified prefix and are ignored).
//!
//! The follower's replay frontier (`replay_lsn`) is the number of verified
//! records. Reads are served at that frontier through the versioned-read
//! machinery ([`Table::read_at`]) over the replayed image — stale by
//! whatever the ship lag is, but always a transactionally consistent prefix
//! of the leader's history.

use crate::ship::{count_frames, frame_prefix, stream_chain, ShipBatch};
use acc_common::{Result, TableId, TxnId};
use acc_storage::{Database, Key, NoCommits, Row, StripedDb, Visibility};
use acc_wal::{recover, LogDevice, RecoveryReport, Wal};

/// Why a batch was refused. The shipper's answer to any refusal is the same
/// — rewind to the follower's verified frontier and re-ship — so the variants
/// exist for observability and tests, not control flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refusal {
    /// The batch starts past the verified frontier: something before it was
    /// lost or reordered.
    Gap {
        /// The frontier the follower expected the batch to start at.
        expected: u64,
        /// Where the batch actually started.
        got: u64,
    },
    /// The batch straddles the frontier (starts inside the verified prefix
    /// but extends past it) — a misaligned re-ship.
    Overlap,
    /// The payload is not a whole number of record frames — torn in transit.
    TornFrame,
    /// The appended stream does not hash to the leader's claimed chain —
    /// corrupted in transit (or a batch from a different history).
    Chain {
        /// The chain the leader claimed.
        claimed: u64,
        /// What the follower's stream actually hashes to with the payload
        /// appended.
        computed: u64,
    },
    /// The follower's own device failed to sync the verified bytes — this
    /// replica can no longer promise durability and must not ack.
    LocalSync,
}

/// The outcome of [`Follower::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// Verified, appended to the local stream, and synced to the local
    /// device.
    Accepted {
        /// Record frames this batch carried.
        records: u64,
    },
    /// Entirely within the already-verified prefix — an idempotent re-ship
    /// or a transport duplicate; ignored.
    Duplicate,
    /// Refused; the verified frontier is unchanged and the shipper must
    /// resume from it.
    Refused(Refusal),
}

/// The follower's verified frontier, offered to the leader at resume time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumePoint {
    /// Verified stream length in bytes.
    pub offset: u64,
    /// Verified record count (the replay frontier).
    pub records: u64,
    /// The follower's cumulative stream chain at `offset` — what the leader
    /// checks against its own history before shipping on top.
    pub chain: u64,
}

/// The result of promoting a follower to primary.
pub struct Promoted {
    /// The recovered database image (committed work replayed, incomplete
    /// current steps undone).
    pub db: Database,
    /// The recovery report: in-flight transactions in `needs_compensation`
    /// still need their §3.4 compensating steps run by the domain layer.
    pub report: RecoveryReport,
    /// The salvaged log the new primary continues from.
    pub wal: Wal,
}

/// A replica fed by [`ShipBatch`]es. Owns its verified byte stream, a local
/// [`LogDevice`] holding the durable copy of that stream, and a lazily
/// replayed [`StripedDb`] image at the replay frontier.
pub struct Follower {
    /// The pristine pre-workload image recovery replays into.
    base: Database,
    /// Verified record-stream bytes (always frame-aligned).
    stream: Vec<u8>,
    /// Verified record count.
    records: u64,
    /// Local durable copy of `stream` (synced at every accepted batch).
    dev: Box<dyn LogDevice>,
    /// Replayed image at `replayed.0` records; rebuilt when stale.
    replayed: Option<(u64, StripedDb)>,
}

impl Follower {
    /// A fresh follower: empty stream, empty device.
    pub fn new(base: Database, dev: Box<dyn LogDevice>) -> Follower {
        Follower {
            base,
            stream: Vec::new(),
            records: 0,
            dev,
            replayed: None,
        }
    }

    /// Rebuild a follower from its local device after a crash: salvage the
    /// device's durable stream, truncate to the last whole record frame (a
    /// crash mid-replay can leave a frame-torn tail on a sector boundary),
    /// and stand ready to resume from there.
    pub fn resume(base: Database, dev: Box<dyn LogDevice>) -> Follower {
        let salvaged = dev.durable_stream();
        let (len, records) = frame_prefix(&salvaged);
        Follower {
            base,
            stream: salvaged[..len].to_vec(),
            records,
            dev,
            replayed: None,
        }
    }

    /// Verify one batch against the stream and, on success, append + sync it
    /// locally. See the module docs for the refusal rules.
    pub fn apply(&mut self, batch: &ShipBatch) -> Applied {
        let frontier = self.stream.len() as u64;
        if batch.end() <= frontier {
            return Applied::Duplicate;
        }
        if batch.start > frontier {
            return Applied::Refused(Refusal::Gap {
                expected: frontier,
                got: batch.start,
            });
        }
        if batch.start < frontier {
            return Applied::Refused(Refusal::Overlap);
        }
        let Some(records) = count_frames(&batch.payload) else {
            return Applied::Refused(Refusal::TornFrame);
        };
        // The chain covers the *whole* prefix: computing it over our own
        // bytes plus the payload proves byte-identical history, not just a
        // well-formed batch.
        let mut candidate = Vec::with_capacity(self.stream.len() + batch.payload.len());
        candidate.extend_from_slice(&self.stream);
        candidate.extend_from_slice(&batch.payload);
        let computed = stream_chain(&candidate);
        if computed != batch.chain {
            return Applied::Refused(Refusal::Chain {
                claimed: batch.chain,
                computed,
            });
        }
        // Verified: persist first (stage + sync), then advance the frontier.
        self.dev.stage(&batch.payload);
        if self.dev.sync().is_err() {
            return Applied::Refused(Refusal::LocalSync);
        }
        self.stream = candidate;
        self.records += records;
        self.replayed = None;
        Applied::Accepted { records }
    }

    /// The verified byte stream.
    pub fn stream(&self) -> &[u8] {
        &self.stream
    }

    /// The replay frontier: verified leader records (LSNs `0..replay_lsn`).
    pub fn replay_lsn(&self) -> u64 {
        self.records
    }

    /// Tear down the follower process and hand back its durable device —
    /// what a crash leaves behind. Everything in memory (the verified
    /// stream, the replayed image) is discarded; [`Follower::resume`] must
    /// re-salvage from the device alone.
    pub fn into_device(self) -> Box<dyn LogDevice> {
        self.dev
    }

    /// Direct mutable access to the local device (tests: simulate torn
    /// local writes before a crash).
    pub fn device_mut(&mut self) -> &mut dyn LogDevice {
        &mut *self.dev
    }

    /// The frontier handshake offered to the leader on resume.
    pub fn resume_point(&self) -> ResumePoint {
        ResumePoint {
            offset: self.stream.len() as u64,
            records: self.records,
            chain: stream_chain(&self.stream),
        }
    }

    /// Replay the verified prefix through the existing recovery path into
    /// this follower's image (cached until the next accepted batch).
    fn replay(&mut self) -> Result<&StripedDb> {
        if self
            .replayed
            .as_ref()
            .is_none_or(|(at, _)| *at != self.records)
        {
            let mut db = self.base.clone();
            let wal = Wal::from_bytes(&self.stream);
            recover(&mut db, &wal)?;
            self.replayed = Some((self.records, StripedDb::new(db)));
        }
        Ok(&self.replayed.as_ref().expect("just replayed").1)
    }

    /// A version-safe point read at the replay frontier: the row image with
    /// primary key `key` as of `replay_lsn`, through the versioned-read
    /// machinery. `Tainted` cannot happen on a replayed image (recovery
    /// leaves no pending chains), so taint is reported as a recovery error.
    pub fn read_at(&mut self, table: TableId, key: &Key) -> Result<Option<Row>> {
        let view = self.records.saturating_sub(1);
        let lsn = self.records;
        self.replay()?.with_table(table, |t| {
            match t.read_at(key, view, TxnId(u64::MAX), &NoCommits) {
                Visibility::Visible(img) => Ok(img),
                Visibility::Tainted => Err(acc_common::Error::Recovery(format!(
                    "tainted read on a replayed image at replay_lsn {lsn}"
                ))),
            }
        })?
    }

    /// A consistent snapshot of the replayed image (audits, tests).
    pub fn snapshot(&mut self) -> Result<Database> {
        Ok(self.replay()?.snapshot())
    }

    /// Promote this follower to primary at its current replay frontier:
    /// recover the verified prefix (the same path a restarted leader runs)
    /// and hand back the image, the report, and the salvaged log. In-flight
    /// transactions surface in `report.needs_compensation`; the caller runs
    /// their §3.4 compensating steps before serving writes — promotion is
    /// recovery, just on another machine.
    pub fn promote(self) -> Result<Promoted> {
        let mut db = self.base;
        let wal = Wal::from_bytes(&self.stream);
        let report = recover(&mut db, &wal)?;
        Ok(Promoted { db, report, wal })
    }
}

impl std::fmt::Debug for Follower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Follower")
            .field("bytes", &self.stream.len())
            .field("replay_lsn", &self.records)
            .field("device", &self.dev.kind())
            .finish()
    }
}
