//! Ship batches and the leader-side shipper.
//!
//! The unit of replication is a [`ShipBatch`]: a frame-aligned slice of the
//! leader's *durable* record stream, tagged with its byte offset and with the
//! cumulative chained checksum of the whole stream prefix it extends the
//! follower to. The chain is the same FNV-1a sector chain the file device
//! writes to disk ([`acc_wal::sector::chain_of`]), folded over the record
//! stream in sector-capacity chunks — a pure function of the byte prefix, so
//! leader and follower can compare chains at any offset regardless of how
//! differently their streams were batched or persisted.
//!
//! The shipper never reads past the durable frontier. `durable_lsn` is the
//! only safe ship frontier: bytes past it exist only in the leader's staging
//! buffer, and a leader crash rewinds them — a follower that had already
//! verified such bytes would hold history the recovered leader never wrote,
//! which is exactly the divergence [`acc_common::Error::Divergence`] exists
//! to refuse.

use crate::follower::ResumePoint;
use acc_common::{Error, Result};
use acc_wal::sector::{chain_of, CAPACITY};

/// One frame-aligned slice of the leader's durable record stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShipBatch {
    /// Monotonic ship sequence number (observability; verification keys off
    /// `start` and `chain`).
    pub seq: u64,
    /// Byte offset of `payload` in the leader's record stream.
    pub start: u64,
    /// The shipped bytes: one or more whole record frames.
    pub payload: Vec<u8>,
    /// Cumulative stream chain over `[0, start + payload.len())` as the
    /// leader computed it — what the follower's own stream must hash to
    /// after appending `payload`.
    pub chain: u64,
}

impl ShipBatch {
    /// Byte offset just past this batch.
    pub fn end(&self) -> u64 {
        self.start + self.payload.len() as u64
    }
}

/// The cumulative chained checksum of a record-stream prefix: the sector
/// chain ([`chain_of`]) folded over `CAPACITY`-sized chunks plus the partial
/// tail. A pure function of the bytes — identical streams chain identically
/// no matter how they were shipped or persisted.
pub fn stream_chain(stream: &[u8]) -> u64 {
    // Seed matches `SectorWriter::new` (the FNV-1a offset basis).
    let mut chain = 0xcbf2_9ce4_8422_2325;
    let mut seq = 0u64;
    let mut chunks = stream.chunks_exact(CAPACITY);
    for chunk in &mut chunks {
        chain = chain_of(chain, seq, chunk);
        seq += 1;
    }
    let tail = chunks.remainder();
    if !tail.is_empty() {
        chain = chain_of(chain, seq, tail);
    }
    chain
}

/// The longest prefix of `bytes` that is a whole number of record frames
/// (`[len: u32 LE][checksum: u64 LE][payload]`), with the frame count.
/// Only frame *lengths* are walked — payload checksums are the codec's
/// business at replay time.
pub fn frame_prefix(bytes: &[u8]) -> (usize, u64) {
    let mut off = 0usize;
    let mut frames = 0u64;
    while off + 12 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes")) as usize;
        let Some(next) = off.checked_add(12 + len) else {
            break;
        };
        if next > bytes.len() {
            break;
        }
        off = next;
        frames += 1;
    }
    (off, frames)
}

/// Number of whole record frames in `payload`, or `None` if it does not end
/// exactly on a frame boundary (a torn or misaligned batch).
pub fn count_frames(payload: &[u8]) -> Option<u64> {
    let (len, frames) = frame_prefix(payload);
    (len == payload.len()).then_some(frames)
}

/// Leader-side shipper: tracks the acknowledged frontier and cuts the next
/// frame-aligned batch from whatever durable stream it is handed. It holds
/// no reference to the leader — callers pass the durable stream in, which is
/// what structurally prevents shipping past `durable_lsn`.
#[derive(Debug)]
pub struct Shipper {
    /// Byte offset acknowledged by the follower.
    acked: u64,
    /// Leader records acknowledged (the shipped frontier, in records).
    acked_records: u64,
    /// Next ship sequence number (monotonic across resumes).
    seq: u64,
    /// Batch size target in bytes; a single frame larger than this still
    /// ships whole (frames are never split).
    max_batch: usize,
}

impl Shipper {
    /// A shipper at offset zero with the given batch-size target.
    pub fn new(max_batch: usize) -> Shipper {
        Shipper {
            acked: 0,
            acked_records: 0,
            seq: 0,
            max_batch: max_batch.max(1),
        }
    }

    /// Byte offset the follower has acknowledged.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    /// Leader records the follower has acknowledged.
    pub fn acked_records(&self) -> u64 {
        self.acked_records
    }

    /// Cut the next batch from `durable`, the leader's durable record stream
    /// (never the staged tail). `None` when the follower is caught up.
    pub fn next_batch(&mut self, durable: &[u8]) -> Option<ShipBatch> {
        let start = self.acked as usize;
        if start >= durable.len() {
            return None;
        }
        let window = &durable[start..(start + self.max_batch).min(durable.len())];
        let (mut aligned, frames) = frame_prefix(window);
        if frames == 0 {
            // One frame exceeds the batch target: ship exactly that frame,
            // whole (frames are never split).
            let rest = &durable[start..];
            if rest.len() < 12 {
                return None; // durable tail is mid-frame; wait for more
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")) as usize;
            let whole = len.checked_add(12)?;
            if whole > rest.len() {
                return None; // durable tail is mid-frame; wait for more
            }
            aligned = whole;
        }
        let payload = durable[start..start + aligned].to_vec();
        let chain = stream_chain(&durable[..start + aligned]);
        let seq = self.seq;
        self.seq += 1;
        Some(ShipBatch {
            seq,
            start: start as u64,
            payload,
            chain,
        })
    }

    /// Advance the acknowledged frontier to the follower's verified state.
    pub fn ack_to(&mut self, offset: u64, records: u64) {
        debug_assert!(offset >= self.acked, "follower frontier went backwards");
        self.acked = offset;
        self.acked_records = records;
    }

    /// Rewind to the follower's verified frontier after a refusal or a lost
    /// batch (re-ship is idempotent: the follower ignores bytes it already
    /// verified).
    pub fn rewind(&mut self, offset: u64, records: u64) {
        self.acked = offset;
        self.acked_records = records;
    }

    /// Resume handshake after a follower restart: verify the follower's
    /// claimed `(offset, chain)` against the leader's own history before
    /// shipping anything on top of it. A mismatch is a typed
    /// [`Error::Divergence`] — the histories are incompatible and no amount
    /// of re-shipping reconciles them.
    pub fn resume_from(&mut self, leader_durable: &[u8], point: ResumePoint) -> Result<()> {
        let off = point.offset as usize;
        if off > leader_durable.len() {
            // The follower claims history past everything the leader ever
            // made durable — a divergent (or future-leaked) tail.
            return Err(Error::Divergence {
                at: point.offset,
                expected: stream_chain(leader_durable),
                found: point.chain,
            });
        }
        let expected = stream_chain(&leader_durable[..off]);
        if expected != point.chain {
            return Err(Error::Divergence {
                at: point.offset,
                expected,
                found: point.chain,
            });
        }
        self.acked = point.offset;
        self.acked_records = point.records;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fake frame: 12-byte header + `len` payload bytes.
    fn frame(len: usize, fill: u8) -> Vec<u8> {
        let mut f = vec![0u8; 12 + len];
        f[..4].copy_from_slice(&(len as u32).to_le_bytes());
        f[12..].fill(fill);
        f
    }

    #[test]
    fn stream_chain_is_a_pure_prefix_function() {
        let a: Vec<u8> = (0..2000u32).map(|i| i as u8).collect();
        let c1 = stream_chain(&a);
        let c2 = stream_chain(&a.clone());
        assert_eq!(c1, c2);
        // Different prefixes chain differently (with overwhelming
        // probability for these adjacent cases).
        assert_ne!(stream_chain(&a[..1999]), c1);
        assert_ne!(stream_chain(&a[..CAPACITY]), c1);
        assert_eq!(stream_chain(&[]), stream_chain(&[]));
    }

    #[test]
    fn frame_prefix_walks_whole_frames_only() {
        let mut bytes = frame(5, 1);
        bytes.extend(frame(0, 2));
        bytes.extend(frame(100, 3));
        let full = bytes.len();
        assert_eq!(frame_prefix(&bytes), (full, 3));
        assert_eq!(count_frames(&bytes), Some(3));
        // Truncation anywhere inside the last frame stops before it.
        for cut in full - 111..full {
            let (len, frames) = frame_prefix(&bytes[..cut]);
            assert_eq!(len, full - 112, "cut at {cut}");
            assert_eq!(frames, 2);
            assert_eq!(count_frames(&bytes[..cut]), None);
        }
    }

    #[test]
    fn shipper_cuts_frame_aligned_batches() {
        let mut stream = Vec::new();
        for i in 0..10u8 {
            stream.extend(frame(20, i));
        }
        let mut s = Shipper::new(70); // 2 frames of 32 bytes each, plus change
        let b = s.next_batch(&stream).expect("first batch");
        assert_eq!(b.start, 0);
        assert_eq!(b.payload.len() % 32, 0, "batch not frame-aligned");
        assert_eq!(b.chain, stream_chain(&stream[..b.payload.len()]));
        // Nothing acked yet: the next cut re-ships the same bytes.
        let b2 = s.next_batch(&stream).expect("re-cut");
        assert_eq!(b2.start, 0);
        assert_eq!(b2.payload, b.payload);
        assert_eq!(b2.seq, b.seq + 1, "seq still advances per send");
        // Acked: the next batch starts where the last one ended.
        s.ack_to(b.end(), 2);
        let b3 = s.next_batch(&stream).expect("next batch");
        assert_eq!(b3.start, b.end());
    }

    #[test]
    fn oversized_frame_ships_whole() {
        let stream = frame(500, 9);
        let mut s = Shipper::new(64);
        let b = s.next_batch(&stream).expect("oversized frame");
        assert_eq!(b.payload.len(), stream.len());
        s.ack_to(b.end(), 1);
        assert!(s.next_batch(&stream).is_none(), "caught up");
    }

    #[test]
    fn resume_verifies_the_follower_chain() {
        let mut stream = Vec::new();
        for i in 0..4u8 {
            stream.extend(frame(30, i));
        }
        let mid = 2 * 42;
        let good = ResumePoint {
            offset: mid as u64,
            records: 2,
            chain: stream_chain(&stream[..mid]),
        };
        let mut s = Shipper::new(1024);
        s.resume_from(&stream, good).expect("clean resume");
        assert_eq!(s.acked(), mid as u64);

        // A corrupted follower tail shows up as a typed divergence.
        let bad = ResumePoint {
            offset: mid as u64,
            records: 2,
            chain: stream_chain(&stream[..mid]) ^ 1,
        };
        let err = s.resume_from(&stream, bad).expect_err("diverged");
        assert!(matches!(err, Error::Divergence { at, .. } if at == mid as u64));

        // A follower claiming history past the leader's durable end is
        // divergent too, not an index panic.
        let ahead = ResumePoint {
            offset: stream.len() as u64 + 12,
            records: 9,
            chain: 7,
        };
        let err = s.resume_from(&stream, ahead).expect_err("ahead");
        assert!(matches!(err, Error::Divergence { .. }));
    }
}
