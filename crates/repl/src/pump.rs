//! The replication pump: a stop-and-wait loop driving [`Shipper`] batches
//! through a [`ShipTransport`] into a [`Follower`].
//!
//! One pump round = cut the next durable batch, send it (with bounded
//! full-jitter retry on transient transport failures), drain everything the
//! transport delivered, and reconcile: if the follower's verified frontier
//! reached the batch end, acknowledge it; otherwise rewind to the follower's
//! frontier and re-ship (idempotent — the follower ignores bytes it already
//! verified). A round that moves the frontier nowhere counts toward a stall
//! cap so a transport that eats everything surfaces as an error instead of
//! an infinite loop.

use crate::follower::{Applied, Follower, ResumePoint};
use crate::ship::Shipper;
use crate::transport::ShipTransport;
use acc_common::events::{Event, EventSink};
use acc_common::faults::FaultInjector;
use acc_common::{Error, Result, SeededRng};
use acc_engine::RetryPolicy;
use std::sync::Arc;

/// Consecutive no-progress rounds tolerated before the pump gives up. High
/// enough that any plan with a finite drop period makes progress; low enough
/// that a black-hole transport fails fast.
const STALL_CAP: u32 = 32;

/// What one [`Replicator::pump`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PumpStats {
    /// Batches the follower verified and accepted.
    pub batches: u64,
    /// Records those batches carried.
    pub records: u64,
    /// Transient send failures retried with backoff.
    pub retries: u64,
    /// Batches the follower refused (torn, gapped, broken chain).
    pub refusals: u64,
    /// Rewinds to the follower's verified frontier.
    pub resumes: u64,
}

/// Leader-side replication driver: owns the shipper, the transport, the
/// retry policy for transient sends, and the observability plumbing.
pub struct Replicator<T: ShipTransport> {
    shipper: Shipper,
    transport: T,
    retry: RetryPolicy,
    rng: SeededRng,
    sink: Arc<EventSink>,
    faults: Arc<FaultInjector>,
}

impl<T: ShipTransport> Replicator<T> {
    /// A replicator with the standard retry policy and no observability.
    pub fn new(transport: T, max_batch: usize, seed: u64) -> Replicator<T> {
        Replicator {
            shipper: Shipper::new(max_batch),
            transport,
            retry: RetryPolicy::standard(),
            rng: SeededRng::new(seed),
            sink: EventSink::disabled(),
            faults: FaultInjector::disabled(),
        }
    }

    /// Attach an event sink (ship batches, retries, refusals, resumes).
    pub fn with_events(mut self, sink: Arc<EventSink>) -> Replicator<T> {
        self.sink = sink;
        self
    }

    /// Attach a fault injector (`crash_after_ships` capture points).
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Replicator<T> {
        self.faults = faults;
        self
    }

    /// Override the transient-send retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Replicator<T> {
        self.retry = retry;
        self
    }

    /// Leader records the follower has verified (the shipped frontier the
    /// caller feeds to [`acc_txn::SharedDb::set_shipped_frontier`]).
    pub fn shipped_records(&self) -> u64 {
        self.shipper.acked_records()
    }

    /// The underlying transport (tests: inject misbehavior mid-stream).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    /// Resume handshake after a follower restart: verify the follower's
    /// claimed frontier chain against the leader's durable history, then
    /// rewind to it. A mismatch is a typed [`Error::Divergence`].
    pub fn resume(&mut self, leader_durable: &[u8], point: ResumePoint) -> Result<()> {
        self.shipper.resume_from(leader_durable, point)?;
        self.sink.emit(Event::ShipResume {
            offset: point.offset,
        });
        Ok(())
    }

    /// Send one batch, retrying transient transport failures with seeded
    /// full-jitter backoff. Returns retries spent.
    fn send_with_retry(&mut self, batch: crate::ship::ShipBatch) -> Result<u64> {
        let mut attempt = 0u32;
        loop {
            match self.transport.send(batch.clone()) {
                Ok(()) => return Ok(attempt as u64),
                Err(e) if attempt < self.retry.max_retries => {
                    attempt += 1;
                    self.sink.emit(Event::ShipRetry { attempt });
                    std::thread::sleep(self.retry.backoff(attempt, &mut self.rng));
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Ship the leader's durable stream until the follower is caught up (or
    /// the stall cap trips). `leader_records` is the durable record count
    /// behind `leader_durable` — the basis of the lag gauge.
    pub fn pump(
        &mut self,
        follower: &mut Follower,
        leader_durable: &[u8],
        leader_records: u64,
    ) -> Result<PumpStats> {
        let mut stats = PumpStats::default();
        let mut stalls = 0u32;
        while let Some(batch) = self.shipper.next_batch(leader_durable) {
            let target = batch.end();
            stats.retries += self.send_with_retry(batch)?;

            // Drain everything the transport has for us — the sent batch,
            // duplicates, and any delayed batches released by this send.
            while let Some(got) = self.transport.recv() {
                match follower.apply(&got) {
                    Applied::Accepted { records } => {
                        stats.batches += 1;
                        stats.records += records;
                        let lag = leader_records.saturating_sub(follower.replay_lsn());
                        self.sink.emit(Event::ShipBatch {
                            records: records as u32,
                            bytes: got.payload.len() as u32,
                            lag: lag as u32,
                        });
                        // Leader-crash capture point: what survives a leader
                        // death here is exactly the follower's verified
                        // stream.
                        self.faults.on_ship(|| follower.stream().to_vec());
                    }
                    Applied::Duplicate => {}
                    Applied::Refused(_) => {
                        stats.refusals += 1;
                        self.sink.emit(Event::ShipRefused { seq: got.seq });
                    }
                }
            }

            let point = follower.resume_point();
            if point.offset >= target {
                self.shipper.ack_to(point.offset, point.records);
                stalls = 0;
            } else {
                // Lost or refused: rewind to the follower's verified
                // frontier and re-ship from there.
                if point.offset != self.shipper.acked() {
                    stalls = 0;
                } else {
                    stalls += 1;
                    if stalls > STALL_CAP {
                        return Err(Error::Internal(format!(
                            "ship pump stalled at offset {} after {STALL_CAP} \
                             no-progress rounds",
                            point.offset
                        )));
                    }
                }
                stats.resumes += 1;
                self.shipper.rewind(point.offset, point.records);
                self.sink.emit(Event::ShipResume {
                    offset: point.offset,
                });
            }
        }
        Ok(stats)
    }
}

impl<T: ShipTransport> std::fmt::Debug for Replicator<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("acked", &self.shipper.acked())
            .field("acked_records", &self.shipper.acked_records())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::tcp::TcpTransport;
    use crate::transport::MemTransport;
    use acc_storage::{Catalog, Database};
    use acc_wal::MemDevice;

    /// A fake record frame: 12-byte header + `len` payload bytes. The
    /// follower verifies framing and chains, not payload checksums — those
    /// are replay's business, and these tests never replay.
    fn frame(len: usize, fill: u8) -> Vec<u8> {
        let mut f = vec![0u8; 12 + len];
        f[..4].copy_from_slice(&(len as u32).to_le_bytes());
        f[12..].fill(fill);
        f
    }

    fn stream(frames: usize) -> (Vec<u8>, u64) {
        let mut s = Vec::new();
        for i in 0..frames {
            s.extend(frame(17 + (i % 5), i as u8));
        }
        (s, frames as u64)
    }

    fn follower() -> Follower {
        Follower::new(Database::new(&Catalog::new()), Box::new(MemDevice::new()))
    }

    #[test]
    fn pump_over_tcp_converges_to_the_durable_prefix() {
        let (durable, records) = stream(20);
        let t = TcpTransport::loopback().expect("loopback pair");
        let mut rep = Replicator::new(t, 100, 17);
        let mut f = follower();
        let stats = rep.pump(&mut f, &durable, records).expect("tcp pump");
        assert_eq!(f.stream(), &durable[..]);
        assert_eq!(f.replay_lsn(), records);
        assert_eq!(stats.records, records);
    }

    #[test]
    fn black_hole_transport_stalls_out_instead_of_spinning() {
        let (durable, records) = stream(4);
        let plan = acc_common::faults::ShipPlan {
            drop_every: Some(1), // eat everything
            ..Default::default()
        };
        let mut rep = Replicator::new(MemTransport::with_plan(plan), 1 << 20, 1);
        let mut f = follower();
        let err = rep
            .pump(&mut f, &durable, records)
            .expect_err("black hole must not loop forever");
        assert!(matches!(err, Error::Internal(ref m) if m.contains("stalled")));
        assert_eq!(f.replay_lsn(), 0);
    }
}
