//! The concurrency-control policy interface and the strict-2PL baseline.

use acc_common::{StepTypeId, TableId, TxnId, TxnTypeId};
use acc_lockmgr::{LockKind, LockMode};

/// Re-export of the unanalyzed-transaction step type (§3.3); see
/// [`acc_common::ids::LEGACY_STEP`].
pub use acc_common::ids::LEGACY_STEP;

/// A transaction's position, as visible to the concurrency control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnMeta {
    /// The transaction.
    pub id: TxnId,
    /// Its analyzed type.
    pub txn_type: TxnTypeId,
    /// Zero-based index of the step being executed.
    pub step_index: u32,
    /// True while executing a compensating step.
    pub compensating: bool,
}

/// A concurrency-control policy: decides which locks accompany each data
/// access and what happens at step boundaries.
///
/// The *interference oracle* is deliberately **not** part of this trait: it
/// belongs to the [`crate::shared::SharedDb`]'s epoch-versioned
/// `InterferenceRegistry`, so that a 2PL legacy transaction and an ACC
/// transaction running in the same system consult the same tables
/// (otherwise legacy isolation would be unsound). A decomposed transaction
/// pins the table epoch it admitted under for its whole lifetime
/// (`Transaction::epoch_pin`); an online re-analysis switches epochs only
/// once every pinned transaction has released its locks, so a policy's
/// lock choices are always judged by the tables they were analyzed against.
pub trait ConcurrencyControl: Send + Sync {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// True if programs run decomposed: conventional locks are released and
    /// an end-of-step record is logged at every step boundary, and rollback
    /// uses compensating steps. False = the whole program is one atomic unit
    /// under strict 2PL.
    fn decomposed(&self) -> bool;

    /// The design-time step type for this position.
    fn step_type(&self, meta: &TxnMeta) -> StepTypeId;

    /// The compensating step type registered for this transaction type.
    fn comp_step_type(&self, txn_type: TxnTypeId) -> Option<StepTypeId>;

    /// Lock kinds to acquire on the *item* (page or row resource) for a
    /// single-row access. Conventional intention locks on the table are added
    /// by the executor.
    fn item_locks(&self, meta: &TxnMeta, table: TableId, write: bool) -> Vec<LockKind>;

    /// Lock kinds to acquire on the *table* resource for a single-row access
    /// (alongside [`ConcurrencyControl::item_locks`] on the item itself).
    /// Defaults to the plain intention mode; policies that release
    /// conventional locks early must add a table-granularity presence for
    /// their uncommitted writes here, or scans — which take only a
    /// table-level `S` — would walk past the item-level pins unchecked.
    fn table_locks(&self, meta: &TxnMeta, table: TableId, write: bool) -> Vec<LockKind> {
        let _ = (meta, table);
        vec![LockKind::Conventional(if write {
            LockMode::IX
        } else {
            LockMode::IS
        })]
    }

    /// Lock kinds to acquire on the *table* resource for a scan.
    fn scan_locks(&self, meta: &TxnMeta, table: TableId) -> Vec<LockKind>;

    /// Should a held lock of this kind be released when the current step
    /// completes? (Only consulted when [`ConcurrencyControl::decomposed`].)
    fn release_at_step_end(&self, meta: &TxnMeta, kind: LockKind) -> bool;

    /// May the step at this position satisfy its reads from committed row
    /// versions, without acquiring any locks?
    ///
    /// This is the *policy half* of the version-read gate: only steps the
    /// policy classifies as read-only (their results feed no writes) may
    /// answer `true` — the interference oracle's own
    /// `version_read_safe(step_type)` is consulted separately, and an
    /// all-clear write row alone is not sufficient (a writer whose writes
    /// are declared interference-free still must not read stale versions it
    /// is about to overwrite). Defaults to `false`, so the 2PL baseline and
    /// any legacy policy never take the fast path.
    fn version_read_safe(&self, _meta: &TxnMeta) -> bool {
        false
    }
}

/// Strict two-phase locking: the paper's baseline (unmodified Open Ingres,
/// serializable isolation). Ignores step boundaries entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwoPhase;

impl ConcurrencyControl for TwoPhase {
    fn name(&self) -> &'static str {
        "strict-2pl"
    }

    fn decomposed(&self) -> bool {
        false
    }

    fn step_type(&self, _meta: &TxnMeta) -> StepTypeId {
        LEGACY_STEP
    }

    fn comp_step_type(&self, _txn_type: TxnTypeId) -> Option<StepTypeId> {
        None
    }

    fn item_locks(&self, _meta: &TxnMeta, _table: TableId, write: bool) -> Vec<LockKind> {
        vec![LockKind::Conventional(if write {
            LockMode::X
        } else {
            LockMode::S
        })]
    }

    fn scan_locks(&self, _meta: &TxnMeta, _table: TableId) -> Vec<LockKind> {
        vec![LockKind::Conventional(LockMode::S)]
    }

    fn release_at_step_end(&self, _meta: &TxnMeta, _kind: LockKind) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_phase_policy() {
        let cc = TwoPhase;
        let meta = TxnMeta {
            id: TxnId(1),
            txn_type: TxnTypeId(0),
            step_index: 0,
            compensating: false,
        };
        assert!(!cc.decomposed());
        assert_eq!(cc.step_type(&meta), LEGACY_STEP);
        assert_eq!(cc.comp_step_type(TxnTypeId(0)), None);
        assert_eq!(
            cc.item_locks(&meta, TableId(0), false),
            vec![LockKind::Conventional(LockMode::S)]
        );
        assert_eq!(
            cc.item_locks(&meta, TableId(0), true),
            vec![LockKind::Conventional(LockMode::X)]
        );
        assert_eq!(
            cc.scan_locks(&meta, TableId(0)),
            vec![LockKind::Conventional(LockMode::S)]
        );
        assert!(!cc.release_at_step_end(&meta, LockKind::X));
    }
}
