//! Per-ticket parking slots: a grant wakes exactly its owner.
//!
//! The old runtime parked every waiter on one global condvar and broadcast
//! `notify_all` on every release — a thundering herd where N-1 of N woken
//! threads immediately went back to sleep. Here each queued ticket gets its
//! own (mutex, condvar) slot; delivering a grant touches only that slot.
//!
//! # The grant/park race
//!
//! A grant can be produced between `request` returning `Waiting(ticket)` and
//! the waiter registering its slot (another thread releases the lock in that
//! window). The table records such grants as [`Entry::EarlyGrant`];
//! [`Parking::register`] consumes the marker and tells the waiter to proceed
//! without parking at all.
//!
//! # The grant/cancel race
//!
//! The inverse race — a waiter gives up (doom, timeout cap) while a grant is
//! in flight — is closed by the sharded lock manager's delivery contract:
//! grants are posted *under the owning shard's mutex*, and the waiter cancels
//! its request under that same mutex. After `cancel_waiting` returns, no
//! grant for the withdrawn ticket can be produced, so the waiter can safely
//! remove its slot (consuming any `EarlyGrant` that did land first).

use acc_common::TxnId;
use acc_lockmgr::Ticket;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One waiter's parking slot.
#[derive(Debug, Default)]
pub(crate) struct ParkSlot {
    granted: Mutex<bool>,
    cv: Condvar,
}

impl ParkSlot {
    /// True once the grant has been delivered.
    pub fn is_granted(&self) -> bool {
        *self.granted.lock().expect("slot not poisoned")
    }

    /// Mark granted and wake the owner (exactly one waiter parks here).
    fn deliver(&self) {
        let mut g = self.granted.lock().expect("slot not poisoned");
        *g = true;
        self.cv.notify_one();
    }

    /// Wake the owner *without* a grant so it re-checks its doom flag.
    fn nudge(&self) {
        let _g = self.granted.lock().expect("slot not poisoned");
        self.cv.notify_one();
    }

    /// Park for up to `dur`; returns true if granted (checked under the slot
    /// mutex, so a delivery racing the park is never missed).
    pub fn wait_granted(&self, dur: Duration) -> bool {
        let g = self.granted.lock().expect("slot not poisoned");
        if *g {
            return true;
        }
        let (g, _) = self.cv.wait_timeout(g, dur).expect("slot not poisoned");
        *g
    }
}

#[derive(Debug)]
enum Entry {
    /// A registered waiter parked (or about to park) on its slot.
    Waiting { txn: TxnId, slot: Arc<ParkSlot> },
    /// The grant arrived before the waiter registered.
    EarlyGrant,
}

/// The ticket → slot table, sharded by the ticket's shard bits (tickets from
/// different lock shards never contend on the same map mutex).
#[derive(Debug)]
pub(crate) struct Parking {
    shards: Vec<Mutex<HashMap<Ticket, Entry>>>,
}

impl Parking {
    pub fn new(n_shards: usize) -> Self {
        Parking {
            shards: (0..n_shards.max(1))
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, ticket: Ticket) -> &Mutex<HashMap<Ticket, Entry>> {
        // Lock-shard index lives in the ticket's high 16 bits (see
        // `acc_lockmgr::sharded`); reuse it so parking contention mirrors
        // lock-table contention.
        &self.shards[(ticket.0 >> 48) as usize % self.shards.len()]
    }

    /// Register a waiter for `ticket`. `None` means the grant already
    /// arrived — proceed without parking.
    pub fn register(&self, ticket: Ticket, txn: TxnId) -> Option<Arc<ParkSlot>> {
        let mut m = self.shard(ticket).lock().expect("parking not poisoned");
        match m.remove(&ticket) {
            Some(Entry::EarlyGrant) => None,
            Some(other @ Entry::Waiting { .. }) => {
                // A ticket has exactly one owner; re-registration is a bug.
                m.insert(ticket, other);
                unreachable!("ticket {ticket:?} registered twice");
            }
            None => {
                let slot = Arc::new(ParkSlot::default());
                m.insert(
                    ticket,
                    Entry::Waiting {
                        txn,
                        slot: Arc::clone(&slot),
                    },
                );
                Some(slot)
            }
        }
    }

    /// Deliver a grant to `ticket`'s owner — wakes exactly that waiter, or
    /// records an early grant if it has not registered yet. Call this under
    /// the lock-shard mutex that produced the grant (see the module docs).
    pub fn grant(&self, ticket: Ticket) {
        let mut m = self.shard(ticket).lock().expect("parking not poisoned");
        match m.remove(&ticket) {
            Some(Entry::Waiting { slot, .. }) => slot.deliver(),
            _ => {
                m.insert(ticket, Entry::EarlyGrant);
            }
        }
    }

    /// Remove `ticket`'s entry (waiter gave up, or consumed a raced grant).
    /// Only call after the ticket was withdrawn from the lock queues — no
    /// further grant can arrive.
    pub fn deregister(&self, ticket: Ticket) {
        self.shard(ticket)
            .lock()
            .expect("parking not poisoned")
            .remove(&ticket);
    }

    /// Wake every parked waiter owned by `txn` (doom delivery: the waiter
    /// re-checks its doom flag and aborts).
    pub fn nudge_txn(&self, txn: TxnId) {
        for shard in &self.shards {
            let m = shard.lock().expect("parking not poisoned");
            for e in m.values() {
                if let Entry::Waiting { txn: t, slot } = e {
                    if *t == txn {
                        slot.nudge();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn early_grant_is_consumed_by_register() {
        let p = Parking::new(4);
        let t = Ticket(7);
        p.grant(t);
        assert!(p.register(t, TxnId(1)).is_none());
        // Consumed: a later registration parks normally.
        assert!(p.register(t, TxnId(1)).is_some());
        p.deregister(t);
    }

    #[test]
    fn grant_wakes_exactly_the_owner() {
        let p = Arc::new(Parking::new(4));
        let slot = p.register(Ticket(1), TxnId(1)).unwrap();
        let other = p.register(Ticket(2), TxnId(2)).unwrap();
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || slot.wait_granted(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        p2.grant(Ticket(1));
        assert!(h.join().unwrap());
        assert!(!other.is_granted());
        p.deregister(Ticket(2));
    }

    #[test]
    fn nudge_wakes_without_grant() {
        let p = Arc::new(Parking::new(4));
        let slot = p.register(Ticket(3), TxnId(9)).unwrap();
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || slot.wait_granted(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        p2.nudge_txn(TxnId(9));
        assert!(!h.join().unwrap(), "nudge is not a grant");
        p.deregister(Ticket(3));
    }
}
