//! Transaction programs: step-decomposed application code.

use crate::step::StepCtx;
use acc_common::{Result, TxnTypeId};

/// What a forward step reports when it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The step finished; more steps follow.
    Continue,
    /// The step finished and it was the last one: commit.
    Done,
    /// The program aborts itself (e.g. TPC-C's mandated 1 % new-order
    /// aborts): the runtime undoes the current step physically and then
    /// compensates any completed steps.
    Abort,
}

/// A transaction decomposed into steps at design time.
///
/// # Re-execution
///
/// A step may be executed more than once: if it is chosen as a deadlock
/// victim its database effects are undone and the step is retried. Programs
/// must therefore keep their in-memory bookkeeping idempotent per step —
/// either reset it at the top of the step or write results keyed by step
/// index.
pub trait TxnProgram {
    /// The analyzed transaction type (indexes the decomposition tables).
    fn txn_type(&self) -> TxnTypeId;

    /// Execute step `step_index` (0-based). Steps run strictly in order; the
    /// number of steps may be input-dependent (the runtime just keeps calling
    /// until [`StepOutcome::Done`] or [`StepOutcome::Abort`]).
    fn step(&mut self, step_index: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome>;

    /// Semantically undo forward steps `0..steps_completed` in one
    /// compensating step (§3.4: for each prefix, `{I} S_1;…;S_j; CS_j {I ∧ Q}`
    /// must hold). Only called when the program ran decomposed and at least
    /// one step had completed.
    ///
    /// The default panics: programs whose transaction type is decomposed into
    /// more than one step *must* implement compensation.
    fn compensate(&mut self, steps_completed: u32, _ctx: &mut StepCtx<'_>) -> Result<()> {
        panic!(
            "transaction type {:?} has {steps_completed} completed steps but no compensating step",
            self.txn_type()
        );
    }

    /// The work area saved with every end-of-step record; recovery hands it
    /// back so compensation can resume after a crash.
    fn work_area(&self) -> Vec<u8> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct OneShot;

    impl TxnProgram for OneShot {
        fn txn_type(&self) -> TxnTypeId {
            TxnTypeId(0)
        }
        fn step(&mut self, _i: u32, _ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
            Ok(StepOutcome::Done)
        }
    }

    #[test]
    fn defaults() {
        let p = OneShot;
        assert!(p.work_area().is_empty());
        assert_eq!(p.txn_type(), TxnTypeId(0));
    }
}
