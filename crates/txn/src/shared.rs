//! The shared system state: database + lock manager + WAL behind one mutex,
//! with a condvar for lock waits.

use acc_common::events::{Event, EventSink};
use acc_common::faults::FaultInjector;
use acc_common::{Error, ResourceId, Result, TxnId, TxnTypeId};
use acc_lockmgr::{
    GrantNotice, InterferenceOracle, LockKind, LockManager, Request, RequestCtx, RequestOutcome,
    Ticket,
};
use acc_storage::Database;
use acc_wal::{LogRecord, Wal};
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// How a lock request behaves when it cannot be granted immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitMode {
    /// Park the calling thread until granted (threaded engine).
    Block,
    /// Withdraw the request and return [`Error::WouldBlock`] (deterministic
    /// single-threaded scheduling).
    Fail,
}

/// Everything guarded by the system mutex.
pub struct Core {
    /// The database image.
    pub db: Database,
    /// The lock table.
    pub lm: LockManager,
    /// The write-ahead log.
    pub wal: Wal,
    granted: HashSet<Ticket>,
    doomed: HashSet<TxnId>,
    next_txn: u64,
}

/// The shared system: one per simulated database server group.
pub struct SharedDb {
    core: Mutex<Core>,
    cond: Condvar,
    oracle: Arc<dyn InterferenceOracle + Send + Sync>,
    /// Safety net: a blocked lock wait longer than this is reported as an
    /// internal error instead of hanging the process.
    wait_cap: Duration,
    /// Fault-injection hook for lock waits (disabled by default).
    faults: Arc<FaultInjector>,
    /// How many transient failures a compensating step retries before the
    /// rollback is declared wedged (see `runner::rollback`).
    comp_retry_cap: u32,
}

impl SharedDb {
    /// Build around an initial database image. The oracle is system-wide so
    /// that legacy 2PL transactions and decomposed transactions make
    /// consistent interference decisions.
    pub fn new(db: Database, oracle: Arc<dyn InterferenceOracle + Send + Sync>) -> Self {
        SharedDb {
            core: Mutex::new(Core {
                db,
                lm: LockManager::new(),
                wal: Wal::new(),
                granted: HashSet::new(),
                doomed: HashSet::new(),
                next_txn: 1,
            }),
            cond: Condvar::new(),
            oracle,
            wait_cap: Duration::from_secs(30),
            faults: FaultInjector::disabled(),
            comp_retry_cap: 8,
        }
    }

    /// Override the blocked-wait safety cap (tests use a short one).
    pub fn with_wait_cap(mut self, cap: Duration) -> Self {
        self.wait_cap = cap;
        self
    }

    /// Install a fault injector: the WAL reports appends and step boundaries
    /// to it, and lock waits consult it for planned spurious wakeups.
    pub fn with_fault_injector(mut self, faults: Arc<FaultInjector>) -> Self {
        self.core
            .get_mut()
            .unwrap()
            .wal
            .set_fault_injector(Arc::clone(&faults));
        self.faults = faults;
        self
    }

    /// Override the compensation transient-retry cap (how many times a
    /// compensating step retries a transient failure before the rollback is
    /// reported wedged).
    pub fn with_comp_retry_cap(mut self, cap: u32) -> Self {
        self.comp_retry_cap = cap;
        self
    }

    /// The compensation transient-retry cap.
    pub fn comp_retry_cap(&self) -> u32 {
        self.comp_retry_cap
    }

    /// The system-wide interference oracle.
    pub fn oracle(&self) -> &(dyn InterferenceOracle + Send + Sync) {
        &*self.oracle
    }

    /// Route the lock manager's observability events into `sink`.
    pub fn set_event_sink(&self, sink: Arc<EventSink>) {
        self.core.lock().unwrap().lm.set_sink(sink);
    }

    /// The lock manager's current event sink (disabled by default).
    pub fn event_sink(&self) -> Arc<EventSink> {
        Arc::clone(self.core.lock().unwrap().lm.sink())
    }

    /// Run `f` with the core locked.
    pub fn with_core<R>(&self, f: impl FnOnce(&mut Core) -> R) -> R {
        f(&mut self.core.lock().unwrap())
    }

    /// Allocate a transaction id and log its begin record.
    pub fn begin_txn(&self, txn_type: TxnTypeId) -> TxnId {
        let mut core = self.core.lock().unwrap();
        let id = TxnId(core.next_txn);
        core.next_txn += 1;
        core.wal.append(LogRecord::Begin { txn: id, txn_type });
        id
    }

    /// True if some other transaction doomed this one (it is delaying a
    /// compensating step and must roll back, §3.4).
    pub fn is_doomed(&self, txn: TxnId) -> bool {
        self.core.lock().unwrap().doomed.contains(&txn)
    }

    /// Forget a transaction's doom flag (called once it has rolled back).
    pub fn clear_doom(&self, txn: TxnId) {
        self.core.lock().unwrap().doomed.remove(&txn);
    }

    /// Acquire one lock, honouring the wait mode. Returns:
    ///
    /// * `Ok(())` — granted (possibly after blocking);
    /// * `Err(WouldBlock)` — `Fail` mode and the lock is contested;
    /// * `Err(Deadlock)` — this transaction's step must be undone and
    ///   retried;
    /// * `Err(TxnAborted)` — this transaction was doomed by a compensating
    ///   step and must roll back entirely.
    pub fn acquire(
        &self,
        txn: TxnId,
        resource: ResourceId,
        kind: LockKind,
        ctx: RequestCtx,
        mode: WaitMode,
    ) -> Result<()> {
        let mut core = self.core.lock().unwrap();
        // A doom flag orders the transaction to roll back; once it *is*
        // rolling back (compensating), the order is vacuous and must not
        // abort the compensating step (§3.4).
        if !ctx.compensating && core.doomed.contains(&txn) {
            return Err(Error::TxnAborted(txn));
        }
        let req = Request::new(txn, resource, kind, ctx);
        match core.lm.request(req, &*self.oracle) {
            RequestOutcome::Granted => Ok(()),
            RequestOutcome::Waiting(ticket) => {
                self.wait_on(core, txn, resource, ticket, mode, ctx.compensating)
            }
            RequestOutcome::Deadlock { victims, ticket } => {
                if victims.contains(&txn) {
                    // Our step is the victim; the request was withdrawn.
                    Err(Error::Deadlock { victim: txn })
                } else {
                    // We are compensating: doom the steps delaying us and
                    // keep waiting for our (still queued) request.
                    for v in victims {
                        core.doomed.insert(v);
                    }
                    self.cond.notify_all();
                    let ticket = ticket.expect("compensating deadlock keeps the request queued");
                    self.wait_on(core, txn, resource, ticket, mode, ctx.compensating)
                }
            }
        }
    }

    fn wait_on(
        &self,
        mut core: MutexGuard<'_, Core>,
        txn: TxnId,
        resource: ResourceId,
        ticket: Ticket,
        mode: WaitMode,
        compensating: bool,
    ) -> Result<()> {
        match mode {
            WaitMode::Fail => {
                // Withdraw immediately; the deterministic scheduler will
                // retry the whole step later.
                let notices = core.lm.cancel_waiting(txn, &*self.oracle);
                Self::post_notices(&mut core, &self.cond, notices);
                Err(Error::WouldBlock { txn, resource })
            }
            WaitMode::Block => {
                // Wait in slices; on each timeout slice, re-run deadlock
                // detection from this waiter — cycles assembled after our
                // enqueue (by grants/queue mutations elsewhere) are invisible
                // to enqueue-time detection and must be swept up here.
                let started = std::time::Instant::now();
                let slice = Duration::from_millis(50).min(self.wait_cap);
                let mut waited = Duration::ZERO;
                loop {
                    if core.granted.remove(&ticket) {
                        let sink = core.lm.sink();
                        if sink.is_enabled() {
                            sink.emit(Event::WaitEnd {
                                txn,
                                resource,
                                micros: started.elapsed().as_micros() as u64,
                            });
                        }
                        return Ok(());
                    }
                    if !compensating && core.doomed.contains(&txn) {
                        let notices = core.lm.cancel_waiting(txn, &*self.oracle);
                        Self::post_notices(&mut core, &self.cond, notices);
                        return Err(Error::TxnAborted(txn));
                    }
                    // A planned spurious wakeup truncates this slice to near
                    // zero: the waiter comes back with no grant and must
                    // re-check doom flags and re-run detection — the path a
                    // stray `notify_all` or early timeout exercises.
                    let spurious = self.faults.on_lock_wait();
                    let this_slice = if spurious {
                        Duration::from_micros(100)
                    } else {
                        slice
                    };
                    let (guard, timeout) = self.cond.wait_timeout(core, this_slice).unwrap();
                    core = guard;
                    if timeout.timed_out() {
                        // Accumulate the time actually slept so the safety
                        // cap stays sound even under a storm of injected
                        // spurious wakeups.
                        waited += this_slice;
                        if let Some(det) = core.lm.detect_from(txn, &*self.oracle) {
                            // Waiters unblocked by the victim's withdrawn
                            // requests must be woken, or they stall.
                            Self::post_notices(&mut core, &self.cond, det.notices);
                            if det.self_is_victim {
                                return Err(Error::Deadlock { victim: txn });
                            }
                            for v in det.victims {
                                core.doomed.insert(v);
                            }
                            self.cond.notify_all();
                        }
                        if waited >= self.wait_cap {
                            let notices = core.lm.cancel_waiting(txn, &*self.oracle);
                            Self::post_notices(&mut core, &self.cond, notices);
                            return Err(Error::Internal(format!(
                                "{txn} waited longer than {:?} on {resource} — \
                                 undetected stall (bug)",
                                self.wait_cap
                            )));
                        }
                    }
                }
            }
        }
    }

    /// Release the caller-selected grants of `txn` and wake anyone whose
    /// request became grantable.
    pub fn release_where(&self, txn: TxnId, pred: impl Fn(LockKind, &RequestCtx) -> bool) {
        let mut core = self.core.lock().unwrap();
        let notices = core.lm.release_where(txn, &*self.oracle, pred);
        Self::post_notices(&mut core, &self.cond, notices);
    }

    /// Release everything `txn` holds or waits for.
    pub fn release_all(&self, txn: TxnId) {
        let mut core = self.core.lock().unwrap();
        let notices = core.lm.release_all(txn, &*self.oracle);
        Self::post_notices(&mut core, &self.cond, notices);
    }

    fn post_notices(core: &mut Core, cond: &Condvar, notices: Vec<GrantNotice>) {
        if notices.is_empty() {
            return;
        }
        for n in notices {
            core.granted.insert(n.ticket);
        }
        cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_lockmgr::NoInterference;
    use acc_storage::Catalog;
    use std::sync::Arc;

    fn shared() -> Arc<SharedDb> {
        Arc::new(
            SharedDb::new(Database::new(&Catalog::new()), Arc::new(NoInterference))
                .with_wait_cap(Duration::from_millis(200)),
        )
    }

    const R: ResourceId = ResourceId::Named(1);

    fn plain() -> RequestCtx {
        RequestCtx::plain(acc_common::StepTypeId(0))
    }

    #[test]
    fn begin_assigns_ids_and_logs() {
        let s = shared();
        let a = s.begin_txn(TxnTypeId(0));
        let b = s.begin_txn(TxnTypeId(0));
        assert_ne!(a, b);
        s.with_core(|c| assert_eq!(c.wal.len(), 2));
    }

    #[test]
    fn fail_mode_returns_would_block() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        let t2 = s.begin_txn(TxnTypeId(0));
        s.acquire(t1, R, LockKind::X, plain(), WaitMode::Fail)
            .unwrap();
        let err = s
            .acquire(t2, R, LockKind::X, plain(), WaitMode::Fail)
            .unwrap_err();
        assert!(matches!(err, Error::WouldBlock { .. }));
        // The request was withdrawn: releasing t1 leaves the queue empty.
        s.release_all(t1);
        s.with_core(|c| assert_eq!(c.lm.queue_len(R), 0));
    }

    #[test]
    fn block_mode_wakes_on_release() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        let t2 = s.begin_txn(TxnTypeId(0));
        s.acquire(t1, R, LockKind::X, plain(), WaitMode::Block)
            .unwrap();
        let s2 = Arc::clone(&s);
        let h =
            std::thread::spawn(move || s2.acquire(t2, R, LockKind::X, plain(), WaitMode::Block));
        std::thread::sleep(Duration::from_millis(30));
        s.release_all(t1);
        h.join().unwrap().unwrap();
        s.with_core(|c| assert!(c.lm.holds(t2, R, LockKind::X)));
    }

    #[test]
    fn doomed_waiter_is_woken_with_abort() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        let t2 = s.begin_txn(TxnTypeId(0));
        s.acquire(t1, R, LockKind::X, plain(), WaitMode::Block)
            .unwrap();
        let s2 = Arc::clone(&s);
        let h =
            std::thread::spawn(move || s2.acquire(t2, R, LockKind::X, plain(), WaitMode::Block));
        std::thread::sleep(Duration::from_millis(30));
        s.with_core(|c| {
            c.doomed.insert(t2);
        });
        s.cond.notify_all();
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err, Error::TxnAborted(t2));
        assert!(s.is_doomed(t2));
        s.clear_doom(t2);
        assert!(!s.is_doomed(t2));
    }

    #[test]
    fn doomed_txn_cannot_acquire() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        s.with_core(|c| {
            c.doomed.insert(t1);
        });
        let err = s
            .acquire(t1, R, LockKind::S, plain(), WaitMode::Block)
            .unwrap_err();
        assert_eq!(err, Error::TxnAborted(t1));
    }

    #[test]
    fn wait_cap_fires_instead_of_hanging() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        let t2 = s.begin_txn(TxnTypeId(0));
        s.acquire(t1, R, LockKind::X, plain(), WaitMode::Block)
            .unwrap();
        let err = s
            .acquire(t2, R, LockKind::X, plain(), WaitMode::Block)
            .unwrap_err();
        assert!(matches!(err, Error::Internal(_)));
    }
}
