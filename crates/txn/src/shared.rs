//! The shared system state, decomposed: striped database image, sharded lock
//! tables, and an independent WAL append path.
//!
//! Until PR 3 everything lived behind one `Mutex<Core>` with a broadcast
//! condvar. Now each concern has its own synchronization:
//!
//! * the database image is a [`StripedDb`] — one `RwLock` per table;
//! * the lock table is a [`ShardedLockManager`] — N hash-sharded mutexes;
//! * the WAL has a dedicated append mutex that assigns LSNs independently of
//!   lock traffic (group commit can batch fsyncs behind it later);
//! * lock waits park on per-ticket slots ([`crate::parking`]) — a grant
//!   wakes exactly its owner instead of `notify_all`-ing every waiter.
//!
//! Lock ordering: table stripes, lock shards, the WAL mutex, the doom set
//! and the parking table are all *leaves* relative to each other — no thread
//! ever holds one while blocking on another, except the sharded manager's
//! own discipline (one shard at a time, notices posted under the shard
//! mutex, parking/doom taken inside — see `acc_lockmgr::sharded`). See
//! DESIGN.md §Concurrency model for the full diagram.

use crate::parking::Parking;
use acc_common::events::{Event, EventSink};
use acc_common::faults::FaultInjector;
use acc_common::{Error, ResourceId, Result, TableId, TxnId, TxnTypeId};
use acc_lockmgr::{
    EpochPin, InstallOutcome, InterferenceOracle, InterferenceRegistry, LockKind, PinAttempt,
    Request, RequestCtx, RequestOutcome, ShardedLockManager, SharedOracle, SwitchStats, Ticket,
};
use acc_storage::{CommitResolver, Database, StripedDb, Table};
use acc_wal::{DurableWal, GroupCommitPolicy, LogDevice, LogRecord, Lsn, Wal};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A forward-step-boundary observer (see `SharedDb::set_step_boundary_hook`).
pub type StepBoundaryHook = Box<dyn Fn(u64) + Send + Sync>;

/// How a lock request behaves when it cannot be granted immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitMode {
    /// Park the calling thread until granted (threaded engine).
    Block,
    /// Withdraw the request and return [`Error::WouldBlock`] (deterministic
    /// single-threaded scheduling).
    Fail,
}

/// The shared system: one per simulated database server group.
pub struct SharedDb {
    /// The database image, striped per table.
    db: StripedDb,
    /// The sharded lock table.
    lm: ShardedLockManager,
    /// The WAL behind its own append mutex, plus its durable device and
    /// group-commit batcher: LSN assignment never contends with lock traffic
    /// or stripe access, and commits park on fsync boundaries
    /// (`DurableWal::sync_to`).
    wal: DurableWal,
    /// Per-ticket parking slots for blocked lock waits.
    parking: Parking,
    /// Transactions ordered to roll back by a compensating step (§3.4).
    doomed: Mutex<HashSet<TxnId>>,
    /// Read views of in-flight transactions. A transaction's view is the
    /// *durable* WAL frontier observed at [`SharedDb::begin_txn`] (the last
    /// fsync-covered LSN), so a version read can never see a commit that was
    /// not durable when the reader began. The map also feeds the
    /// version-chain pruning watermark (no chain entry a live view might
    /// still unwind through is ever dropped): the view is minted and
    /// registered inside one `active` critical section, and
    /// [`SharedDb::version_watermark`] reads the frontier inside the same
    /// critical section, so frontier monotonicity guarantees the watermark
    /// never passes a view about to be registered. Removed at
    /// commit/rollback after the transaction's chains are finalized.
    active: Mutex<HashMap<TxnId, u64>>,
    /// Commit LSNs of transactions whose `Commit` record is appended but
    /// whose version chains are not yet finalized. Published *inside* the
    /// WAL append mutex (atomically with the `Commit` append, see
    /// `runner::commit`), so by the time any flush can make the commit LSN
    /// durable — and hence any new view can cover it — the publication is
    /// already visible to `reconstruct`. Version readers resolve `Pending`
    /// chain entries through this map ([`PublishedCommits`]); the per-table
    /// finalization that follows the fsync is then an invisible physical
    /// rewrite rather than a visibility event.
    committing: Mutex<HashMap<TxnId, u64>>,
    next_txn: AtomicU64,
    /// Replication shipped frontier: leader log records verified and
    /// acknowledged by a follower, updated by the shipper at each batch ack.
    /// `u64::MAX` is the unconfigured sentinel (no replication → the
    /// watermark ignores it); once set it only moves forward.
    shipped: AtomicU64,
    /// The epoch-versioned interference tables. Decomposed transactions pin
    /// an epoch at first-step admission and use the pinned snapshot for
    /// every lookup; unpinned callers (2PL legacy, tests) resolve the
    /// current tables per call.
    registry: Arc<InterferenceRegistry>,
    /// Global forward-step-boundary counter and observer (torture harnesses
    /// install re-analyses at exact boundaries through this).
    boundaries: AtomicU64,
    boundary_hook: Mutex<Option<StepBoundaryHook>>,
    /// Safety net: a blocked lock wait longer than this is reported as an
    /// internal error instead of hanging the process.
    wait_cap: Duration,
    /// Fault-injection hook for lock waits (disabled by default).
    faults: Arc<FaultInjector>,
    /// How many transient failures a compensating step retries before the
    /// rollback is declared wedged (see `runner::rollback`).
    comp_retry_cap: u32,
}

impl SharedDb {
    /// Build around an initial database image. The oracle is system-wide so
    /// that legacy 2PL transactions and decomposed transactions make
    /// consistent interference decisions.
    pub fn new(db: Database, oracle: SharedOracle) -> Self {
        let lm = ShardedLockManager::new(ShardedLockManager::DEFAULT_SHARDS);
        let parking = Parking::new(lm.n_shards());
        SharedDb {
            db: StripedDb::new(db),
            lm,
            wal: DurableWal::default(),
            parking,
            doomed: Mutex::new(HashSet::new()),
            active: Mutex::new(HashMap::new()),
            committing: Mutex::new(HashMap::new()),
            next_txn: AtomicU64::new(1),
            shipped: AtomicU64::new(u64::MAX),
            registry: Arc::new(InterferenceRegistry::new(oracle)),
            boundaries: AtomicU64::new(0),
            boundary_hook: Mutex::new(None),
            wait_cap: Duration::from_secs(30),
            faults: FaultInjector::disabled(),
            comp_retry_cap: 8,
        }
    }

    /// Override the blocked-wait safety cap (tests use a short one).
    pub fn with_wait_cap(mut self, cap: Duration) -> Self {
        self.wait_cap = cap;
        self
    }

    /// Swap the WAL's durable backend and group-commit policy (defaults to
    /// an in-memory device flushing on every commit). Builder-order caveat:
    /// call this *before* [`SharedDb::with_fault_injector`] — the injector is
    /// installed on the current `DurableWal`, which this replaces.
    pub fn with_wal_backend(mut self, dev: Box<dyn LogDevice>, policy: GroupCommitPolicy) -> Self {
        self.wal = DurableWal::new(dev, policy);
        self
    }

    /// Install a fault injector: the WAL reports appends, step boundaries
    /// and fsync boundaries to it, and lock waits consult it for planned
    /// spurious wakeups.
    pub fn with_fault_injector(mut self, faults: Arc<FaultInjector>) -> Self {
        self.wal.set_fault_injector(Arc::clone(&faults));
        self.faults = faults;
        self
    }

    /// Override the compensation transient-retry cap (how many times a
    /// compensating step retries a transient failure before the rollback is
    /// reported wedged).
    pub fn with_comp_retry_cap(mut self, cap: u32) -> Self {
        self.comp_retry_cap = cap;
        self
    }

    /// The compensation transient-retry cap.
    pub fn comp_retry_cap(&self) -> u32 {
        self.comp_retry_cap
    }

    /// The current interference tables (unpinned snapshot).
    pub fn oracle(&self) -> SharedOracle {
        self.registry.current()
    }

    /// The epoch-versioned table registry (epoch number, drain state,
    /// mixed-epoch audit counter).
    pub fn registry(&self) -> &InterferenceRegistry {
        &self.registry
    }

    /// The tables a request must consult: the transaction's pinned epoch
    /// snapshot, or the current tables for unpinned (legacy/2PL) callers.
    pub fn oracle_for(&self, pin: Option<&EpochPin>) -> SharedOracle {
        match pin {
            Some(p) => Arc::clone(&p.oracle),
            None => self.registry.current(),
        }
    }

    /// Pin the current table epoch for a decomposed transaction's lifetime
    /// (first-step admission). While a switchover is draining, `Block` mode
    /// parks until the new epoch is current and `Fail` mode reports
    /// [`Error::WouldBlock`] on the admission sentinel so the deterministic
    /// scheduler retries the step later.
    pub fn pin_epoch(&self, txn: TxnId, mode: WaitMode) -> Result<EpochPin> {
        match self.registry.pin(mode == WaitMode::Block, self.wait_cap) {
            PinAttempt::Pinned(pin) => Ok(pin),
            PinAttempt::WouldBlock => Err(Error::WouldBlock {
                txn,
                resource: SharedDb::ADMISSION_SENTINEL,
            }),
            PinAttempt::TimedOut => Err(Error::Internal(format!(
                "{txn} waited longer than {:?} for an epoch switchover — \
                 drain never completed (bug)",
                self.wait_cap
            ))),
        }
    }

    /// Release a transaction's epoch pin (after `release_all`, so the
    /// switchover a completed drain triggers can never see a live old-epoch
    /// lock). Emits [`Event::EpochSwitch`] when this unpin completed one.
    pub fn unpin_epoch(&self, pin: Option<EpochPin>) {
        if let Some(pin) = pin {
            if let Some(stats) = self.registry.unpin(pin) {
                self.emit_switch(stats);
            }
        }
    }

    /// Publish re-analyzed interference tables: immediate switch when no
    /// epoch pins are outstanding, otherwise a drain that completes at the
    /// last unpin. Emits [`Event::EpochSwitch`] for an immediate switch.
    pub fn install_oracle(&self, oracle: SharedOracle) -> InstallOutcome {
        let (outcome, stats) = self.registry.install(oracle);
        if let Some(stats) = stats {
            self.emit_switch(stats);
        }
        outcome
    }

    fn emit_switch(&self, stats: SwitchStats) {
        let sink = self.lm.sink();
        if sink.is_enabled() {
            sink.emit(Event::EpochSwitch {
                epoch: stats.epoch,
                drained: stats.drained as u32,
                parked: stats.parked as u32,
            });
        }
    }

    /// The pseudo-resource reported by a `Fail`-mode admission that ran into
    /// a draining switchover.
    pub const ADMISSION_SENTINEL: ResourceId = ResourceId::Named(u32::MAX);

    /// Install a forward-step-boundary observer (torture harnesses trigger
    /// re-analyses at exact global boundaries through it). The hook receives
    /// the 1-based global boundary count.
    pub fn set_step_boundary_hook(&self, hook: Option<StepBoundaryHook>) {
        *self
            .boundary_hook
            .lock()
            .expect("boundary hook not poisoned") = hook;
    }

    /// Count one forward-step boundary and notify the observer, if any
    /// (called by `runner::end_step`).
    pub fn fire_step_boundary(&self) {
        let n = self.boundaries.fetch_add(1, Ordering::Relaxed) + 1;
        let hook = self
            .boundary_hook
            .lock()
            .expect("boundary hook not poisoned");
        if let Some(hook) = hook.as_ref() {
            hook(n);
        }
    }

    /// Forward-step boundaries observed so far.
    pub fn step_boundaries(&self) -> u64 {
        self.boundaries.load(Ordering::Relaxed)
    }

    /// Route the lock manager's observability events into `sink`.
    pub fn set_event_sink(&self, sink: Arc<EventSink>) {
        self.lm.set_sink(sink);
    }

    /// The lock manager's current event sink (disabled by default).
    pub fn event_sink(&self) -> Arc<EventSink> {
        self.lm.sink()
    }

    /// The sharded lock table (diagnostics: `holds`, `queue_len`,
    /// `all_grants`, …).
    pub fn lm(&self) -> &ShardedLockManager {
        &self.lm
    }

    /// Total lock grants across all shards — the lock-leak check.
    pub fn total_grants(&self) -> usize {
        self.lm.total_grants()
    }

    /// The table with the given id (tables do their own page-granularity
    /// latching; no stripe lock is involved anymore).
    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.db.table(id)
    }

    /// Run `f` with access to one table.
    pub fn with_table<R>(&self, id: TableId, f: impl FnOnce(&Table) -> R) -> Result<R> {
        self.db.with_table(id, f)
    }

    /// Run `f` with access to one table (mutating call sites; same as
    /// [`SharedDb::with_table`] since tables latch per page).
    pub fn with_table_mut<R>(&self, id: TableId, f: impl FnOnce(&Table) -> R) -> Result<R> {
        self.db.with_table_mut(id, f)
    }

    /// Aggregate pager counters across all tables — the physical-latch
    /// analogue of the lock manager's grant statistics.
    pub fn pager_counters(&self) -> acc_storage::PagerCounters {
        self.db.pager_counters()
    }

    /// Clone the current database image (tests, consistency checks). Only
    /// transactionally consistent at quiescent points: the stripes are
    /// locked one at a time, so concurrent writers would be interleaved —
    /// a torn image. Debug builds assert quiescence (no in-flight
    /// transactions); callers that want a torn diagnostic image of a live
    /// system must use [`SharedDb::snapshot_db_unchecked`].
    pub fn snapshot_db(&self) -> Database {
        debug_assert_eq!(
            self.active_txns(),
            0,
            "snapshot_db at a non-quiescent point: {} transaction(s) in \
             flight — the per-stripe snapshot would tear their writes",
            self.active_txns()
        );
        self.db.snapshot()
    }

    /// [`SharedDb::snapshot_db`] without the quiescence check: a possibly
    /// torn diagnostic read of a live system.
    pub fn snapshot_db_unchecked(&self) -> Database {
        self.db.snapshot()
    }

    /// Run `f` with the WAL locked (appends, boundary fault hooks).
    pub fn with_wal<R>(&self, f: impl FnOnce(&mut Wal) -> R) -> R {
        self.wal.with_log(f)
    }

    /// The WAL's full byte image — every appended record, durable or not
    /// (the PR-2 crash model: crash points at append indices).
    pub fn wal_bytes(&self) -> Vec<u8> {
        self.with_wal(|w| w.to_bytes())
    }

    /// Number of WAL records.
    pub fn wal_len(&self) -> usize {
        self.with_wal(|w| w.len())
    }

    /// Park until `lsn` is durable, leading a group-commit flush if nobody
    /// else is (the commit ack point). Emits [`Event::WalFsync`] when this
    /// caller led the flush.
    pub fn sync_wal(&self, lsn: Lsn) -> Result<()> {
        let stats = self.wal.sync_to(lsn)?;
        if let Some(stats) = stats {
            let sink = self.lm.sink();
            if sink.is_enabled() {
                sink.emit(Event::WalFsync {
                    records: stats.records as u32,
                    bytes: stats.bytes as u32,
                });
            }
        }
        Ok(())
    }

    /// Background flush hint (non-commit append sites): flush if the staged
    /// batch reached the policy threshold. Device errors are deliberately
    /// swallowed here — they are sticky and surface at the next commit's
    /// [`SharedDb::sync_wal`], the only point that acks durability.
    pub fn flush_wal_batch(&self) {
        if let Some(stats) = self.wal.flush_if_batchful() {
            let sink = self.lm.sink();
            if sink.is_enabled() {
                sink.emit(Event::WalFsync {
                    records: stats.records as u32,
                    bytes: stats.bytes as u32,
                });
            }
        }
    }

    /// Records covered by completed fsyncs (`durable_lsn` frontier).
    pub fn durable_wal_records(&self) -> u64 {
        self.wal.durable_records()
    }

    /// Completed WAL fsync boundaries.
    pub fn wal_fsyncs(&self) -> u64 {
        self.wal.fsyncs()
    }

    /// The durable record stream — what a crash right now would leave.
    pub fn wal_durable_stream(&self) -> Vec<u8> {
        self.wal.durable_stream()
    }

    /// The raw durable device image (sector-framed for a file device).
    pub fn wal_raw_image(&self) -> Vec<u8> {
        self.wal.raw_image()
    }

    /// The WAL device's short name ("mem" / "file").
    pub fn wal_device_kind(&self) -> &'static str {
        self.wal.device_kind()
    }

    /// Allocate a transaction id, log its begin record, and mint the
    /// transaction's version-read view: the *durable* WAL frontier (last
    /// fsync-covered LSN) at begin. Views anchored at the frontier — not at
    /// the begin record's own LSN — mean a version read can only ever cover
    /// a commit that was already durable when the reader began, closing the
    /// window where a reader straddles another transaction's group-commit
    /// fsync.
    ///
    /// The view is minted and registered under one `active` critical
    /// section (not inside the WAL append mutex — `DurableWal` acquires its
    /// state mutex before the log mutex, so reading the frontier under the
    /// log mutex would invert that order). `version_watermark` reads the
    /// frontier inside the same critical section; the frontier only moves
    /// forward, so any watermark computed before this registration used a
    /// frontier no newer than ours and is therefore `<=` our view.
    pub fn begin_txn(&self, txn_type: TxnTypeId) -> TxnId {
        let id = TxnId(self.next_txn.fetch_add(1, Ordering::Relaxed));
        self.with_wal(|w| w.append(LogRecord::Begin { txn: id, txn_type }));
        let mut active = self.active.lock().expect("active map not poisoned");
        let view = self.durable_wal_records().saturating_sub(1);
        active.insert(id, view);
        id
    }

    /// The read view of an in-flight transaction (the durable WAL frontier
    /// at its begin).
    pub fn read_view_of(&self, txn: TxnId) -> Option<u64> {
        self.active
            .lock()
            .expect("active map not poisoned")
            .get(&txn)
            .copied()
    }

    /// Remove a finished transaction from the active map (after its version
    /// chains are finalized — see `runner::commit` / `runner::rollback`).
    pub fn deregister_active(&self, txn: TxnId) {
        self.active
            .lock()
            .expect("active map not poisoned")
            .remove(&txn);
    }

    /// Publish `txn`'s commit LSN for version readers. MUST be called while
    /// holding the WAL append mutex, immediately after appending the
    /// `Commit` record: the durable frontier can only cover that LSN via a
    /// flush that collects staged records under the same mutex, so every
    /// view that can ever equal-or-pass the commit LSN is minted after this
    /// publication is visible. From that point `Pending` chain entries of
    /// `txn` read exactly like `Committed { commit_lsn }`.
    pub fn publish_commit(&self, txn: TxnId, commit_lsn: u64) {
        self.committing
            .lock()
            .expect("committing map not poisoned")
            .insert(txn, commit_lsn);
    }

    /// Drop `txn`'s commit publication — after per-table finalization has
    /// rewritten its chains (the publication is then redundant), or on a
    /// failed commit fsync (the LSN never became durable, so no view ever
    /// covers it and the chains stay `Pending`).
    pub fn retire_commit(&self, txn: TxnId) {
        self.committing
            .lock()
            .expect("committing map not poisoned")
            .remove(&txn);
    }

    /// The commit-publication resolver version reads consult (see
    /// [`SharedDb::publish_commit`]).
    pub fn published_commits(&self) -> PublishedCommits<'_> {
        PublishedCommits {
            map: &self.committing,
        }
    }

    /// In-flight transactions (test/diagnostic helper).
    pub fn active_txns(&self) -> usize {
        self.active.lock().expect("active map not poisoned").len()
    }

    /// The version-chain pruning low-watermark: a chain entry committed at
    /// `lsn <= watermark` can be visible to every live and future view, so
    /// an all-visible chain *prefix* below it is droppable.
    ///
    /// Three clamps, all load-bearing:
    ///
    /// * the minimum *read view* of any in-flight transaction — a live view
    ///   older than an entry's commit LSN must still be able to unwind
    ///   through it;
    /// * the *durable* WAL frontier, not the allocated append frontier —
    ///   commit LSNs are allocated at append time, but group commit can
    ///   leave them non-durable past an fsync boundary; pruning history for
    ///   a commit whose record a crash could still erase would leave the
    ///   surviving (durable) prefix without the images it implies;
    /// * the replication *shipped* frontier, when one is configured
    ///   ([`SharedDb::set_shipped_frontier`]) — a follower that restarts
    ///   resumes from its last verified record and serves version reads at
    ///   its replay frontier; pruning history the follower has not verified
    ///   yet would let a promotion land on an image whose chains the leader
    ///   already dropped.
    ///
    /// The frontier is read inside the `active` critical section, mirroring
    /// the view minting in [`SharedDb::begin_txn`]: either a minting begin
    /// registered first (the min below sees its view), or this watermark's
    /// frontier read happened first and monotonicity bounds it by the view
    /// the minter is about to register. Either way the watermark never
    /// passes a live view.
    ///
    /// `None` means nothing is durable yet, so nothing may be pruned.
    pub fn version_watermark(&self) -> Option<u64> {
        let active = self.active.lock().expect("active map not poisoned");
        let mut cap = self.durable_wal_records().checked_sub(1)?;
        if let Some(shipped) = self.shipped_frontier() {
            // Nothing verified at the follower yet → nothing prunable.
            cap = cap.min(shipped.checked_sub(1)?);
        }
        let min_view = active.values().copied().min();
        Some(min_view.map_or(cap, |m| m.min(cap)))
    }

    /// Record the replication shipped frontier: `records` leader log records
    /// are now verified at a follower. Monotonic — a late or duplicate ack
    /// can never pull the frontier (and with it the prune watermark) back.
    pub fn set_shipped_frontier(&self, records: u64) {
        let _ = self
            .shipped
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                (cur == u64::MAX || records > cur).then_some(records)
            });
    }

    /// The shipped frontier, or `None` when no replication is configured.
    pub fn shipped_frontier(&self) -> Option<u64> {
        let v = self.shipped.load(Ordering::Relaxed);
        (v != u64::MAX).then_some(v)
    }

    /// True if some other transaction doomed this one (it is delaying a
    /// compensating step and must roll back, §3.4).
    pub fn is_doomed(&self, txn: TxnId) -> bool {
        self.doomed
            .lock()
            .expect("doom set not poisoned")
            .contains(&txn)
    }

    /// Forget a transaction's doom flag (called once it has rolled back).
    pub fn clear_doom(&self, txn: TxnId) {
        self.doomed
            .lock()
            .expect("doom set not poisoned")
            .remove(&txn);
    }

    /// Doom `txn` (it is delaying a compensating step) and wake any of its
    /// parked lock waits so it notices promptly.
    pub fn doom(&self, txn: TxnId) {
        self.doomed
            .lock()
            .expect("doom set not poisoned")
            .insert(txn);
        self.parking.nudge_txn(txn);
    }

    /// Acquire one lock, honouring the wait mode. Returns:
    ///
    /// * `Ok(())` — granted (possibly after blocking);
    /// * `Err(WouldBlock)` — `Fail` mode and the lock is contested;
    /// * `Err(Deadlock)` — this transaction's step must be undone and
    ///   retried;
    /// * `Err(TxnAborted)` — this transaction was doomed by a compensating
    ///   step and must roll back entirely.
    pub fn acquire(
        &self,
        txn: TxnId,
        resource: ResourceId,
        kind: LockKind,
        ctx: RequestCtx,
        mode: WaitMode,
    ) -> Result<()> {
        self.acquire_with(txn, resource, kind, ctx, mode, &*self.registry.current())
    }

    /// [`SharedDb::acquire`] against an explicit oracle snapshot — the hot
    /// path for pinned transactions (the step context resolves the epoch
    /// snapshot once per step instead of once per request).
    pub fn acquire_with(
        &self,
        txn: TxnId,
        resource: ResourceId,
        kind: LockKind,
        ctx: RequestCtx,
        mode: WaitMode,
        oracle: &(dyn InterferenceOracle + Send + Sync),
    ) -> Result<()> {
        // A doom flag orders the transaction to roll back; once it *is*
        // rolling back (compensating), the order is vacuous and must not
        // abort the compensating step (§3.4).
        if !ctx.compensating && self.is_doomed(txn) {
            return Err(Error::TxnAborted(txn));
        }
        let req = Request::new(txn, resource, kind, ctx);
        match self.lm.request(req, oracle) {
            RequestOutcome::Granted => Ok(()),
            RequestOutcome::Waiting(ticket) => {
                self.wait_on(txn, resource, ticket, mode, ctx.compensating, oracle)
            }
            RequestOutcome::Deadlock { victims, ticket } => {
                if victims.contains(&txn) {
                    // Our step is the victim; the request was withdrawn.
                    Err(Error::Deadlock { victim: txn })
                } else {
                    // We are compensating: doom the steps delaying us and
                    // keep waiting for our (still queued) request.
                    for v in victims {
                        self.doom(v);
                    }
                    let ticket = ticket.expect("compensating deadlock keeps the request queued");
                    self.wait_on(txn, resource, ticket, mode, ctx.compensating, oracle)
                }
            }
        }
    }

    /// Withdraw `txn`'s queued requests and drop any parking state for
    /// `ticket`. Safe against in-flight grants: notices are posted under the
    /// shard mutexes `cancel_waiting` itself takes, so once it returns no
    /// grant for the ticket can still be produced.
    fn cancel_and_unpark(
        &self,
        txn: TxnId,
        ticket: Ticket,
        oracle: &(dyn InterferenceOracle + Send + Sync),
    ) {
        self.lm
            .cancel_waiting(txn, oracle, &mut |n| self.parking.grant(n.ticket));
        self.parking.deregister(ticket);
    }

    fn emit_wait_end(&self, txn: TxnId, resource: ResourceId, started: std::time::Instant) {
        let sink = self.lm.sink();
        if sink.is_enabled() {
            sink.emit(Event::WaitEnd {
                txn,
                resource,
                micros: started.elapsed().as_micros() as u64,
            });
        }
    }

    fn wait_on(
        &self,
        txn: TxnId,
        resource: ResourceId,
        ticket: Ticket,
        mode: WaitMode,
        compensating: bool,
        oracle: &(dyn InterferenceOracle + Send + Sync),
    ) -> Result<()> {
        match mode {
            WaitMode::Fail => {
                // Withdraw immediately; the deterministic scheduler will
                // retry the whole step later.
                self.cancel_and_unpark(txn, ticket, oracle);
                Err(Error::WouldBlock { txn, resource })
            }
            WaitMode::Block => {
                let started = std::time::Instant::now();
                let Some(slot) = self.parking.register(ticket, txn) else {
                    // The grant raced ahead of our registration.
                    self.emit_wait_end(txn, resource, started);
                    return Ok(());
                };
                // Wait in slices; on each slice that expires without a
                // grant, re-run deadlock detection from this waiter — cycles
                // assembled after our enqueue (by grants/queue mutations
                // elsewhere, possibly on other shards) are invisible to
                // enqueue-time detection and must be swept up here.
                let slice = Duration::from_millis(50).min(self.wait_cap);
                let mut waited = Duration::ZERO;
                loop {
                    if slot.is_granted() {
                        self.emit_wait_end(txn, resource, started);
                        return Ok(());
                    }
                    if !compensating && self.is_doomed(txn) {
                        self.cancel_and_unpark(txn, ticket, oracle);
                        return Err(Error::TxnAborted(txn));
                    }
                    // A planned spurious wakeup truncates this slice to near
                    // zero: the waiter comes back with no grant and must
                    // re-check doom flags and re-run detection — the path a
                    // stray nudge or early timeout exercises.
                    let spurious = self.faults.on_lock_wait();
                    let this_slice = if spurious {
                        Duration::from_micros(100)
                    } else {
                        slice
                    };
                    if slot.wait_granted(this_slice) {
                        self.emit_wait_end(txn, resource, started);
                        return Ok(());
                    }
                    // Accumulate the time actually slept so the safety cap
                    // stays sound even under a storm of injected spurious
                    // wakeups.
                    waited += this_slice;
                    let det = self
                        .lm
                        .detect_from(txn, oracle, &mut |n| self.parking.grant(n.ticket));
                    if let Some(det) = det {
                        if det.self_is_victim {
                            // Our queued requests were withdrawn inside
                            // detect_from (notices already delivered).
                            self.parking.deregister(ticket);
                            return Err(Error::Deadlock { victim: txn });
                        }
                        for v in det.victims {
                            self.doom(v);
                        }
                    }
                    if waited >= self.wait_cap {
                        self.cancel_and_unpark(txn, ticket, oracle);
                        return Err(Error::Internal(format!(
                            "{txn} waited longer than {:?} on {resource} — \
                             undetected stall (bug)",
                            self.wait_cap
                        )));
                    }
                }
            }
        }
    }

    /// Release the caller-selected grants of `txn` and wake anyone whose
    /// request became grantable.
    pub fn release_where(&self, txn: TxnId, pred: impl Fn(LockKind, &RequestCtx) -> bool) {
        self.release_where_with(txn, pred, &*self.registry.current());
    }

    /// [`SharedDb::release_where`] against an explicit oracle snapshot
    /// (pinned transactions re-evaluate waiters under their own epoch).
    pub fn release_where_with(
        &self,
        txn: TxnId,
        pred: impl Fn(LockKind, &RequestCtx) -> bool,
        oracle: &(dyn InterferenceOracle + Send + Sync),
    ) {
        self.lm
            .release_where(txn, oracle, pred, &mut |n| self.parking.grant(n.ticket));
    }

    /// Release everything `txn` holds or waits for.
    pub fn release_all(&self, txn: TxnId) {
        self.release_all_with(txn, &*self.registry.current());
    }

    /// [`SharedDb::release_all`] against an explicit oracle snapshot.
    pub fn release_all_with(&self, txn: TxnId, oracle: &(dyn InterferenceOracle + Send + Sync)) {
        self.lm
            .release_all(txn, oracle, &mut |n| self.parking.grant(n.ticket));
    }
}

/// [`CommitResolver`] over the shared committing-transaction map: version
/// reads resolve `Pending` chain entries of a transaction whose `Commit`
/// record is appended but whose chains are not yet finalized (see
/// [`SharedDb::publish_commit`]). The map mutex is a leaf — resolving takes
/// no other lock.
pub struct PublishedCommits<'a> {
    map: &'a Mutex<HashMap<TxnId, u64>>,
}

impl CommitResolver for PublishedCommits<'_> {
    fn commit_lsn(&self, txn: TxnId) -> Option<u64> {
        self.map
            .lock()
            .expect("committing map not poisoned")
            .get(&txn)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_lockmgr::NoInterference;
    use acc_storage::Catalog;
    use std::sync::Arc;

    fn shared() -> Arc<SharedDb> {
        Arc::new(
            SharedDb::new(Database::new(&Catalog::new()), Arc::new(NoInterference))
                .with_wait_cap(Duration::from_millis(200)),
        )
    }

    const R: ResourceId = ResourceId::Named(1);

    fn plain() -> RequestCtx {
        RequestCtx::plain(acc_common::StepTypeId(0))
    }

    #[test]
    fn begin_assigns_ids_and_logs() {
        let s = shared();
        let a = s.begin_txn(TxnTypeId(0));
        let b = s.begin_txn(TxnTypeId(0));
        assert_ne!(a, b);
        assert_eq!(s.wal_len(), 2);
    }

    #[test]
    fn fail_mode_returns_would_block() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        let t2 = s.begin_txn(TxnTypeId(0));
        s.acquire(t1, R, LockKind::X, plain(), WaitMode::Fail)
            .unwrap();
        let err = s
            .acquire(t2, R, LockKind::X, plain(), WaitMode::Fail)
            .unwrap_err();
        assert!(matches!(err, Error::WouldBlock { .. }));
        // The request was withdrawn: releasing t1 leaves the queue empty.
        s.release_all(t1);
        assert_eq!(s.lm().queue_len(R), 0);
    }

    #[test]
    fn block_mode_wakes_on_release() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        let t2 = s.begin_txn(TxnTypeId(0));
        s.acquire(t1, R, LockKind::X, plain(), WaitMode::Block)
            .unwrap();
        let s2 = Arc::clone(&s);
        let h =
            std::thread::spawn(move || s2.acquire(t2, R, LockKind::X, plain(), WaitMode::Block));
        std::thread::sleep(Duration::from_millis(30));
        s.release_all(t1);
        h.join().unwrap().unwrap();
        assert!(s.lm().holds(t2, R, LockKind::X));
    }

    #[test]
    fn doomed_waiter_is_woken_with_abort() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        let t2 = s.begin_txn(TxnTypeId(0));
        s.acquire(t1, R, LockKind::X, plain(), WaitMode::Block)
            .unwrap();
        let s2 = Arc::clone(&s);
        let h =
            std::thread::spawn(move || s2.acquire(t2, R, LockKind::X, plain(), WaitMode::Block));
        std::thread::sleep(Duration::from_millis(30));
        s.doom(t2);
        let err = h.join().unwrap().unwrap_err();
        assert_eq!(err, Error::TxnAborted(t2));
        assert!(s.is_doomed(t2));
        s.clear_doom(t2);
        assert!(!s.is_doomed(t2));
    }

    #[test]
    fn doomed_txn_cannot_acquire() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        s.doom(t1);
        let err = s
            .acquire(t1, R, LockKind::S, plain(), WaitMode::Block)
            .unwrap_err();
        assert_eq!(err, Error::TxnAborted(t1));
    }

    #[test]
    fn wait_cap_fires_instead_of_hanging() {
        let s = shared();
        let t1 = s.begin_txn(TxnTypeId(0));
        let t2 = s.begin_txn(TxnTypeId(0));
        s.acquire(t1, R, LockKind::X, plain(), WaitMode::Block)
            .unwrap();
        let err = s
            .acquire(t2, R, LockKind::X, plain(), WaitMode::Block)
            .unwrap_err();
        assert!(matches!(err, Error::Internal(_)));
    }

    #[test]
    fn grants_on_distinct_resources_do_not_cross_wake() {
        // Two waiters on two resources; releasing one lock must wake only
        // its own waiter (per-ticket parking, no thundering herd).
        let s = shared();
        let r2 = ResourceId::Named(2);
        let t1 = s.begin_txn(TxnTypeId(0));
        let t2 = s.begin_txn(TxnTypeId(0));
        let t3 = s.begin_txn(TxnTypeId(0));
        let t4 = s.begin_txn(TxnTypeId(0));
        s.acquire(t1, R, LockKind::X, plain(), WaitMode::Block)
            .unwrap();
        s.acquire(t2, r2, LockKind::X, plain(), WaitMode::Block)
            .unwrap();
        let s3 = Arc::clone(&s);
        let h3 =
            std::thread::spawn(move || s3.acquire(t3, R, LockKind::X, plain(), WaitMode::Block));
        let s4 = Arc::clone(&s);
        let h4 =
            std::thread::spawn(move || s4.acquire(t4, r2, LockKind::X, plain(), WaitMode::Block));
        std::thread::sleep(Duration::from_millis(30));
        s.release_all(t1);
        h3.join().unwrap().unwrap();
        assert!(s.lm().holds(t3, R, LockKind::X));
        // t4 is still parked; its lock is still held by t2.
        assert!(s.lm().is_waiting(t4));
        s.release_all(t2);
        h4.join().unwrap().unwrap();
        assert!(s.lm().holds(t4, r2, LockKind::X));
    }
}
