//! The transaction runtime.
//!
//! Workload code writes a [`program::TxnProgram`]: a transaction decomposed
//! into steps (plus one compensating step per prefix, §3.4 of the paper).
//! [`runner::run`] executes a program against a [`shared::SharedDb`] under a
//! pluggable [`cc::ConcurrencyControl`]:
//!
//! * [`cc::TwoPhase`] — the baseline: the whole program is one atomic unit,
//!   strict two-phase locking, physical rollback. This is what the paper's
//!   unmodified Open Ingres does.
//! * `Acc` (in the `acc-core` crate) — step-decomposed execution with
//!   assertional locks: conventional locks released at every step boundary,
//!   rollback by compensating steps.
//!
//! The same program runs unchanged under either control, which is what makes
//! the paper's experiments an apples-to-apples comparison.
//!
//! # Threading
//!
//! [`shared::SharedDb`] decomposes the system's synchronization: table
//! stripes (`RwLock` per table), a sharded lock table, a dedicated WAL
//! append mutex, and per-ticket parking slots for lock waits. Transactions
//! run on arbitrary threads in [`shared::WaitMode::Block`], or single-threaded
//! with [`shared::WaitMode::Fail`] (the deterministic scheduler in
//! `acc-engine` uses this to explore interleavings reproducibly).

pub mod cc;
mod parking;
pub mod program;
pub mod runner;
pub mod shared;
pub mod step;
pub mod transaction;

pub use cc::{ConcurrencyControl, TwoPhase, TxnMeta, LEGACY_STEP};
pub use program::{StepOutcome, TxnProgram};
pub use runner::{run, AbortReason, RunOutcome};
pub use shared::{PublishedCommits, SharedDb, WaitMode};
pub use step::StepCtx;
pub use transaction::{Transaction, TxnState};
