//! `StepCtx`: the data-access API a step executes against.
//!
//! Every operation acquires the locks the active [`ConcurrencyControl`]
//! prescribes (conventional intention + item locks, plus whatever assertional
//! locks the policy attaches), logs before/after images to the WAL, and
//! pushes undo records onto the transaction's current-step undo stack.

use crate::cc::ConcurrencyControl;
use crate::shared::{SharedDb, WaitMode};
use crate::transaction::Transaction;
use acc_common::events::Event;
use acc_common::{Error, Result, Slot, TableId, TxnId};
use acc_lockmgr::{LockKind, LockMode, RequestCtx, SharedOracle};
use acc_storage::{Key, Predicate, Row, UndoRecord, VersionedUpdate, Visibility};
use acc_wal::LogRecord;

/// The slot reported for rows produced by a coordination-free version read:
/// no physical slot is pinned (the image may be historical), so callers must
/// not dereference it. Read-only steps — the only ones eligible for the fast
/// path — consume rows, never slots.
pub const VERSION_READ_SLOT: Slot = Slot::MAX;

/// The execution context handed to [`crate::program::TxnProgram::step`].
pub struct StepCtx<'a> {
    shared: &'a SharedDb,
    cc: &'a dyn ConcurrencyControl,
    txn: &'a mut Transaction,
    mode: WaitMode,
    /// The interference tables every lock request in this step consults:
    /// the transaction's pinned epoch snapshot, resolved once here — the
    /// per-request path never touches the registry.
    oracle: SharedOracle,
}

impl<'a> StepCtx<'a> {
    /// Build a context for one step execution.
    pub fn new(
        shared: &'a SharedDb,
        cc: &'a dyn ConcurrencyControl,
        txn: &'a mut Transaction,
        mode: WaitMode,
    ) -> Self {
        let oracle = shared.oracle_for(txn.epoch_pin.as_ref());
        StepCtx {
            shared,
            cc,
            txn,
            mode,
            oracle,
        }
    }

    /// The executing transaction's id.
    pub fn txn_id(&self) -> TxnId {
        self.txn.id
    }

    /// The transaction state (for runner bookkeeping).
    pub fn txn(&mut self) -> &mut Transaction {
        self.txn
    }

    fn request_ctx(&self) -> RequestCtx {
        let meta = self.txn.meta();
        RequestCtx {
            step_type: self.cc.step_type(&meta),
            comp_step: if self.cc.decomposed() {
                self.cc.comp_step_type(meta.txn_type)
            } else {
                None
            },
            compensating: meta.compensating,
        }
    }

    /// The version-read gate: both halves must agree before a read bypasses
    /// the lock manager. The policy half classifies the step read-only
    /// (`ConcurrencyControl::version_read_safe`); the oracle half — judged
    /// by the transaction's *pinned epoch* tables, like every other
    /// interference decision it causes — requires the step analyzed with an
    /// all-clear write row (`InterferenceOracle::version_read_safe`).
    fn version_reads_enabled(&self) -> bool {
        let meta = self.txn.meta();
        self.cc.version_read_safe(&meta) && self.oracle.version_read_safe(self.cc.step_type(&meta))
    }

    /// The transaction's read view (the durable WAL frontier at its begin),
    /// cached after the first versioned read.
    fn read_view(&mut self) -> Option<u64> {
        if self.txn.read_view.is_none() {
            self.txn.read_view = self.shared.read_view_of(self.txn.id);
        }
        self.txn.read_view
    }

    /// Count a version-read fast-path hit or a fallback to the lock path.
    fn emit_version_event(&self, table: TableId, hit: bool) {
        let sink = self.shared.event_sink();
        if sink.is_enabled() {
            let txn = self.txn.id;
            sink.emit(if hit {
                Event::VersionRead { txn, table }
            } else {
                Event::VersionFallback { txn, table }
            });
        }
    }

    /// Remember that this transaction pushed version entries into `table`
    /// (commit/rollback finalizes exactly the recorded tables).
    fn note_version_table(&mut self, table: TableId) {
        if !self.txn.version_tables.contains(&table) {
            self.txn.version_tables.push(table);
        }
    }

    fn acquire(&self, resource: acc_common::ResourceId, kind: LockKind) -> Result<()> {
        self.shared.acquire_with(
            self.txn.id,
            resource,
            kind,
            self.request_ctx(),
            self.mode,
            &*self.oracle,
        )
    }

    /// Take the table intention lock plus the policy's item locks on the
    /// page covering `slot`.
    fn lock_item(&self, table: TableId, slot: Slot, write: bool) -> Result<()> {
        let meta = self.txn.meta();
        for kind in self.cc.table_locks(&meta, table, write) {
            self.acquire(acc_common::ResourceId::Table(table), kind)?;
        }
        let page = self.shared.with_table(table, |t| t.page_resource(slot))?;
        for kind in self.cc.item_locks(&meta, table, write) {
            self.acquire(page, kind)?;
        }
        Ok(())
    }

    /// Read the row with the given primary key. `None` if absent.
    ///
    /// When both halves of the version-read gate agree
    /// ([`StepCtx::version_reads_enabled`]), the read is served from the
    /// row's committed version chain as of this transaction's read view
    /// (the durable WAL frontier at its begin) — zero lock-manager traffic. A chain that cannot soundly reconstruct
    /// the image falls back to the conventional locked read below.
    pub fn read(&mut self, table: TableId, key: &Key) -> Result<Option<Row>> {
        if self.version_reads_enabled() {
            if let Some(view) = self.read_view() {
                let reader = self.txn.id;
                let vis = self.shared.with_table(table, |t| {
                    t.read_at(key, view, reader, &self.shared.published_commits())
                })?;
                match vis {
                    Visibility::Visible(row) => {
                        self.emit_version_event(table, true);
                        return Ok(row);
                    }
                    Visibility::Tainted => self.emit_version_event(table, false),
                }
            }
        }
        loop {
            let slot = self.shared.with_table(table, |t| t.slot_of(key))?;
            let Some(slot) = slot else {
                return Ok(None);
            };
            self.lock_item(table, slot, false)?;
            // The row may have moved/vanished while we waited for the lock:
            // outer None = retry, inner Option is the final answer.
            let row: Option<Option<Row>> =
                self.shared.with_table(table, |t| match t.slot_of(key) {
                    Some(s) if s == slot => Some(t.row(slot)),
                    Some(_) => None,    // moved: retry with fresh slot
                    None => Some(None), // deleted while we waited
                })?;
            match row {
                Some(answer) => return Ok(answer),
                None => continue,
            }
        }
    }

    /// Read the row with the given key under *write* locks (`SELECT … FOR
    /// UPDATE`). Use this instead of [`StepCtx::read`] when the row will be
    /// updated later in the step: going straight to an exclusive lock avoids
    /// the classic S→X upgrade deadlock between two read-modify-write steps.
    pub fn read_for_update(&mut self, table: TableId, key: &Key) -> Result<Option<Row>> {
        loop {
            let slot = self.shared.with_table(table, |t| t.slot_of(key))?;
            let Some(slot) = slot else {
                return Ok(None);
            };
            self.lock_item(table, slot, true)?;
            let row: Option<Option<Row>> =
                self.shared.with_table(table, |t| match t.slot_of(key) {
                    Some(s) if s == slot => Some(t.row(slot)),
                    Some(_) => None,
                    None => Some(None),
                })?;
            match row {
                Some(answer) => return Ok(answer),
                None => continue,
            }
        }
    }

    /// Insert a row; returns its slot.
    pub fn insert(&mut self, table: TableId, row: Row) -> Result<Slot> {
        self.acquire(
            acc_common::ResourceId::Table(table),
            LockKind::Conventional(LockMode::IX),
        )?;
        let txn_id = self.txn.id;
        loop {
            let slot = self.shared.with_table(table, |t| t.peek_next_slot())?;
            self.lock_item(table, slot, true)?;
            // `insert_versioned` re-checks the predicted slot, plants the
            // row, and records the pending version (before the insert, the
            // row was absent) atomically under one leaf latch; `None` means
            // another insert raced us while we waited for the lock.
            let done = self
                .shared
                .with_table_mut(table, |t| t.insert_versioned(row.clone(), txn_id, slot))??;
            if let Some((s, _key, undo)) = done {
                self.note_version_table(table);
                // The WAL append happens outside the table stripe, but the
                // slot's page X lock (held until step end) serializes all
                // same-slot records, so recovery sees them in mutation order.
                self.shared.with_wal(|w| {
                    w.append(LogRecord::Update {
                        txn: self.txn.id,
                        table,
                        slot: s,
                        before: None,
                        after: Some(row.clone()),
                    })
                });
                // Batching hint: lets a full batch retire mid-step, so fsync
                // boundaries can fall inside a step (what a real disk does).
                self.shared.flush_wal_batch();
                self.txn.step_undo.push(undo);
                return Ok(s);
            }
        }
    }

    /// Update the row with the given key in place. Returns `false` if the
    /// key is absent.
    pub fn update_key(&mut self, table: TableId, key: &Key, f: impl Fn(&mut Row)) -> Result<bool> {
        let txn_id = self.txn.id;
        loop {
            let slot = self.shared.with_table(table, |t| t.slot_of(key))?;
            let Some(slot) = slot else {
                return Ok(false);
            };
            self.lock_item(table, slot, true)?;
            // Mutation + pending-version push run atomically under the
            // leaf's write latch; `Retry` means the key moved or died while
            // we waited for the lock.
            let outcome = self
                .shared
                .with_table_mut(table, |t| t.update_versioned(key, slot, txn_id, &f))??;
            match outcome {
                VersionedUpdate::Applied { undo, after } => {
                    let before = match &undo {
                        UndoRecord::Update { before, .. } => Some(before.clone()),
                        _ => None,
                    };
                    self.note_version_table(table);
                    self.shared.with_wal(|w| {
                        w.append(LogRecord::Update {
                            txn: self.txn.id,
                            table,
                            slot,
                            before,
                            after: Some(after),
                        })
                    });
                    self.shared.flush_wal_batch();
                    self.txn.step_undo.push(undo);
                    return Ok(true);
                }
                VersionedUpdate::Retry => continue, // moved or deleted: re-resolve
            }
        }
    }

    /// Update the row at a known slot (must exist).
    pub fn update_slot(&mut self, table: TableId, slot: Slot, f: impl Fn(&mut Row)) -> Result<()> {
        self.lock_item(table, slot, true)?;
        let txn_id = self.txn.id;
        let (undo, before, after) = self.shared.with_table_mut(table, |t| -> Result<_> {
            let key = t
                .key_of_slot(slot)
                .ok_or_else(|| Error::NotFound(format!("table#{} slot {slot}", table.raw())))?;
            match t.update_versioned(&key, slot, txn_id, &f)? {
                VersionedUpdate::Applied { undo, after } => {
                    let before = match &undo {
                        UndoRecord::Update { before, .. } => Some(before.clone()),
                        _ => None,
                    };
                    Ok((undo, before, Some(after)))
                }
                // The page X lock pins the slot; a concurrent move is a
                // protocol violation, surfaced as the caller's "must exist".
                VersionedUpdate::Retry => Err(Error::NotFound(format!(
                    "table#{} slot {slot}",
                    table.raw()
                ))),
            }
        })??;
        self.note_version_table(table);
        self.shared.with_wal(|w| {
            w.append(LogRecord::Update {
                txn: self.txn.id,
                table,
                slot,
                before,
                after,
            })
        });
        self.shared.flush_wal_batch();
        self.txn.step_undo.push(undo);
        Ok(())
    }

    /// Delete the row with the given key. Returns `false` if absent.
    pub fn delete_key(&mut self, table: TableId, key: &Key) -> Result<bool> {
        let txn_id = self.txn.id;
        loop {
            let slot = self.shared.with_table(table, |t| t.slot_of(key))?;
            let Some(slot) = slot else {
                return Ok(false);
            };
            self.lock_item(table, slot, true)?;
            // Row removal + the pending delete version run atomically under
            // the leaf latch; the entry survives as a tombstone so the slot
            // can be reused by an unrelated key while version readers still
            // find the deleted row's history under its primary key.
            let outcome = self
                .shared
                .with_table_mut(table, |t| t.delete_versioned(key, slot, txn_id))??;
            match outcome {
                Some((undo, before)) => {
                    let before = Some(before);
                    self.note_version_table(table);
                    self.shared.with_wal(|w| {
                        w.append(LogRecord::Update {
                            txn: self.txn.id,
                            table,
                            slot,
                            before,
                            after: None,
                        })
                    });
                    self.shared.flush_wal_batch();
                    self.txn.step_undo.push(undo);
                    return Ok(true);
                }
                None => continue,
            }
        }
    }

    /// Table-granularity locks for a scan.
    fn lock_scan(&self, table: TableId) -> Result<()> {
        let meta = self.txn.meta();
        for kind in self.cc.scan_locks(&meta, table) {
            self.acquire(acc_common::ResourceId::Table(table), kind)?;
        }
        Ok(())
    }

    /// All rows whose primary key starts with `prefix`, in key order.
    ///
    /// On the version-read fast path the rows are committed images as of
    /// the read view and carry [`VERSION_READ_SLOT`] instead of a physical
    /// slot (see there).
    pub fn scan_prefix(&mut self, table: TableId, prefix: &Key) -> Result<Vec<(Slot, Row)>> {
        if self.version_reads_enabled() {
            if let Some(view) = self.read_view() {
                let reader = self.txn.id;
                let rows = self.shared.with_table(table, |t| {
                    t.scan_prefix_at(prefix, view, reader, &self.shared.published_commits())
                })?;
                if let Some(rows) = rows {
                    self.emit_version_event(table, true);
                    return Ok(rows.into_iter().map(|r| (VERSION_READ_SLOT, r)).collect());
                }
                self.emit_version_event(table, false);
            }
        }
        self.lock_scan(table)?;
        self.shared
            .with_table(table, |t| t.scan_prefix(prefix).collect())
    }

    /// The first row (in key order) whose primary key starts with `prefix`
    /// — an early-terminating tree descent under the same scan locks as
    /// [`StepCtx::scan_prefix`], for oldest-first pick-one lookups.
    pub fn first_by_prefix(&mut self, table: TableId, prefix: &Key) -> Result<Option<(Slot, Row)>> {
        self.lock_scan(table)?;
        self.shared.with_table(table, |t| t.first_in_prefix(prefix))
    }

    /// All rows with primary key in `[lo, hi)`, in key order — one range
    /// descent instead of per-prefix rescans, under the same scan locks as
    /// [`StepCtx::scan_prefix`].
    ///
    /// Fast-path rows carry [`VERSION_READ_SLOT`]; see
    /// [`StepCtx::scan_prefix`].
    pub fn scan_range(&mut self, table: TableId, lo: &Key, hi: &Key) -> Result<Vec<(Slot, Row)>> {
        if self.version_reads_enabled() {
            if let Some(view) = self.read_view() {
                let reader = self.txn.id;
                let rows = self.shared.with_table(table, |t| {
                    t.scan_range_at(lo, hi, view, reader, &self.shared.published_commits())
                })?;
                if let Some(rows) = rows {
                    self.emit_version_event(table, true);
                    return Ok(rows.into_iter().map(|r| (VERSION_READ_SLOT, r)).collect());
                }
                self.emit_version_event(table, false);
            }
        }
        self.lock_scan(table)?;
        self.shared.with_table(table, |t| t.scan_range(lo, hi))
    }

    /// All rows satisfying `pred`, in key order.
    pub fn scan(&mut self, table: TableId, pred: &Predicate) -> Result<Vec<(Slot, Row)>> {
        self.lock_scan(table)?;
        self.shared.with_table(table, |t| t.scan(pred).collect())
    }

    /// Rows matched through secondary index `idx` by key prefix.
    ///
    /// Fast-path rows carry [`VERSION_READ_SLOT`]; see
    /// [`StepCtx::scan_prefix`].
    pub fn lookup_secondary(
        &mut self,
        table: TableId,
        idx: usize,
        prefix: &Key,
    ) -> Result<Vec<(Slot, Row)>> {
        if self.version_reads_enabled() {
            if let Some(view) = self.read_view() {
                let reader = self.txn.id;
                let rows = self.shared.with_table(table, |t| {
                    t.lookup_secondary_at(
                        idx,
                        prefix,
                        view,
                        reader,
                        &self.shared.published_commits(),
                    )
                })?;
                if let Some(rows) = rows {
                    self.emit_version_event(table, true);
                    return Ok(rows.into_iter().map(|r| (VERSION_READ_SLOT, r)).collect());
                }
                self.emit_version_event(table, false);
            }
        }
        self.lock_scan(table)?;
        self.shared.with_table(table, |t| {
            t.lookup_secondary(idx, prefix)
                .into_iter()
                .filter_map(|s| t.row(s).map(|r| (s, r)))
                .collect()
        })
    }

    /// Read a row that must exist (internal-error otherwise) — convenience
    /// for foreign-key-guaranteed lookups.
    pub fn read_existing(&mut self, table: TableId, key: &Key) -> Result<Row> {
        self.read(table, key)?
            .ok_or_else(|| Error::NotFound(format!("table#{} key {key}", table.raw())))
    }
}
