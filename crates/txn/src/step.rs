//! `StepCtx`: the data-access API a step executes against.
//!
//! Every operation acquires the locks the active [`ConcurrencyControl`]
//! prescribes (conventional intention + item locks, plus whatever assertional
//! locks the policy attaches), logs before/after images to the WAL, and
//! pushes undo records onto the transaction's current-step undo stack.

use crate::cc::ConcurrencyControl;
use crate::shared::{SharedDb, WaitMode};
use crate::transaction::Transaction;
use acc_common::{Error, Result, Slot, TableId, TxnId};
use acc_lockmgr::{LockKind, LockMode, RequestCtx, SharedOracle};
use acc_storage::{Key, Predicate, Row};
use acc_wal::LogRecord;

/// The execution context handed to [`crate::program::TxnProgram::step`].
pub struct StepCtx<'a> {
    shared: &'a SharedDb,
    cc: &'a dyn ConcurrencyControl,
    txn: &'a mut Transaction,
    mode: WaitMode,
    /// The interference tables every lock request in this step consults:
    /// the transaction's pinned epoch snapshot, resolved once here — the
    /// per-request path never touches the registry.
    oracle: SharedOracle,
}

impl<'a> StepCtx<'a> {
    /// Build a context for one step execution.
    pub fn new(
        shared: &'a SharedDb,
        cc: &'a dyn ConcurrencyControl,
        txn: &'a mut Transaction,
        mode: WaitMode,
    ) -> Self {
        let oracle = shared.oracle_for(txn.epoch_pin.as_ref());
        StepCtx {
            shared,
            cc,
            txn,
            mode,
            oracle,
        }
    }

    /// The executing transaction's id.
    pub fn txn_id(&self) -> TxnId {
        self.txn.id
    }

    /// The transaction state (for runner bookkeeping).
    pub fn txn(&mut self) -> &mut Transaction {
        self.txn
    }

    fn request_ctx(&self) -> RequestCtx {
        let meta = self.txn.meta();
        RequestCtx {
            step_type: self.cc.step_type(&meta),
            comp_step: if self.cc.decomposed() {
                self.cc.comp_step_type(meta.txn_type)
            } else {
                None
            },
            compensating: meta.compensating,
        }
    }

    fn acquire(&self, resource: acc_common::ResourceId, kind: LockKind) -> Result<()> {
        self.shared.acquire_with(
            self.txn.id,
            resource,
            kind,
            self.request_ctx(),
            self.mode,
            &*self.oracle,
        )
    }

    /// Take the table intention lock plus the policy's item locks on the
    /// page covering `slot`.
    fn lock_item(&self, table: TableId, slot: Slot, write: bool) -> Result<()> {
        let meta = self.txn.meta();
        for kind in self.cc.table_locks(&meta, table, write) {
            self.acquire(acc_common::ResourceId::Table(table), kind)?;
        }
        let page = self.shared.with_table(table, |t| t.page_resource(slot))?;
        for kind in self.cc.item_locks(&meta, table, write) {
            self.acquire(page, kind)?;
        }
        Ok(())
    }

    /// Read the row with the given primary key. `None` if absent.
    pub fn read(&mut self, table: TableId, key: &Key) -> Result<Option<Row>> {
        loop {
            let slot = self.shared.with_table(table, |t| t.slot_of(key))?;
            let Some(slot) = slot else {
                return Ok(None);
            };
            self.lock_item(table, slot, false)?;
            // The row may have moved/vanished while we waited for the lock:
            // outer None = retry, inner Option is the final answer.
            let row: Option<Option<Row>> =
                self.shared.with_table(table, |t| match t.slot_of(key) {
                    Some(s) if s == slot => Some(t.row(slot).cloned()),
                    Some(_) => None,    // moved: retry with fresh slot
                    None => Some(None), // deleted while we waited
                })?;
            match row {
                Some(answer) => return Ok(answer),
                None => continue,
            }
        }
    }

    /// Read the row with the given key under *write* locks (`SELECT … FOR
    /// UPDATE`). Use this instead of [`StepCtx::read`] when the row will be
    /// updated later in the step: going straight to an exclusive lock avoids
    /// the classic S→X upgrade deadlock between two read-modify-write steps.
    pub fn read_for_update(&mut self, table: TableId, key: &Key) -> Result<Option<Row>> {
        loop {
            let slot = self.shared.with_table(table, |t| t.slot_of(key))?;
            let Some(slot) = slot else {
                return Ok(None);
            };
            self.lock_item(table, slot, true)?;
            let row: Option<Option<Row>> =
                self.shared.with_table(table, |t| match t.slot_of(key) {
                    Some(s) if s == slot => Some(t.row(slot).cloned()),
                    Some(_) => None,
                    None => Some(None),
                })?;
            match row {
                Some(answer) => return Ok(answer),
                None => continue,
            }
        }
    }

    /// Insert a row; returns its slot.
    pub fn insert(&mut self, table: TableId, row: Row) -> Result<Slot> {
        self.acquire(
            acc_common::ResourceId::Table(table),
            LockKind::Conventional(LockMode::IX),
        )?;
        loop {
            let slot = self.shared.with_table(table, |t| t.peek_next_slot())?;
            self.lock_item(table, slot, true)?;
            let done = self
                .shared
                .with_table_mut(table, |t| -> Result<Option<(Slot, _)>> {
                    if t.peek_next_slot() != slot {
                        return Ok(None); // another insert raced us while we waited
                    }
                    let (s, undo) = t.insert(row.clone())?;
                    Ok(Some((s, undo)))
                })??;
            if let Some((s, undo)) = done {
                // The WAL append happens outside the table stripe, but the
                // slot's page X lock (held until step end) serializes all
                // same-slot records, so recovery sees them in mutation order.
                self.shared.with_wal(|w| {
                    w.append(LogRecord::Update {
                        txn: self.txn.id,
                        table,
                        slot: s,
                        before: None,
                        after: Some(row.clone()),
                    })
                });
                // Batching hint: lets a full batch retire mid-step, so fsync
                // boundaries can fall inside a step (what a real disk does).
                self.shared.flush_wal_batch();
                self.txn.step_undo.push(undo);
                return Ok(s);
            }
        }
    }

    /// Update the row with the given key in place. Returns `false` if the
    /// key is absent.
    pub fn update_key(&mut self, table: TableId, key: &Key, f: impl Fn(&mut Row)) -> Result<bool> {
        loop {
            let slot = self.shared.with_table(table, |t| t.slot_of(key))?;
            let Some(slot) = slot else {
                return Ok(false);
            };
            self.lock_item(table, slot, true)?;
            let outcome = self
                .shared
                .with_table_mut(table, |t| -> Result<Option<_>> {
                    match t.slot_of(key) {
                        Some(s) if s == slot => {
                            let before = t.row(slot).cloned();
                            let undo = t.update_with(slot, &f)?;
                            let after = t.row(slot).cloned();
                            Ok(Some((undo, before, after)))
                        }
                        _ => Ok(None), // moved or deleted while waiting: retry
                    }
                })??;
            match outcome {
                Some((undo, before, after)) => {
                    self.shared.with_wal(|w| {
                        w.append(LogRecord::Update {
                            txn: self.txn.id,
                            table,
                            slot,
                            before,
                            after,
                        })
                    });
                    self.shared.flush_wal_batch();
                    self.txn.step_undo.push(undo);
                    return Ok(true);
                }
                None => continue,
            }
        }
    }

    /// Update the row at a known slot (must exist).
    pub fn update_slot(&mut self, table: TableId, slot: Slot, f: impl Fn(&mut Row)) -> Result<()> {
        self.lock_item(table, slot, true)?;
        let (undo, before, after) = self.shared.with_table_mut(table, |t| -> Result<_> {
            let before = t.row(slot).cloned();
            let undo = t.update_with(slot, &f)?;
            let after = t.row(slot).cloned();
            Ok((undo, before, after))
        })??;
        self.shared.with_wal(|w| {
            w.append(LogRecord::Update {
                txn: self.txn.id,
                table,
                slot,
                before,
                after,
            })
        });
        self.shared.flush_wal_batch();
        self.txn.step_undo.push(undo);
        Ok(())
    }

    /// Delete the row with the given key. Returns `false` if absent.
    pub fn delete_key(&mut self, table: TableId, key: &Key) -> Result<bool> {
        loop {
            let slot = self.shared.with_table(table, |t| t.slot_of(key))?;
            let Some(slot) = slot else {
                return Ok(false);
            };
            self.lock_item(table, slot, true)?;
            let outcome = self
                .shared
                .with_table_mut(table, |t| -> Result<Option<_>> {
                    match t.slot_of(key) {
                        Some(s) if s == slot => {
                            let before = t.row(slot).cloned();
                            let undo = t.delete(slot)?;
                            Ok(Some((undo, before)))
                        }
                        _ => Ok(None),
                    }
                })??;
            match outcome {
                Some((undo, before)) => {
                    self.shared.with_wal(|w| {
                        w.append(LogRecord::Update {
                            txn: self.txn.id,
                            table,
                            slot,
                            before,
                            after: None,
                        })
                    });
                    self.shared.flush_wal_batch();
                    self.txn.step_undo.push(undo);
                    return Ok(true);
                }
                None => continue,
            }
        }
    }

    /// Table-granularity locks for a scan.
    fn lock_scan(&self, table: TableId) -> Result<()> {
        let meta = self.txn.meta();
        for kind in self.cc.scan_locks(&meta, table) {
            self.acquire(acc_common::ResourceId::Table(table), kind)?;
        }
        Ok(())
    }

    /// All rows whose primary key starts with `prefix`, in key order.
    pub fn scan_prefix(&mut self, table: TableId, prefix: &Key) -> Result<Vec<(Slot, Row)>> {
        self.lock_scan(table)?;
        self.shared.with_table(table, |t| {
            t.scan_prefix(prefix).map(|(s, r)| (s, r.clone())).collect()
        })
    }

    /// All rows satisfying `pred`, in key order.
    pub fn scan(&mut self, table: TableId, pred: &Predicate) -> Result<Vec<(Slot, Row)>> {
        self.lock_scan(table)?;
        self.shared.with_table(table, |t| {
            t.scan(pred).map(|(s, r)| (s, r.clone())).collect()
        })
    }

    /// Rows matched through secondary index `idx` by key prefix.
    pub fn lookup_secondary(
        &mut self,
        table: TableId,
        idx: usize,
        prefix: &Key,
    ) -> Result<Vec<(Slot, Row)>> {
        self.lock_scan(table)?;
        self.shared.with_table(table, |t| {
            t.lookup_secondary(idx, prefix)
                .into_iter()
                .filter_map(|s| t.row(s).map(|r| (s, r.clone())))
                .collect()
        })
    }

    /// Read a row that must exist (internal-error otherwise) — convenience
    /// for foreign-key-guaranteed lookups.
    pub fn read_existing(&mut self, table: TableId, key: &Key) -> Result<Row> {
        self.read(table, key)?
            .ok_or_else(|| Error::NotFound(format!("table#{} key {key}", table.raw())))
    }
}
