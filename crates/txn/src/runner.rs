//! Driving a [`TxnProgram`] through its lifecycle: steps, commit, deadlock
//! retry, and compensation-based rollback.

use crate::cc::ConcurrencyControl;
use crate::program::{StepOutcome, TxnProgram};
use crate::shared::{SharedDb, WaitMode};
use crate::step::StepCtx;
use crate::transaction::{Transaction, TxnState};
use acc_common::events::Event;
use acc_common::faults::BoundaryEdge;
use acc_common::{Error, Result};
use acc_storage::UndoRecord;
use acc_wal::LogRecord;
use std::time::{Duration, Instant};

/// Why a transaction rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// Chosen as a deadlock victim (retryable by resubmission).
    Deadlock,
    /// The program executed its own abort (e.g. TPC-C's 1 % new-order
    /// aborts).
    UserAbort,
    /// Doomed by a compensating step it was delaying (§3.4).
    Doomed,
    /// Its submitter's deadline passed; rolled back at a step boundary
    /// through the ordinary compensation path. Not retryable — the client
    /// already stopped waiting.
    Deadline,
}

/// The overall result of running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// Committed after this many completed steps.
    Committed {
        /// Steps executed (1 for an undecomposed run).
        steps: u32,
    },
    /// Rolled back; the database reflects no net effect of the transaction
    /// beyond what its compensating steps define as acceptable.
    RolledBack(AbortReason),
}

/// Run `program` to completion under `cc`.
///
/// With [`WaitMode::Block`] this is the full lifecycle (threads park on lock
/// waits). With [`WaitMode::Fail`] a contested lock aborts the current
/// attempt with [`Error::WouldBlock`] after undoing the partial step — the
/// deterministic scheduler in `acc-engine` catches that error and reschedules.
pub fn run(
    shared: &SharedDb,
    cc: &dyn ConcurrencyControl,
    program: &mut dyn TxnProgram,
    mode: WaitMode,
) -> Result<RunOutcome> {
    run_with_deadline(shared, cc, program, mode, None).map(|(_, outcome)| outcome)
}

/// Like [`run`], but with an optional absolute deadline checked at every step
/// boundary, and the minted [`acc_common::TxnId`] surfaced so callers (the
/// network front-end) can correlate a client request with the transaction's
/// fate on the log. A transaction past its deadline rolls back through the
/// ordinary compensation path — every lock released, every version chain
/// finalized — and reports [`AbortReason::Deadline`].
pub fn run_with_deadline(
    shared: &SharedDb,
    cc: &dyn ConcurrencyControl,
    program: &mut dyn TxnProgram,
    mode: WaitMode,
    deadline: Option<Instant>,
) -> Result<(acc_common::TxnId, RunOutcome)> {
    let id = shared.begin_txn(program.txn_type());
    let mut txn = Transaction::new(id, program.txn_type()).with_deadline(deadline);
    let result = run_existing(shared, cc, program, &mut txn, mode);
    if matches!(result, Err(Error::WouldBlock { .. })) {
        // The transaction object dies with this call, so nobody can resume
        // it: roll it back completely instead of leaking its locks. Callers
        // that want to resume after a block must use [`run_existing`].
        rollback(shared, cc, program, &mut txn)?;
    }
    result.map(|outcome| (id, outcome))
}

/// Like [`run`], but the caller owns the [`Transaction`] (lets the
/// deterministic scheduler resume a transaction whose step previously
/// blocked).
pub fn run_existing(
    shared: &SharedDb,
    cc: &dyn ConcurrencyControl,
    program: &mut dyn TxnProgram,
    txn: &mut Transaction,
    mode: WaitMode,
) -> Result<RunOutcome> {
    let sink = shared.event_sink();
    loop {
        // Deadline gate, checked only at step boundaries: never mid-step, so
        // rollback always starts from a clean step edge (partial-step undo +
        // compensation of completed steps) and cannot leak a lock or leave a
        // version chain pending. An expired transaction that already did
        // work pays for its own compensation — that is the §3.4 contract.
        if txn.past_deadline() {
            rollback(shared, cc, program, txn)?;
            return Ok(RunOutcome::RolledBack(AbortReason::Deadline));
        }
        // Step admission: a decomposed transaction pins the current
        // interference-table epoch before its first step and is audited
        // against it at every later one — one atomic load per step, never
        // per lookup (see `InterferenceRegistry::check_pin`).
        if cc.decomposed() {
            match &txn.epoch_pin {
                Some(pin) => {
                    shared.registry().check_pin(pin);
                }
                None => txn.epoch_pin = Some(shared.pin_epoch(txn.id, mode)?),
            }
        }
        let mut retried = false;
        let step_started = Instant::now();
        let step_result = loop {
            let mut ctx = StepCtx::new(shared, cc, txn, mode);
            let outcome = program.step(ctx.txn().step_index, &mut ctx);
            // Crabbing discipline: every page latch a step takes must be
            // released before the step hands control back (debug builds
            // only; a latch held here would deadlock some later descent).
            acc_storage::latch_debug_assert_none_held("step boundary");
            match outcome {
                Ok(outcome) => break Ok(outcome),
                Err(Error::Deadlock { .. }) if cc.decomposed() && !retried => {
                    // Paper §3.4: abort the step that completed the cycle and
                    // restart it once; a recurring deadlock rolls the whole
                    // transaction back by compensation.
                    undo_current_step(shared, txn)?;
                    let oracle = shared.oracle_for(txn.epoch_pin.as_ref());
                    shared.release_where_with(txn.id, |k, _| k.is_conventional(), &*oracle);
                    retried = true;
                }
                Err(e) => break Err(e),
            }
        };

        if sink.is_enabled() && step_result.is_ok() {
            sink.emit(Event::StepEnd {
                txn: txn.id,
                step_index: txn.step_index,
                micros: step_started.elapsed().as_micros() as u64,
            });
        }

        match step_result {
            Ok(StepOutcome::Continue) => {
                if cc.decomposed() {
                    end_step(shared, cc, txn, program.work_area());
                } else {
                    txn.step_index += 1;
                }
            }
            Ok(StepOutcome::Done) => {
                if shared.is_doomed(txn.id) {
                    rollback(shared, cc, program, txn)?;
                    return Ok(RunOutcome::RolledBack(AbortReason::Doomed));
                }
                // The commit point is a step boundary too: a transaction past
                // its deadline must never commit, or the submitter's
                // deadline-exceeded reply would be a lie and a client resubmit
                // would duplicate its effects. The final step is still
                // physically undoable here (no end-of-step record yet), so
                // this rollback undoes it and compensates the earlier steps.
                if txn.past_deadline() {
                    rollback(shared, cc, program, txn)?;
                    return Ok(RunOutcome::RolledBack(AbortReason::Deadline));
                }
                let steps = txn.step_index + 1;
                commit(shared, txn)?;
                return Ok(RunOutcome::Committed { steps });
            }
            Ok(StepOutcome::Abort) => {
                rollback(shared, cc, program, txn)?;
                return Ok(RunOutcome::RolledBack(AbortReason::UserAbort));
            }
            Err(Error::WouldBlock { txn: t, resource }) => {
                // Deterministic mode: withdraw cleanly; the scheduler retries
                // this step later. Undo partial effects so other transactions
                // see an untouched step. The epoch pin stays: the transaction
                // is still in flight and resumes under its own tables.
                undo_current_step(shared, txn)?;
                if cc.decomposed() {
                    let oracle = shared.oracle_for(txn.epoch_pin.as_ref());
                    shared.release_where_with(txn.id, |k, _| k.is_conventional(), &*oracle);
                }
                return Err(Error::WouldBlock { txn: t, resource });
            }
            Err(Error::Deadlock { .. }) => {
                rollback(shared, cc, program, txn)?;
                return Ok(RunOutcome::RolledBack(AbortReason::Deadlock));
            }
            Err(Error::TxnAborted(_)) => {
                rollback(shared, cc, program, txn)?;
                return Ok(RunOutcome::RolledBack(AbortReason::Doomed));
            }
            Err(e) => {
                // Hard error (schema violation, missing row, …): roll back,
                // then surface the error to the caller.
                rollback(shared, cc, program, txn)?;
                return Err(e);
            }
        }
    }
}

/// Physically undo the current step (or, for an undecomposed transaction,
/// everything), logging each reversal as a compensation-log update so
/// recovery can replay the net effect.
pub fn undo_current_step(shared: &SharedDb, txn: &mut Transaction) -> Result<()> {
    let undos: Vec<UndoRecord> = txn.step_undo.drain(..).collect();
    let txn_id = txn.id;
    for undo in undos.iter().rev() {
        let table = undo.table();
        let slot = undo.slot();
        let (before, after) = shared.with_table_mut(table, |t| -> Result<_> {
            let before = t.row(slot);
            t.apply_undo(undo)?;
            let after = t.row(slot);
            Ok((before, after))
        })??;
        // Same-slot WAL ordering is protected by this transaction's still-held
        // page X lock (see `StepCtx::insert`).
        shared.with_wal(|w| {
            w.append(LogRecord::Update {
                txn: txn_id,
                table,
                slot,
                before,
                after,
            })
        });
    }
    Ok(())
}

/// Complete the current step: log the end-of-step record with the program's
/// work area, release locks per policy, advance the position.
pub fn end_step(
    shared: &SharedDb,
    cc: &dyn ConcurrencyControl,
    txn: &mut Transaction,
    work_area: Vec<u8>,
) {
    shared.with_wal(|w| {
        // The two boundary edges are the crash points that decide recovery's
        // treatment of this step: before the record it is non-durable and
        // discarded, after it it is durable and compensated.
        w.fault_boundary(BoundaryEdge::Before);
        w.append(LogRecord::StepEnd {
            txn: txn.id,
            step_index: txn.step_index,
            work_area,
        });
        w.fault_boundary(BoundaryEdge::After);
    });
    txn.steps_completed = txn.step_index + 1;
    txn.step_index += 1;
    txn.step_undo.clear();
    // A step boundary is a natural batching point: if enough records are
    // staged, retire them in one background fsync so commit-time flushes
    // stay small. Never an ack — errors are sticky and surface at commit.
    shared.flush_wal_batch();
    let meta = txn.meta();
    let oracle = shared.oracle_for(txn.epoch_pin.as_ref());
    shared.release_where_with(
        txn.id,
        |kind, _| cc.release_at_step_end(&meta, kind),
        &*oracle,
    );
    // Announce the boundary last: an observer-triggered re-analysis sees the
    // post-step lock state, and this transaction is still pinned, so a
    // switchover drains behind it rather than racing it.
    shared.fire_step_boundary();
}

/// Finalize a finished transaction's version chains at `end_lsn` (the
/// `Commit` record's LSN, or the `Abort` record's on rollback), deregister
/// it from the active map, and prune the touched tables against the fresh
/// watermark.
///
/// On the commit path the transaction's commit LSN is already published
/// (see [`SharedDb::publish_commit`]), so `reconstruct` resolves its
/// `Pending` entries as committed and this physical rewrite changes nothing
/// any reader can observe — visibility flipped atomically at publication,
/// not here.
///
/// Deregistration happens first so this transaction's own read view stops
/// clamping the watermark; its *pending* entries are still unprunable
/// (pruning only drops all-committed prefixes), so the order is safe even
/// against a concurrent pruner. A poisoned stripe leaves that table's
/// entries pending forever — readers unwind past them (or resolve them
/// through the publication while it lasts), which is merely conservative.
fn finalize_versions(shared: &SharedDb, txn: &Transaction, end_lsn: u64) {
    shared.deregister_active(txn.id);
    if txn.version_tables.is_empty() {
        return;
    }
    let watermark = shared.version_watermark();
    for &table in &txn.version_tables {
        let _ = shared.with_table_mut(table, |t| {
            t.finalize_versions(txn.id, end_lsn);
            if let Some(w) = watermark {
                t.prune_versions(w);
            }
        });
    }
}

/// Commit: log the commit record, park until it is durable (group-commit
/// fsync boundary), then release everything and mark committed. The
/// durability wait comes *before* lock release: a transaction whose commit
/// was never fsynced must not expose its writes. A device failure aborts the
/// commit with [`Error::Internal`] — nothing in that batch is acked.
///
/// The commit LSN is published for version readers *inside* the WAL append
/// mutex, atomically with the `Commit` append. Read views are the durable
/// frontier at begin, and the frontier can only reach this LSN via a flush
/// that collects it under that same mutex — after the publication. So at
/// every instant, a version reader with view `v` sees this transaction's
/// writes iff `commit_lsn <= v` iff the commit was durable when the reader
/// began: the fsync wait, the per-table finalization, and this function's
/// interleaving with readers are all invisible to them.
pub fn commit(shared: &SharedDb, txn: &mut Transaction) -> Result<()> {
    let lsn = shared.with_wal(|w| {
        let lsn = w.append(LogRecord::Commit { txn: txn.id });
        shared.publish_commit(txn.id, lsn.0);
        lsn
    });
    let oracle = shared.oracle_for(txn.epoch_pin.as_ref());
    match shared.sync_wal(lsn) {
        Ok(()) => {
            // The commit is durable; rewrite the chains physically, then
            // retire the (now redundant) publication. Order matters: a
            // reader between retire and finalize would unwind entries its
            // view covers.
            finalize_versions(shared, txn, lsn.0);
            shared.retire_commit(txn.id);
            shared.release_all_with(txn.id, &*oracle);
            shared.clear_doom(txn.id);
            // Unpin only after every lock is gone: the switchover this may
            // complete must never see a live old-epoch grant.
            shared.unpin_epoch(txn.epoch_pin.take());
            txn.state = TxnState::Committed;
            Ok(())
        }
        Err(e) => {
            // The commit record never became durable and the device failure
            // is sticky, so the frontier is frozen short of it: no view will
            // ever cover this commit LSN. Retract the publication and leave
            // the chains Pending — readers conservatively unwind past them,
            // exactly matching the wedged-rollback give-up path, and never
            // see images whose commit a crash would erase. Still release
            // everything — leaking locks would hang peers that deserve to
            // see the same error at their own commit point. Recovery from
            // the durable prefix decides this transaction's real fate.
            shared.retire_commit(txn.id);
            shared.deregister_active(txn.id);
            shared.release_all_with(txn.id, &*oracle);
            shared.clear_doom(txn.id);
            shared.unpin_epoch(txn.epoch_pin.take());
            txn.state = TxnState::Aborted;
            Err(e)
        }
    }
}

/// Roll back: physically undo the current step, then semantically undo any
/// completed steps with the program's compensating step, then release
/// everything.
pub fn rollback(
    shared: &SharedDb,
    cc: &dyn ConcurrencyControl,
    program: &mut dyn TxnProgram,
    txn: &mut Transaction,
) -> Result<()> {
    undo_current_step(shared, txn)?;

    if cc.decomposed() && txn.steps_completed > 0 {
        shared.with_wal(|w| {
            w.append(LogRecord::CompensationBegin {
                txn: txn.id,
                from_step: txn.steps_completed,
            })
        });
        let sink = shared.event_sink();
        if sink.is_enabled() {
            sink.emit(Event::CompensationStart {
                txn: txn.id,
                from_step: txn.steps_completed,
            });
        }
        txn.state = TxnState::Compensating;
        // A compensating step is never a deadlock victim (the lock manager
        // dooms whoever delays it), but transient races can still surface;
        // retry with a small cap before declaring the system wedged. The cap
        // is configurable via [`SharedDb::with_comp_retry_cap`].
        let steps_completed = txn.steps_completed;
        let cap = shared.comp_retry_cap();
        let mut attempts = 0;
        loop {
            let mut ctx = StepCtx::new(shared, cc, txn, WaitMode::Block);
            match program.compensate(steps_completed, &mut ctx) {
                Ok(()) => break,
                Err(e) if e.is_transient() && attempts < cap => {
                    attempts += 1;
                    undo_current_step(shared, txn)?;
                    // Drop the failed attempt's conventional locks so a
                    // cross-blocked compensating peer can make progress
                    // before we retry (otherwise two compensations deadlock
                    // in lockstep through every retry).
                    let oracle = shared.oracle_for(txn.epoch_pin.as_ref());
                    shared.release_where_with(txn.id, |k, _| k.is_conventional(), &*oracle);
                    // Releasing alone is not enough: the transient failure
                    // may be a comp-vs-comp cycle among *other* waiters that
                    // our request keeps running into, and parked waiters only
                    // break such a tie on their 50 ms re-detection slice
                    // (`SharedDb::wait_on`). Retrying faster than that slice
                    // burns the whole cap against one still-unresolved cycle
                    // and declares a spurious wedge; pace the retries so the
                    // cumulative pause comfortably spans several slices, with
                    // txn-id jitter so lockstep peers desynchronize.
                    std::thread::sleep(Duration::from_micros(
                        ((1u64 << attempts.min(7)) * 1000).min(80_000) + (txn.id.0 % 8) * 137,
                    ));
                }
                Err(e) => {
                    // Give up cleanly: whatever physical undo we did stays
                    // (it is idempotent against recovery), but the locks and
                    // doom flag must not outlive us — leaking them stalls
                    // every waiter behind this transaction. Version chains
                    // stay pending (readers unwind past them — conservative)
                    // but the active-map entry must not pin the watermark.
                    shared.deregister_active(txn.id);
                    let oracle = shared.oracle_for(txn.epoch_pin.as_ref());
                    shared.release_all_with(txn.id, &*oracle);
                    shared.clear_doom(txn.id);
                    shared.unpin_epoch(txn.epoch_pin.take());
                    txn.state = TxnState::Aborted;
                    return Err(Error::Internal(if e.is_transient() {
                        format!(
                            "compensation of {} wedged: still transient after \
                             {attempts} retries (cap {cap}): {e}",
                            txn.id
                        )
                    } else {
                        format!("compensation of {} failed: {e}", txn.id)
                    }));
                }
            }
        }
    }

    let abort_lsn = shared.with_wal(|w| w.append(LogRecord::Abort { txn: txn.id }));
    // Batching hint only; an abort needs no durability ack (recovery treats
    // a missing abort record as in-flight and compensates it the same way).
    shared.flush_wal_batch();
    // The chains record everything this transaction wrote — forward writes
    // (their physical undo restored the images without touching the chain)
    // and compensations alike. Finalizing them at the abort LSN makes every
    // entry's before-image line up with the settled table state: readers at
    // older views unwind to the same values either way.
    finalize_versions(shared, txn, abort_lsn.0);
    let oracle = shared.oracle_for(txn.epoch_pin.as_ref());
    shared.release_all_with(txn.id, &*oracle);
    shared.clear_doom(txn.id);
    shared.unpin_epoch(txn.epoch_pin.take());
    txn.state = TxnState::Aborted;
    Ok(())
}
