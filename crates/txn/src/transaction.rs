//! Per-transaction runtime state.

use crate::cc::TxnMeta;
use acc_common::{TableId, TxnId, TxnTypeId};
use acc_lockmgr::EpochPin;
use acc_storage::UndoRecord;

/// Lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Executing forward steps.
    Active,
    /// Executing compensating steps (rolling back).
    Compensating,
    /// Done, effects durable.
    Committed,
    /// Done, effects rolled back (physically or by compensation).
    Aborted,
}

/// A live transaction.
#[derive(Debug)]
pub struct Transaction {
    /// The transaction id.
    pub id: TxnId,
    /// Its analyzed type.
    pub txn_type: TxnTypeId,
    /// Zero-based index of the step currently executing.
    pub step_index: u32,
    /// Forward steps that have completed (their end-of-step records are on
    /// the log).
    pub steps_completed: u32,
    /// Lifecycle state.
    pub state: TxnState,
    /// Undo stack for the *current* step, cleared at each step boundary when
    /// running decomposed (completed steps are only compensable, never
    /// physically undoable). Under 2PL it accumulates for the whole
    /// transaction.
    pub step_undo: Vec<UndoRecord>,
    /// The interference-table epoch this transaction admitted under
    /// (decomposed transactions only; taken at first-step admission,
    /// released after `release_all` at commit/rollback). Every interference
    /// lookup the transaction causes — forward or compensating — uses this
    /// pinned snapshot, never a newer epoch's tables.
    pub epoch_pin: Option<EpochPin>,
    /// The read view for coordination-free version reads (the durable WAL
    /// frontier at begin), resolved lazily at the first versioned read
    /// (`StepCtx` caches the `SharedDb` active-map lookup here).
    pub read_view: Option<u64>,
    /// Tables this transaction pushed version-chain entries into (deduped,
    /// typically ≤ a handful); commit and rollback finalize exactly these.
    pub version_tables: Vec<TableId>,
    /// Absolute deadline, if the submitter set one. Checked at every step
    /// boundary by the runner: a transaction past its deadline rolls back
    /// through the ordinary compensation path (never mid-step, so no lock or
    /// version-chain state can leak) and reports
    /// [`crate::runner::AbortReason::Deadline`].
    pub deadline: Option<std::time::Instant>,
}

impl Transaction {
    /// A fresh transaction.
    pub fn new(id: TxnId, txn_type: TxnTypeId) -> Self {
        Transaction {
            id,
            txn_type,
            step_index: 0,
            steps_completed: 0,
            state: TxnState::Active,
            step_undo: Vec::new(),
            epoch_pin: None,
            read_view: None,
            version_tables: Vec::new(),
            deadline: None,
        }
    }

    /// Set an absolute deadline (builder style).
    pub fn with_deadline(mut self, deadline: Option<std::time::Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// True once the deadline (if any) has passed.
    pub fn past_deadline(&self) -> bool {
        self.deadline
            .is_some_and(|d| std::time::Instant::now() >= d)
    }

    /// The position snapshot handed to the concurrency control.
    pub fn meta(&self) -> TxnMeta {
        TxnMeta {
            id: self.id,
            txn_type: self.txn_type,
            step_index: self.step_index,
            compensating: self.state == TxnState::Compensating,
        }
    }

    /// True once the transaction can no longer issue operations.
    pub fn finished(&self) -> bool {
        matches!(self.state, TxnState::Committed | TxnState::Aborted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_flags() {
        let mut t = Transaction::new(TxnId(1), TxnTypeId(2));
        assert_eq!(t.state, TxnState::Active);
        assert!(!t.finished());
        assert!(!t.meta().compensating);
        t.state = TxnState::Compensating;
        assert!(t.meta().compensating);
        assert!(!t.finished());
        t.state = TxnState::Committed;
        assert!(t.finished());
    }

    #[test]
    fn meta_mirrors_position() {
        let mut t = Transaction::new(TxnId(3), TxnTypeId(4));
        t.step_index = 7;
        let m = t.meta();
        assert_eq!(m.id, TxnId(3));
        assert_eq!(m.txn_type, TxnTypeId(4));
        assert_eq!(m.step_index, 7);
    }
}
