//! End-to-end tests of the strict-2PL baseline on a bank-transfer workload.

use acc_common::{Decimal, Error, Result, TableId, TxnTypeId, Value};
use acc_lockmgr::NoInterference;
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::{run, RunOutcome, SharedDb, StepCtx, StepOutcome, TwoPhase, TxnProgram, WaitMode};
use acc_wal::recover;
use std::sync::{Arc, Barrier};
use std::time::Duration;

const ACCOUNTS: TableId = TableId(0);

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Decimal)
            .key(&["id"])
            .rows_per_page(1) // row-level locking: cleanest contention tests
            .build(),
    );
    c
}

fn setup(n_accounts: i64, initial: i64) -> Arc<SharedDb> {
    let cat = catalog();
    let mut db = Database::new(&cat);
    for i in 0..n_accounts {
        db.table_mut(ACCOUNTS)
            .unwrap()
            .insert(Row::from(vec![
                Value::Int(i),
                Value::from(Decimal::from_int(initial)),
            ]))
            .unwrap();
    }
    Arc::new(SharedDb::new(db, Arc::new(NoInterference)).with_wait_cap(Duration::from_secs(5)))
}

fn total_balance(shared: &SharedDb) -> Decimal {
    shared
        .with_table(ACCOUNTS, |t| t.iter().map(|(_, r)| r.decimal(1)).sum())
        .unwrap()
}

struct Transfer {
    from: i64,
    to: i64,
    amount: Decimal,
    /// Optional rendezvous between the debit and the credit, to force
    /// specific interleavings.
    pause: Option<Arc<Barrier>>,
    abort_after_debit: bool,
}

impl Transfer {
    fn new(from: i64, to: i64, amount: i64) -> Self {
        Transfer {
            from,
            to,
            amount: Decimal::from_int(amount),
            pause: None,
            abort_after_debit: false,
        }
    }
}

impl TxnProgram for Transfer {
    fn txn_type(&self) -> TxnTypeId {
        TxnTypeId(0)
    }

    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let amount = self.amount;
        ctx.update_key(ACCOUNTS, &Key::ints(&[self.from]), |r| {
            let b = r.decimal(1);
            r.set(1, Value::from(b - amount));
        })?;
        if let Some(b) = &self.pause {
            b.wait();
        }
        if self.abort_after_debit {
            return Ok(StepOutcome::Abort);
        }
        ctx.update_key(ACCOUNTS, &Key::ints(&[self.to]), |r| {
            let b = r.decimal(1);
            r.set(1, Value::from(b + amount));
        })?;
        Ok(StepOutcome::Done)
    }
}

#[test]
fn serial_transfers_preserve_total() {
    let shared = setup(4, 100);
    for i in 0..4 {
        let mut p = Transfer::new(i, (i + 1) % 4, 10);
        let out = run(&shared, &TwoPhase, &mut p, WaitMode::Block).unwrap();
        assert_eq!(out, RunOutcome::Committed { steps: 1 });
    }
    assert_eq!(total_balance(&shared), Decimal::from_int(400));
    // All locks released.
    assert_eq!(shared.total_grants(), 0);
}

#[test]
fn user_abort_rolls_back_physically() {
    let shared = setup(2, 100);
    let mut p = Transfer::new(0, 1, 30);
    p.abort_after_debit = true;
    let out = run(&shared, &TwoPhase, &mut p, WaitMode::Block).unwrap();
    assert_eq!(out, RunOutcome::RolledBack(acc_txn::AbortReason::UserAbort));
    let b0 = shared
        .with_table(ACCOUNTS, |t| t.get(&Key::ints(&[0])).unwrap().1.decimal(1))
        .unwrap();
    assert_eq!(b0, Decimal::from_int(100));
    assert_eq!(total_balance(&shared), Decimal::from_int(200));
}

#[test]
fn concurrent_transfers_conserve_money() {
    let shared = setup(8, 100);
    let mut handles = Vec::new();
    for t in 0..8u64 {
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut committed = 0;
            for k in 0..25u64 {
                let from = ((t + k) % 8) as i64;
                let to = ((t + k * 3 + 1) % 8) as i64;
                if from == to {
                    continue;
                }
                let mut p = Transfer::new(from, to, 1);
                match run(&shared, &TwoPhase, &mut p, WaitMode::Block).unwrap() {
                    RunOutcome::Committed { .. } => committed += 1,
                    RunOutcome::RolledBack(_) => {}
                }
            }
            committed
        }));
    }
    let committed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(committed > 0);
    assert_eq!(total_balance(&shared), Decimal::from_int(800));
    assert_eq!(shared.total_grants(), 0);
}

#[test]
fn forced_deadlock_aborts_one_and_conserves() {
    let shared = setup(2, 100);
    let barrier = Arc::new(Barrier::new(2));
    let mut outs = Vec::new();
    let mut handles = Vec::new();
    for (from, to) in [(0i64, 1i64), (1, 0)] {
        let shared = Arc::clone(&shared);
        let b = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut p = Transfer::new(from, to, 5);
            p.pause = Some(b);
            run(&shared, &TwoPhase, &mut p, WaitMode::Block).unwrap()
        }));
    }
    for h in handles {
        outs.push(h.join().unwrap());
    }
    // Under strict 2PL the cross transfer deadlocks: exactly one is the
    // victim. (The barrier fires once, inside both first executions; the
    // victim is rolled back and NOT retried by run(), so outcomes are one
    // commit + one deadlock rollback.)
    let commits = outs
        .iter()
        .filter(|o| matches!(o, RunOutcome::Committed { .. }))
        .count();
    let deadlocks = outs
        .iter()
        .filter(|o| matches!(o, RunOutcome::RolledBack(acc_txn::AbortReason::Deadlock)))
        .count();
    assert_eq!((commits, deadlocks), (1, 1), "outcomes: {outs:?}");
    assert_eq!(total_balance(&shared), Decimal::from_int(200));
}

#[test]
fn wal_replay_reproduces_state() {
    let shared = setup(4, 100);
    for i in 0..4 {
        let mut p = Transfer::new(i, (i + 2) % 4, 7);
        run(&shared, &TwoPhase, &mut p, WaitMode::Block).unwrap();
    }
    let mut aborted = Transfer::new(0, 1, 50);
    aborted.abort_after_debit = true;
    run(&shared, &TwoPhase, &mut aborted, WaitMode::Block).unwrap();

    // Replay the log against a fresh base image with the same population.
    let cat = catalog();
    let mut base = Database::new(&cat);
    for i in 0..4 {
        base.table_mut(ACCOUNTS)
            .unwrap()
            .insert(Row::from(vec![
                Value::Int(i),
                Value::from(Decimal::from_int(100)),
            ]))
            .unwrap();
    }
    let report = shared.with_wal(|w| recover(&mut base, w)).unwrap();
    assert_eq!(report.committed.len(), 4);
    assert_eq!(report.aborted.len(), 1);
    let db = shared.snapshot_db();
    for (slot, row) in db.table(ACCOUNTS).unwrap().iter() {
        let replayed = base.table(ACCOUNTS).unwrap().row(slot).unwrap();
        assert_eq!(replayed, row);
    }
}

#[test]
fn fail_mode_surfaces_would_block_and_leaves_no_trace() {
    let shared = setup(2, 100);
    // Txn 1 grabs account 0 and stays open (we drive it manually).
    let t1 = shared.begin_txn(TxnTypeId(0));
    let mut txn1 = acc_txn::Transaction::new(t1, TxnTypeId(0));
    {
        let two = TwoPhase;
        let mut ctx = StepCtx::new(&shared, &two, &mut txn1, WaitMode::Block);
        ctx.update_key(ACCOUNTS, &Key::ints(&[0]), |r| {
            r.set(1, Value::from(Decimal::from_int(1)));
        })
        .unwrap();
    }
    // A competing transfer in Fail mode bounces off the lock.
    let mut p = Transfer::new(0, 1, 5);
    let err = run(&shared, &TwoPhase, &mut p, WaitMode::Fail).unwrap_err();
    assert!(matches!(err, Error::WouldBlock { .. }));
    // Its partial effects were undone (it had none before the block).
    let b1 = shared
        .with_table(ACCOUNTS, |t| t.get(&Key::ints(&[1])).unwrap().1.decimal(1))
        .unwrap();
    assert_eq!(b1, Decimal::from_int(100));
    // Finish txn 1 so the table drains.
    acc_txn::runner::commit(&shared, &mut txn1).unwrap();
    assert_eq!(shared.total_grants(), 0);
}
