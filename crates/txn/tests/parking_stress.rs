//! Per-ticket parking under contention: no lost wakeups.
//!
//! Every blocked `acquire` parks on its own slot, and the runtime's safety
//! cap turns a lost wakeup into a hard `Error::Internal` after `wait_cap`.
//! Hammering a handful of hot resources from many threads with a short cap
//! therefore *is* the lost-wakeup detector: if any grant ever failed to wake
//! its owner, some thread would time out and the test would fail.

use acc_common::rng::SeededRng;
use acc_common::{ResourceId, StepTypeId, TxnTypeId};
use acc_lockmgr::{LockKind, NoInterference, RequestCtx};
use acc_storage::{Catalog, Database};
use acc_txn::{SharedDb, WaitMode};
use std::sync::Arc;
use std::time::Duration;

fn plain() -> RequestCtx {
    RequestCtx::plain(StepTypeId(0))
}

#[test]
fn hot_resources_never_lose_a_wakeup() {
    const THREADS: u64 = 8;
    const ITERS: usize = 150;
    const HOT: u32 = 4;

    let shared = Arc::new(
        SharedDb::new(Database::new(&Catalog::new()), Arc::new(NoInterference))
            // Short enough to fail fast on a lost wakeup, long enough that
            // honest queueing behind 7 peers never trips it.
            .with_wait_cap(Duration::from_secs(10)),
    );

    let mut handles = Vec::new();
    for thread in 0..THREADS {
        let s = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut rng = SeededRng::new(0x9a7c_0000 ^ thread);
            for i in 0..ITERS {
                let txn = s.begin_txn(TxnTypeId(0));
                // Two locks from disjoint tiers, always acquired low tier
                // first (deadlock-free), so every iteration exercises the
                // enqueue, park, and grant paths.
                let a = rng.index(HOT as usize) as u32;
                let b = HOT + rng.index(HOT as usize) as u32;
                for r in [ResourceId::Named(a), ResourceId::Named(b)] {
                    s.acquire(txn, r, LockKind::X, plain(), WaitMode::Block)
                        .unwrap_or_else(|e| {
                            panic!("thread {thread} iter {i}: lost wakeup or stall: {e}")
                        });
                }
                s.release_all(txn);
            }
        }));
    }
    for h in handles {
        h.join().expect("worker panicked");
    }
    assert_eq!(shared.total_grants(), 0, "locks drained");
}
