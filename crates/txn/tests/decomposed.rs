//! Decomposed execution: step-boundary lock release and compensation-based
//! rollback, tested with a minimal step-release policy (no assertional
//! locks — those live in `acc-core`).
//!
//! The workload is the paper's §4 sketch: an order-entry transaction whose
//! first step inserts the order header and whose subsequent steps insert one
//! order line each; its compensating step deletes whatever was inserted.

use acc_common::{Result, StepTypeId, TableId, TxnTypeId, Value};
use acc_lockmgr::{LockKind, LockMode, NoInterference};
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::{
    run, AbortReason, ConcurrencyControl, RunOutcome, SharedDb, StepCtx, StepOutcome, TxnMeta,
    TxnProgram, WaitMode,
};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const ORDERS: TableId = TableId(0);
const LINES: TableId = TableId(1);

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("orders")
            .column("order_id", ColumnType::Int)
            .column("num_items", ColumnType::Int)
            .key(&["order_id"])
            .build(),
    );
    c.add_table(
        TableSchema::builder("orderlines")
            .column("order_id", ColumnType::Int)
            .column("item_id", ColumnType::Int)
            .key(&["order_id", "item_id"])
            .build(),
    );
    c
}

fn shared() -> Arc<SharedDb> {
    Arc::new(
        SharedDb::new(Database::new(&catalog()), Arc::new(NoInterference))
            .with_wait_cap(Duration::from_secs(5)),
    )
}

/// Step-release policy: decomposed, conventional locks only, everything
/// released at step end.
struct StepRelease;

impl ConcurrencyControl for StepRelease {
    fn name(&self) -> &'static str {
        "step-release"
    }
    fn decomposed(&self) -> bool {
        true
    }
    fn step_type(&self, meta: &TxnMeta) -> StepTypeId {
        if meta.compensating {
            StepTypeId(100)
        } else {
            StepTypeId(meta.step_index.min(1))
        }
    }
    fn comp_step_type(&self, _t: TxnTypeId) -> Option<StepTypeId> {
        Some(StepTypeId(100))
    }
    fn item_locks(&self, _m: &TxnMeta, _t: TableId, write: bool) -> Vec<LockKind> {
        vec![LockKind::Conventional(if write {
            LockMode::X
        } else {
            LockMode::S
        })]
    }
    fn scan_locks(&self, _m: &TxnMeta, _t: TableId) -> Vec<LockKind> {
        vec![LockKind::Conventional(LockMode::S)]
    }
    fn release_at_step_end(&self, _m: &TxnMeta, _k: LockKind) -> bool {
        true
    }
}

struct OrderEntry {
    order_id: i64,
    items: Vec<i64>,
    abort_at_last: bool,
    pause_between_steps: Option<Arc<Barrier>>,
}

impl OrderEntry {
    fn new(order_id: i64, items: Vec<i64>) -> Self {
        OrderEntry {
            order_id,
            items,
            abort_at_last: false,
            pause_between_steps: None,
        }
    }
}

impl TxnProgram for OrderEntry {
    fn txn_type(&self) -> TxnTypeId {
        TxnTypeId(1)
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        if i == 0 {
            ctx.insert(
                ORDERS,
                Row::from(vec![
                    Value::Int(self.order_id),
                    Value::Int(self.items.len() as i64),
                ]),
            )?;
            return Ok(if self.items.is_empty() {
                StepOutcome::Done
            } else {
                StepOutcome::Continue
            });
        }
        let idx = (i - 1) as usize;
        let last = idx + 1 == self.items.len();
        if last && self.abort_at_last {
            return Ok(StepOutcome::Abort);
        }
        if let Some(b) = &self.pause_between_steps {
            if idx == 0 {
                b.wait(); // after step 0 completed, before line 1 commits
                b.wait(); // hold until the peer finishes its probe
            }
        }
        ctx.insert(
            LINES,
            Row::from(vec![Value::Int(self.order_id), Value::Int(self.items[idx])]),
        )?;
        Ok(if last {
            StepOutcome::Done
        } else {
            StepOutcome::Continue
        })
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        // Forward steps 0..steps_completed: step 0 is the header, step k>0 is
        // line k-1.
        for idx in (0..steps_completed.saturating_sub(1) as usize).rev() {
            ctx.delete_key(LINES, &Key::ints(&[self.order_id, self.items[idx]]))?;
        }
        if steps_completed > 0 {
            ctx.delete_key(ORDERS, &Key::ints(&[self.order_id]))?;
        }
        Ok(())
    }

    fn work_area(&self) -> Vec<u8> {
        self.order_id.to_le_bytes().to_vec()
    }
}

#[test]
fn multi_step_commit() {
    let s = shared();
    let mut p = OrderEntry::new(1, vec![10, 11, 12]);
    let out = run(&s, &StepRelease, &mut p, WaitMode::Block).unwrap();
    assert_eq!(out, RunOutcome::Committed { steps: 4 });
    let db = s.snapshot_db();
    assert_eq!(db.table(ORDERS).unwrap().len(), 1);
    assert_eq!(db.table(LINES).unwrap().len(), 3);
    assert_eq!(s.total_grants(), 0);
    // WAL carries one StepEnd per completed step except the final one
    // (commit makes it durable) and saved the work area.
    let step_ends: Vec<_> = s.with_wal(|w| {
        w.records()
            .iter()
            .filter_map(|r| match r {
                acc_wal::LogRecord::StepEnd {
                    step_index,
                    work_area,
                    ..
                } => Some((*step_index, work_area.clone())),
                _ => None,
            })
            .collect()
    });
    assert_eq!(step_ends.len(), 3);
    assert_eq!(step_ends[0].1, 1i64.to_le_bytes().to_vec());
}

#[test]
fn user_abort_compensates_completed_steps() {
    let s = shared();
    let mut p = OrderEntry::new(7, vec![1, 2, 3]);
    p.abort_at_last = true;
    let out = run(&s, &StepRelease, &mut p, WaitMode::Block).unwrap();
    assert_eq!(out, RunOutcome::RolledBack(AbortReason::UserAbort));
    let db = s.snapshot_db();
    assert_eq!(db.table(ORDERS).unwrap().len(), 0, "header compensated");
    assert_eq!(db.table(LINES).unwrap().len(), 0, "lines compensated");
    assert_eq!(s.total_grants(), 0);
    s.with_wal(|w| {
        let has_comp_begin = w.records().iter().any(|r| {
            matches!(
                r,
                acc_wal::LogRecord::CompensationBegin { from_step: 3, .. }
            )
        });
        assert!(has_comp_begin, "compensation was logged");
        let has_abort = w
            .records()
            .iter()
            .any(|r| matches!(r, acc_wal::LogRecord::Abort { .. }));
        assert!(has_abort);
    });
}

#[test]
fn locks_released_at_step_boundaries() {
    // While a decomposed order entry is paused *between* steps, a second
    // transaction can write the very same pages — impossible under 2PL.
    let s = shared();
    let barrier = Arc::new(Barrier::new(2));

    let s1 = Arc::clone(&s);
    let b1 = Arc::clone(&barrier);
    let h = std::thread::spawn(move || {
        let mut p = OrderEntry::new(1, vec![10, 11]);
        p.pause_between_steps = Some(b1);
        run(&s1, &StepRelease, &mut p, WaitMode::Block).unwrap()
    });

    barrier.wait(); // txn 1 finished step 0 (header inserted, locks dropped)
                    // A competing order entry touching the same tables commits immediately.
    let mut p2 = OrderEntry::new(2, vec![10]);
    let out2 = run(&s, &StepRelease, &mut p2, WaitMode::Block).unwrap();
    assert_eq!(out2, RunOutcome::Committed { steps: 2 });
    barrier.wait(); // let txn 1 continue

    assert_eq!(h.join().unwrap(), RunOutcome::Committed { steps: 3 });
    let db = s.snapshot_db();
    assert_eq!(db.table(ORDERS).unwrap().len(), 2);
    assert_eq!(db.table(LINES).unwrap().len(), 3);
}

#[test]
fn interleaved_order_entries_preserve_count_invariant() {
    // The §4 consistency conjunct: each order's num_items equals its line
    // count once the system quiesces, no matter how steps interleave.
    let s = shared();
    let mut handles = Vec::new();
    for t in 0..6i64 {
        let s = Arc::clone(&s);
        handles.push(std::thread::spawn(move || {
            let items: Vec<i64> = (0..5).map(|k| t * 10 + k).collect();
            let mut p = OrderEntry::new(t, items);
            run(&s, &StepRelease, &mut p, WaitMode::Block).unwrap()
        }));
    }
    for h in handles {
        assert!(matches!(h.join().unwrap(), RunOutcome::Committed { .. }));
    }
    let db = s.snapshot_db();
    let orders = db.table(ORDERS).unwrap();
    let lines = db.table(LINES).unwrap();
    for (_, order) in orders.iter() {
        let oid = order.int(0);
        let n = lines.scan_prefix(&Key::ints(&[oid])).count() as i64;
        assert_eq!(order.int(1), n, "order {oid}");
    }
    assert_eq!(s.total_grants(), 0);
}

#[test]
fn empty_order_is_single_step() {
    let s = shared();
    let mut p = OrderEntry::new(5, vec![]);
    let out = run(&s, &StepRelease, &mut p, WaitMode::Block).unwrap();
    assert_eq!(out, RunOutcome::Committed { steps: 1 });
}
