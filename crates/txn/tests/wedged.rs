//! Wedged compensation: a compensating step that never stops failing
//! transiently must hit the configurable retry cap and surface a clean
//! `Error::Internal` — no infinite loop, no leaked locks, no lingering doom
//! flag.

use acc_common::{Error, Result, StepTypeId, TableId, TxnId, TxnTypeId, Value};
use acc_lockmgr::{LockKind, LockMode, NoInterference};
use acc_storage::{Catalog, ColumnType, Database, Row, TableSchema};
use acc_txn::{
    run, ConcurrencyControl, SharedDb, StepCtx, StepOutcome, TxnMeta, TxnProgram, WaitMode,
};
use std::sync::Arc;
use std::time::Duration;

const ORDERS: TableId = TableId(0);

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("orders")
            .column("order_id", ColumnType::Int)
            .key(&["order_id"])
            .build(),
    );
    c
}

/// Minimal decomposed policy (same shape as the `decomposed.rs` tests).
struct StepRelease;

impl ConcurrencyControl for StepRelease {
    fn name(&self) -> &'static str {
        "step-release"
    }
    fn decomposed(&self) -> bool {
        true
    }
    fn step_type(&self, meta: &TxnMeta) -> StepTypeId {
        if meta.compensating {
            StepTypeId(100)
        } else {
            StepTypeId(meta.step_index.min(1))
        }
    }
    fn comp_step_type(&self, _t: TxnTypeId) -> Option<StepTypeId> {
        Some(StepTypeId(100))
    }
    fn item_locks(&self, _m: &TxnMeta, _t: TableId, write: bool) -> Vec<LockKind> {
        vec![LockKind::Conventional(if write {
            LockMode::X
        } else {
            LockMode::S
        })]
    }
    fn scan_locks(&self, _m: &TxnMeta, _t: TableId) -> Vec<LockKind> {
        vec![LockKind::Conventional(LockMode::S)]
    }
    fn release_at_step_end(&self, _m: &TxnMeta, _k: LockKind) -> bool {
        true
    }
}

/// Inserts a row in step 0, aborts in step 1, and then fails every
/// compensation attempt with a transient error.
struct WedgedOrder {
    comp_calls: u32,
}

impl TxnProgram for WedgedOrder {
    fn txn_type(&self) -> TxnTypeId {
        TxnTypeId(1)
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        if i == 0 {
            ctx.insert(ORDERS, Row::from(vec![Value::Int(1)]))?;
            Ok(StepOutcome::Continue)
        } else {
            Ok(StepOutcome::Abort)
        }
    }

    fn compensate(&mut self, _steps_completed: u32, _ctx: &mut StepCtx<'_>) -> Result<()> {
        self.comp_calls += 1;
        // Always transient — a perpetually recurring deadlock.
        Err(Error::Deadlock { victim: TxnId(0) })
    }
}

fn run_wedged(shared: &Arc<SharedDb>) -> (Error, u32) {
    let mut p = WedgedOrder { comp_calls: 0 };
    let err = run(shared, &StepRelease, &mut p, WaitMode::Block)
        .expect_err("perpetually failing compensation must surface an error");
    (err, p.comp_calls)
}

#[test]
fn wedged_compensation_hits_default_cap_with_clean_error() {
    let shared = Arc::new(
        SharedDb::new(Database::new(&catalog()), Arc::new(NoInterference))
            .with_wait_cap(Duration::from_secs(5)),
    );
    let (err, calls) = run_wedged(&shared);
    // Default cap 8: the initial attempt plus 8 retries.
    assert_eq!(calls, 9, "expected initial attempt + 8 retries");
    let msg = err.to_string();
    assert!(msg.contains("wedged"), "unexpected error: {msg}");
    assert!(msg.contains("cap 8"), "unexpected error: {msg}");
    // The failed transaction must not leak locks or doom flags: a fresh
    // transaction on the same table runs fine.
    assert_eq!(shared.total_grants(), 0);
}

#[test]
fn wedged_compensation_honours_configured_cap() {
    let shared = Arc::new(
        SharedDb::new(Database::new(&catalog()), Arc::new(NoInterference))
            .with_wait_cap(Duration::from_secs(5))
            .with_comp_retry_cap(2),
    );
    let (err, calls) = run_wedged(&shared);
    assert_eq!(calls, 3, "expected initial attempt + 2 retries");
    assert!(err.to_string().contains("cap 2"), "{err}");
    assert_eq!(shared.total_grants(), 0);
}
