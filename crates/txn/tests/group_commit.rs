//! Runner-level group-commit behavior: commit acknowledgements must track
//! the durable LSN frontier, not the in-memory log.
//!
//! * Liveness: a lone committer under a non-zero batch window still returns
//!   promptly — the leader flushes after the window even with no followers.
//! * Safety: a device failure mid-batch means NO transaction in or after
//!   that batch is ever acknowledged, and the failed commit releases its
//!   locks so peers are not wedged behind a corpse.
//! * The file backend round-trips: a log written through `FileDevice` can be
//!   reopened, salvages the full durable stream, and keeps appending.

use acc_common::{Result, TableId, TxnTypeId, Value};
use acc_lockmgr::NoInterference;
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::runner::commit;
use acc_txn::{SharedDb, StepCtx, Transaction, TwoPhase, WaitMode};
use acc_wal::device::temp_log_path;
use acc_wal::{recover, FileDevice, GroupCommitPolicy, LogDevice, Wal};
use std::sync::Arc;
use std::time::{Duration, Instant};

const T: TableId = TableId(0);

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("counters")
            .column("id", ColumnType::Int)
            .column("n", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(2)
            .build(),
    );
    c
}

fn seeded_db() -> Database {
    let c = catalog();
    let mut db = Database::new(&c);
    for id in 0..8 {
        db.table_mut(T)
            .unwrap()
            .insert(Row(vec![Value::Int(id), Value::Int(0)]))
            .unwrap();
    }
    db
}

fn shared_with(dev: Box<dyn LogDevice>, policy: GroupCommitPolicy) -> Arc<SharedDb> {
    Arc::new(SharedDb::new(seeded_db(), Arc::new(NoInterference)).with_wal_backend(dev, policy))
}

/// One read-modify-write transaction bumping row `id`, then commit.
fn bump(s: &SharedDb, id: i64) -> Result<()> {
    let tid = s.begin_txn(TxnTypeId(0));
    let mut txn = Transaction::new(tid, TxnTypeId(0));
    {
        let two = TwoPhase;
        let mut ctx = StepCtx::new(s, &two, &mut txn, WaitMode::Block);
        ctx.update_key(T, &Key::ints(&[id]), |r| {
            let n = r.int(1);
            r.set(1, Value::Int(n + 1));
        })
        .unwrap();
    }
    commit(s, &mut txn)
}

#[test]
fn lone_appender_commits_within_the_batch_window() {
    // A generous window: if the leader waited for followers that never come,
    // this test would hang, not just slow down.
    // max_batch high enough to never trigger a size-based flush.
    let policy = GroupCommitPolicy::fixed(Duration::from_millis(20), 1 << 20);
    let s = shared_with(Box::new(acc_wal::MemDevice::new()), policy);
    let start = Instant::now();
    bump(&s, 1).expect("lone commit must succeed");
    let elapsed = start.elapsed();
    // Every appended record is durable the moment commit returns.
    assert_eq!(s.durable_wal_records(), s.wal_len() as u64);
    assert!(s.wal_fsyncs() >= 1);
    assert!(
        elapsed < Duration::from_secs(5),
        "lone appender waited {elapsed:?} — leader never fired without followers"
    );
}

#[test]
fn commits_coalesce_into_shared_fsyncs_under_a_window() {
    let policy = GroupCommitPolicy::fixed(Duration::from_millis(5), 1 << 20);
    let s = shared_with(Box::new(acc_wal::MemDevice::new()), policy);
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || bump(&s, i).expect("commit failed"))
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // All records durable, and (at most) one fsync per commit — usually far
    // fewer, but coalescing is timing-dependent so only the upper bound and
    // the durability frontier are asserted.
    assert_eq!(s.durable_wal_records(), s.wal_len() as u64);
    let fsyncs = s.wal_fsyncs();
    assert!((1..=8).contains(&fsyncs), "fsyncs={fsyncs}");
    assert_eq!(s.total_grants(), 0, "locks leaked after commit");
}

#[test]
fn adaptive_window_acks_every_commit() {
    // The rate-adaptive window must behave like a (well-tuned) fixed one
    // through the full commit path: every ack durable, no locks left.
    let policy =
        GroupCommitPolicy::adaptive(Duration::from_micros(50), Duration::from_millis(5), 1 << 20);
    let s = shared_with(Box::new(acc_wal::MemDevice::new()), policy);
    let threads: Vec<_> = (0..4)
        .map(|i| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for _ in 0..4 {
                    bump(&s, i).expect("commit failed");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(s.durable_wal_records(), s.wal_len() as u64);
    assert!(s.wal_fsyncs() >= 1);
    assert_eq!(s.total_grants(), 0, "locks leaked after commit");
}

/// A device that accepts staged bytes forever but fails every sync — the
/// "disk died mid-batch" case.
struct DeadDisk {
    staged: usize,
}

impl LogDevice for DeadDisk {
    fn stage(&mut self, bytes: &[u8]) {
        self.staged += bytes.len();
    }
    fn sync(&mut self) -> Result<()> {
        Err(acc_common::Error::Internal("I/O error (simulated)".into()))
    }
    fn staged_len(&self) -> usize {
        self.staged
    }
    fn durable_len(&self) -> u64 {
        0
    }
    fn durable_stream(&self) -> Vec<u8> {
        Vec::new()
    }
    fn raw_image(&self) -> Vec<u8> {
        Vec::new()
    }
    fn kind(&self) -> &'static str {
        "dead"
    }
}

#[test]
fn failed_batch_never_acks_and_releases_locks() {
    let s = shared_with(
        Box::new(DeadDisk { staged: 0 }),
        GroupCommitPolicy::default(),
    );
    // The first commit hits the dead disk: no acknowledgement.
    let err = bump(&s, 1).expect_err("commit acked a batch the device lost");
    assert!(format!("{err}").contains("I/O error"), "{err}");
    // The failure is sticky: a later transaction (a would-be follower of a
    // retried batch) must not be acknowledged either, even though its own
    // sync call never reached the device.
    let err2 = bump(&s, 2).expect_err("commit acked after a sticky device failure");
    assert!(format!("{err2}").contains("I/O error"), "{err2}");
    // Nothing was ever durable...
    assert_eq!(s.durable_wal_records(), 0);
    // ...and neither failed commit left locks behind to wedge its peers.
    assert_eq!(s.total_grants(), 0, "failed commit leaked locks");
}

#[test]
fn file_backend_reopens_with_the_full_durable_stream_and_extends() {
    let path = temp_log_path("group-commit-reopen");
    let _ = std::fs::remove_file(&path);

    let (stream_before, records_before) = {
        let dev = FileDevice::create(&path).expect("create log file");
        let s = shared_with(Box::new(dev), GroupCommitPolicy::default());
        for id in 0..4 {
            bump(&s, id).expect("commit failed");
        }
        assert_eq!(s.durable_wal_records(), s.wal_len() as u64);
        (s.wal_durable_stream(), s.wal_len())
    };
    assert!(!stream_before.is_empty());

    // Reopen: the salvage must reproduce the entire durable stream, and the
    // log must decode to the same records the writer saw.
    let dev = FileDevice::open_existing(&path).expect("reopen log file");
    assert_eq!(dev.durable_stream(), stream_before);
    let reopened = Wal::from_bytes(&dev.durable_stream());
    assert_eq!(reopened.records().len(), records_before);

    // Recovery over the reopened log replays every committed transaction.
    let mut db = seeded_db();
    let report = recover(&mut db, &reopened).expect("recovery failed");
    assert_eq!(report.committed.len(), 4);
    for id in 0..4 {
        let (_, row) = db.table(T).unwrap().get(&Key::ints(&[id])).unwrap();
        assert_eq!(row.int(1), 1, "row {id} lost its committed update");
    }

    // And the reopened device keeps appending: a fresh system over it
    // commits more work on top of the salvaged prefix.
    {
        let s = Arc::new(
            SharedDb::new(db, Arc::new(NoInterference))
                .with_wal_backend(Box::new(dev), GroupCommitPolicy::default()),
        );
        bump(&s, 5).expect("commit after reopen failed");
        let stream_after = s.wal_durable_stream();
        assert!(stream_after.len() > stream_before.len());
        assert_eq!(stream_after[..stream_before.len()], stream_before[..]);
    }
    let _ = std::fs::remove_file(&path);
}

/// The prune watermark must key off the *durable* LSN frontier, never an
/// allocated-but-unsynced one: a crash would rewind the log past such an
/// LSN, leaving the surviving prefix without the images pruning assumed it
/// had. Pins the clamp in `SharedDb::version_watermark`.
#[test]
fn prune_watermark_clamps_to_the_durable_frontier() {
    let policy = GroupCommitPolicy::fixed(Duration::from_millis(5), 1 << 20);
    let s = shared_with(Box::new(acc_wal::MemDevice::new()), policy);
    // Nothing durable yet: nothing may be pruned, even with no active txns.
    assert_eq!(s.durable_wal_records(), 0);
    assert_eq!(s.version_watermark(), None);

    // One committed update drags the durable frontier up to the log.
    bump(&s, 1).expect("commit failed");
    let durable = s.durable_wal_records();
    assert_eq!(durable, s.wal_len() as u64);
    assert_eq!(s.version_watermark(), Some(durable - 1));

    // A new transaction's Begin record is allocated but not yet synced: the
    // log runs ahead of the frontier. Its read view is minted at the
    // *durable* frontier, never the unsynced tail, so the watermark stays
    // clamped at durable-1 and the view can never cover a commit whose
    // record a crash could still erase.
    let tid = s.begin_txn(TxnTypeId(0));
    let view = s.read_view_of(tid).expect("view registered in active map");
    assert!(s.wal_len() as u64 > s.durable_wal_records());
    assert_eq!(view, durable - 1, "view strayed off the durable frontier");
    assert_eq!(s.version_watermark(), Some(durable - 1));

    // A prune at the clamped watermark keeps the committed bump readable at
    // the durable view.
    let w = s.version_watermark().unwrap();
    s.with_table_mut(T, |t| t.prune_versions(w)).unwrap();
    let visible = s
        .with_table(T, |t| {
            match t.read_at(&Key::ints(&[1]), w, tid, &acc_storage::NoCommits) {
                acc_storage::Visibility::Visible(img) => img.map(|r| r.int(1)),
                acc_storage::Visibility::Tainted => panic!("tainted durable-view read"),
            }
        })
        .unwrap();
    assert_eq!(visible, Some(1), "committed bump lost below the clamp");
    s.deregister_active(tid);
}

/// With replication configured, the watermark must also clamp to the
/// *shipped* frontier (`min(active views, durable, shipped)`): a follower
/// that restarts resumes from its last verified record, and pruning history
/// it has not verified yet would hand a promotion an image whose version
/// chains the leader already dropped. Pins the clamp and its sentinel
/// behavior in `SharedDb::version_watermark`.
#[test]
fn prune_watermark_clamps_to_the_shipped_frontier() {
    let policy = GroupCommitPolicy::fixed(Duration::from_millis(5), 1 << 20);
    let s = shared_with(Box::new(acc_wal::MemDevice::new()), policy);
    for id in 0..3 {
        bump(&s, id).expect("commit failed");
    }
    let durable = s.durable_wal_records();
    // No replication configured: the sentinel leaves the watermark on the
    // durable frontier alone.
    assert_eq!(s.shipped_frontier(), None);
    assert_eq!(s.version_watermark(), Some(durable - 1));

    // A follower has verified only 2 records: the watermark drops to the
    // shipped frontier, below durable.
    s.set_shipped_frontier(2);
    assert_eq!(s.shipped_frontier(), Some(2));
    assert_eq!(s.version_watermark(), Some(1));

    // The frontier is monotonic: a duplicate/late ack cannot pull the
    // watermark back...
    s.set_shipped_frontier(durable);
    s.set_shipped_frontier(2);
    assert_eq!(s.shipped_frontier(), Some(durable));
    assert_eq!(s.version_watermark(), Some(durable - 1));
    // ...and the durable clamp still rules when shipping runs ahead of the
    // local fsync frontier (a follower can never verify more than the
    // leader made durable, but the clamp must not trust that).
    s.set_shipped_frontier(durable + 10);
    assert_eq!(s.version_watermark(), Some(durable - 1));

    // A configured-but-empty frontier means nothing is prunable at all.
    let s2 = shared_with(
        Box::new(acc_wal::MemDevice::new()),
        GroupCommitPolicy::fixed(Duration::from_millis(5), 1 << 20),
    );
    bump(&s2, 1).expect("commit failed");
    s2.set_shipped_frontier(0);
    assert_eq!(s2.version_watermark(), None);
}
