//! Deadline-abort lock hygiene: a transaction cancelled by its deadline at
//! *every* step boundary — while concurrent writers load the same table —
//! must roll back through the ordinary compensation path, release every lock
//! it held, finalize its version chains (no lingering active-map entry), and
//! never cause a mixed-epoch interference lookup.
//!
//! This is the safety contract the network front-end's per-request deadlines
//! lean on: shedding a slow request can never wedge the engine.

use acc_common::{Result, StepTypeId, TableId, TxnTypeId, Value};
use acc_lockmgr::{LockKind, LockMode, NoInterference};
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::runner::run_with_deadline;
use acc_txn::{
    run, AbortReason, ConcurrencyControl, RunOutcome, SharedDb, StepCtx, StepOutcome, TxnMeta,
    TxnProgram, WaitMode,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const LEDGER: TableId = TableId(0);

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("ledger")
            .column("id", ColumnType::Int)
            .column("amount", ColumnType::Int)
            .key(&["id"])
            .build(),
    );
    c
}

/// Minimal decomposed policy: conventional locks, released at step ends.
struct StepRelease;

impl ConcurrencyControl for StepRelease {
    fn name(&self) -> &'static str {
        "step-release"
    }
    fn decomposed(&self) -> bool {
        true
    }
    fn step_type(&self, meta: &TxnMeta) -> StepTypeId {
        if meta.compensating {
            StepTypeId(100)
        } else {
            StepTypeId(meta.step_index.min(1))
        }
    }
    fn comp_step_type(&self, _t: TxnTypeId) -> Option<StepTypeId> {
        Some(StepTypeId(100))
    }
    fn item_locks(&self, _m: &TxnMeta, _t: TableId, write: bool) -> Vec<LockKind> {
        vec![LockKind::Conventional(if write {
            LockMode::X
        } else {
            LockMode::S
        })]
    }
    fn scan_locks(&self, _m: &TxnMeta, _t: TableId) -> Vec<LockKind> {
        vec![LockKind::Conventional(LockMode::S)]
    }
    fn release_at_step_end(&self, _m: &TxnMeta, _k: LockKind) -> bool {
        true
    }
}

/// Four forward steps, each inserting one row; step `slow_step` stalls past
/// any reasonable deadline. Compensation deletes exactly the rows the
/// completed steps inserted.
struct SlowLedger {
    base_id: i64,
    slow_step: u32,
    stall: Duration,
    comp_from: Option<u32>,
}

const STEPS: u32 = 4;

impl TxnProgram for SlowLedger {
    fn txn_type(&self) -> TxnTypeId {
        TxnTypeId(1)
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        ctx.insert(
            LEDGER,
            Row::from(vec![Value::Int(self.base_id + i as i64), Value::Int(10)]),
        )?;
        if i == self.slow_step {
            std::thread::sleep(self.stall);
        }
        if i + 1 == STEPS {
            Ok(StepOutcome::Done)
        } else {
            Ok(StepOutcome::Continue)
        }
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        self.comp_from = Some(steps_completed);
        for i in 0..steps_completed {
            ctx.delete_key(LEDGER, &Key::ints(&[self.base_id + i as i64]))?;
        }
        Ok(())
    }
}

/// One-step background writer used as concurrent load.
struct Background {
    id: i64,
}

impl TxnProgram for Background {
    fn txn_type(&self) -> TxnTypeId {
        TxnTypeId(2)
    }

    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let key = Key::ints(&[self.id]);
        if ctx.read_for_update(LEDGER, &key)?.is_some() {
            ctx.update_key(LEDGER, &key, |r| {
                if let Value::Int(n) = &mut r.0[1] {
                    *n += 1;
                }
            })?;
        } else {
            ctx.insert(LEDGER, Row::from(vec![Value::Int(self.id), Value::Int(0)]))?;
        }
        Ok(StepOutcome::Done)
    }

    fn compensate(&mut self, _steps_completed: u32, _ctx: &mut StepCtx<'_>) -> Result<()> {
        Ok(())
    }
}

fn shared_db() -> Arc<SharedDb> {
    Arc::new(
        SharedDb::new(Database::new(&catalog()), Arc::new(NoInterference))
            .with_wait_cap(Duration::from_secs(10)),
    )
}

/// Spawn background writers hammering the same table until `stop` flips.
fn spawn_load(
    shared: &Arc<SharedDb>,
    stop: &Arc<AtomicBool>,
    threads: usize,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..threads)
        .map(|t| {
            let shared = Arc::clone(shared);
            let stop = Arc::clone(stop);
            std::thread::spawn(move || {
                let mut n = 0i64;
                while !stop.load(Ordering::Relaxed) {
                    let mut p = Background {
                        id: 1000 + t as i64 * 64 + (n % 64),
                    };
                    n += 1;
                    // Single-row writers on disjoint keys: deadlocks are not
                    // expected, but tolerate transient outcomes under load.
                    let _ = run(&shared, &StepRelease, &mut p, WaitMode::Block);
                }
            })
        })
        .collect()
}

#[test]
fn deadline_abort_is_clean_at_every_step_boundary() {
    for slow_step in 0..STEPS {
        let shared = shared_db();
        let stop = Arc::new(AtomicBool::new(false));
        let load = spawn_load(&shared, &stop, 3);

        let mut program = SlowLedger {
            base_id: 1,
            slow_step,
            stall: Duration::from_millis(120),
            comp_from: None,
        };
        let deadline = Instant::now() + Duration::from_millis(40);
        let (_, outcome) = run_with_deadline(
            &shared,
            &StepRelease,
            &mut program,
            WaitMode::Block,
            Some(deadline),
        )
        .expect("deadline rollback must not error");
        assert_eq!(
            outcome,
            RunOutcome::RolledBack(AbortReason::Deadline),
            "step {slow_step} must be cancelled by its deadline"
        );
        // The stalled step completed, the deadline gate fired at the *next*
        // boundary: compensation starts from slow_step + 1 completed steps.
        // When the stalled step is the final one, it has no end-of-step
        // record yet — it is physically undone and compensation covers only
        // the earlier steps.
        let expect_comp = if slow_step + 1 == STEPS {
            STEPS - 1
        } else {
            slow_step + 1
        };
        assert_eq!(
            program.comp_from,
            Some(expect_comp),
            "cancelled at boundary {slow_step}: compensation covers completed steps"
        );

        stop.store(true, Ordering::Relaxed);
        for h in load {
            h.join().expect("load thread panicked");
        }

        // Lock hygiene: nothing leaked by the deadline rollback or the load.
        assert_eq!(
            shared.total_grants(),
            0,
            "deadline abort at boundary {slow_step} leaked lock grants"
        );
        // Version chains finalized: no active-map entry pins the watermark.
        assert_eq!(shared.active_txns(), 0, "active txn leaked");
        // Epoch hygiene: every interference lookup ran under its pinned
        // epoch.
        assert_eq!(shared.registry().mixed_epoch_lookups(), 0);
        // The table is consistent: the victim's inserts are gone (deleted by
        // compensation or physically undone), i.e. no row with id < 1000
        // except none at all from the victim.
        let db = shared.snapshot_db();
        let leftover: Vec<i64> = (1..=4)
            .filter(|&i| {
                db.table(LEDGER)
                    .expect("ledger")
                    .get(&Key::ints(&[i]))
                    .is_some()
            })
            .collect();
        assert!(
            leftover.is_empty(),
            "boundary {slow_step}: victim rows survived rollback: {leftover:?}"
        );
    }
}

#[test]
fn already_expired_deadline_rejects_before_any_step() {
    let shared = shared_db();
    let mut program = SlowLedger {
        base_id: 1,
        slow_step: STEPS, // never stalls
        stall: Duration::ZERO,
        comp_from: None,
    };
    let past = Instant::now() - Duration::from_millis(1);
    let (id, outcome) = run_with_deadline(
        &shared,
        &StepRelease,
        &mut program,
        WaitMode::Block,
        Some(past),
    )
    .expect("expired-at-submit rollback must not error");
    assert_eq!(outcome, RunOutcome::RolledBack(AbortReason::Deadline));
    assert_eq!(
        program.comp_from, None,
        "no step ran, so nothing to compensate"
    );
    assert!(id.0 > 0, "a txn id was still minted (it is on the log)");
    assert_eq!(shared.total_grants(), 0);
    assert_eq!(shared.active_txns(), 0);
}

#[test]
fn no_deadline_still_commits() {
    let shared = shared_db();
    let mut program = SlowLedger {
        base_id: 1,
        slow_step: STEPS,
        stall: Duration::ZERO,
        comp_from: None,
    };
    let (_, outcome) =
        run_with_deadline(&shared, &StepRelease, &mut program, WaitMode::Block, None)
            .expect("clean run");
    assert_eq!(outcome, RunOutcome::Committed { steps: STEPS });
    assert_eq!(shared.total_grants(), 0);
}
