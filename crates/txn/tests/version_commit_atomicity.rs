//! The commit-visibility atomicity contract for version reads (REVIEW
//! finding: a reader beginning during another transaction's group-commit
//! fsync window must never see a fractured snapshot).
//!
//! Timeline under test, with writer W updating a row:
//!
//! ```text
//!   W: ...writes... | append Commit@c + publish | fsync wait | finalize | retire
//!   B: begin (view < c)      — pre-commit image, before AND after finalize
//!   C:                begin (view >= c) — post-commit image, before AND after
//! ```
//!
//! The window between the fsync and the per-table finalization is exactly
//! where the old begin-LSN views fractured: a reader minted there covered
//! `c` but `reconstruct` still unwound W's Pending entries. With durable-
//! frontier views plus the commit publication, every read below is a pure
//! function of `commit_lsn <= view` — finalization must be invisible.

use acc_common::{Result, TableId, TxnId, TxnTypeId, Value};
use acc_lockmgr::NoInterference;
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema, Visibility};
use acc_txn::{SharedDb, StepCtx, Transaction, TwoPhase, WaitMode};
use acc_wal::{GroupCommitPolicy, LogDevice, LogRecord, MemDevice};
use std::sync::Arc;

const T: TableId = TableId(0);

fn seeded_shared(dev: Box<dyn LogDevice>) -> Arc<SharedDb> {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("counters")
            .column("id", ColumnType::Int)
            .column("n", ColumnType::Int)
            .key(&["id"])
            .rows_per_page(4)
            .build(),
    );
    let mut db = Database::new(&c);
    db.table_mut(T)
        .unwrap()
        .insert(Row(vec![Value::Int(1), Value::Int(0)]))
        .unwrap();
    Arc::new(
        SharedDb::new(db, Arc::new(NoInterference))
            .with_wal_backend(dev, GroupCommitPolicy::default()),
    )
}

/// A locked update of row 1 to `n`, leaving the transaction's version
/// chains Pending (no commit yet).
fn update_row(s: &SharedDb, txn: &mut Transaction, n: i64) {
    let two = TwoPhase;
    let mut ctx = StepCtx::new(s, &two, txn, WaitMode::Block);
    ctx.update_key(T, &Key::ints(&[1]), |r| {
        r.set(1, Value::Int(n));
    })
    .unwrap();
}

/// The row-1 image a version read serves at `reader`'s registered view.
fn read_n(s: &SharedDb, reader: TxnId) -> Option<i64> {
    let view = s.read_view_of(reader).expect("reader registered");
    s.with_table(T, |t| {
        match t.read_at(&Key::ints(&[1]), view, reader, &s.published_commits()) {
            Visibility::Visible(img) => img.map(|r| r.int(1)),
            Visibility::Tainted => panic!("foreign version read tainted"),
        }
    })
    .unwrap()
}

#[test]
fn readers_straddling_the_finalize_window_see_one_snapshot() {
    let s = seeded_shared(Box::new(MemDevice::new()));

    // A baseline commit so the durable frontier is non-trivial.
    {
        let wid = s.begin_txn(TxnTypeId(0));
        let mut w = Transaction::new(wid, TxnTypeId(0));
        update_row(&s, &mut w, 10);
        acc_txn::runner::commit(&s, &mut w).expect("baseline commit");
    }

    // Writer W updates the row but has not committed yet.
    let wid = s.begin_txn(TxnTypeId(0));
    let mut w = Transaction::new(wid, TxnTypeId(0));
    update_row(&s, &mut w, 20);

    // Reader B begins while W is still in flight: its view predates c.
    let b = s.begin_txn(TxnTypeId(0));
    assert_eq!(read_n(&s, b), Some(10), "B before W's commit");

    // Replay commit() by hand, pausing in the fsync->finalize window:
    // append Commit@c and publish atomically, then make it durable.
    let c_lsn = s.with_wal(|wal| {
        let lsn = wal.append(LogRecord::Commit { txn: wid });
        s.publish_commit(wid, lsn.0);
        lsn
    });
    s.sync_wal(c_lsn).expect("mem device fsync");

    // The window is open: c is durable, W's chains are still Pending.
    // Reader C minted here covers c and must already see W's write — the
    // publication resolves the Pending entries.
    let c = s.begin_txn(TxnTypeId(0));
    assert!(s.read_view_of(c).unwrap() >= c_lsn.0, "C's view covers c");
    assert_eq!(read_n(&s, c), Some(20), "C inside the window");
    // B's view predates c, so B still reads the old image — no fracture.
    assert_eq!(read_n(&s, b), Some(10), "B inside the window");

    // Finalization + retirement must be invisible to both readers.
    s.with_table_mut(T, |t| t.finalize_versions(wid, c_lsn.0))
        .unwrap();
    s.retire_commit(wid);
    s.deregister_active(wid);
    s.release_all(wid);
    assert_eq!(read_n(&s, c), Some(20), "C after finalize");
    assert_eq!(read_n(&s, b), Some(10), "B after finalize");

    s.deregister_active(b);
    s.deregister_active(c);
}

/// A device that stages everything but fails every sync.
struct DeadDisk;

impl LogDevice for DeadDisk {
    fn stage(&mut self, _bytes: &[u8]) {}
    fn sync(&mut self) -> Result<()> {
        Err(acc_common::Error::Internal("I/O error (simulated)".into()))
    }
    fn staged_len(&self) -> usize {
        0
    }
    fn durable_len(&self) -> u64 {
        0
    }
    fn durable_stream(&self) -> Vec<u8> {
        Vec::new()
    }
    fn raw_image(&self) -> Vec<u8> {
        Vec::new()
    }
    fn kind(&self) -> &'static str {
        "dead"
    }
}

/// A failed commit fsync leaves the writer's chains Pending and retracts
/// its publication: no view can ever cover the unacked commit LSN, so
/// version readers keep serving the pre-commit image forever.
#[test]
fn failed_commit_never_becomes_visible_to_version_reads() {
    let s = seeded_shared(Box::new(DeadDisk));

    let wid = s.begin_txn(TxnTypeId(0));
    let mut w = Transaction::new(wid, TxnTypeId(0));
    update_row(&s, &mut w, 20);
    let err = acc_txn::runner::commit(&s, &mut w).expect_err("dead disk acked");
    assert!(format!("{err}").contains("I/O error"), "{err}");

    // The failed committer is fully retired: no locks, no active view.
    assert_eq!(s.total_grants(), 0, "failed commit leaked locks");
    assert_eq!(s.active_txns(), 0);
    assert_eq!(s.read_view_of(wid), None);

    // A later reader (view frozen at the durable frontier, which the dead
    // disk pins at zero) unwinds W's still-Pending entries: the write that
    // was never acked is never served.
    let r = s.begin_txn(TxnTypeId(0));
    assert_eq!(read_n(&s, r), Some(0), "unacked commit leaked into a read");
    s.deregister_active(r);
}
