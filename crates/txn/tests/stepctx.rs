//! Direct tests of the `StepCtx` data-access API.

use acc_common::{Error, TableId, TxnTypeId, Value};
use acc_lockmgr::NoInterference;
use acc_storage::{Catalog, ColumnType, Database, Key, Predicate, Row, TableSchema};
use acc_txn::runner::commit;
use acc_txn::{SharedDb, StepCtx, Transaction, TwoPhase, WaitMode};
use std::sync::Arc;

const T: TableId = TableId(0);

fn shared() -> Arc<SharedDb> {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("people")
            .column("id", ColumnType::Int)
            .column("team", ColumnType::Int)
            .column("name", ColumnType::Str)
            .key(&["id"])
            .index(&["team"])
            .rows_per_page(2)
            .build(),
    );
    let mut db = Database::new(&c);
    for (id, team, name) in [
        (1, 10, "ada"),
        (2, 10, "grace"),
        (3, 20, "edsger"),
        (4, 20, "tony"),
        (5, 30, "barbara"),
    ] {
        db.table_mut(T)
            .unwrap()
            .insert(Row(vec![
                Value::Int(id),
                Value::Int(team),
                Value::str(name),
            ]))
            .unwrap();
    }
    Arc::new(SharedDb::new(db, Arc::new(NoInterference)))
}

fn with_ctx<R>(shared: &SharedDb, f: impl FnOnce(&mut StepCtx<'_>) -> R) -> R {
    let id = shared.begin_txn(TxnTypeId(0));
    let mut txn = Transaction::new(id, TxnTypeId(0));
    let r = {
        let two = TwoPhase;
        let mut ctx = StepCtx::new(shared, &two, &mut txn, WaitMode::Block);
        f(&mut ctx)
    };
    commit(shared, &mut txn).unwrap();
    r
}

#[test]
fn read_and_read_existing() {
    let s = shared();
    with_ctx(&s, |ctx| {
        let row = ctx.read(T, &Key::ints(&[3])).unwrap().unwrap();
        assert_eq!(row.str(2), "edsger");
        assert!(ctx.read(T, &Key::ints(&[99])).unwrap().is_none());
        assert_eq!(
            ctx.read_existing(T, &Key::ints(&[1])).unwrap().str(2),
            "ada"
        );
        assert!(matches!(
            ctx.read_existing(T, &Key::ints(&[99])),
            Err(Error::NotFound(_))
        ));
    });
}

#[test]
fn read_for_update_takes_write_locks_immediately() {
    let s = shared();
    let id = s.begin_txn(TxnTypeId(0));
    let mut txn = Transaction::new(id, TxnTypeId(0));
    {
        let two = TwoPhase;
        let mut ctx = StepCtx::new(&s, &two, &mut txn, WaitMode::Block);
        let row = ctx.read_for_update(T, &Key::ints(&[1])).unwrap().unwrap();
        assert_eq!(row.str(2), "ada");
        assert!(ctx.read_for_update(T, &Key::ints(&[99])).unwrap().is_none());
    }
    // Another transaction's plain read of the same page must block.
    let id2 = s.begin_txn(TxnTypeId(0));
    let mut txn2 = Transaction::new(id2, TxnTypeId(0));
    {
        let two = TwoPhase;
        let mut ctx2 = StepCtx::new(&s, &two, &mut txn2, WaitMode::Fail);
        let err = ctx2.read(T, &Key::ints(&[1])).unwrap_err();
        assert!(matches!(err, Error::WouldBlock { .. }));
    }
    commit(&s, &mut txn).unwrap();
    commit(&s, &mut txn2).unwrap();
}

#[test]
fn scan_and_predicate() {
    let s = shared();
    with_ctx(&s, |ctx| {
        let all = ctx.scan(T, &Predicate::True).unwrap();
        assert_eq!(all.len(), 5);
        let team10 = ctx.scan(T, &Predicate::eq(1, 10i64)).unwrap();
        assert_eq!(team10.len(), 2);
        // Scans come back in key order.
        let ids: Vec<i64> = all.iter().map(|(_, r)| r.int(0)).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    });
}

#[test]
fn scan_prefix_on_compound_key() {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("pairs")
            .column("a", ColumnType::Int)
            .column("b", ColumnType::Int)
            .key(&["a", "b"])
            .build(),
    );
    let mut db = Database::new(&c);
    for (a, b) in [(1, 1), (1, 2), (2, 1), (2, 2), (2, 3)] {
        db.table_mut(T)
            .unwrap()
            .insert(Row(vec![Value::Int(a), Value::Int(b)]))
            .unwrap();
    }
    let s = Arc::new(SharedDb::new(db, Arc::new(NoInterference)));
    with_ctx(&s, |ctx| {
        assert_eq!(ctx.scan_prefix(T, &Key::ints(&[1])).unwrap().len(), 2);
        assert_eq!(ctx.scan_prefix(T, &Key::ints(&[2])).unwrap().len(), 3);
        assert_eq!(ctx.scan_prefix(T, &Key::ints(&[3])).unwrap().len(), 0);
    });
}

#[test]
fn lookup_secondary_finds_rows() {
    let s = shared();
    with_ctx(&s, |ctx| {
        let team20 = ctx.lookup_secondary(T, 0, &Key::ints(&[20])).unwrap();
        let names: Vec<&str> = team20.iter().map(|(_, r)| r.str(2)).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"edsger") && names.contains(&"tony"));
        assert!(ctx
            .lookup_secondary(T, 0, &Key::ints(&[99]))
            .unwrap()
            .is_empty());
    });
}

#[test]
fn insert_update_delete_round_trip() {
    let s = shared();
    with_ctx(&s, |ctx| {
        let slot = ctx
            .insert(
                T,
                Row(vec![Value::Int(9), Value::Int(30), Value::str("alan")]),
            )
            .unwrap();
        ctx.update_slot(T, slot, |r| {
            r.set(2, Value::str("alonzo"));
        })
        .unwrap();
        assert!(ctx
            .update_key(T, &Key::ints(&[9]), |r| {
                r.set(1, Value::Int(40));
            })
            .unwrap());
        assert!(!ctx.update_key(T, &Key::ints(&[99]), |_| {}).unwrap());
        let row = ctx.read_existing(T, &Key::ints(&[9])).unwrap();
        assert_eq!((row.int(1), row.str(2)), (40, "alonzo"));
        assert!(ctx.delete_key(T, &Key::ints(&[9])).unwrap());
        assert!(!ctx.delete_key(T, &Key::ints(&[9])).unwrap());
    });
    // Committed: the row is really gone and the WAL has the full story.
    let db = s.snapshot_db();
    assert!(db.table(T).unwrap().get(&Key::ints(&[9])).is_none());
    assert_eq!(db.table(T).unwrap().len(), 5);
    let updates = s.with_wal(|w| {
        w.records()
            .iter()
            .filter(|r| matches!(r, acc_wal::LogRecord::Update { .. }))
            .count()
    });
    assert_eq!(updates, 4, "insert + 2 updates + delete");
}

#[test]
fn duplicate_insert_is_an_error() {
    let s = shared();
    let id = s.begin_txn(TxnTypeId(0));
    let mut txn = Transaction::new(id, TxnTypeId(0));
    {
        let two = TwoPhase;
        let mut ctx = StepCtx::new(&s, &two, &mut txn, WaitMode::Block);
        let err = ctx
            .insert(
                T,
                Row(vec![Value::Int(1), Value::Int(0), Value::str("dup")]),
            )
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateKey(_)));
    }
    commit(&s, &mut txn).unwrap();
}
