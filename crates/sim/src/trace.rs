//! Transaction traces: the access-pattern skeleton a simulated transaction
//! executes.
//!
//! A trace is derived from the same decomposition the live engine runs: each
//! [`Op`] is one SQL statement — the resource it locks, whether it writes,
//! its CPU demand, any injected compute time before it (paper Fig. 3), and
//! the assertion templates the ACC attaches on the access.

use acc_common::clock::SimTime;
use acc_common::rng::SeededRng;
use acc_common::{AssertionTemplateId, ResourceId, StepTypeId, TxnTypeId};
use acc_lockmgr::LockMode;

/// One statement's footprint.
#[derive(Debug, Clone)]
pub struct Op {
    /// The locks this statement takes, in order — typically a page lock plus
    /// a table intention lock, or a table-level lock for a scan.
    pub locks: Vec<(ResourceId, LockMode)>,
    /// CPU service demand at a database server.
    pub cpu: SimTime,
    /// Compute time the *terminal/application* spends before issuing this
    /// statement — elapses while all currently held locks stay held, without
    /// occupying a server (Fig. 3's "compute time between successive SQL
    /// statements").
    pub compute_before: SimTime,
    /// Assertion templates attached to every locked resource under the ACC.
    pub templates: Vec<AssertionTemplateId>,
}

impl Op {
    /// A plain single-resource read.
    pub fn read(resource: ResourceId, cpu: SimTime) -> Op {
        Op {
            locks: vec![(resource, LockMode::S)],
            cpu,
            compute_before: SimTime::ZERO,
            templates: Vec::new(),
        }
    }

    /// A plain single-resource write.
    pub fn write(resource: ResourceId, cpu: SimTime) -> Op {
        Op {
            locks: vec![(resource, LockMode::X)],
            cpu,
            compute_before: SimTime::ZERO,
            templates: Vec::new(),
        }
    }

    /// Add another lock (e.g. a table intention lock).
    pub fn with_lock(mut self, resource: ResourceId, mode: LockMode) -> Op {
        self.locks.push((resource, mode));
        self
    }

    /// Add inter-statement compute time.
    pub fn with_compute(mut self, t: SimTime) -> Op {
        self.compute_before = t;
        self
    }

    /// Attach assertion templates (ACC mode).
    pub fn with_templates(mut self, ts: Vec<AssertionTemplateId>) -> Op {
        self.templates = ts;
        self
    }

    /// True if any lock is a write-class mode.
    pub fn is_write(&self) -> bool {
        self.locks.iter().any(|(_, m)| m.is_write())
    }
}

/// One step of a decomposed transaction.
#[derive(Debug, Clone)]
pub struct StepTrace {
    /// The design-time step type (drives interference lookups).
    pub step_type: StepTypeId,
    /// The step's statements, in order.
    pub ops: Vec<Op>,
}

/// A whole transaction's trace.
#[derive(Debug, Clone)]
pub struct TxnTrace {
    /// The transaction type (reporting only).
    pub txn_type: TxnTypeId,
    /// Steps in order. Under 2PL the step structure is ignored (locks are
    /// held to commit); under the ACC conventional locks drop at each step
    /// boundary.
    pub steps: Vec<StepTrace>,
    /// Compensating step type, carried on DIRTY pins (compensation
    /// protection).
    pub comp_step: Option<StepTypeId>,
    /// The uncommitted-data guard template pinned on written items (held to
    /// commit). Template 0 (`DIRTY`) unless the workload assigns a
    /// type-specific guard.
    pub guard: AssertionTemplateId,
    /// If set, the transaction aborts itself after completing this many
    /// steps (TPC-C's 1 % new-order aborts): compensation (ACC) or physical
    /// undo (2PL) follows.
    pub abort_after_step: Option<usize>,
    /// Declared read-only (the policy half of the version-read gate): under
    /// the ACC, a step whose write row is also all-clear in the interference
    /// tables reads committed row versions and skips the lock manager
    /// entirely. Ignored under 2PL.
    pub version_safe: bool,
}

impl TxnTrace {
    /// Total statement count.
    pub fn n_ops(&self) -> usize {
        self.steps.iter().map(|s| s.ops.len()).sum()
    }

    /// The write ops of the first `n_steps` steps, reversed — the skeleton
    /// of a compensating step (it relocks and rewrites what the forward
    /// steps wrote).
    pub fn compensation_ops(&self, n_steps: usize) -> Vec<Op> {
        self.steps[..n_steps.min(self.steps.len())]
            .iter()
            .flat_map(|s| s.ops.iter().filter(|o| o.is_write()).cloned())
            .rev()
            .map(|mut o| {
                o.compute_before = SimTime::ZERO;
                o.templates.clear();
                o
            })
            .collect()
    }
}

/// Generates the stream of traces a terminal submits.
pub trait TraceSource: Send {
    /// The next transaction.
    fn next_trace(&mut self, rng: &mut SeededRng) -> TxnTrace;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensation_skeleton_reverses_writes() {
        let r = |n| ResourceId::Named(n);
        let t = TxnTrace {
            txn_type: TxnTypeId(0),
            steps: vec![
                StepTrace {
                    step_type: StepTypeId(1),
                    ops: vec![
                        Op::read(r(1), SimTime::ZERO),
                        Op::write(r(2), SimTime::ZERO),
                    ],
                },
                StepTrace {
                    step_type: StepTypeId(2),
                    ops: vec![Op::write(r(3), SimTime::ZERO).with_compute(SimTime::from_millis(5))],
                },
            ],
            comp_step: Some(StepTypeId(9)),
            guard: AssertionTemplateId(0),
            abort_after_step: None,
            version_safe: false,
        };
        assert_eq!(t.n_ops(), 3);
        let comp = t.compensation_ops(2);
        assert_eq!(comp.len(), 2);
        assert_eq!(comp[0].locks[0].0, r(3));
        assert_eq!(comp[1].locks[0].0, r(2));
        assert_eq!(comp[0].compute_before, SimTime::ZERO, "compute stripped");
        let comp1 = t.compensation_ops(1);
        assert_eq!(comp1.len(), 1);
        assert_eq!(comp1[0].locks[0].0, r(2));
    }
}
