//! The discrete-event simulation driver.

use crate::metrics::{Completion, MetricsCollector};
use crate::trace::{Op, TraceSource, TxnTrace};
use acc_common::clock::SimTime;
use acc_common::events::{Event as ObsEvent, EventSink};
use acc_common::ids::LEGACY_STEP;
use acc_common::rng::SeededRng;
use acc_common::TxnId;
use acc_lockmgr::{
    InterferenceOracle, LockKind, LockManager, Request, RequestCtx, RequestOutcome, Ticket,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// Which concurrency control the simulated system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    /// The baseline: strict 2PL, locks held to commit, step boundaries
    /// ignored (unmodified Open Ingres).
    TwoPhase,
    /// The one-level assertional concurrency control: conventional locks
    /// released at step boundaries, assertional locks *attached to items*
    /// per the interference oracle, plus the ACC's own CPU overheads.
    Acc,
    /// The paper's earlier two-level design (§3.2): assertional locks are
    /// taken on the *assertions themselves* — one global resource per
    /// template — because the dispatcher above the lock manager cannot see
    /// item identity. Interfering steps then conflict with a pinned template
    /// anywhere in the database: the "false conflicts" the one-level
    /// integration exists to eliminate.
    AccTwoLevel,
}

impl CcMode {
    /// Both ACC variants decompose transactions.
    pub fn is_acc(self) -> bool {
        matches!(self, CcMode::Acc | CcMode::AccTwoLevel)
    }
}

/// Resource-id base for two-level template locks (one global resource per
/// assertion template).
const TEMPLATE_RESOURCE_BASE: u32 = u32::MAX - 4096;

/// CPU cost parameters (calibration documented in `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct CostModel {
    /// CPU per lock/unlock pair, charged per conventional lock an op takes.
    pub lock_op: SimTime,
    /// Extra CPU per *assertional* lock op (ACC only).
    pub assert_op: SimTime,
    /// CPU per end-of-step record + work-area save (ACC only), folded into
    /// the last statement of each step.
    pub step_end: SimTime,
    /// Back-off before a deadlock victim retries.
    pub deadlock_backoff: SimTime,
    /// CPU per write op during rollback/compensation.
    pub undo_op: SimTime,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            lock_op: SimTime::from_micros(120),
            assert_op: SimTime::from_micros(160),
            step_end: SimTime::from_micros(1200),
            deadlock_backoff: SimTime::from_millis(4),
            undo_op: SimTime::from_micros(600),
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Concurrency control under test.
    pub mode: CcMode,
    /// Number of database server CPUs (paper: 1–3).
    pub servers: usize,
    /// Number of closed-loop terminals (paper: 0–60).
    pub terminals: usize,
    /// Mean think time between transactions.
    pub think_time: SimTime,
    /// Simulated run length.
    pub duration: SimTime,
    /// Completions before this time are discarded.
    pub warmup: SimTime,
    /// Seed; a (config, seed) pair is fully deterministic.
    pub seed: u64,
    /// CPU cost model.
    pub costs: CostModel,
    /// Ablation switch: when false in [`CcMode::Acc`], conventional locks
    /// are *not* released at step boundaries (everything else — assertional
    /// locks, overhead costs, compensation — stays). Isolates how much of
    /// the ACC's win comes from the step-boundary release. Default true.
    pub release_at_step_end: bool,
    /// [`CcMode::AccTwoLevel`] only: the system's assertion templates. Every
    /// write additionally declares intent (IX) on each template's global
    /// resource; the interference oracle decides whether that intent
    /// conflicts with a pinned assertion — without item identity, so every
    /// pin of a template blocks interfering writers database-wide.
    pub two_level_templates: Vec<acc_common::AssertionTemplateId>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    Submit,
    Resume,
    ComputeDone,
    ServiceDone,
    Granted,
}

type Event = (Reverse<(u64, u64)>, EvKind, usize, u64); // (time,seq), kind, terminal, epoch

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Locking,
    InService,
    Waiting,
}

struct Term {
    rng: SeededRng,
    trace: Option<TxnTrace>,
    txn: TxnId,
    epoch: u64,
    step: usize,
    op: usize,
    rolling_back: bool,
    comp_ops: Vec<Op>,
    pending: VecDeque<(acc_common::ResourceId, LockKind)>,
    waiting_ticket: Option<Ticket>,
    compute_done: bool,
    submit: SimTime,
    phase: Phase,
    /// Consecutive deadlock victimizations of the current step (§3.4: retry
    /// once, then roll the transaction back by compensation).
    deadlock_retries: u32,
    /// Sim time at which the terminal entered its current lock wait.
    wait_since: Option<SimTime>,
}

/// The simulator. Construct with [`Simulator::new`], call
/// [`Simulator::run`].
pub struct Simulator<'a> {
    config: SimConfig,
    oracle: &'a dyn InterferenceOracle,
    source: &'a mut dyn TraceSource,
    lm: LockManager,
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Event>,
    terms: Vec<Term>,
    ticket_owner: HashMap<Ticket, usize>,
    txn_owner: HashMap<TxnId, usize>,
    next_txn: u64,
    cpu_free: usize,
    cpu_queue: VecDeque<(usize, SimTime, u64)>, // (terminal, demand, epoch)
    metrics: MetricsCollector,
}

impl<'a> Simulator<'a> {
    /// Build a simulator over a trace source and interference oracle.
    pub fn new(
        config: SimConfig,
        oracle: &'a dyn InterferenceOracle,
        source: &'a mut dyn TraceSource,
    ) -> Self {
        let warmup = config.warmup;
        let servers = config.servers;
        let mut rng = SeededRng::new(config.seed);
        let terms = (0..config.terminals)
            .map(|_| Term {
                rng: rng.fork(),
                trace: None,
                txn: TxnId(0),
                epoch: 0,
                step: 0,
                op: 0,
                rolling_back: false,
                comp_ops: Vec::new(),
                pending: VecDeque::new(),
                waiting_ticket: None,
                compute_done: false,
                submit: SimTime::ZERO,
                phase: Phase::Idle,
                deadlock_retries: 0,
                wait_since: None,
            })
            .collect();
        // Simulations always record: the sink's counters become part of the
        // report and the ring feeds `lockstat` dumps.
        let mut lm = LockManager::new();
        lm.set_sink(EventSink::enabled(4096));
        Simulator {
            config,
            oracle,
            source,
            lm,
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            terms,
            ticket_owner: HashMap::new(),
            txn_owner: HashMap::new(),
            next_txn: 1,
            cpu_free: servers,
            cpu_queue: VecDeque::new(),
            metrics: MetricsCollector::new(warmup),
        }
    }

    /// The simulator's event sink (clone before [`Simulator::run`] to read
    /// counters or dump `lockstat` afterwards).
    pub fn event_sink(&self) -> Arc<EventSink> {
        Arc::clone(self.lm.sink())
    }

    fn push(&mut self, at: SimTime, kind: EvKind, term: usize, epoch: u64) {
        self.seq += 1;
        self.events
            .push((Reverse((at.as_micros(), self.seq)), kind, term, epoch));
    }

    /// Run to completion and report.
    pub fn run(mut self) -> crate::metrics::SimReport {
        // Initial thinks, staggered by the think distribution.
        for t in 0..self.terms.len() {
            let think = self.think(t);
            self.push(think, EvKind::Submit, t, 0);
        }
        while let Some((Reverse((at, _)), kind, t, epoch)) = self.events.pop() {
            if at > self.config.duration.as_micros() {
                break;
            }
            self.now = SimTime::from_micros(at);
            match kind {
                EvKind::Submit => self.on_submit(t),
                EvKind::Resume => {
                    if self.terms[t].epoch == epoch {
                        self.start_op(t);
                    }
                }
                EvKind::ComputeDone => {
                    if self.terms[t].epoch == epoch {
                        self.start_op(t);
                    }
                }
                EvKind::ServiceDone => self.on_service_done(t, epoch),
                EvKind::Granted => {
                    if self.terms[t].epoch == epoch && self.terms[t].phase == Phase::Waiting {
                        if let Some(since) = self.terms[t].wait_since.take() {
                            let sink = self.lm.sink();
                            if sink.is_enabled() {
                                if let Some(&(resource, _)) = self.terms[t].pending.front() {
                                    sink.emit(ObsEvent::WaitEnd {
                                        txn: self.terms[t].txn,
                                        resource,
                                        micros: self.now.since(since).as_micros(),
                                    });
                                }
                            }
                        }
                        self.terms[t].phase = Phase::Locking;
                        self.terms[t].waiting_ticket = None;
                        self.terms[t].pending.pop_front();
                        self.acquire_next(t);
                    }
                }
            }
        }
        if std::env::var_os("SIM_DEBUG").is_some() {
            let live: std::collections::HashSet<TxnId> = self
                .terms
                .iter()
                .filter(|t| t.trace.is_some())
                .map(|t| t.txn)
                .collect();
            for txn in self.lm.all_holders() {
                if !live.contains(&txn) {
                    eprintln!(
                        "ORPHAN GRANTS: {txn:?} holds {:?} waiting={}",
                        self.lm.held_resources(txn),
                        self.lm.is_waiting(txn)
                    );
                }
            }
            for (txn, r, kind) in self.lm.all_waiters() {
                if !live.contains(&txn) {
                    eprintln!("ORPHAN WAITER: {txn:?} on {r} kind={kind:?}");
                }
            }
            for (txn, r, kind) in self.lm.all_grants() {
                if !live.contains(&txn) {
                    eprintln!("PHANTOM GRANT: {txn:?} on {r} kind={kind:?}");
                }
            }
            for (i, term) in self.terms.iter().enumerate() {
                if term.trace.is_some() {
                    eprintln!(
                        "end: terminal {i} txn={:?} phase={:?} step={} op={} rolling_back={} submit={} blockers={:?}",
                        term.txn,
                        term.phase,
                        term.step,
                        term.op,
                        term.rolling_back,
                        term.submit,
                        self.lm.blockers_of(term.txn, self.oracle)
                    );
                }
            }
        }
        let servers = self.config.servers;
        let end = self.config.duration;
        self.metrics.report(end, servers, self.lm.sink().counters())
    }

    fn think(&mut self, t: usize) -> SimTime {
        let mean = self.config.think_time.as_micros() as f64;
        let d = if mean > 0.0 {
            self.terms[t].rng.exponential(mean) as u64
        } else {
            0
        };
        SimTime::from_micros(self.now.as_micros() + d)
    }

    fn on_submit(&mut self, t: usize) {
        let trace = self.source.next_trace(&mut self.terms[t].rng);
        let txn = TxnId(self.next_txn);
        self.next_txn += 1;
        let term = &mut self.terms[t];
        term.trace = Some(trace);
        term.txn = txn;
        term.step = 0;
        term.op = 0;
        term.rolling_back = false;
        term.comp_ops.clear();
        term.pending.clear();
        term.waiting_ticket = None;
        term.wait_since = None;
        term.compute_done = false;
        term.submit = self.now;
        term.epoch += 1;
        term.deadlock_retries = 0;
        self.txn_owner.insert(txn, t);
        self.start_op(t);
    }

    /// The op the terminal is currently executing.
    fn current_op(&self, t: usize) -> Option<Op> {
        let term = &self.terms[t];
        if term.rolling_back {
            return term.comp_ops.get(term.op).cloned();
        }
        let trace = term.trace.as_ref()?;
        trace.steps.get(term.step)?.ops.get(term.op).cloned()
    }

    fn request_ctx(&self, t: usize) -> RequestCtx {
        let term = &self.terms[t];
        match self.config.mode {
            CcMode::TwoPhase => RequestCtx::plain(LEGACY_STEP),
            CcMode::Acc | CcMode::AccTwoLevel => {
                let trace = term.trace.as_ref().expect("active trace");
                let step_type = if term.rolling_back {
                    trace.comp_step.unwrap_or(LEGACY_STEP)
                } else {
                    trace.steps[term.step].step_type
                };
                RequestCtx {
                    step_type,
                    comp_step: trace.comp_step,
                    compensating: term.rolling_back,
                }
            }
        }
    }

    fn start_op(&mut self, t: usize) {
        let Some(op) = self.current_op(t) else {
            // No ops left at this position (e.g. empty compensation): let the
            // advance logic settle it.
            self.advance(t);
            return;
        };
        let epoch = self.terms[t].epoch;
        if !self.terms[t].compute_done && op.compute_before > SimTime::ZERO {
            self.terms[t].compute_done = true;
            self.push(self.now + op.compute_before, EvKind::ComputeDone, t, epoch);
            return;
        }
        // Coordination-free version read (MVCC-lite): a declared read-only
        // transaction whose step's write row is all-clear in the pinned
        // interference tables reads committed row versions and never touches
        // the lock manager.
        if self.version_fast_path(t, &op) {
            let sink = self.lm.sink();
            if sink.is_enabled() {
                let txn = self.terms[t].txn;
                if let Some(table) = op.locks.first().and_then(|(r, _)| r.table()) {
                    sink.emit(ObsEvent::VersionRead { txn, table });
                }
            }
            self.terms[t].pending.clear();
            self.enter_service(t);
            return;
        }
        // Build the lock list for this op: the statement's conventional
        // locks, plus (under the ACC) a DIRTY pin on every written resource
        // and the active assertion templates on every locked resource.
        let mut kinds = VecDeque::new();
        for &(r, mode) in &op.locks {
            kinds.push_back((r, LockKind::Conventional(mode)));
        }
        if self.config.mode.is_acc() {
            let two_level = self.config.mode == CcMode::AccTwoLevel;
            let global = |tpl: acc_common::AssertionTemplateId| {
                acc_common::ResourceId::Named(TEMPLATE_RESOURCE_BASE + tpl.raw())
            };
            for &(r, mode) in &op.locks {
                // Guard pins mark *items actually written* (X locks), never
                // table-level intention locks — a table-level pin would
                // freeze the whole table until commit. Guards stay
                // item-attached in both designs (they model exposure of the
                // written item itself, which both levels can locate).
                if mode == acc_lockmgr::LockMode::X {
                    let guard = self.terms[t].trace.as_ref().expect("active trace").guard;
                    kinds.push_back((r, LockKind::Assertional(guard)));
                }
                for &tpl in &op.templates {
                    // One-level: pin the assertion on the item itself.
                    // Two-level: pin the assertion's own global resource —
                    // the design-time dispatcher has no item identity.
                    let target = if two_level { global(tpl) } else { r };
                    kinds.push_back((target, LockKind::Assertional(tpl)));
                }
                // Two-level: every access declares intent against every
                // template in the system (IX for writes, IS for reads); the
                // oracle's table lookup decides which intents actually
                // conflict with pinned assertions. This is where the false
                // conflicts live: an intent meets pins from *any* item.
                if two_level {
                    let intent = if mode.is_write() {
                        acc_lockmgr::LockMode::IX
                    } else {
                        acc_lockmgr::LockMode::IS
                    };
                    for &tpl in &self.config.two_level_templates {
                        kinds.push_back((global(tpl), LockKind::Conventional(intent)));
                    }
                }
            }
        }
        self.terms[t].pending = kinds;
        self.terms[t].phase = Phase::Locking;
        self.acquire_next(t);
    }

    fn acquire_next(&mut self, t: usize) {
        loop {
            let Some(&(resource, kind)) = self.terms[t].pending.front() else {
                self.enter_service(t);
                return;
            };
            let ctx = self.request_ctx(t);
            let req = Request::new(self.terms[t].txn, resource, kind, ctx);
            match self.lm.request(req, self.oracle) {
                RequestOutcome::Granted => {
                    self.terms[t].pending.pop_front();
                }
                RequestOutcome::Waiting(ticket) => {
                    self.terms[t].phase = Phase::Waiting;
                    self.terms[t].waiting_ticket = Some(ticket);
                    self.terms[t].wait_since = Some(self.now);
                    self.ticket_owner.insert(ticket, t);
                    return;
                }
                RequestOutcome::Deadlock { victims, ticket } => {
                    if victims.contains(&self.terms[t].txn) {
                        self.metrics.deadlocks += 1;
                        if std::env::var_os("SIM_DEBUG").is_some() {
                            eprintln!(
                                "deadlock victim: txn={:?} step_type={:?} kind={:?} resource={resource}",
                                self.terms[t].txn, ctx.step_type, kind
                            );
                        }
                        self.deadlock_retry(t);
                        return;
                    }
                    // Compensating requester: doom the steps delaying us.
                    // Register our queued ticket BEFORE aborting the victims:
                    // their lock releases may grant it immediately, and an
                    // unregistered ticket's notice would be lost.
                    let ticket = ticket.expect("compensating request stays queued");
                    self.terms[t].phase = Phase::Waiting;
                    self.terms[t].waiting_ticket = Some(ticket);
                    self.terms[t].wait_since = Some(self.now);
                    self.ticket_owner.insert(ticket, t);
                    for v in victims {
                        if let Some(&vt) = self.txn_owner.get(&v) {
                            self.metrics.deadlocks += 1;
                            self.force_restart(vt);
                        }
                    }
                    return;
                }
            }
        }
    }

    /// The version-read gate, both halves (mirrors the live engine's
    /// `StepCtx::version_reads_enabled`): the trace declares the whole
    /// transaction read-only, and the interference oracle clears the step's
    /// write row. Write ops and compensation never qualify.
    fn version_fast_path(&self, t: usize, op: &Op) -> bool {
        let term = &self.terms[t];
        if !self.config.mode.is_acc() || term.rolling_back || op.is_write() {
            return false;
        }
        let Some(trace) = term.trace.as_ref() else {
            return false;
        };
        trace.version_safe
            && self
                .oracle
                .version_read_safe(trace.steps[term.step].step_type)
    }

    /// Total CPU demand for the current op: statement cost + lock-op costs
    /// (+ end-of-step cost folded into the last op of each ACC step).
    fn service_demand(&self, t: usize, op: &Op) -> SimTime {
        let costs = &self.config.costs;
        let term = &self.terms[t];
        if self.version_fast_path(t, op) {
            // No lock-manager work at all: the statement plus the
            // end-of-step record.
            let trace = term.trace.as_ref().expect("active trace");
            let is_last_in_step = term.op + 1 == trace.steps[term.step].ops.len();
            return if is_last_in_step {
                op.cpu + costs.step_end
            } else {
                op.cpu
            };
        }
        let n_locks = op.locks.len().max(1) as u64;
        let mut d = op.cpu + SimTime::from_micros(costs.lock_op.as_micros() * n_locks);
        if self.config.mode.is_acc() {
            let n_writes = op.locks.iter().filter(|(_, m)| m.is_write()).count();
            let n_assert = op.locks.len() * op.templates.len() + n_writes;
            d = d + SimTime::from_micros(costs.assert_op.as_micros() * n_assert as u64);
            if !term.rolling_back {
                let trace = term.trace.as_ref().expect("active trace");
                let is_last_in_step = term.op + 1 == trace.steps[term.step].ops.len();
                if is_last_in_step {
                    d = d + costs.step_end;
                }
            } else {
                d = d + costs.undo_op;
            }
        } else if term.rolling_back {
            d = d + costs.undo_op;
        }
        d
    }

    fn enter_service(&mut self, t: usize) {
        let op = self.current_op(t).expect("op to serve");
        let demand = self.service_demand(t, &op);
        self.terms[t].phase = Phase::InService;
        if self.cpu_free > 0 {
            self.cpu_free -= 1;
            self.metrics.busy_time += demand.as_micros();
            let epoch = self.terms[t].epoch;
            self.push(self.now + demand, EvKind::ServiceDone, t, epoch);
        } else {
            let epoch = self.terms[t].epoch;
            self.cpu_queue.push_back((t, demand, epoch));
        }
    }

    fn on_service_done(&mut self, t: usize, epoch: u64) {
        // Free the server regardless of whether the terminal still wants the
        // result (it may have been force-restarted mid-service).
        self.cpu_free += 1;
        while self.cpu_free > 0 {
            let Some((qt, demand, qe)) = self.cpu_queue.pop_front() else {
                break;
            };
            // Skip stale queue entries from restarted terminals.
            if self.terms[qt].epoch != qe || self.terms[qt].phase != Phase::InService {
                continue;
            }
            self.cpu_free -= 1;
            self.metrics.busy_time += demand.as_micros();
            let qepoch = self.terms[qt].epoch;
            self.push(self.now + demand, EvKind::ServiceDone, qt, qepoch);
        }
        if self.terms[t].epoch == epoch && self.terms[t].phase == Phase::InService {
            self.advance(t);
        }
    }

    /// The current op finished service: move to the next op / step / commit.
    fn advance(&mut self, t: usize) {
        self.terms[t].op += 1;
        self.terms[t].compute_done = false;

        if self.terms[t].rolling_back {
            if self.terms[t].op >= self.terms[t].comp_ops.len() {
                self.finish(t, false);
            } else {
                self.start_op(t);
            }
            return;
        }

        let (n_ops_in_step, n_steps, abort_after) = {
            let trace = self.terms[t].trace.as_ref().expect("active trace");
            (
                trace.steps[self.terms[t].step].ops.len(),
                trace.steps.len(),
                trace.abort_after_step,
            )
        };

        if self.terms[t].op < n_ops_in_step {
            self.start_op(t);
            return;
        }

        // Step boundary.
        self.terms[t].deadlock_retries = 0;
        if self.config.mode.is_acc() && self.config.release_at_step_end {
            let txn = self.terms[t].txn;
            let notices = self
                .lm
                .release_where(txn, self.oracle, |k, _| k.is_conventional());
            self.post_notices(notices);
        }
        self.terms[t].step += 1;
        self.terms[t].op = 0;

        if abort_after == Some(self.terms[t].step) {
            self.begin_rollback(t);
            return;
        }
        if self.terms[t].step >= n_steps {
            self.finish(t, true);
            return;
        }
        self.start_op(t);
    }

    /// The workload-mandated abort: compensate (ACC) or physically undo
    /// (2PL) the completed work.
    fn begin_rollback(&mut self, t: usize) {
        let steps_done = self.terms[t].step;
        let comp = {
            let trace = self.terms[t].trace.as_ref().expect("active trace");
            trace.compensation_ops(steps_done)
        };
        self.terms[t].rolling_back = true;
        self.terms[t].comp_ops = comp;
        self.terms[t].op = 0;
        self.terms[t].compute_done = false;
        let sink = self.lm.sink();
        if sink.is_enabled() {
            sink.emit(ObsEvent::CompensationStart {
                txn: self.terms[t].txn,
                from_step: steps_done as u32,
            });
        }
        if self.terms[t].comp_ops.is_empty() {
            self.finish(t, false);
        } else {
            self.start_op(t);
        }
    }

    fn finish(&mut self, t: usize, committed: bool) {
        let txn = self.terms[t].txn;
        let notices = self.lm.release_all(txn, self.oracle);
        self.post_notices(notices);
        self.txn_owner.remove(&txn);
        self.metrics.record(Completion {
            submit: self.terms[t].submit,
            finish: self.now,
            committed,
        });
        self.terms[t].trace = None;
        self.terms[t].phase = Phase::Idle;
        self.terms[t].epoch += 1;
        let think = self.think(t);
        self.push(think, EvKind::Submit, t, 0);
    }

    /// Deadlock victim: release and retry — the whole transaction under 2PL
    /// (restart), the current step under the ACC. A recurring ACC deadlock
    /// escalates to transaction rollback by compensation (paper §3.4: "If
    /// the deadlock recurs when S_{i,j} restarts, the system will rollback
    /// T_i by executing CS_{i,j-1}").
    fn deadlock_retry(&mut self, t: usize) {
        let txn = self.terms[t].txn;
        let notices = match self.config.mode {
            CcMode::TwoPhase => {
                let n = self.lm.release_all(txn, self.oracle);
                self.terms[t].step = 0;
                n
            }
            CcMode::Acc | CcMode::AccTwoLevel => {
                let mut n = self.lm.cancel_waiting(txn, self.oracle);
                n.extend(
                    self.lm
                        .release_where(txn, self.oracle, |k, _| k.is_conventional()),
                );
                n
            }
        };
        self.post_notices(notices);
        self.terms[t].deadlock_retries += 1;
        if self.config.mode.is_acc()
            && !self.terms[t].rolling_back
            && self.terms[t].deadlock_retries > 1
        {
            // Recurring deadlock: roll the transaction back. Compensation
            // ops run with `compensating = true`, so they doom whatever
            // still delays them — this is what breaks symmetric pin-vs-pin
            // convoys the step retry alone cannot resolve.
            self.terms[t].pending.clear();
            self.terms[t].waiting_ticket = None;
            self.terms[t].wait_since = None;
            self.terms[t].compute_done = false;
            self.terms[t].phase = Phase::Idle;
            self.terms[t].epoch += 1;
            self.begin_rollback(t);
            return;
        }
        self.metrics.retries += 1;
        self.terms[t].op = 0;
        self.terms[t].pending.clear();
        self.terms[t].waiting_ticket = None;
        self.terms[t].wait_since = None;
        self.terms[t].compute_done = false;
        self.terms[t].phase = Phase::Idle;
        self.terms[t].epoch += 1;
        let epoch = self.terms[t].epoch;
        self.push(
            self.now + self.config.costs.deadlock_backoff,
            EvKind::Resume,
            t,
            epoch,
        );
    }

    /// Doomed by a compensating step: abort and resubmit the transaction.
    fn force_restart(&mut self, t: usize) {
        if self.terms[t].trace.is_none() {
            return;
        }
        self.metrics.restarts += 1;
        let txn = self.terms[t].txn;
        let notices = self.lm.release_all(txn, self.oracle);
        self.post_notices(notices);
        self.terms[t].step = 0;
        self.terms[t].op = 0;
        self.terms[t].pending.clear();
        self.terms[t].waiting_ticket = None;
        self.terms[t].wait_since = None;
        self.terms[t].compute_done = false;
        self.terms[t].rolling_back = false;
        self.terms[t].phase = Phase::Idle;
        self.terms[t].epoch += 1;
        let epoch = self.terms[t].epoch;
        self.push(
            self.now + self.config.costs.deadlock_backoff,
            EvKind::Resume,
            t,
            epoch,
        );
    }

    fn post_notices(&mut self, notices: Vec<acc_lockmgr::GrantNotice>) {
        for n in notices {
            if let Some(t) = self.ticket_owner.remove(&n.ticket) {
                let epoch = self.terms[t].epoch;
                self.push(self.now, EvKind::Granted, t, epoch);
            }
        }
    }
}
