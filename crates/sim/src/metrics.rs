//! Simulation metrics.

use acc_common::clock::SimTime;
use acc_common::events::CounterSnapshot;

/// One finished transaction.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Completion {
    pub submit: SimTime,
    pub finish: SimTime,
    pub committed: bool,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Transactions finishing after warm-up.
    pub completed: usize,
    /// Of those, committed (the rest self-aborted per the workload).
    pub committed: usize,
    /// Mean response time over all completions, milliseconds.
    pub mean_response_ms: f64,
    /// 95th-percentile response time, milliseconds.
    pub p95_response_ms: f64,
    /// Committed transactions per simulated second.
    pub throughput_tps: f64,
    /// Deadlock victim events (diagnostic).
    pub deadlocks: usize,
    /// Deadlock-victim resubmissions: whole-transaction restarts under 2PL,
    /// single-step retries under the ACC (§3.4).
    pub retries: usize,
    /// Transactions force-restarted after being doomed by a compensating
    /// step.
    pub restarts: usize,
    /// Mean server utilisation in [0, 1].
    pub server_utilisation: f64,
    /// Lock/step counters from the simulator's event sink: requests, waits,
    /// interference hits vs. conservative denials, deadlock cycles,
    /// compensations, and total recorded wait time (sim-time µs).
    pub counters: CounterSnapshot,
}

impl SimReport {
    /// Mean sim-time lock wait in milliseconds over recorded waits.
    pub fn mean_lock_wait_ms(&self) -> f64 {
        self.counters.mean_wait_ms()
    }
}

pub(crate) struct MetricsCollector {
    warmup: SimTime,
    completions: Vec<Completion>,
    pub deadlocks: usize,
    pub retries: usize,
    pub restarts: usize,
    pub busy_time: u64,
}

impl MetricsCollector {
    pub fn new(warmup: SimTime) -> Self {
        MetricsCollector {
            warmup,
            completions: Vec::new(),
            deadlocks: 0,
            retries: 0,
            restarts: 0,
            busy_time: 0,
        }
    }

    pub fn record(&mut self, c: Completion) {
        if c.finish >= self.warmup {
            self.completions.push(c);
        }
    }

    pub fn report(&self, end: SimTime, servers: usize, counters: CounterSnapshot) -> SimReport {
        let completed = self.completions.len();
        let committed = self.completions.iter().filter(|c| c.committed).count();
        let mut rts: Vec<u64> = self
            .completions
            .iter()
            .map(|c| c.finish.since(c.submit).as_micros())
            .collect();
        rts.sort_unstable();
        let mean_response_ms = if rts.is_empty() {
            0.0
        } else {
            rts.iter().sum::<u64>() as f64 / rts.len() as f64 / 1000.0
        };
        let p95_response_ms = if rts.is_empty() {
            0.0
        } else {
            rts[((rts.len() - 1) as f64 * 0.95).round() as usize] as f64 / 1000.0
        };
        let measured = end.since(self.warmup).as_micros().max(1) as f64 / 1e6;
        SimReport {
            completed,
            committed,
            mean_response_ms,
            p95_response_ms,
            throughput_tps: committed as f64 / measured,
            deadlocks: self.deadlocks,
            retries: self.retries,
            restarts: self.restarts,
            server_utilisation: self.busy_time as f64
                / (end.as_micros().max(1) as f64 * servers as f64),
            counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_filters_and_stats_aggregate() {
        let mut m = MetricsCollector::new(SimTime::from_millis(100));
        m.record(Completion {
            submit: SimTime::ZERO,
            finish: SimTime::from_millis(50), // during warmup: dropped
            committed: true,
        });
        m.record(Completion {
            submit: SimTime::from_millis(100),
            finish: SimTime::from_millis(110),
            committed: true,
        });
        m.record(Completion {
            submit: SimTime::from_millis(120),
            finish: SimTime::from_millis(150),
            committed: false,
        });
        let r = m.report(SimTime::from_millis(1100), 2, CounterSnapshot::default());
        assert_eq!(r.completed, 2);
        assert_eq!(r.committed, 1);
        assert!((r.mean_response_ms - 20.0).abs() < 1e-9);
        assert!((r.throughput_tps - 1.0).abs() < 1e-9);
    }
}
