//! Deterministic discrete-event simulation of the paper's testbed.
//!
//! The paper's experiments ran TPC-C terminals against Open Ingres with 1–3
//! database server processes and measured mean response time and throughput
//! as lock contention grew (§5). This crate reproduces that setup as a
//! closed queueing network:
//!
//! * **terminals** — closed loop: think (exponential) → submit → wait for
//!   completion (§5.2 "degree of concurrency");
//! * **servers** — `k` CPU units with one FCFS queue: every SQL statement is
//!   a service demand (§5.3 "three database servers", and the 1-server
//!   experiment where the server is the bottleneck);
//! * **locks** — the *real* [`acc_lockmgr::LockManager`], fed by transaction
//!   *traces* (the per-statement resource/mode/assertion footprint that the
//!   TPC-C generator derives from the same decomposition the live engine
//!   uses);
//! * **cost model** — per-statement CPU, lock-op overhead, the ACC's extra
//!   per-lock and end-of-step costs (the overhead that makes ACC *lose*
//!   below the ≈20-terminal crossover in Fig. 2), and injected inter-
//!   statement compute time (Fig. 3).
//!
//! Everything is seeded: a (config, seed) pair always produces bit-identical
//! results.

pub mod driver;
pub mod metrics;
pub mod trace;

pub use driver::{CcMode, CostModel, SimConfig, Simulator};
pub use metrics::SimReport;
pub use trace::{Op, StepTrace, TraceSource, TxnTrace};
