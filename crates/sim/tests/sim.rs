//! Simulator behaviour tests on a miniature hot-spot workload.
//!
//! The toy workload mimics the paper's district hot spot: every transaction
//! first writes one of a few hot counter rows, then does several independent
//! item writes. Under 2PL the hot-row lock is held to commit; under the ACC
//! it is released at the first step boundary — which is the entire mechanism
//! behind Figs. 2–4.

use acc_common::clock::SimTime;
use acc_common::rng::SeededRng;
use acc_common::{ResourceId, StepTypeId, TxnTypeId};
use acc_lockmgr::NoInterference;
use acc_sim::{CcMode, CostModel, Op, SimConfig, Simulator, StepTrace, TraceSource, TxnTrace};

/// Hot-spot workload: 1 write on one of `hot` counters, then `n_items`
/// writes on a large item space, each preceded by `compute` of app time.
struct HotSpot {
    hot: usize,
    n_items: usize,
    compute: SimTime,
    abort_rate: f64,
    cpu: SimTime,
}

impl TraceSource for HotSpot {
    fn next_trace(&mut self, rng: &mut SeededRng) -> TxnTrace {
        let cpu = self.cpu;
        let hot = rng.index(self.hot) as u32;
        let mut steps = vec![StepTrace {
            step_type: StepTypeId(1),
            ops: vec![Op::write(ResourceId::Named(hot), cpu)],
        }];
        for _ in 0..self.n_items {
            let item = 1000 + rng.index(5000) as u32;
            steps.push(StepTrace {
                step_type: StepTypeId(2),
                ops: vec![Op::write(ResourceId::Named(item), cpu).with_compute(self.compute)],
            });
        }
        let abort = rng.chance(self.abort_rate);
        let n = steps.len();
        TxnTrace {
            txn_type: TxnTypeId(0),
            steps,
            comp_step: Some(StepTypeId(9)),
            guard: acc_common::AssertionTemplateId(0),
            abort_after_step: abort.then_some(n - 1),
            version_safe: false,
        }
    }
}

fn config_no_release(mode: CcMode, terminals: usize, seed: u64) -> SimConfig {
    SimConfig {
        release_at_step_end: false,
        ..config(mode, terminals, seed)
    }
}

fn config(mode: CcMode, terminals: usize, seed: u64) -> SimConfig {
    SimConfig {
        mode,
        servers: 3,
        terminals,
        think_time: SimTime::from_millis(50),
        duration: SimTime::from_micros(120_000_000), // 120 simulated seconds
        warmup: SimTime::from_micros(20_000_000),
        seed,
        costs: CostModel::default(),
        release_at_step_end: true,
        two_level_templates: Vec::new(),
    }
}

fn run(mode: CcMode, terminals: usize, seed: u64, compute: SimTime) -> acc_sim::SimReport {
    run_cpu(mode, terminals, seed, compute, SimTime::from_millis(5))
}

fn run_cpu(
    mode: CcMode,
    terminals: usize,
    seed: u64,
    compute: SimTime,
    cpu: SimTime,
) -> acc_sim::SimReport {
    let mut source = HotSpot {
        hot: 4,
        n_items: 6,
        compute,
        abort_rate: 0.01,
        cpu,
    };
    Simulator::new(config(mode, terminals, seed), &NoInterference, &mut source).run()
}

#[test]
fn deterministic_given_seed() {
    let a = run(CcMode::Acc, 12, 7, SimTime::from_millis(2));
    let b = run(CcMode::Acc, 12, 7, SimTime::from_millis(2));
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.mean_response_ms, b.mean_response_ms);
    assert_eq!(a.deadlocks, b.deadlocks);
}

#[test]
fn seeds_differ() {
    let a = run(CcMode::TwoPhase, 12, 1, SimTime::ZERO);
    let b = run(CcMode::TwoPhase, 12, 2, SimTime::ZERO);
    assert_ne!(
        (a.completed, a.mean_response_ms),
        (b.completed, b.mean_response_ms)
    );
}

#[test]
fn reports_are_sane() {
    let r = run(CcMode::TwoPhase, 8, 3, SimTime::from_millis(1));
    assert!(r.completed > 50, "{r:?}");
    assert!(r.committed <= r.completed);
    assert!(r.mean_response_ms > 0.0);
    assert!(r.p95_response_ms >= r.mean_response_ms * 0.5);
    assert!(r.throughput_tps > 0.0);
    assert!(
        r.server_utilisation > 0.0 && r.server_utilisation <= 1.0,
        "{r:?}"
    );
    // ~1% self-aborts.
    let abort_frac = 1.0 - r.committed as f64 / r.completed as f64;
    assert!(abort_frac < 0.05, "abort fraction {abort_frac}");
}

#[test]
fn throughput_grows_with_terminals_until_saturation() {
    let lo = run(CcMode::TwoPhase, 2, 5, SimTime::ZERO);
    let hi = run(CcMode::TwoPhase, 12, 5, SimTime::ZERO);
    assert!(
        hi.throughput_tps > lo.throughput_tps * 1.5,
        "lo={:.1} hi={:.1}",
        lo.throughput_tps,
        hi.throughput_tps
    );
}

#[test]
fn acc_overhead_loses_at_low_concurrency() {
    // With a single terminal there is no contention to relieve: the ACC's
    // per-lock and end-of-step overheads make it strictly slower.
    let two = run(CcMode::TwoPhase, 1, 11, SimTime::from_millis(2));
    let acc = run(CcMode::Acc, 1, 11, SimTime::from_millis(2));
    assert!(
        acc.mean_response_ms > two.mean_response_ms,
        "acc={:.2}ms 2pl={:.2}ms",
        acc.mean_response_ms,
        two.mean_response_ms
    );
}

#[test]
fn acc_wins_under_hot_spot_contention() {
    // Many terminals, few hot rows, long transactions (injected compute
    // time): 2PL holds the hot lock across the whole transaction, the ACC
    // only for one short step — the Fig. 2/3 effect.
    // Keep the CPUs unsaturated (short statements) so locks, not servers,
    // are the bottleneck — the paper's "sufficient system resources" regime.
    let cpu = SimTime::from_micros(1500);
    let compute = SimTime::from_millis(10);
    let two = run_cpu(CcMode::TwoPhase, 40, 13, compute, cpu);
    let acc = run_cpu(CcMode::Acc, 40, 13, compute, cpu);
    let ratio = two.mean_response_ms / acc.mean_response_ms;
    assert!(
        ratio > 1.2,
        "expected ACC win, ratio={ratio:.2} (2pl={:.1}ms acc={:.1}ms)",
        two.mean_response_ms,
        acc.mean_response_ms
    );
    assert!(
        acc.throughput_tps >= two.throughput_tps,
        "acc tput {:.1} vs 2pl {:.1}",
        acc.throughput_tps,
        two.throughput_tps
    );
}

#[test]
fn deadlocks_are_detected_and_resolved() {
    // Two-resource transactions locking in opposite orders.
    struct CrossLock;
    impl TraceSource for CrossLock {
        fn next_trace(&mut self, rng: &mut SeededRng) -> TxnTrace {
            let cpu = SimTime::from_millis(3);
            let (a, b) = if rng.chance(0.5) { (1, 2) } else { (2, 1) };
            TxnTrace {
                txn_type: TxnTypeId(0),
                steps: vec![StepTrace {
                    step_type: StepTypeId(1),
                    ops: vec![
                        Op::write(ResourceId::Named(a), cpu),
                        Op::write(ResourceId::Named(b), cpu).with_compute(SimTime::from_millis(2)),
                    ],
                }],
                comp_step: None,
                guard: acc_common::AssertionTemplateId(0),
                abort_after_step: None,
                version_safe: false,
            }
        }
    }
    let mut source = CrossLock;
    let r = Simulator::new(
        config(CcMode::TwoPhase, 10, 17),
        &NoInterference,
        &mut source,
    )
    .run();
    assert!(r.deadlocks > 0, "expected deadlocks: {r:?}");
    assert!(r.completed > 100, "victims retry and finish: {r:?}");
}

#[test]
fn no_release_ablation_behaves_like_2pl_plus_overhead() {
    // With step-boundary release disabled, the ACC keeps its assertional
    // machinery and CPU overheads but holds conventional locks to commit:
    // under hot-spot contention it must be at least as slow as plain 2PL.
    let cpu = SimTime::from_micros(1500);
    let compute = SimTime::from_millis(10);
    let mk = |cfg: SimConfig| {
        let mut source = HotSpot {
            hot: 4,
            n_items: 6,
            compute,
            abort_rate: 0.0,
            cpu,
        };
        Simulator::new(cfg, &NoInterference, &mut source).run()
    };
    let two = mk(config(CcMode::TwoPhase, 40, 21));
    let acc_full = mk(config(CcMode::Acc, 40, 21));
    let acc_norelease = mk(config_no_release(CcMode::Acc, 40, 21));
    assert!(
        acc_full.mean_response_ms < two.mean_response_ms,
        "full ACC wins under contention: {:.1} vs {:.1}",
        acc_full.mean_response_ms,
        two.mean_response_ms
    );
    assert!(
        acc_norelease.mean_response_ms > two.mean_response_ms * 0.95,
        "no-release ACC must not beat 2PL: {:.1} vs {:.1}",
        acc_norelease.mean_response_ms,
        two.mean_response_ms
    );
    assert!(
        acc_norelease.mean_response_ms > acc_full.mean_response_ms,
        "release is the active ingredient"
    );
}
