//! Exact cost-model arithmetic: with one terminal, zero think time and no
//! contention, a transaction's simulated response time is a deterministic
//! sum — verify it to the microsecond for both systems.

use acc_common::clock::SimTime;
use acc_common::rng::SeededRng;
use acc_common::{AssertionTemplateId, ResourceId, StepTypeId, TxnTypeId};
use acc_lockmgr::NoInterference;
use acc_sim::{CcMode, CostModel, Op, SimConfig, Simulator, StepTrace, TraceSource, TxnTrace};

/// Two steps: [read r1, write r2] and [write r3 with 2 ms compute and one
/// attached template].
struct Fixed;

impl TraceSource for Fixed {
    fn next_trace(&mut self, _rng: &mut SeededRng) -> TxnTrace {
        let cpu = SimTime::from_millis(5);
        TxnTrace {
            txn_type: TxnTypeId(0),
            steps: vec![
                StepTrace {
                    step_type: StepTypeId(1),
                    ops: vec![
                        Op::read(ResourceId::Named(1), cpu),
                        Op::write(ResourceId::Named(2), cpu),
                    ],
                },
                StepTrace {
                    step_type: StepTypeId(2),
                    ops: vec![Op::write(ResourceId::Named(3), cpu)
                        .with_compute(SimTime::from_millis(2))
                        .with_templates(vec![AssertionTemplateId(1)])],
                },
            ],
            comp_step: None,
            guard: AssertionTemplateId(0),
            abort_after_step: None,
            version_safe: false,
        }
    }
}

fn run(mode: CcMode, costs: CostModel) -> acc_sim::SimReport {
    let mut source = Fixed;
    let config = SimConfig {
        mode,
        servers: 1,
        terminals: 1,
        think_time: SimTime::ZERO,
        duration: SimTime::from_micros(10_000_000),
        warmup: SimTime::ZERO,
        seed: 1,
        costs,
        release_at_step_end: true,
        two_level_templates: Vec::new(),
    };
    Simulator::new(config, &NoInterference, &mut source).run()
}

fn costs() -> CostModel {
    CostModel {
        lock_op: SimTime::from_micros(100),
        assert_op: SimTime::from_micros(200),
        step_end: SimTime::from_micros(1000),
        deadlock_backoff: SimTime::from_millis(4),
        undo_op: SimTime::from_micros(500),
    }
}

#[test]
fn two_phase_response_is_exact() {
    // Per op: 5000 (cpu) + 100 (one lock). Three ops + 2000 compute.
    // No ACC costs in 2PL mode.
    let expected_us = 3 * (5000 + 100) + 2000;
    let r = run(CcMode::TwoPhase, costs());
    assert!(r.completed > 100);
    assert_eq!(
        (r.mean_response_ms * 1000.0).round() as u64,
        expected_us,
        "{r:?}"
    );
    // Utilisation = cpu-busy / elapsed: busy excludes the 2 ms compute.
    let busy_frac = (3.0 * 5.1) / (3.0 * 5.1 + 2.0);
    assert!((r.server_utilisation - busy_frac).abs() < 0.01, "{r:?}");
}

#[test]
fn acc_response_adds_overheads_exactly() {
    // Op 1 (read): 5000 + 100.
    // Op 2 (write): 5000 + 100 + 200 (guard pin) + 1000 (end of step 1).
    // Op 3 (write): 2000 compute + 5000 + 100 + 200 (guard) + 200 (template)
    //               + 1000 (end of step 2).
    let expected_us = (5000 + 100) + (5000 + 100 + 200 + 1000) + (2000 + 5000 + 100 + 400 + 1000);
    let r = run(CcMode::Acc, costs());
    assert_eq!(
        (r.mean_response_ms * 1000.0).round() as u64,
        expected_us,
        "{r:?}"
    );
}

#[test]
fn acc_exceeds_two_phase_by_the_overhead_delta() {
    let two = run(CcMode::TwoPhase, costs());
    let acc = run(CcMode::Acc, costs());
    let delta_us = ((acc.mean_response_ms - two.mean_response_ms) * 1000.0).round() as i64;
    // 2 step-end records + 2 guard pins + 1 template attach = 2×1000 + 3×200.
    assert_eq!(delta_us, 2 * 1000 + 3 * 200);
}

#[test]
fn zero_overhead_acc_equals_two_phase_when_uncontended() {
    let free = CostModel {
        assert_op: SimTime::ZERO,
        step_end: SimTime::ZERO,
        ..costs()
    };
    let two = run(CcMode::TwoPhase, free.clone());
    let acc = run(CcMode::Acc, free);
    assert_eq!(two.mean_response_ms, acc.mean_response_ms);
    assert_eq!(two.completed, acc.completed);
}
