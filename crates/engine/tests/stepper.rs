//! Deterministic-scheduler tests: seeded interleaving exploration with
//! invariant checking at quiescence.

use acc_common::SeededRng;
use acc_common::{Decimal, Result, StepTypeId, TableId, TxnTypeId, Value};
use acc_engine::{Stepper, StepperConfig};
use acc_lockmgr::{LockKind, LockMode, NoInterference};
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::{
    ConcurrencyControl, RunOutcome, SharedDb, StepCtx, StepOutcome, TwoPhase, TxnMeta, TxnProgram,
};
use std::sync::Arc;

const ACCOUNTS: TableId = TableId(0);

fn shared(n_accounts: i64) -> Arc<SharedDb> {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Decimal)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    let mut db = Database::new(&c);
    for i in 0..n_accounts {
        db.table_mut(ACCOUNTS)
            .unwrap()
            .insert(Row::from(vec![
                Value::Int(i),
                Value::from(Decimal::from_int(100)),
            ]))
            .unwrap();
    }
    Arc::new(SharedDb::new(db, Arc::new(NoInterference)))
}

fn total(shared: &SharedDb) -> Decimal {
    shared
        .with_table(ACCOUNTS, |t| t.iter().map(|(_, r)| r.decimal(1)).sum())
        .unwrap()
}

/// Two-op transfer; under 2PL it is a single atomic unit, under the
/// decomposed policy each op is its own step with compensation.
struct Transfer {
    from: i64,
    to: i64,
    decomposed: bool,
}

impl TxnProgram for Transfer {
    fn txn_type(&self) -> TxnTypeId {
        TxnTypeId(0)
    }

    fn step(&mut self, i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let amount = Decimal::from_int(1);
        if i == 0 {
            ctx.update_key(ACCOUNTS, &Key::ints(&[self.from]), |r| {
                let b = r.decimal(1);
                r.set(1, Value::from(b - amount));
            })?;
            Ok(if self.decomposed {
                StepOutcome::Continue
            } else {
                // 2PL variant does both ops in one step.
                ctx.update_key(ACCOUNTS, &Key::ints(&[self.to]), |r| {
                    let b = r.decimal(1);
                    r.set(1, Value::from(b + amount));
                })?;
                StepOutcome::Done
            })
        } else {
            ctx.update_key(ACCOUNTS, &Key::ints(&[self.to]), |r| {
                let b = r.decimal(1);
                r.set(1, Value::from(b + amount));
            })?;
            Ok(StepOutcome::Done)
        }
    }

    fn compensate(&mut self, steps_completed: u32, ctx: &mut StepCtx<'_>) -> Result<()> {
        let amount = Decimal::from_int(1);
        if steps_completed >= 1 {
            ctx.update_key(ACCOUNTS, &Key::ints(&[self.from]), |r| {
                let b = r.decimal(1);
                r.set(1, Value::from(b + amount));
            })?;
        }
        Ok(())
    }
}

struct StepRelease;

impl ConcurrencyControl for StepRelease {
    fn name(&self) -> &'static str {
        "step-release"
    }
    fn decomposed(&self) -> bool {
        true
    }
    fn step_type(&self, meta: &TxnMeta) -> StepTypeId {
        if meta.compensating {
            StepTypeId(9)
        } else {
            StepTypeId(meta.step_index.min(1))
        }
    }
    fn comp_step_type(&self, _t: TxnTypeId) -> Option<StepTypeId> {
        Some(StepTypeId(9))
    }
    fn item_locks(&self, _m: &TxnMeta, _t: TableId, write: bool) -> Vec<LockKind> {
        vec![LockKind::Conventional(if write {
            LockMode::X
        } else {
            LockMode::S
        })]
    }
    fn scan_locks(&self, _m: &TxnMeta, _t: TableId) -> Vec<LockKind> {
        vec![LockKind::Conventional(LockMode::S)]
    }
    fn release_at_step_end(&self, _m: &TxnMeta, _k: LockKind) -> bool {
        true
    }
}

fn transfers(n: usize, decomposed: bool) -> Vec<Box<dyn TxnProgram>> {
    (0..n)
        .map(|k| {
            Box::new(Transfer {
                from: (k % 4) as i64,
                to: ((k * 3 + 1) % 4) as i64,
                decomposed,
            }) as Box<dyn TxnProgram>
        })
        .collect()
}

#[test]
fn cross_blocking_two_phase_stall_is_resolved() {
    let shared = shared(2);
    // T0: 0 → 1, T1: 1 → 0; under some schedules this cross-blocks.
    let mut programs: Vec<Box<dyn TxnProgram>> = vec![
        Box::new(Transfer {
            from: 0,
            to: 1,
            decomposed: false,
        }),
        Box::new(Transfer {
            from: 1,
            to: 0,
            decomposed: false,
        }),
    ];
    for seed in 0..50 {
        let mut stepper = Stepper::new(&shared, &TwoPhase);
        let report = stepper
            .run_all(
                &mut programs,
                &StepperConfig {
                    seed,
                    max_resubmits: 10,
                },
            )
            .unwrap();
        for o in &report.outcomes {
            assert!(
                matches!(o, RunOutcome::Committed { .. }),
                "seed {seed}: {report:?}"
            );
        }
        assert_eq!(total(&shared), Decimal::from_int(200), "seed {seed}");
        assert_eq!(shared.total_grants(), 0);
    }
}

#[test]
fn schedules_vary_with_seed() {
    let shared = shared(4);
    let mut seen = std::collections::HashSet::new();
    for seed in 0..12 {
        let mut programs = transfers(5, true);
        let mut stepper = Stepper::new(&shared, &StepRelease);
        let report = stepper
            .run_all(
                &mut programs,
                &StepperConfig {
                    seed,
                    max_resubmits: 10,
                },
            )
            .unwrap();
        seen.insert(report.schedule.clone());
    }
    assert!(
        seen.len() > 1,
        "seeds should explore distinct interleavings"
    );
}

#[test]
fn step_start_hook_observes_every_attempt() {
    let shared = shared(4);
    let mut programs = transfers(3, true);
    let count = std::cell::Cell::new(0usize);
    let mut stepper = Stepper::new(&shared, &StepRelease);
    stepper.on_step_start = Some(Box::new(|db, _idx, _step| {
        assert!(db.table(ACCOUNTS).unwrap().len() == 4);
        count.set(count.get() + 1);
    }));
    let report = stepper
        .run_all(&mut programs, &StepperConfig::default())
        .unwrap();
    drop(stepper);
    assert!(count.get() >= report.schedule.len());
}

#[test]
fn decomposed_transfers_conserve_money() {
    let mut rng = SeededRng::new(0xdec0);
    for _case in 0..48 {
        let seed = rng.int_range(0, 9_999) as u64;
        let shared = shared(4);
        let mut programs = transfers(8, true);
        let mut stepper = Stepper::new(&shared, &StepRelease);
        let report = stepper
            .run_all(
                &mut programs,
                &StepperConfig {
                    seed,
                    max_resubmits: 20,
                },
            )
            .unwrap();
        // Commits move money, rollbacks compensate: either way the total is
        // conserved at quiescence.
        assert_eq!(total(&shared), Decimal::from_int(400), "seed {seed}");
        assert_eq!(shared.total_grants(), 0, "seed {seed}");
        assert!(report.attempts >= report.schedule.len(), "seed {seed}");
    }
}

#[test]
fn two_phase_transfers_conserve_money() {
    let mut rng = SeededRng::new(0x2b1);
    for _case in 0..48 {
        let seed = rng.int_range(0, 9_999) as u64;
        let shared = shared(4);
        let mut programs = transfers(8, false);
        let mut stepper = Stepper::new(&shared, &TwoPhase);
        stepper
            .run_all(
                &mut programs,
                &StepperConfig {
                    seed,
                    max_resubmits: 20,
                },
            )
            .unwrap();
        assert_eq!(total(&shared), Decimal::from_int(400), "seed {seed}");
    }
}
