//! Smoke test for the threaded closed-loop engine.

use acc_common::rng::SeededRng;
use acc_common::{Decimal, Result, TableId, TxnTypeId, Value};
use acc_engine::{run_closed_loop, ClosedLoopConfig, RetryPolicy, Workload};
use acc_lockmgr::NoInterference;
use acc_storage::{Catalog, ColumnType, Database, Key, Row, TableSchema};
use acc_txn::{ConcurrencyControl, SharedDb, StepCtx, StepOutcome, TwoPhase, TxnProgram};
use std::sync::Arc;
use std::time::Duration;

const ACCOUNTS: TableId = TableId(0);

struct Transfer {
    from: i64,
    to: i64,
}

impl TxnProgram for Transfer {
    fn txn_type(&self) -> TxnTypeId {
        TxnTypeId(0)
    }
    fn step(&mut self, _i: u32, ctx: &mut StepCtx<'_>) -> Result<StepOutcome> {
        let amount = Decimal::from_int(1);
        ctx.update_key(ACCOUNTS, &Key::ints(&[self.from]), |r| {
            let b = r.decimal(1);
            r.set(1, Value::from(b - amount));
        })?;
        ctx.update_key(ACCOUNTS, &Key::ints(&[self.to]), |r| {
            let b = r.decimal(1);
            r.set(1, Value::from(b + amount));
        })?;
        Ok(StepOutcome::Done)
    }
}

struct TransferWorkload {
    accounts: i64,
}

impl Workload for TransferWorkload {
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send> {
        let from = rng.int_range(0, self.accounts - 1);
        let mut to = rng.int_range(0, self.accounts - 1);
        if to == from {
            to = (to + 1) % self.accounts;
        }
        Box::new(Transfer { from, to })
    }
}

#[test]
fn closed_loop_runs_and_conserves() {
    let mut c = Catalog::new();
    c.add_table(
        TableSchema::builder("accounts")
            .column("id", ColumnType::Int)
            .column("balance", ColumnType::Decimal)
            .key(&["id"])
            .rows_per_page(1)
            .build(),
    );
    let mut db = Database::new(&c);
    for i in 0..16 {
        db.table_mut(ACCOUNTS)
            .unwrap()
            .insert(Row::from(vec![
                Value::Int(i),
                Value::from(Decimal::from_int(1000)),
            ]))
            .unwrap();
    }
    let shared = Arc::new(SharedDb::new(db, Arc::new(NoInterference)));
    let cc: Arc<dyn ConcurrencyControl> = Arc::new(TwoPhase);
    let workload: Arc<dyn Workload> = Arc::new(TransferWorkload { accounts: 16 });

    let report = run_closed_loop(
        &shared,
        &cc,
        &workload,
        &ClosedLoopConfig {
            terminals: 4,
            duration: Duration::from_millis(300),
            think_time: Duration::from_millis(1),
            seed: 7,
            retry: RetryPolicy::disabled(),
        },
    );

    assert!(report.committed > 0, "{report:?}");
    assert_eq!(report.retries, 0, "retry disabled but engine resubmitted");
    assert!(report.throughput_tps > 0.0);
    assert!(report.latency.mean_ms >= 0.0);
    let total: Decimal = shared
        .with_table(ACCOUNTS, |t| t.iter().map(|(_, r)| r.decimal(1)).sum())
        .unwrap();
    assert_eq!(total, Decimal::from_int(16_000));
    assert_eq!(shared.total_grants(), 0);
}
