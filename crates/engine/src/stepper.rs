//! The deterministic step scheduler.
//!
//! Runs a batch of transaction programs on one thread, choosing (seeded-
//! randomly) which transaction advances by one step next. Lock waits use
//! [`WaitMode::Fail`]: a blocked step is undone and retried later, so the
//! scheduler never parks. Because steps are atomic, the schedules explored
//! here are exactly the step-serializations a threaded execution could
//! produce (§3.1) — which makes this the workhorse for property-testing
//! semantic correctness over many seeds.
//!
//! Stall handling: when every unfinished transaction is blocked (a deadlock
//! the lock manager cannot see, because `Fail`-mode requests are withdrawn),
//! the scheduler rolls back the youngest blocked transaction, mirroring a
//! timeout-based deadlock resolution.

use acc_common::rng::SeededRng;
use acc_common::{Error, Result};
use acc_storage::Database;
use acc_txn::runner::{commit, end_step, rollback, undo_current_step};
use acc_txn::{
    AbortReason, ConcurrencyControl, RunOutcome, SharedDb, StepCtx, StepOutcome, Transaction,
    TxnProgram, WaitMode,
};

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct StepperConfig {
    /// RNG seed for schedule choice.
    pub seed: u64,
    /// Rolled-back transactions are resubmitted up to this many times
    /// (deadlock victims etc.). Doomed/user aborts are never resubmitted.
    pub max_resubmits: u32,
}

impl Default for StepperConfig {
    fn default() -> Self {
        StepperConfig {
            seed: 0,
            max_resubmits: 25,
        }
    }
}

/// What happened to each program, in submission order, plus the schedule.
#[derive(Debug)]
pub struct StepperReport {
    /// Final outcome per program.
    pub outcomes: Vec<RunOutcome>,
    /// The executed schedule: program index per completed step (diagnostic).
    pub schedule: Vec<usize>,
    /// Total step executions, including retried/blocked attempts.
    pub attempts: usize,
}

enum Slot {
    Ready(Transaction),
    Blocked(Transaction),
    Finished(RunOutcome),
}

/// Hook invoked before each step attempt: `(db image, program index, step
/// index)`.
pub type StepStartHook<'a> = Box<dyn Fn(&Database, usize, u32) + 'a>;

/// The deterministic scheduler.
pub struct Stepper<'a> {
    shared: &'a SharedDb,
    cc: &'a dyn ConcurrencyControl,
    /// Called before each step attempt with the database image, the program
    /// index and the step index — the hook where tests assert that the
    /// step's precondition holds (semantic correctness, §3.1).
    pub on_step_start: Option<StepStartHook<'a>>,
}

impl<'a> Stepper<'a> {
    /// A scheduler over the given system and policy.
    pub fn new(shared: &'a SharedDb, cc: &'a dyn ConcurrencyControl) -> Self {
        Stepper {
            shared,
            cc,
            on_step_start: None,
        }
    }

    /// Run all programs to completion under a seeded schedule.
    pub fn run_all(
        &mut self,
        programs: &mut [Box<dyn TxnProgram>],
        config: &StepperConfig,
    ) -> Result<StepperReport> {
        let mut rng = SeededRng::new(config.seed);
        let mut slots: Vec<Slot> = programs
            .iter()
            .map(|p| {
                Slot::Ready(Transaction::new(
                    self.shared.begin_txn(p.txn_type()),
                    p.txn_type(),
                ))
            })
            .collect();
        let mut resubmits = vec![0u32; programs.len()];
        let mut deadlock_retried = vec![false; programs.len()];
        let mut schedule = Vec::new();
        let mut attempts = 0usize;

        loop {
            let ready: Vec<usize> = slots
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Slot::Ready(_)))
                .map(|(i, _)| i)
                .collect();

            if ready.is_empty() {
                let blocked: Vec<usize> = slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, Slot::Blocked(_)))
                    .map(|(i, _)| i)
                    .collect();
                if blocked.is_empty() {
                    break; // all finished
                }
                // Stall: every live transaction is blocked. Roll back the
                // youngest (highest txn id) as the deadlock victim.
                let victim = *blocked
                    .iter()
                    .max_by_key(|&&i| match &slots[i] {
                        Slot::Blocked(t) => t.id,
                        _ => unreachable!(),
                    })
                    .expect("non-empty");
                let Slot::Blocked(mut t) = std::mem::replace(
                    &mut slots[victim],
                    Slot::Finished(RunOutcome::RolledBack(AbortReason::Deadlock)),
                ) else {
                    unreachable!()
                };
                rollback(self.shared, self.cc, programs[victim].as_mut(), &mut t)?;
                let ty = programs[victim].txn_type();
                self.requeue(victim, ty, &mut slots, &mut resubmits, config);
                self.wake_blocked(&mut slots);
                continue;
            }
            let pick = ready[rng.index(ready.len())];

            attempts += 1;
            let Slot::Ready(mut txn) = std::mem::replace(
                &mut slots[pick],
                Slot::Finished(RunOutcome::Committed { steps: 0 }),
            ) else {
                unreachable!()
            };

            if let Some(hook) = &self.on_step_start {
                // Transactions are in flight here, but the stepper is
                // single-threaded: no concurrent writer can tear the
                // per-stripe snapshot, so the quiescence check does not
                // apply.
                let db = self.shared.snapshot_db_unchecked();
                hook(&db, pick, txn.step_index);
            }

            let program = programs[pick].as_mut();
            let step_index = txn.step_index;
            let result = {
                let mut ctx = StepCtx::new(self.shared, self.cc, &mut txn, WaitMode::Fail);
                program.step(step_index, &mut ctx)
            };

            match result {
                Ok(StepOutcome::Continue) => {
                    schedule.push(pick);
                    deadlock_retried[pick] = false;
                    if self.cc.decomposed() {
                        end_step(self.shared, self.cc, &mut txn, program.work_area());
                    } else {
                        txn.step_index += 1;
                    }
                    slots[pick] = Slot::Ready(txn);
                    self.wake_blocked(&mut slots);
                }
                Ok(StepOutcome::Done) => {
                    schedule.push(pick);
                    if self.shared.is_doomed(txn.id) {
                        rollback(self.shared, self.cc, program, &mut txn)?;
                        slots[pick] = Slot::Finished(RunOutcome::RolledBack(AbortReason::Doomed));
                        self.requeue(pick, program.txn_type(), &mut slots, &mut resubmits, config);
                    } else {
                        let steps = txn.step_index + 1;
                        commit(self.shared, &mut txn)?;
                        slots[pick] = Slot::Finished(RunOutcome::Committed { steps });
                    }
                    self.wake_blocked(&mut slots);
                }
                Ok(StepOutcome::Abort) => {
                    rollback(self.shared, self.cc, program, &mut txn)?;
                    slots[pick] = Slot::Finished(RunOutcome::RolledBack(AbortReason::UserAbort));
                    self.wake_blocked(&mut slots);
                }
                Err(Error::WouldBlock { .. }) => {
                    undo_current_step(self.shared, &mut txn)?;
                    if self.cc.decomposed() {
                        self.shared
                            .release_where(txn.id, |k, _| k.is_conventional());
                    }
                    slots[pick] = Slot::Blocked(txn);
                }
                Err(Error::Deadlock { .. }) => {
                    undo_current_step(self.shared, &mut txn)?;
                    if self.cc.decomposed() {
                        self.shared
                            .release_where(txn.id, |k, _| k.is_conventional());
                    }
                    if self.cc.decomposed() && !deadlock_retried[pick] {
                        // §3.4: retry the victim step once before rolling the
                        // transaction back.
                        deadlock_retried[pick] = true;
                        slots[pick] = Slot::Ready(txn);
                    } else {
                        rollback(self.shared, self.cc, program, &mut txn)?;
                        slots[pick] = Slot::Finished(RunOutcome::RolledBack(AbortReason::Deadlock));
                        self.requeue(pick, program.txn_type(), &mut slots, &mut resubmits, config);
                    }
                    self.wake_blocked(&mut slots);
                }
                Err(Error::TxnAborted(_)) => {
                    rollback(self.shared, self.cc, program, &mut txn)?;
                    slots[pick] = Slot::Finished(RunOutcome::RolledBack(AbortReason::Doomed));
                    self.requeue(pick, program.txn_type(), &mut slots, &mut resubmits, config);
                    self.wake_blocked(&mut slots);
                }
                Err(e) => {
                    rollback(self.shared, self.cc, program, &mut txn)?;
                    return Err(e);
                }
            }
        }

        let outcomes = slots
            .into_iter()
            .map(|s| match s {
                Slot::Finished(o) => o,
                _ => unreachable!("loop exits only when all slots finished"),
            })
            .collect();
        Ok(StepperReport {
            outcomes,
            schedule,
            attempts,
        })
    }

    /// After a rollback, resubmit the program as a fresh transaction if its
    /// retry budget allows (deadlock and doom victims only).
    fn requeue(
        &self,
        idx: usize,
        ty: acc_common::TxnTypeId,
        slots: &mut [Slot],
        resubmits: &mut [u32],
        config: &StepperConfig,
    ) {
        let retryable = matches!(
            &slots[idx],
            Slot::Finished(RunOutcome::RolledBack(AbortReason::Deadlock))
                | Slot::Finished(RunOutcome::RolledBack(AbortReason::Doomed))
        );
        if retryable && resubmits[idx] < config.max_resubmits {
            resubmits[idx] += 1;
            // Restart from step 0 with a fresh transaction id; program-local
            // state is step-idempotent by contract.
            slots[idx] = Slot::Ready(Transaction::new(self.shared.begin_txn(ty), ty));
        }
    }

    fn wake_blocked(&self, slots: &mut [Slot]) {
        for s in slots.iter_mut() {
            if matches!(s, Slot::Blocked(_)) {
                let Slot::Blocked(t) =
                    std::mem::replace(s, Slot::Finished(RunOutcome::Committed { steps: 0 }))
                else {
                    unreachable!()
                };
                *s = Slot::Ready(t);
            }
        }
    }
}
