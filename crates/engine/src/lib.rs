//! Execution frontends over the transaction runtime.
//!
//! * [`stepper`] — a deterministic, single-threaded scheduler that explores
//!   step-level interleavings reproducibly (seeded). Because ACC steps are
//!   atomic and isolated, *every* concurrent schedule is equivalent to some
//!   serial schedule of steps (§3.1), so exploring serial step schedules
//!   covers the full behaviour space. This is the semantic-correctness test
//!   oracle.
//! * [`threaded`] — a real multi-threaded closed-loop engine: N terminal
//!   threads submitting transactions against the shared system, measuring
//!   wall-clock response times.
//! * [`stats`] — latency/throughput accounting shared by both.

pub mod stats;
pub mod stepper;
pub mod threaded;

pub use stats::{LatencyStats, StatsCollector};
pub use stepper::{Stepper, StepperConfig, StepperReport};
pub use threaded::{run_closed_loop, ClosedLoopConfig, ClosedLoopReport, RetryPolicy, Workload};
