//! The multi-threaded closed-loop engine: one thread per terminal, each
//! cycling think-time → submit → measure, against the shared system.
//!
//! This is the wall-clock counterpart of the paper's testbed (terminals
//! connected to a warehouse). The deterministic figures come from `acc-sim`;
//! this engine exists to demonstrate the same effects with real threads and
//! to power the runnable examples.

use crate::stats::{LatencyStats, StatsCollector};
use acc_common::clock::{Clock, RealClock};
use acc_common::events::CounterSnapshot;
use acc_common::rng::SeededRng;
use acc_txn::{run, ConcurrencyControl, RunOutcome, SharedDb, TxnProgram, WaitMode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Produces the stream of transaction programs a terminal submits.
pub trait Workload: Send + Sync {
    /// Generate the next transaction for a terminal.
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send>;
}

/// Closed-loop run parameters.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Number of terminal threads.
    pub terminals: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// Mean think time between transactions (exponentially distributed).
    pub think_time: Duration,
    /// RNG seed.
    pub seed: u64,
}

/// Results of a closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Committed transactions.
    pub committed: u64,
    /// Rolled-back transactions (deadlock victims, user aborts, dooms).
    pub aborted: u64,
    /// Response-time distribution over committed transactions.
    pub latency: LatencyStats,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Lock/step counters accumulated during the run (all zero unless an
    /// enabled [`acc_common::events::EventSink`] was installed on the shared
    /// system before the run).
    pub lock_counters: CounterSnapshot,
}

/// Drive `workload` from `config.terminals` threads for the configured
/// duration. Rolled-back transactions are not resubmitted (the abort rate is
/// part of the measurement).
pub fn run_closed_loop(
    shared: &Arc<SharedDb>,
    cc: &Arc<dyn ConcurrencyControl>,
    workload: &Arc<dyn Workload>,
    config: &ClosedLoopConfig,
) -> ClosedLoopReport {
    let stats = Arc::new(StatsCollector::new());
    stats.attach_sink(shared.event_sink());
    let counters_before = stats.lock_counters();
    let stop = Arc::new(AtomicBool::new(false));
    let clock = Arc::new(RealClock::new());
    let mut root_rng = SeededRng::new(config.seed);

    let mut handles = Vec::with_capacity(config.terminals);
    for _ in 0..config.terminals {
        let shared = Arc::clone(shared);
        let cc = Arc::clone(cc);
        let workload = Arc::clone(workload);
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        let clock = Arc::clone(&clock);
        let mut rng = root_rng.fork();
        let think_us = config.think_time.as_micros() as f64;
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if think_us > 0.0 {
                    let t = rng.exponential(think_us);
                    std::thread::sleep(Duration::from_micros(t as u64));
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let mut program = workload.next_program(&mut rng);
                let start = clock.now();
                match run(&shared, &*cc, program.as_mut(), WaitMode::Block) {
                    Ok(RunOutcome::Committed { .. }) => {
                        stats.record_commit(start, clock.now());
                    }
                    Ok(RunOutcome::RolledBack(_)) => stats.record_abort(),
                    Err(e) => panic!("transaction failed hard: {e}"),
                }
            }
        }));
    }

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("terminal thread panicked");
    }

    let committed = stats.committed();
    ClosedLoopReport {
        committed,
        aborted: stats.aborted(),
        latency: stats.latency(),
        throughput_tps: committed as f64 / config.duration.as_secs_f64(),
        lock_counters: stats.lock_counters() - counters_before,
    }
}
