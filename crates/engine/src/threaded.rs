//! The multi-threaded closed-loop engine: one thread per terminal, each
//! cycling think-time → submit → measure, against the shared system.
//!
//! This is the wall-clock counterpart of the paper's testbed (terminals
//! connected to a warehouse). The deterministic figures come from `acc-sim`;
//! this engine exists to demonstrate the same effects with real threads and
//! to power the runnable examples.

use crate::stats::{LatencyStats, StatsCollector};
use acc_common::clock::{Clock, RealClock};
use acc_common::events::CounterSnapshot;
use acc_common::rng::SeededRng;
use acc_txn::{run, AbortReason, ConcurrencyControl, RunOutcome, SharedDb, TxnProgram, WaitMode};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Produces the stream of transaction programs a terminal submits.
pub trait Workload: Send + Sync {
    /// Generate the next transaction for a terminal.
    fn next_program(&self, rng: &mut SeededRng) -> Box<dyn TxnProgram + Send>;
}

/// Bounded resubmission of rolled-back transactions, the way the paper's
/// testbed terminals resubmitted aborted work: deadlock victims and doomed
/// transactions are retried up to `max_retries` times with seeded full-jitter
/// exponential backoff; user aborts are the transaction's own decision and
/// are never retried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum resubmissions per transaction (0 disables retry).
    pub max_retries: u32,
    /// Backoff scale for the first retry; doubles each further retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    /// Never resubmit — every rollback is final (the abort rate is the
    /// measurement, as in the figure experiments).
    pub fn disabled() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Up to 3 resubmissions, 0.5 ms–8 ms full-jitter backoff.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(500),
            max_backoff: Duration::from_millis(8),
        }
    }

    /// True if the policy can resubmit at all.
    pub fn is_enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// The pause before the `attempt`th retry (1-based): full jitter over an
    /// exponentially growing, capped window. Seeded — the same rng stream
    /// gives the same backoff schedule.
    pub fn backoff(&self, attempt: u32, rng: &mut SeededRng) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let window = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(20))
            .min(self.max_backoff);
        window.mul_f64(rng.f64())
    }
}

/// Closed-loop run parameters.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Number of terminal threads.
    pub terminals: usize,
    /// Wall-clock measurement duration.
    pub duration: Duration,
    /// Mean think time between transactions (exponentially distributed).
    pub think_time: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Resubmission policy for deadlock victims and doomed transactions.
    pub retry: RetryPolicy,
}

/// Results of a closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// Committed transactions.
    pub committed: u64,
    /// Rolled-back transactions (deadlock victims, user aborts, dooms).
    pub aborted: u64,
    /// Response-time distribution over committed transactions.
    pub latency: LatencyStats,
    /// Committed transactions per second.
    pub throughput_tps: f64,
    /// Lock/step counters accumulated during the run (all zero unless an
    /// enabled [`acc_common::events::EventSink`] was installed on the shared
    /// system before the run).
    pub lock_counters: CounterSnapshot,
    /// Resubmissions performed under the [`RetryPolicy`].
    pub retries: u64,
    /// Total backoff time slept before resubmissions, microseconds.
    pub retry_backoff_micros: u64,
}

/// Drive `workload` from `config.terminals` threads for the configured
/// duration. Rolled-back deadlock victims and doomed transactions are
/// resubmitted per `config.retry` (each rolled-back attempt still counts as
/// an abort — the abort rate stays part of the measurement); user aborts are
/// final. A committed retry's response time spans from its *first*
/// submission, as a terminal would observe it.
pub fn run_closed_loop(
    shared: &Arc<SharedDb>,
    cc: &Arc<dyn ConcurrencyControl>,
    workload: &Arc<dyn Workload>,
    config: &ClosedLoopConfig,
) -> ClosedLoopReport {
    let stats = Arc::new(StatsCollector::new());
    stats.attach_sink(shared.event_sink());
    let counters_before = stats.lock_counters();
    let stop = Arc::new(AtomicBool::new(false));
    let clock = Arc::new(RealClock::new());
    let mut root_rng = SeededRng::new(config.seed);

    let mut handles = Vec::with_capacity(config.terminals);
    for _ in 0..config.terminals {
        let shared = Arc::clone(shared);
        let cc = Arc::clone(cc);
        let workload = Arc::clone(workload);
        let stats = Arc::clone(&stats);
        let stop = Arc::clone(&stop);
        let clock = Arc::clone(&clock);
        let mut rng = root_rng.fork();
        let think_us = config.think_time.as_micros() as f64;
        let retry = config.retry.clone();
        handles.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                if think_us > 0.0 {
                    let t = rng.exponential(think_us);
                    std::thread::sleep(Duration::from_micros(t as u64));
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let mut program = workload.next_program(&mut rng);
                let start = clock.now();
                let mut attempt = 0u32;
                loop {
                    match run(&shared, &*cc, program.as_mut(), WaitMode::Block) {
                        Ok(RunOutcome::Committed { .. }) => {
                            stats.record_commit(start, clock.now());
                            break;
                        }
                        Ok(RunOutcome::RolledBack(reason)) => {
                            stats.record_abort();
                            // Steps are idempotent, so the same program object
                            // can be resubmitted; only system-caused rollbacks
                            // qualify.
                            let transient =
                                matches!(reason, AbortReason::Deadlock | AbortReason::Doomed);
                            if !transient
                                || attempt >= retry.max_retries
                                || stop.load(Ordering::Relaxed)
                            {
                                break;
                            }
                            attempt += 1;
                            let pause = retry.backoff(attempt, &mut rng);
                            stats.record_retry(pause);
                            if !pause.is_zero() {
                                std::thread::sleep(pause);
                            }
                        }
                        Err(e) => panic!("transaction failed hard: {e}"),
                    }
                }
            }
        }));
    }

    std::thread::sleep(config.duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("terminal thread panicked");
    }

    let committed = stats.committed();
    ClosedLoopReport {
        committed,
        aborted: stats.aborted(),
        latency: stats.latency(),
        throughput_tps: committed as f64 / config.duration.as_secs_f64(),
        lock_counters: stats.lock_counters() - counters_before,
        retries: stats.retries(),
        retry_backoff_micros: stats.retry_backoff_micros(),
    }
}
