//! Latency and throughput accounting.

use acc_common::clock::SimTime;
use acc_common::events::{CounterSnapshot, EventSink};
use std::sync::{Arc, Mutex};

/// Summary statistics over a set of latencies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile — the saturation experiments' headline number (tail
    /// latency is what admission control exists to bound).
    pub p99_ms: f64,
    /// Maximum.
    pub max_ms: f64,
}

impl LatencyStats {
    /// Compute from raw samples (microseconds). Empty input produces zeros.
    pub fn from_micros(mut samples: Vec<u64>) -> Self {
        if samples.is_empty() {
            return LatencyStats {
                count: 0,
                mean_ms: 0.0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                max_ms: 0.0,
            };
        }
        samples.sort_unstable();
        let count = samples.len();
        let sum: u64 = samples.iter().sum();
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            samples[idx] as f64 / 1000.0
        };
        LatencyStats {
            count,
            mean_ms: sum as f64 / count as f64 / 1000.0,
            p50_ms: pct(0.50),
            p95_ms: pct(0.95),
            p99_ms: pct(0.99),
            max_ms: *samples.last().expect("non-empty") as f64 / 1000.0,
        }
    }
}

/// Thread-safe sample sink used by the closed-loop engine.
#[derive(Debug, Default)]
pub struct StatsCollector {
    samples: Mutex<Vec<u64>>,
    committed: Mutex<u64>,
    aborted: Mutex<u64>,
    retries: Mutex<u64>,
    retry_backoff_micros: Mutex<u64>,
    sink: Mutex<Option<Arc<EventSink>>>,
}

impl StatsCollector {
    /// Fresh collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach the lock manager's event sink so reports can embed lock/step
    /// counters next to latency and throughput.
    pub fn attach_sink(&self, sink: Arc<EventSink>) {
        *self.sink.lock().unwrap() = Some(sink);
    }

    /// Snapshot of the attached sink's counters (all zero if no sink is
    /// attached or the sink is disabled).
    pub fn lock_counters(&self) -> CounterSnapshot {
        self.sink
            .lock()
            .unwrap()
            .as_ref()
            .map(|s| s.counters())
            .unwrap_or_default()
    }

    /// Record one committed transaction's response time.
    pub fn record_commit(&self, start: SimTime, end: SimTime) {
        self.samples
            .lock()
            .unwrap()
            .push(end.since(start).as_micros());
        *self.committed.lock().unwrap() += 1;
    }

    /// Record a rollback (counts toward aborts, not latency).
    pub fn record_abort(&self) {
        *self.aborted.lock().unwrap() += 1;
    }

    /// Record one resubmission and the backoff slept before it.
    pub fn record_retry(&self, backoff: std::time::Duration) {
        *self.retries.lock().unwrap() += 1;
        *self.retry_backoff_micros.lock().unwrap() += backoff.as_micros() as u64;
    }

    /// Commits recorded so far.
    pub fn committed(&self) -> u64 {
        *self.committed.lock().unwrap()
    }

    /// Aborts recorded so far.
    pub fn aborted(&self) -> u64 {
        *self.aborted.lock().unwrap()
    }

    /// Resubmissions recorded so far.
    pub fn retries(&self) -> u64 {
        *self.retries.lock().unwrap()
    }

    /// Total backoff slept before resubmissions, microseconds.
    pub fn retry_backoff_micros(&self) -> u64 {
        *self.retry_backoff_micros.lock().unwrap()
    }

    /// Snapshot the latency distribution.
    pub fn latency(&self) -> LatencyStats {
        LatencyStats::from_micros(self.samples.lock().unwrap().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::from_micros(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_ms, 0.0);
    }

    #[test]
    fn percentiles() {
        let samples: Vec<u64> = (1..=100).map(|i| i * 1000).collect(); // 1..100 ms
        let s = LatencyStats::from_micros(samples);
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 0.01);
        assert!((s.p50_ms - 50.0).abs() <= 1.0);
        assert!((s.p95_ms - 95.0).abs() <= 1.0);
        assert!((s.p99_ms - 99.0).abs() <= 1.0);
        assert_eq!(s.max_ms, 100.0);
    }

    #[test]
    fn collector_accumulates() {
        let c = StatsCollector::new();
        c.record_commit(SimTime::from_millis(0), SimTime::from_millis(10));
        c.record_commit(SimTime::from_millis(5), SimTime::from_millis(25));
        c.record_abort();
        assert_eq!(c.committed(), 2);
        assert_eq!(c.aborted(), 1);
        let l = c.latency();
        assert_eq!(l.count, 2);
        assert!((l.mean_ms - 15.0).abs() < 0.01);
    }
}
