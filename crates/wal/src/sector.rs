//! Sector-aligned framing with chained page checksums.
//!
//! The record codec ([`crate::codec`]) frames each record with a length and a
//! payload checksum, which is enough to survive a *torn tail* — a crash
//! mid-`write(2)` at the end of the image. It is **not** enough for a torn
//! *page*: when a frame spans a sector boundary and the disk persists only
//! some of the sectors (or leaves a stale earlier version of one), the
//! surviving bytes can still parse as a valid frame sequence — the length
//! header happily frames whatever follows, and if the stale region happens to
//! contain an old, internally-consistent frame at the right offset, the
//! decoder silently absorbs a record that was never written there (see the
//! regression test in `tests/sector_prop.rs`).
//!
//! This module closes that hole the way real log managers do: the byte
//! stream of encoded records is chunked into fixed 512-byte *sectors*, each
//! carrying a header with
//!
//! * a magic number and its own sequence number (stale sectors from a
//!   different position can never be accepted in place),
//! * the payload length used (only the *final* sector may be partial), and
//! * a checksum **chained** from the previous sector's checksum, so a sector
//!   is only accepted if every sector before it is byte-identical to what
//!   was live when it was written.
//!
//! The chain is what detects the torn page: a tear that splits a frame
//! across sectors k and k+1 necessarily leaves one of the two inconsistent
//! with the other (lost write, stale version, or reordered write), and the
//! chained checksum of the later sector can then never verify. Only the
//! final sector is ever rewritten (to extend its payload), and it has no
//! successors, so the chain stays valid under the append-only write pattern
//! of [`crate::device::FileDevice`].

/// Bytes per sector — the unit the device writes and a crash tears at.
pub const SECTOR_SIZE: usize = 512;

/// Header: magic (4) + seq (8) + len (2) + chain checksum (8).
pub const HEADER: usize = 22;

/// Record-stream payload bytes per sector.
pub const CAPACITY: usize = SECTOR_SIZE - HEADER;

const MAGIC: u32 = 0x4c57_acc1;

/// Chain seed for sector 0 (the FNV-1a offset basis).
const CHAIN_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Streaming FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The chained checksum of one sector: FNV-1a over the previous sector's
/// checksum, this sector's sequence number and payload length, and the
/// payload bytes in use (padding is excluded — it never reaches the disk
/// contract).
pub fn chain_of(prev_chain: u64, seq: u64, payload: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(&prev_chain.to_le_bytes());
    h.update(&seq.to_le_bytes());
    h.update(&(payload.len() as u16).to_le_bytes());
    h.update(payload);
    h.0
}

fn encode_sector(seq: u64, payload: &[u8], chain: u64, out: &mut Vec<u8>) {
    debug_assert!(payload.len() <= CAPACITY);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u16).to_le_bytes());
    out.extend_from_slice(&chain.to_le_bytes());
    out.extend_from_slice(payload);
    out.resize(out.len() + (CAPACITY - payload.len()), 0);
}

/// Incremental sector sealer: feeds of record-stream bytes come out as
/// sector-aligned writes. Only the final (partial) sector is ever rewritten;
/// full sectors are immutable once emitted, which is what keeps the
/// checksum chain valid.
#[derive(Debug, Default)]
pub struct SectorWriter {
    /// Sequence number of the current tail sector (the next full sector to
    /// be sealed).
    seq: u64,
    /// Chain value of the last *full* sector (seed value before any).
    prev_chain: u64,
    /// Payload bytes already in the tail sector (rewritten on next push).
    tail: Vec<u8>,
}

impl SectorWriter {
    /// A writer positioned at the start of an empty log.
    pub fn new() -> SectorWriter {
        SectorWriter {
            seq: 0,
            prev_chain: CHAIN_SEED,
            tail: Vec::new(),
        }
    }

    /// A writer resuming after `stream` bytes have already been sealed (the
    /// reopen path; the tail sector will be rewritten with its existing
    /// payload plus whatever comes next).
    pub fn resume(stream: &[u8]) -> SectorWriter {
        let mut w = SectorWriter::new();
        let full = stream.len() / CAPACITY;
        for i in 0..full {
            let payload = &stream[i * CAPACITY..(i + 1) * CAPACITY];
            w.prev_chain = chain_of(w.prev_chain, w.seq, payload);
            w.seq += 1;
        }
        w.tail = stream[full * CAPACITY..].to_vec();
        w
    }

    /// Append `bytes` of record stream. Returns the byte offset the device
    /// must write at (the start of the current tail sector — rewritten if it
    /// was partial) and the sector-aligned bytes to write there. Empty input
    /// with an empty tail produces an empty write.
    pub fn push(&mut self, bytes: &[u8]) -> (u64, Vec<u8>) {
        let offset = self.seq * SECTOR_SIZE as u64;
        self.tail.extend_from_slice(bytes);
        let mut out = Vec::new();
        while self.tail.len() >= CAPACITY {
            let payload: Vec<u8> = self.tail.drain(..CAPACITY).collect();
            let chain = chain_of(self.prev_chain, self.seq, &payload);
            encode_sector(self.seq, &payload, chain, &mut out);
            self.prev_chain = chain;
            self.seq += 1;
        }
        if !self.tail.is_empty() {
            let chain = chain_of(self.prev_chain, self.seq, &self.tail);
            encode_sector(self.seq, &self.tail, chain, &mut out);
            // seq / prev_chain do not advance: this sector is still open.
        }
        (offset, out)
    }

    /// Total record-stream bytes pushed so far.
    pub fn stream_len(&self) -> u64 {
        self.seq * CAPACITY as u64 + self.tail.len() as u64
    }
}

/// Seal a whole record stream into a sector image (offline / test helper;
/// byte-identical to any sequence of [`SectorWriter::push`] calls covering
/// the same stream).
pub fn seal(stream: &[u8]) -> Vec<u8> {
    let mut w = SectorWriter::new();
    let (_, image) = w.push(stream);
    image
}

/// The verified prefix [`open`] salvaged from a sector image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opened {
    /// The record-stream bytes whose sectors all verified, in order.
    pub stream: Vec<u8>,
    /// Sectors accepted.
    pub sectors: usize,
    /// True if bytes beyond the accepted prefix were rejected (torn, stale,
    /// or trailing garbage) — never silently absorbed.
    pub torn: bool,
}

/// Walk `image` sector by sector, verifying magic, sequence number and the
/// chained checksum, and concatenating the payloads of the verified prefix.
/// Stops at the first sector that fails any check, at a trailing fragment
/// shorter than one sector, or after a partial sector (only the logical tail
/// may be partial; anything behind it is stale by construction).
pub fn open(image: &[u8]) -> Opened {
    let mut stream = Vec::new();
    let mut prev_chain = CHAIN_SEED;
    let mut sectors = 0usize;
    let mut pos = 0usize;
    loop {
        if image.len() - pos < SECTOR_SIZE {
            return Opened {
                stream,
                sectors,
                torn: pos < image.len(),
            };
        }
        let s = &image[pos..pos + SECTOR_SIZE];
        let magic = u32::from_le_bytes(s[0..4].try_into().expect("4 bytes"));
        let seq = u64::from_le_bytes(s[4..12].try_into().expect("8 bytes"));
        let len = u16::from_le_bytes(s[12..14].try_into().expect("2 bytes")) as usize;
        let chain = u64::from_le_bytes(s[14..22].try_into().expect("8 bytes"));
        let ok = magic == MAGIC
            && seq == sectors as u64
            && len <= CAPACITY
            && chain == chain_of(prev_chain, seq, &s[HEADER..HEADER + len.min(CAPACITY)]);
        if !ok {
            return Opened {
                stream,
                sectors,
                torn: true,
            };
        }
        stream.extend_from_slice(&s[HEADER..HEADER + len]);
        prev_chain = chain;
        sectors += 1;
        pos += SECTOR_SIZE;
        if len < CAPACITY {
            // The logical tail: anything after a partial sector is stale.
            return Opened {
                stream,
                sectors,
                torn: pos < image.len(),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + 3) as u8).collect()
    }

    #[test]
    fn seal_open_round_trip() {
        for n in [
            0,
            1,
            CAPACITY - 1,
            CAPACITY,
            CAPACITY + 1,
            3 * CAPACITY + 17,
        ] {
            let s = stream(n);
            let image = seal(&s);
            assert_eq!(image.len() % SECTOR_SIZE, 0);
            let opened = open(&image);
            assert_eq!(opened.stream, s, "n = {n}");
            assert!(!opened.torn);
            assert_eq!(opened.sectors, n.div_ceil(CAPACITY));
        }
    }

    #[test]
    fn incremental_pushes_match_offline_seal() {
        let s = stream(4 * CAPACITY + 100);
        let mut w = SectorWriter::new();
        let mut disk = Vec::new();
        // Uneven feeds, including ones that straddle sector boundaries.
        for chunk in s.chunks(137) {
            let (off, bytes) = w.push(chunk);
            let off = off as usize;
            if disk.len() < off + bytes.len() {
                disk.resize(off + bytes.len(), 0);
            }
            disk[off..off + bytes.len()].copy_from_slice(&bytes);
        }
        assert_eq!(disk, seal(&s));
        assert_eq!(w.stream_len(), s.len() as u64);
    }

    #[test]
    fn resume_continues_the_chain() {
        let s = stream(2 * CAPACITY + 50);
        let mut w = SectorWriter::resume(&s);
        let more = stream(300);
        let (off, bytes) = w.push(&more);
        // The rewrite starts at the partial tail sector.
        assert_eq!(off as usize, 2 * SECTOR_SIZE);
        let mut disk = seal(&s);
        disk.truncate(off as usize);
        disk.extend_from_slice(&bytes);
        let mut full = s.clone();
        full.extend_from_slice(&more);
        assert_eq!(disk, seal(&full));
    }

    #[test]
    fn any_single_sector_tear_is_detected() {
        let s = stream(5 * CAPACITY + 20);
        let image = seal(&s);
        let n_sectors = image.len() / SECTOR_SIZE;
        for k in 0..n_sectors {
            let mut torn = image.clone();
            for b in &mut torn[k * SECTOR_SIZE..(k + 1) * SECTOR_SIZE] {
                *b ^= 0x5a;
            }
            let opened = open(&torn);
            assert!(opened.torn, "tear at sector {k} not flagged");
            assert_eq!(opened.sectors, k, "tear at sector {k}");
            assert_eq!(opened.stream, s[..k * CAPACITY], "tear at sector {k}");
        }
    }

    #[test]
    fn stale_last_sector_version_is_the_accepted_tail() {
        // A torn final write can leave the *previous* version of the tail
        // sector: shorter payload, valid chain. That prefix is exactly what
        // was durable before the torn write — accepted, nothing invented.
        let old = stream(CAPACITY + 40);
        let mut new = old.clone();
        new.extend_from_slice(&stream(100));
        let old_image = seal(&old);
        let new_image = seal(&new);
        // Lost rewrite of the tail sector: sector 1 still holds the old
        // version.
        let mut torn = new_image;
        torn[SECTOR_SIZE..2 * SECTOR_SIZE].copy_from_slice(&old_image[SECTOR_SIZE..]);
        let opened = open(&torn);
        assert_eq!(opened.stream, old);
    }

    #[test]
    fn sector_from_another_position_is_rejected() {
        // A valid sector transplanted to a different offset fails on seq and
        // chain even though its own checksum bytes are internally consistent.
        let s = stream(4 * CAPACITY);
        let image = seal(&s);
        let mut spliced = image.clone();
        let (a, b) = (SECTOR_SIZE, 3 * SECTOR_SIZE);
        let donor: Vec<u8> = image[b..b + SECTOR_SIZE].to_vec();
        spliced[a..a + SECTOR_SIZE].copy_from_slice(&donor);
        let opened = open(&spliced);
        assert!(opened.torn);
        assert_eq!(opened.sectors, 1);
        assert_eq!(opened.stream, s[..CAPACITY]);
    }

    #[test]
    fn trailing_fragment_is_flagged_not_absorbed() {
        let s = stream(CAPACITY / 2);
        let mut image = seal(&s);
        image.extend_from_slice(&[0xab; 100]);
        let opened = open(&image);
        assert_eq!(opened.stream, s);
        assert!(opened.torn);
    }
}
