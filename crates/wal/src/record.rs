//! Log record types.

use acc_common::{Slot, TableId, TxnId, TxnTypeId};
use acc_storage::Row;

/// One entry on the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    /// A transaction started.
    Begin {
        /// The transaction.
        txn: TxnId,
        /// Its analyzed type (drives compensation at recovery).
        txn_type: TxnTypeId,
    },
    /// A physical row mutation. `before == None` is an insert,
    /// `after == None` is a delete, both `Some` is an update.
    Update {
        /// Mutating transaction.
        txn: TxnId,
        /// Table mutated.
        table: TableId,
        /// Heap slot.
        slot: Slot,
        /// Before-image (`None` for inserts).
        before: Option<Row>,
        /// After-image (`None` for deletes).
        after: Option<Row>,
    },
    /// A step completed. Updates at or before this record are durable and
    /// will not be physically undone; the work area is what a compensating
    /// step needs to semantically undo the transaction so far.
    StepEnd {
        /// The transaction.
        txn: TxnId,
        /// Zero-based index of the completed step.
        step_index: u32,
        /// Serialized transaction work area (opaque to the log).
        work_area: Vec<u8>,
    },
    /// The transaction began running compensating steps (rollback of a
    /// multi-step transaction).
    CompensationBegin {
        /// The transaction.
        txn: TxnId,
        /// Number of forward steps that had completed.
        from_step: u32,
    },
    /// The transaction committed.
    Commit {
        /// The transaction.
        txn: TxnId,
    },
    /// The transaction finished rolling back (single-step abort or completed
    /// compensation).
    Abort {
        /// The transaction.
        txn: TxnId,
    },
}

impl LogRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> TxnId {
        match self {
            LogRecord::Begin { txn, .. }
            | LogRecord::Update { txn, .. }
            | LogRecord::StepEnd { txn, .. }
            | LogRecord::CompensationBegin { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => *txn,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_accessor() {
        let r = LogRecord::Commit { txn: TxnId(4) };
        assert_eq!(r.txn(), TxnId(4));
        let r = LogRecord::StepEnd {
            txn: TxnId(7),
            step_index: 1,
            work_area: vec![1, 2],
        };
        assert_eq!(r.txn(), TxnId(7));
    }
}
