//! Binary encoding of log records.
//!
//! Framing: `[payload_len: u32 LE][checksum: u64 LE][payload]`, where the
//! checksum is FNV-1a over the payload. Decoding stops cleanly at the first
//! truncated or corrupt frame — exactly what a crash mid-`write(2)` leaves
//! behind.

use crate::buf::{PutExt, Reader};
use crate::record::LogRecord;
use acc_common::{Slot, TableId, TxnId, TxnTypeId, Value};
use acc_storage::Row;

const TAG_BEGIN: u8 = 1;
const TAG_UPDATE: u8 = 2;
const TAG_STEP_END: u8 = 3;
const TAG_COMP_BEGIN: u8 = 4;
const TAG_COMMIT: u8 = 5;
const TAG_ABORT: u8 = 6;

const VAL_NULL: u8 = 0;
const VAL_INT: u8 = 1;
const VAL_STR: u8 = 2;
const VAL_DEC: u8 = 3;
const VAL_BOOL: u8 = 4;

/// FNV-1a, 64-bit.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append one framed record to `out`.
pub fn encode_record(rec: &LogRecord, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    encode_payload(rec, &mut payload);
    out.put_u32_le(payload.len() as u32);
    out.put_u64_le(fnv1a(&payload));
    out.extend_from_slice(&payload);
}

fn encode_payload(rec: &LogRecord, p: &mut Vec<u8>) {
    match rec {
        LogRecord::Begin { txn, txn_type } => {
            p.put_u8(TAG_BEGIN);
            p.put_u64_le(txn.raw());
            p.put_u32_le(txn_type.raw());
        }
        LogRecord::Update {
            txn,
            table,
            slot,
            before,
            after,
        } => {
            p.put_u8(TAG_UPDATE);
            p.put_u64_le(txn.raw());
            p.put_u32_le(table.raw());
            p.put_u64_le(*slot);
            encode_opt_row(before.as_ref(), p);
            encode_opt_row(after.as_ref(), p);
        }
        LogRecord::StepEnd {
            txn,
            step_index,
            work_area,
        } => {
            p.put_u8(TAG_STEP_END);
            p.put_u64_le(txn.raw());
            p.put_u32_le(*step_index);
            p.put_u32_le(work_area.len() as u32);
            p.extend_from_slice(work_area);
        }
        LogRecord::CompensationBegin { txn, from_step } => {
            p.put_u8(TAG_COMP_BEGIN);
            p.put_u64_le(txn.raw());
            p.put_u32_le(*from_step);
        }
        LogRecord::Commit { txn } => {
            p.put_u8(TAG_COMMIT);
            p.put_u64_le(txn.raw());
        }
        LogRecord::Abort { txn } => {
            p.put_u8(TAG_ABORT);
            p.put_u64_le(txn.raw());
        }
    }
}

fn encode_opt_row(row: Option<&Row>, p: &mut Vec<u8>) {
    match row {
        None => p.put_u8(0),
        Some(r) => {
            p.put_u8(1);
            p.put_u32_le(r.0.len() as u32);
            for v in &r.0 {
                encode_value(v, p);
            }
        }
    }
}

fn encode_value(v: &Value, p: &mut Vec<u8>) {
    match v {
        Value::Null => p.put_u8(VAL_NULL),
        Value::Int(n) => {
            p.put_u8(VAL_INT);
            p.put_i64_le(*n);
        }
        Value::Str(s) => {
            p.put_u8(VAL_STR);
            p.put_u32_le(s.len() as u32);
            p.extend_from_slice(s.as_bytes());
        }
        Value::Decimal(d) => {
            p.put_u8(VAL_DEC);
            p.put_i64_le(d.units());
        }
        Value::Bool(b) => {
            p.put_u8(VAL_BOOL);
            p.put_u8(*b as u8);
        }
    }
}

/// Decode every intact record from `data`, stopping silently at the first
/// truncated or corrupt frame.
pub fn decode_all(data: &[u8]) -> Vec<LogRecord> {
    let mut buf = Reader::new(data);
    let mut out = Vec::new();
    loop {
        if buf.remaining() < 12 {
            return out;
        }
        let len = buf.get_u32_le().expect("12-byte header") as usize;
        let checksum = buf.get_u64_le().expect("12-byte header");
        let Some(payload) = buf.take(len) else {
            return out;
        };
        if fnv1a(payload) != checksum {
            return out;
        }
        match decode_payload(&mut Reader::new(payload)) {
            Some(rec) => out.push(rec),
            None => return out,
        }
    }
}

fn decode_payload(p: &mut Reader<'_>) -> Option<LogRecord> {
    let tag = p.get_u8()?;
    match tag {
        TAG_BEGIN => {
            let txn = TxnId(get_u64(p)?);
            let txn_type = TxnTypeId(get_u32(p)?);
            Some(LogRecord::Begin { txn, txn_type })
        }
        TAG_UPDATE => {
            let txn = TxnId(get_u64(p)?);
            let table = TableId(get_u32(p)?);
            let slot: Slot = get_u64(p)?;
            let before = decode_opt_row(p)?;
            let after = decode_opt_row(p)?;
            Some(LogRecord::Update {
                txn,
                table,
                slot,
                before,
                after,
            })
        }
        TAG_STEP_END => {
            let txn = TxnId(get_u64(p)?);
            let step_index = get_u32(p)?;
            let n = get_u32(p)? as usize;
            let work_area = p.take(n)?.to_vec();
            Some(LogRecord::StepEnd {
                txn,
                step_index,
                work_area,
            })
        }
        TAG_COMP_BEGIN => {
            let txn = TxnId(get_u64(p)?);
            let from_step = get_u32(p)?;
            Some(LogRecord::CompensationBegin { txn, from_step })
        }
        TAG_COMMIT => Some(LogRecord::Commit {
            txn: TxnId(get_u64(p)?),
        }),
        TAG_ABORT => Some(LogRecord::Abort {
            txn: TxnId(get_u64(p)?),
        }),
        _ => None,
    }
}

fn decode_opt_row(p: &mut Reader<'_>) -> Option<Option<Row>> {
    match p.get_u8()? {
        0 => Some(None),
        1 => {
            let n = get_u32(p)? as usize;
            // The count is attacker-controlled when decoding a corrupt image;
            // every value takes at least one byte, so cap the pre-allocation
            // by what the buffer could possibly hold.
            let mut vals = Vec::with_capacity(n.min(p.remaining()));
            for _ in 0..n {
                vals.push(decode_value(p)?);
            }
            Some(Some(Row(vals)))
        }
        _ => None,
    }
}

fn decode_value(p: &mut Reader<'_>) -> Option<Value> {
    match p.get_u8()? {
        VAL_NULL => Some(Value::Null),
        VAL_INT => Some(Value::Int(get_u64(p)? as i64)),
        VAL_STR => {
            let n = get_u32(p)? as usize;
            let bytes = p.take(n)?;
            String::from_utf8(bytes.to_vec()).ok().map(Value::Str)
        }
        VAL_DEC => Some(Value::Decimal(acc_common::Decimal::from_units(
            get_u64(p)? as i64
        ))),
        VAL_BOOL => Some(Value::Bool(p.get_u8()? != 0)),
        _ => None,
    }
}

fn get_u32(p: &mut Reader<'_>) -> Option<u32> {
    p.get_u32_le()
}

fn get_u64(p: &mut Reader<'_>) -> Option<u64> {
    p.get_u64_le()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::Decimal;

    fn sample_records() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin {
                txn: TxnId(1),
                txn_type: TxnTypeId(2),
            },
            LogRecord::Update {
                txn: TxnId(1),
                table: TableId(3),
                slot: 17,
                before: None,
                after: Some(Row(vec![
                    Value::Int(-5),
                    Value::str("hello"),
                    Value::Decimal(Decimal::from_cents(1234)),
                    Value::Bool(true),
                    Value::Null,
                ])),
            },
            LogRecord::StepEnd {
                txn: TxnId(1),
                step_index: 0,
                work_area: vec![9, 8, 7],
            },
            LogRecord::Update {
                txn: TxnId(1),
                table: TableId(3),
                slot: 17,
                before: Some(Row(vec![Value::Int(1)])),
                after: None,
            },
            LogRecord::CompensationBegin {
                txn: TxnId(1),
                from_step: 1,
            },
            LogRecord::Abort { txn: TxnId(1) },
            LogRecord::Commit { txn: TxnId(2) },
        ]
    }

    #[test]
    fn round_trip() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        let decoded = decode_all(&buf);
        assert_eq!(decoded, recs);
    }

    #[test]
    fn truncation_at_every_byte_is_clean() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        let full = buf.clone();
        for cut in 0..full.len() {
            let decoded = decode_all(&full[..cut]);
            // Decoded records are always an exact prefix of the originals.
            assert!(decoded.len() <= recs.len());
            assert_eq!(decoded[..], recs[..decoded.len()]);
        }
    }

    #[test]
    fn corruption_detected_by_checksum() {
        let recs = sample_records();
        let mut buf = Vec::new();
        for r in &recs {
            encode_record(r, &mut buf);
        }
        let mut bytes = buf;
        // Flip a byte inside the second record's payload.
        let first_len = 12 + u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
        bytes[first_len + 20] ^= 0xff;
        let decoded = decode_all(&bytes);
        assert_eq!(decoded.len(), 1, "decoding stops at the corrupt frame");
        assert_eq!(decoded[0], recs[0]);
    }

    #[test]
    fn empty_input() {
        assert!(decode_all(&[]).is_empty());
        assert!(decode_all(&[1, 2, 3]).is_empty());
    }
}
