//! The append-only log.

use crate::codec;
use crate::record::LogRecord;
use acc_common::faults::{BoundaryEdge, FaultInjector};
use std::fmt;
use std::sync::Arc;

/// Log sequence number: the index of a record on the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// An in-memory write-ahead log with a durable binary image.
///
/// `to_bytes` produces the "disk" image; [`Wal::from_bytes`] replays whatever
/// prefix of it survived a crash (see [`crate::codec`] for the framing).
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<LogRecord>,
    /// Encoded frames not yet handed to a durable device (see
    /// [`Wal::take_staged`]). Records are encoded once, at append time, so
    /// the group-commit batcher drains bytes without re-walking the log.
    staged: Vec<u8>,
    /// Fault-injection hook (crash-torture harness); absent in production.
    faults: Option<Arc<FaultInjector>>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a fault injector observing this log's appends and step
    /// boundaries. The injector captures the durable image at its planned
    /// crash point; an absent or disabled injector costs one branch per
    /// append.
    pub fn set_fault_injector(&mut self, faults: Arc<FaultInjector>) {
        self.faults = Some(faults);
    }

    /// Append a record, returning its LSN.
    pub fn append(&mut self, rec: LogRecord) -> Lsn {
        codec::encode_record(&rec, &mut self.staged);
        self.records.push(rec);
        if let Some(f) = &self.faults {
            if f.is_enabled() {
                f.on_wal_append(|| self.to_bytes());
            }
        }
        Lsn(self.records.len() as u64 - 1)
    }

    /// Drain the encoded frames appended since the last drain. The
    /// group-commit batcher stages these on the durable device; callers that
    /// never drain just accumulate bytes they never look at.
    pub fn take_staged(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.staged)
    }

    /// Report an end-of-step boundary edge to the fault injector, letting a
    /// planned crash land just before or just after the end-of-step record.
    /// No-op without an enabled injector.
    pub fn fault_boundary(&self, edge: BoundaryEdge) {
        if let Some(f) = &self.faults {
            if f.is_enabled() {
                f.on_step_boundary(edge, || self.to_bytes());
            }
        }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in LSN order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Serialize to the durable image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        for r in &self.records {
            codec::encode_record(r, &mut buf);
        }
        buf
    }

    /// Rebuild from a (possibly truncated or tail-corrupted) durable image.
    pub fn from_bytes(data: &[u8]) -> Self {
        let records = codec::decode_all(data);
        let mut staged = Vec::new();
        for r in &records {
            codec::encode_record(r, &mut staged);
        }
        Wal {
            records,
            staged,
            faults: None,
        }
    }

    /// Drop all records from `lsn` (inclusive) on — simulates a crash that
    /// lost the log tail. Resets the staging buffer to the full surviving
    /// image (valid only if nothing has been drained to a device yet).
    pub fn truncate(&mut self, lsn: Lsn) {
        self.records.truncate(lsn.0 as usize);
        self.staged = self.to_bytes();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_common::{TxnId, TxnTypeId};

    #[test]
    fn append_and_lsn() {
        let mut wal = Wal::new();
        assert!(wal.is_empty());
        let a = wal.append(LogRecord::Begin {
            txn: TxnId(1),
            txn_type: TxnTypeId(0),
        });
        let b = wal.append(LogRecord::Commit { txn: TxnId(1) });
        assert_eq!(a, Lsn(0));
        assert_eq!(b, Lsn(1));
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn durable_round_trip() {
        let mut wal = Wal::new();
        wal.append(LogRecord::Begin {
            txn: TxnId(1),
            txn_type: TxnTypeId(0),
        });
        wal.append(LogRecord::Commit { txn: TxnId(1) });
        let img = wal.to_bytes();
        let restored = Wal::from_bytes(&img);
        assert_eq!(restored.records(), wal.records());
    }

    #[test]
    fn truncate_drops_tail() {
        let mut wal = Wal::new();
        for i in 0..5 {
            wal.append(LogRecord::Commit { txn: TxnId(i) });
        }
        wal.truncate(Lsn(2));
        assert_eq!(wal.len(), 2);
        assert_eq!(wal.records()[1], LogRecord::Commit { txn: TxnId(1) });
    }
}
