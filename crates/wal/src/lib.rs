//! Write-ahead logging and step-aware crash recovery.
//!
//! The paper's implemented ACC "stores an end-of-step record, used in crash
//! recovery, in the log, and saves some of its work area in a database table
//! for compensation" (§5). This crate provides that machinery:
//!
//! * [`record::LogRecord`] — begin / update (before+after images) /
//!   end-of-step (with the transaction's serialized work area) / commit /
//!   abort / compensation-begin,
//! * [`codec`] — a length- and checksum-framed binary encoding (`bytes`),
//!   tolerant of truncation at any byte (a crash mid-write),
//! * [`log::Wal`] — the append-only log,
//! * [`recovery`] — redo everything durable, undo the incomplete current
//!   step of each in-flight transaction, and report which multi-step
//!   transactions need *compensating steps* run (a step is atomic and
//!   durable once its end-of-step record is on the log; completed steps are
//!   never physically undone — they are semantically undone by compensation,
//!   §3.4).

pub mod buf;
pub mod codec;
pub mod device;
pub mod group;
pub mod log;
pub mod record;
pub mod recovery;
pub mod sector;

pub use device::{FileDevice, FsyncSnapshot, LogDevice, MemDevice, Snooper};
pub use group::{adaptive_wait, CommitWindow, DurableWal, FlushStats, GroupCommitPolicy};
pub use log::{Lsn, Wal};
pub use record::LogRecord;
pub use recovery::{recover, InFlight, RecoveryReport};
